//! Microbenchmarks of the arithmetic substrate every protocol stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shs_bench::rng;
use shs_bigint::{mont::MontCtx, prime, rng as brng};

fn bench_bigint(c: &mut Criterion) {
    let mut r = rng("bench-bigint");
    let mut g = c.benchmark_group("bigint");
    for bits in [256u32, 512, 1024, 2048] {
        let m = brng::random_odd_bits(&mut r, bits);
        let base = brng::below(&mut r, &m);
        let exp = brng::random_bits(&mut r, bits);
        let ctx = MontCtx::new(m.clone());
        g.bench_with_input(BenchmarkId::new("modpow", bits), &bits, |b, _| {
            b.iter(|| ctx.modpow(&base, &exp))
        });
        let x = brng::below(&mut r, &m);
        let y = brng::below(&mut r, &m);
        g.bench_with_input(BenchmarkId::new("mulm", bits), &bits, |b, _| {
            b.iter(|| x.mulm(&y, &m))
        });
    }
    g.sample_size(10);
    g.bench_function("gen-prime-256", |b| {
        b.iter(|| prime::gen_prime(256, &mut r))
    });
    g.bench_function("miller-rabin-512", |b| {
        let p = prime::gen_prime(512, &mut r);
        b.iter(|| prime::is_prime(&p, &mut r))
    });
    let a = brng::random_bits(&mut r, 2048);
    let bb = brng::random_bits(&mut r, 2048);
    g.bench_function("mul-2048", |b| b.iter(|| a.mul(&bb)));
    let d = brng::random_bits(&mut r, 1024);
    g.bench_function("divrem-2048-by-1024", |b| b.iter(|| a.divrem(&d).unwrap()));
    let m = brng::random_odd_bits(&mut r, 1024);
    let x = brng::below(&mut r, &m);
    g.bench_function("modinv-1024", |b| b.iter(|| x.modinv(&m).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_bigint);
criterion_main!(benches);
