//! Criterion bench for E4: one LEAVE rekey at group size n per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shs_bench::rng;
use shs_cgkd::{lkh::LkhController, sd::SdController, star::StarController, Controller};

fn bench_cgkd(c: &mut Criterion) {
    let mut g = c.benchmark_group("cgkd-leave-rekey");
    g.sample_size(20);
    for n in [64u32, 256, 1024] {
        let mut r = rng("bench-cgkd");
        // LKH
        let mut lkh = LkhController::new(n, &mut r);
        for _ in 0..n {
            lkh.admit(&mut r).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("lkh", n), &n, |b, _| {
            b.iter(|| {
                let id = lkh.members()[0];
                let bc = lkh.evict(id, &mut r).unwrap();
                lkh.admit(&mut r).unwrap();
                bc
            })
        });
        // Star
        let mut star = StarController::new(n, &mut r);
        for _ in 0..n {
            star.admit(&mut r).unwrap();
        }
        g.bench_with_input(BenchmarkId::new("star", n), &n, |b, _| {
            b.iter(|| {
                let id = star.members()[0];
                let bc = star.evict(id, &mut r).unwrap();
                star.admit(&mut r).unwrap();
                bc
            })
        });
        // SD: capacity must absorb one leaf per iteration (stateless IDs
        // are never reused), so give it headroom and only evict.
        let mut sd = SdController::new(4 * n, &mut r);
        let mut ids = Vec::new();
        for _ in 0..(2 * n) {
            let (id, _, _) = sd.admit(&mut r).unwrap();
            ids.push(id);
        }
        let mut next = 0usize;
        g.bench_with_input(BenchmarkId::new("sd", n), &n, |b, _| {
            b.iter(|| {
                let id = ids[next % ids.len()];
                next += 1;
                sd.evict(id, &mut r).ok()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cgkd);
criterion_main!(benches);
