//! Criterion bench for E3: BD vs GDH.2 complete runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shs_bench::rng;
use shs_dgka::{ake, bd, gdh};
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};

fn bench_dgka(c: &mut Criterion) {
    let group = SchnorrGroup::system_wide(SchnorrPreset::Test);
    let mut g = c.benchmark_group("dgka");
    g.sample_size(20);
    for m in [2usize, 4, 8, 16] {
        let mut r = rng("bench-dgka-bd");
        g.bench_with_input(BenchmarkId::new("burmester-desmedt", m), &m, |b, &m| {
            b.iter(|| bd::run(group, m, &mut r).unwrap())
        });
        let mut r = rng("bench-dgka-gdh");
        g.bench_with_input(BenchmarkId::new("gdh2", m), &m, |b, &m| {
            b.iter(|| gdh::run(group, m, &mut r).unwrap())
        });
        let mut r = rng("bench-dgka-ake");
        g.bench_with_input(BenchmarkId::new("katz-yung-bd", m), &m, |b, &m| {
            b.iter(|| ake::run(group, m, &mut r).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dgka);
criterion_main!(benches);
