//! Criterion bench for E5: group-signature sign / verify / open.

use criterion::{criterion_group, criterion_main, Criterion};
use shs_bench::rng;
use shs_gsig::fixtures;
use shs_gsig::ky::{self, SignBasis};

fn bench_gsig(c: &mut Criterion) {
    let (gm, keys) = fixtures::group_with_members(1);
    let pk = gm.public_key();
    let mut r = rng("bench-gsig");
    let mut g = c.benchmark_group("gsig-ky");
    g.sample_size(30);
    g.bench_function("sign", |b| {
        b.iter(|| ky::sign(pk, &keys[0], b"bench", SignBasis::Random, &mut r))
    });
    let sig = ky::sign(pk, &keys[0], b"bench", SignBasis::Random, &mut r);
    g.bench_function("verify", |b| {
        b.iter(|| ky::verify(pk, b"bench", &sig, None).unwrap())
    });
    g.bench_function("open", |b| b.iter(|| gm.open(b"bench", &sig).unwrap()));
    g.bench_function("sign-selfdistinct", |b| {
        b.iter(|| ky::sign(pk, &keys[0], b"bench", SignBasis::Common(b"basis"), &mut r))
    });
    g.finish();
}

criterion_group!(benches, bench_gsig);
criterion_main!(benches);
