//! Criterion bench for E1/E2: full m-party handshake wall time under both
//! instantiations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shs_bench::{group, rng};
use shs_core::config::DgkaChoice;
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

fn bench_handshake(c: &mut Criterion) {
    let mut g = c.benchmark_group("handshake");
    g.sample_size(10);
    for (scheme, label) in [
        (SchemeKind::Scheme1, "scheme1"),
        (SchemeKind::Scheme2SelfDistinct, "scheme2-selfdist"),
        (SchemeKind::Scheme1Classic, "scheme1-classic"),
    ] {
        let mut r = rng("bench-handshake");
        let (_, members) = group(scheme, 8, &mut r);
        for m in [2usize, 4, 8] {
            let actors: Vec<Actor<'_>> = members[..m].iter().map(Actor::Member).collect();
            g.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| {
                    let result =
                        run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();
                    assert!(result.outcomes[0].accepted);
                    result
                })
            });
        }
    }
    g.finish();
}

/// E3 ablation inside the full handshake: BD vs GDH.2 Phase I.
fn bench_dgka_choice(c: &mut Criterion) {
    let mut g = c.benchmark_group("handshake-dgka-choice");
    g.sample_size(10);
    let mut r = rng("bench-handshake-dgka");
    let (_, members) = group(SchemeKind::Scheme1, 8, &mut r);
    for (choice, label) in [
        (DgkaChoice::BurmesterDesmedt, "bd"),
        (DgkaChoice::Gdh2, "gdh2"),
    ] {
        for m in [4usize, 8] {
            let actors: Vec<Actor<'_>> = members[..m].iter().map(Actor::Member).collect();
            let opts = HandshakeOptions {
                dgka: choice,
                ..Default::default()
            };
            g.bench_with_input(BenchmarkId::new(label, m), &m, |b, _| {
                b.iter(|| {
                    let result = run_handshake(&actors, &opts, &mut r).unwrap();
                    assert!(result.outcomes[0].accepted);
                    result
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_handshake, bench_dgka_choice);
criterion_main!(benches);
