//! Criterion bench for E9: VLR token checks vs accumulator updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shs_bench::rng;
use shs_bigint::Ubig;
use shs_gsig::accumulator::Accumulator;
use shs_gsig::fixtures;
use shs_gsig::ky::{self, MemberId, RevocationToken, SignBasis};
use shs_gsig::params::{GsigParams, GsigPreset};

fn bench_revocation(c: &mut Criterion) {
    let (gm, keys) = fixtures::group_with_members(1);
    let pk = gm.public_key();
    let params = GsigParams::preset(GsigPreset::Test);
    let mut r = rng("bench-revocation");
    let sig = ky::sign(pk, &keys[0], b"m", SignBasis::Random, &mut r);

    let mut g = c.benchmark_group("revocation");
    g.sample_size(20);
    for crl in [0usize, 16, 64] {
        let tokens: Vec<RevocationToken> = (0..crl)
            .map(|i| RevocationToken {
                id: MemberId(1000 + i as u64),
                x: params.sample_lambda(&mut r),
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("vlr-verify", crl), &crl, |b, _| {
            b.iter(|| ky::verify_with_tokens(pk, b"m", &sig, None, &tokens).unwrap())
        });
    }

    let (group, secret) = fixtures::test_rsa_setting();
    let mut acc = Accumulator::new(group, &mut r);
    let (mut w, _) = acc.add(group, &Ubig::from_u64(65537)).unwrap();
    let (_, ev_add) = acc.add(group, &Ubig::from_u64(65539)).unwrap();
    g.bench_function("accumulator-witness-add-update", |b| {
        b.iter(|| {
            let mut wc = w.clone();
            wc.apply(group, &ev_add).unwrap();
            wc
        })
    });
    w.apply(group, &ev_add).unwrap();
    let ev_rm = acc.remove(group, secret, &Ubig::from_u64(65539)).unwrap();
    g.bench_function("accumulator-witness-remove-update", |b| {
        b.iter(|| {
            let mut wc = w.clone();
            wc.apply(group, &ev_rm).unwrap();
            wc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_revocation);
criterion_main!(benches);
