//! **Hot-path kernel benchmark** — measures the exponentiation
//! acceleration layer against the naive kernels it replaces and records a
//! persistent baseline in `BENCH_hot_paths.json` at the repository root
//! (experiment E15 in `EXPERIMENTS.md`).
//!
//! Metrics (accelerated vs naive, same inputs):
//!
//! * `fixed_base_vs_modpow` — `FixedBase::pow` vs windowed `modpow` on a
//!   long-lived base (the signing-path shape: secret exponents, so both
//!   sides are constant-trace).
//! * `multi_exp_vs_naive` — one Straus `multi_exp_vartime` vs a product
//!   of independent exponentiations (the ACJT/KY verify-equation shape:
//!   public data).
//! * `vartime_modpow_vs_ct` — the explicitly-named vartime fast path vs
//!   the constant-trace kernel on public data.
//! * `crt_root_vs_plain` — issuance-style `e`-th root via the CRT context
//!   vs a full-width `modpow`.
//! * `batch_verify_vs_sequential` — `ky::verify_batch` over `k = 16`
//!   signatures vs 16 independent `ky::verify` calls (the phase-III
//!   multi-party shape: one random-linear-combination multi-exp pass
//!   replaces `k` full equation sets).
//! * `handshake_parallel_vs_sequential` — an `m = 8` full handshake with
//!   the phase-III worker pool on vs off (wall-clock only; bounded by the
//!   machine's core count, ~1.0 on a single-core runner).
//!
//! ```sh
//! cargo run --release -p shs-bench --bin bench_hot_paths [-- --smoke] [-- --check]
//! ```
//!
//! `--smoke` shrinks sizes/iterations for CI; `--check` exits non-zero if
//! any accelerated kernel is slower than its naive counterpart (the
//! parallel-handshake metric gets a single-core tolerance).

use shs_bench::{group, rng, timed};
use shs_bigint::{FixedBase, Int, Ubig};
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_groups::rsa::RsaGroup;
use std::sync::Arc;

struct Metric {
    name: &'static str,
    naive_s: f64,
    accel_s: f64,
    iters: u32,
    /// `--check` floor for naive_s / accel_s.
    floor: f64,
}

impl Metric {
    fn speedup(&self) -> f64 {
        if self.accel_s > 0.0 {
            self.naive_s / self.accel_s
        } else {
            f64::INFINITY
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args
        .iter()
        .find(|a| *a != "--smoke" && *a != "--check" && *a != "--")
    {
        eprintln!("bench_hot_paths: unknown flag `{bad}` (use --smoke / --check)");
        std::process::exit(2);
    }

    let modulus_bits: u32 = if smoke { 512 } else { 1024 };
    let kernel_iters: u32 = if smoke { 15 } else { 150 };
    let handshake_runs: u32 = if smoke { 1 } else { 3 };

    let mut r = rng("bench-hot-paths");
    let (rsa, secret) = RsaGroup::generate_deterministic(modulus_bits, b"bench-hot-paths-modulus");
    let base = rsa.random_qr(&mut r);
    let exps: Vec<Ubig> = (0..kernel_iters)
        .map(|_| rsa.random_exponent(&mut r))
        .collect();
    let exp_bits = exps.iter().map(Ubig::bits).max().unwrap_or(1);

    let mut metrics: Vec<Metric> = Vec::new();

    // --- fixed-base table vs plain modpow (signing shape) ---------------
    let fb = FixedBase::new(Arc::clone(rsa.ctx()), &base, exp_bits);
    let (naive_s, _) = timed(|| {
        for e in &exps {
            std::hint::black_box(base.modpow(e, rsa.n()));
        }
    });
    let (accel_s, _) = timed(|| {
        for e in &exps {
            std::hint::black_box(fb.pow(e));
        }
    });
    metrics.push(Metric {
        name: "fixed_base_vs_modpow",
        naive_s,
        accel_s,
        iters: kernel_iters,
        floor: 1.0,
    });

    // --- Straus multi-exp vs product of exponentiations (verify shape) --
    let bases: Vec<Ubig> = (0..4).map(|_| rsa.random_qr(&mut r)).collect();
    let term_exps: Vec<Vec<Int>> = (0..kernel_iters)
        .map(|_| {
            (0..4)
                .map(|_| Int::from_ubig(rsa.random_exponent(&mut r)))
                .collect()
        })
        .collect();
    let (naive_s, _) = timed(|| {
        for es in &term_exps {
            let mut acc = Ubig::one();
            for (b, e) in bases.iter().zip(es) {
                acc = rsa.mul(&acc, &rsa.exp_vartime(b, e.magnitude()));
            }
            std::hint::black_box(acc);
        }
    });
    let (accel_s, _) = timed(|| {
        for es in &term_exps {
            let terms: Vec<(&Ubig, &Int)> = bases.iter().zip(es).collect();
            std::hint::black_box(rsa.multi_exp_vartime(&terms));
        }
    });
    metrics.push(Metric {
        name: "multi_exp_vs_naive",
        naive_s,
        accel_s,
        iters: kernel_iters,
        floor: 1.0,
    });

    // --- vartime modpow vs constant-trace modpow (public data) ----------
    let ctx = rsa.ctx();
    let (naive_s, _) = timed(|| {
        for e in &exps {
            std::hint::black_box(ctx.modpow(&base, e));
        }
    });
    let (accel_s, _) = timed(|| {
        for e in &exps {
            std::hint::black_box(ctx.modpow_vartime(&base, e));
        }
    });
    metrics.push(Metric {
        name: "vartime_modpow_vs_ct",
        naive_s,
        accel_s,
        iters: kernel_iters,
        // Bonus metric (not in the acceptance set): direct table indexing
        // vs the masked scan; small but real. Allow timing jitter.
        floor: 0.9,
    });

    // --- CRT e-th root vs full-width modpow (issuance shape) ------------
    let e_pub = Ubig::from_u64(65537);
    let d = e_pub
        .modinv(&secret.qr_order())
        .expect("65537 is coprime to the QR group order");
    let roots: Vec<Ubig> = (0..kernel_iters).map(|_| rsa.random_qr(&mut r)).collect();
    let (naive_s, _) = timed(|| {
        for x in &roots {
            std::hint::black_box(x.modpow(&d, rsa.n()));
        }
    });
    let (accel_s, _) = timed(|| {
        for x in &roots {
            std::hint::black_box(
                secret
                    .root(&rsa, x, &e_pub)
                    .expect("QR elements have e-th roots"),
            );
        }
    });
    metrics.push(Metric {
        name: "crt_root_vs_plain",
        naive_s,
        accel_s,
        iters: kernel_iters,
        floor: 1.0,
    });

    // --- k=16 batch verification vs sequential verify (KY) --------------
    let batch_k = 16usize;
    let batch_iters: u32 = if smoke { 1 } else { 5 };
    let (gm, keys) = shs_gsig::fixtures::group_with_members(4);
    let pk = gm.public_key();
    let mut br = rng("bench-hot-paths-batch");
    let batch_msgs: Vec<Vec<u8>> = (0..batch_k)
        .map(|i| format!("bench-batch-{i}").into_bytes())
        .collect();
    let batch_sigs: Vec<shs_gsig::ky::Signature> = batch_msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            shs_gsig::ky::sign(
                pk,
                &keys[i % keys.len()],
                m,
                shs_gsig::ky::SignBasis::Random,
                &mut br,
            )
        })
        .collect();
    let items: Vec<(&[u8], &shs_gsig::ky::Signature)> = batch_msgs
        .iter()
        .map(Vec::as_slice)
        .zip(batch_sigs.iter())
        .collect();
    let (naive_s, _) = timed(|| {
        for _ in 0..batch_iters {
            for (m, sig) in &items {
                shs_gsig::ky::verify(pk, m, sig, None).expect("bench signature verifies");
            }
        }
    });
    let (accel_s, _) = timed(|| {
        for _ in 0..batch_iters {
            assert!(
                shs_gsig::ky::verify_batch(pk, &items, None).all_valid(),
                "bench batch verifies"
            );
        }
    });
    metrics.push(Metric {
        name: "batch_verify_vs_sequential",
        naive_s,
        accel_s,
        iters: batch_iters,
        // Acceptance target is >= 3x at k = 16 on a full run; the CI
        // smoke floor leaves headroom for noisy shared runners.
        floor: 2.0,
    });

    // --- m=8 handshake: parallel vs sequential phase-III verification ---
    let m = 8;
    let mut hr = rng("bench-hot-paths-handshake");
    let (_, members) = group(SchemeKind::Scheme1, m, &mut hr);
    let acts: Vec<Actor<'_>> = members.iter().map(Actor::Member).collect();
    let mut run_handshakes = |parallel: bool| {
        let opts = HandshakeOptions {
            parallel_verify: parallel,
            ..Default::default()
        };
        let (secs, _) = timed(|| {
            for _ in 0..handshake_runs {
                let result = shs_core::handshake::run_handshake(&acts, &opts, &mut hr)
                    .expect("bench handshake completes");
                assert!(
                    result.outcomes.iter().all(|o| o.accepted),
                    "bench handshake must fully succeed"
                );
            }
        });
        secs
    };
    let naive_s = run_handshakes(false);
    let accel_s = run_handshakes(true);
    metrics.push(Metric {
        name: "handshake_parallel_vs_sequential",
        naive_s,
        accel_s,
        iters: handshake_runs,
        // Pure wall-clock metric: on a single-core runner the pool only
        // adds scheduling overhead, so allow slightly below parity.
        floor: 0.85,
    });

    // --- report ----------------------------------------------------------
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = render_json(&metrics, modulus_bits, smoke, workers);
    println!("{json}");
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hot_paths.json");
    if let Err(err) = std::fs::write(out_path, format!("{json}\n")) {
        eprintln!("bench_hot_paths: could not write {out_path}: {err}");
        std::process::exit(2);
    }

    if check {
        let mut failed = false;
        for m in &metrics {
            if m.speedup() < m.floor {
                eprintln!(
                    "bench_hot_paths: CHECK FAILED: {} speedup {:.2}x below floor {:.2}x",
                    m.name,
                    m.speedup(),
                    m.floor
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_hot_paths: all {} metrics at or above their floors",
            metrics.len()
        );
    }
}

/// Hand-rolled JSON: the offline build has no serde_json.
fn render_json(metrics: &[Metric], modulus_bits: u32, smoke: bool, workers: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"hot_paths\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"modulus_bits\": {modulus_bits},\n"));
    s.push_str(&format!("  \"available_parallelism\": {workers},\n"));
    s.push_str(&format!("  \"host\": {},\n", shs_bench::host_json(workers)));
    s.push_str("  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        let comma = if i + 1 < metrics.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"iters\": {}, \"naive_s\": {:.6}, \
             \"accel_s\": {:.6}, \"speedup\": {:.3}, \"check_floor\": {:.2} }}{}\n",
            m.name,
            m.iters,
            m.naive_s,
            m.accel_s,
            m.speedup(),
            m.floor,
            comma
        ));
    }
    s.push_str("  ]\n");
    s.push('}');
    s
}
