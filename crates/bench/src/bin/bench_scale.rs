//! **Membership-scale benchmark** — drives each CGKD backend to large
//! group sizes through the batched `apply_epoch` path and records a
//! persistent baseline in `BENCH_scale.json` at the repository root
//! (experiment E18 in `EXPERIMENTS.md`).
//!
//! Per backend and group size `n`, three numbers:
//!
//! * `build_s` — wall clock from an empty controller to `n` members
//!   (batched join windows for LKH/SD, sequential admits for Star).
//! * `epoch_ms` — one mixed churn window at full size: evict one member
//!   and admit one replacement, a single epoch broadcast on the arena
//!   backends. Items/bytes of that broadcast ride along.
//! * `sync_ms` — a single member processing that window's broadcast(s):
//!   the stale-member catch-up cost for one missed epoch.
//!
//! LKH sweeps to a million members; SD stops at 100k (provisioning a
//! joiner is O(log² n) GGM labels and SD leaves are never reused); the
//! flat Star backend stops at 2048 (every epoch is O(n) by design —
//! included as the baseline the tree schemes beat).
//!
//! ```sh
//! cargo run --release -p shs-bench --bin bench_scale [-- --smoke] [-- --check]
//! ```
//!
//! `--smoke` shrinks the sweep for CI; `--check` exits non-zero if the
//! largest LKH size does not keep both `epoch_ms` and `sync_ms` under
//! 100 ms (the headline acceptance: million-member churn in bounded
//! time).

use shs_bench::{rng, timed};
use shs_cgkd::lkh::LkhController;
use shs_cgkd::sd::SdController;
use shs_cgkd::star::StarController;
use shs_cgkd::{Controller, MemberState};

/// One (backend, size) measurement.
struct Row {
    backend: &'static str,
    n: usize,
    build_s: f64,
    epoch_ms: f64,
    epoch_items: usize,
    epoch_bytes: usize,
    sync_ms: f64,
}

/// `--check` ceiling for the churn-window and sync costs, milliseconds.
const CHECK_CEILING_MS: f64 = 100.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args
        .iter()
        .find(|a| *a != "--smoke" && *a != "--check" && *a != "--")
    {
        eprintln!("bench_scale: unknown flag `{bad}` (use --smoke / --check)");
        std::process::exit(2);
    }

    let lkh_sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let sd_sizes: &[usize] = if smoke {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let star_sizes: &[usize] = if smoke { &[256] } else { &[512, 2_048] };

    let mut rows: Vec<Row> = Vec::new();
    for &n in lkh_sizes {
        rows.push(lkh_row(n));
        eprintln!("bench_scale: lkh n={n} done");
    }
    for &n in sd_sizes {
        rows.push(sd_row(n));
        eprintln!("bench_scale: sd n={n} done");
    }
    for &n in star_sizes {
        rows.push(star_row(n));
        eprintln!("bench_scale: star n={n} done");
    }

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = render_json(&rows, smoke, workers);
    println!("{json}");
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    if let Err(err) = std::fs::write(out_path, format!("{json}\n")) {
        eprintln!("bench_scale: could not write {out_path}: {err}");
        std::process::exit(2);
    }

    if check {
        // The acceptance gate rides on the largest LKH size in the sweep;
        // the smaller rows get the same ceiling for free.
        let mut failed = false;
        for r in &rows {
            for (what, ms) in [("epoch", r.epoch_ms), ("sync", r.sync_ms)] {
                if ms >= CHECK_CEILING_MS {
                    eprintln!(
                        "bench_scale: CHECK FAILED: {} n={} {what} {ms:.2} ms \
                         at or above the {CHECK_CEILING_MS:.0} ms ceiling",
                        r.backend, r.n
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_scale: all {} rows under the {CHECK_CEILING_MS:.0} ms churn/sync ceiling",
            rows.len()
        );
    }
}

/// LKH: one batched build window to `n`, then a one-evict-one-join
/// window at full size. The probe member joins in the build window and
/// processes every later broadcast like a real receiver.
fn lkh_row(n: usize) -> Row {
    let mut r = rng(&format!("bench-scale-lkh-{n}"));
    let mut ctrl = LkhController::new(n as u32, &mut r);
    let (build_s, (probe, leaver)) = timed(|| {
        let (welcomes, broadcast) = ctrl
            .apply_epoch(n, &[], &mut r)
            .expect("build window within capacity");
        let (_, first) = welcomes.first().cloned().expect("n >= 1 joiners");
        // The leaver must not be the probe: evict the last joiner.
        let leaver = welcomes.last().map(|(uid, _)| *uid).expect("n >= 1");
        let mut probe = ctrl.member_from_welcome(first);
        probe
            .process(&broadcast)
            .expect("probe processes its own build window");
        (probe, leaver)
    });
    let mut probe = probe;
    let in_sync = probe.group_key().ct_eq(Controller::group_key(&ctrl));
    assert!(in_sync, "probe out of sync with the controller");

    let (epoch_s, broadcast) = timed(|| {
        let (_, broadcast) = ctrl
            .apply_epoch(1, &[leaver], &mut r)
            .expect("churn window at full size");
        broadcast
    });
    let stats = LkhController::stats(&broadcast);
    let (sync_s, _) = timed(|| {
        probe
            .process(&broadcast)
            .expect("probe survives the churn window");
    });
    let in_sync = probe.group_key().ct_eq(Controller::group_key(&ctrl));
    assert!(in_sync, "probe out of sync with the controller");
    Row {
        backend: "lkh",
        n,
        build_s,
        epoch_ms: epoch_s * 1e3,
        epoch_items: stats.items,
        epoch_bytes: stats.bytes,
        sync_ms: sync_s * 1e3,
    }
}

/// SD: chunked build windows (each joiner's welcome is an O(log² n)
/// label arena, so welcomes are dropped per chunk to bound memory),
/// then the same one-evict-one-join window. Capacity leaves headroom
/// because SD never reuses a leaf.
fn sd_row(n: usize) -> Row {
    let mut r = rng(&format!("bench-scale-sd-{n}"));
    let mut ctrl = SdController::new(n as u32 + 8, &mut r);
    let chunk = 8_192;
    let (build_s, (probe, leaver)) = timed(|| {
        let mut probe = None;
        let mut leaver = None;
        let mut remaining = n;
        while remaining > 0 {
            let joins = remaining.min(chunk);
            let (welcomes, broadcast) = ctrl
                .apply_epoch(joins, &[], &mut r)
                .expect("build chunk within capacity");
            if probe.is_none() {
                let (_, first) = welcomes.first().cloned().expect("joins >= 1");
                probe = Some(ctrl.member_from_welcome(first));
            }
            leaver = welcomes.last().map(|(uid, _)| *uid).or(leaver);
            if let Some(p) = probe.as_mut() {
                p.process(&broadcast).expect("probe follows each chunk");
            }
            remaining -= joins;
        }
        (probe.expect("n >= 1"), leaver.expect("n >= 1"))
    });
    let mut probe = probe;
    let in_sync = probe.group_key().ct_eq(Controller::group_key(&ctrl));
    assert!(in_sync, "probe out of sync with the controller");

    let (epoch_s, broadcast) = timed(|| {
        let (_, broadcast) = ctrl
            .apply_epoch(1, &[leaver], &mut r)
            .expect("churn window at full size");
        broadcast
    });
    let stats = SdController::stats(&broadcast);
    // SD receivers are stateless: the probe jumps straight to the newest
    // broadcast regardless of how many epochs it slept through.
    let (sync_s, _) = timed(|| {
        probe
            .process(&broadcast)
            .expect("probe survives the churn window");
    });
    let in_sync = probe.group_key().ct_eq(Controller::group_key(&ctrl));
    assert!(in_sync, "probe out of sync with the controller");
    Row {
        backend: "sd",
        n,
        build_s,
        epoch_ms: epoch_s * 1e3,
        epoch_items: stats.items,
        epoch_bytes: stats.bytes,
        sync_ms: sync_s * 1e3,
    }
}

/// Star: the O(n)-per-epoch baseline. Built by sequential admits (each
/// one a full-group rekey), churned the same way — there is no cheaper
/// batched form, which is exactly the point of the comparison.
fn star_row(n: usize) -> Row {
    let mut r = rng(&format!("bench-scale-star-{n}"));
    let mut ctrl = StarController::new(n as u32, &mut r);
    let (build_s, (probe_welcome, probe_join, leaver)) = timed(|| {
        let mut leaver = None;
        for _ in 0..n - 1 {
            let (uid, _, _) = ctrl.admit(&mut r).expect("admit within capacity");
            leaver = Some(uid);
        }
        // The probe is the last joiner, so it is exactly current when
        // the churn window lands (Star members are strict-sequence
        // receivers and cannot skip epochs).
        let (_, welcome, join) = ctrl.admit(&mut r).expect("probe admit");
        (welcome, join, leaver.expect("n >= 2"))
    });
    let mut probe = ctrl.member_from_welcome(probe_welcome);
    probe
        .process(&probe_join)
        .expect("probe processes its own join");
    let in_sync = probe.group_key().ct_eq(Controller::group_key(&ctrl));
    assert!(in_sync, "probe out of sync with the controller");

    // The churn window: evict + admit, two O(n) broadcasts on Star.
    let (epoch_s, (b_evict, b_join)) = timed(|| {
        let b_evict = ctrl.evict(leaver, &mut r).expect("churn evict");
        let (_, _, b_join) = ctrl.admit(&mut r).expect("churn admit");
        (b_evict, b_join)
    });
    let s1 = StarController::stats(&b_evict);
    let s2 = StarController::stats(&b_join);
    let (sync_s, _) = timed(|| {
        probe.process(&b_evict).expect("probe survives the evict");
        probe.process(&b_join).expect("probe follows the join");
    });
    let in_sync = probe.group_key().ct_eq(Controller::group_key(&ctrl));
    assert!(in_sync, "probe out of sync with the controller");
    Row {
        backend: "star",
        n,
        build_s,
        epoch_ms: epoch_s * 1e3,
        epoch_items: s1.items + s2.items,
        epoch_bytes: s1.bytes + s2.bytes,
        sync_ms: sync_s * 1e3,
    }
}

/// Hand-rolled JSON: the offline build has no serde_json.
fn render_json(rows: &[Row], smoke: bool, workers: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"scale\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"check_ceiling_ms\": {CHECK_CEILING_MS:.1},\n"));
    s.push_str(&format!("  \"host\": {},\n", shs_bench::host_json(workers)));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"n\": {}, \"build_s\": {:.4}, \
             \"epoch_ms\": {:.4}, \"epoch_items\": {}, \"epoch_bytes\": {}, \
             \"sync_ms\": {:.4} }}{}\n",
            r.backend, r.n, r.build_s, r.epoch_ms, r.epoch_items, r.epoch_bytes, r.sync_ms, comma
        ));
    }
    s.push_str("  ]\n");
    s.push('}');
    s
}
