//! **Service benchmark** — throughput and latency baseline of the
//! multi-session handshake service (`shs_net::serve` + the
//! `shs_core::service::HandshakeJob` adapter), recorded persistently in
//! `BENCH_service.json` at the repository root (experiment E16 in
//! `EXPERIMENTS.md`).
//!
//! Scenarios (fixed seeds, deterministic fault schedules):
//!
//! * `clean_throughput` — a batch of fault-free 3-member sessions pushed
//!   through the worker pool: sessions/second plus mean/p50/p95
//!   admission-to-terminal latency.
//! * `crash_recovery` — every session's first attempt crash-stops one
//!   slot, forcing liveness analysis, survivor re-formation and a
//!   backoff'd retry: the price of surviving a crashy fleet.
//! * `saturation sweep` — the clean workload replayed across a grid of
//!   worker counts: throughput and p95 latency per point, showing where
//!   the sharded service stops scaling on this host.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin bench_service \
//!     [-- --smoke] [-- --check] [-- --workers N]
//! ```
//!
//! `--smoke` shrinks the batch for CI; `--workers N` overrides the
//! default worker count (`available_parallelism`); `--check` exits
//! non-zero unless every session terminated in its expected class with
//! zero registry leaks and zero illegal lifecycle transitions
//! (deterministic correctness gates — wall-clock numbers are recorded,
//! never gated).

use shs_bench::{group, rng, timed};
use shs_core::service::HandshakeJob;
use shs_core::{HandshakeOptions, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::serve::{Service, ServiceConfig, SessionSpec, TerminalClass};
use std::sync::Arc;
use std::time::Duration;

struct Scenario {
    name: &'static str,
    sessions: u32,
    workers: usize,
    wall_s: f64,
    throughput_sps: f64,
    latency_mean_ms: f64,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    attempts: u64,
    reformations: u64,
    ok: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn run_scenario(name: &'static str, sessions: u32, workers: usize, crashy: bool) -> Scenario {
    let mut r = rng(&format!("bench-service-{name}"));
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);
    let pool = Arc::new(members);
    let svc = Service::start(ServiceConfig {
        workers,
        queue_capacity: sessions as usize + 1,
        default_deadline: Duration::from_secs(300),
        default_max_attempts: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        seed: 0xbe9c4,
    });
    let mut ids = Vec::new();
    let (wall_s, _) = timed(|| {
        for i in 0..sessions {
            let job = HandshakeJob::new(
                Arc::clone(&pool),
                3,
                HandshakeOptions::default(),
                &format!("bench-{name}-{i}"),
            )
            .with_plans(move |ctx| {
                (crashy && ctx.attempt == 0)
                    .then(|| FaultPlan::new(u64::from(i)).with(FaultRule::crash_stop(2, 1)))
            });
            let sub = svc.submit(SessionSpec::new(Box::new(job)));
            assert!(sub.queued(), "bench queue sized to hold the whole batch");
            ids.push(sub.id());
        }
        assert!(
            svc.wait_idle(Duration::from_secs(600)),
            "bench batch settles"
        );
    });

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut ok = true;
    for id in &ids {
        let e = svc.entry(*id).expect("bench entry");
        ok &= e.class == Some(TerminalClass::Accepted);
        if let Some(l) = e.latency() {
            latencies_ms.push(l.as_secs_f64() * 1e3);
        }
    }
    let stats = svc.stats();
    ok &= stats.illegal_transitions == 0 && svc.leaks().is_empty();
    ok &= svc.shutdown(Duration::from_secs(30)).clean();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let mean = latencies_ms.iter().sum::<f64>() / latencies_ms.len().max(1) as f64;
    Scenario {
        name,
        sessions,
        workers,
        wall_s,
        throughput_sps: f64::from(sessions) / wall_s.max(1e-9),
        latency_mean_ms: mean,
        latency_p50_ms: percentile(&latencies_ms, 0.50),
        latency_p95_ms: percentile(&latencies_ms, 0.95),
        attempts: stats.attempts,
        reformations: stats.reformations,
        ok,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let mut workers_override: Option<usize> = None;
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" | "--check" | "--" => {}
            "--workers" => {
                let n = it.next().and_then(|v| v.parse::<usize>().ok());
                match n {
                    Some(n) if n > 0 => workers_override = Some(n),
                    _ => {
                        eprintln!("bench_service: --workers needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            bad => {
                eprintln!(
                    "bench_service: unknown flag `{bad}` (use --smoke / --check / --workers N)"
                );
                std::process::exit(2);
            }
        }
    }

    let batch: u32 = if smoke { 8 } else { 32 };
    // Default to the host's full parallelism; a deployment benchmarking a
    // specific pool size passes --workers.
    let host_threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let single_core = host_threads == 1;
    if single_core {
        eprintln!(
            "bench_service: ============================================================\n\
             bench_service: WARNING: this host exposes a SINGLE hardware thread.\n\
             bench_service: Worker threads time-slice one core, so throughput and\n\
             bench_service: latency below measure serialized execution, NOT service\n\
             bench_service: concurrency. The JSON is tagged \"single_core_host\": true;\n\
             bench_service: do not compare these numbers against multi-core baselines.\n\
             bench_service: For a concurrency-meaningful capacity frontier on this\n\
             bench_service: host, use the virtual-time benchmark: bench_sim (E20).\n\
             bench_service: ============================================================"
        );
    }
    let workers = workers_override.unwrap_or(host_threads);

    let scenarios = vec![
        run_scenario("clean_throughput", batch, workers, false),
        run_scenario("crash_recovery", batch, workers, true),
    ];

    // Saturation sweep: the clean workload across a grid of worker
    // counts (always including the resolved default), so the baseline
    // records where throughput stops scaling on this host.
    let mut grid: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };
    grid.push(workers);
    grid.sort_unstable();
    grid.dedup();
    let sweep_sessions: u32 = if smoke { 6 } else { 24 };
    let sweep: Vec<Scenario> = grid
        .into_iter()
        .map(|w| run_scenario("saturation", sweep_sessions, w, false))
        .collect();

    let json = render_json(&scenarios, &sweep, smoke, workers, single_core);
    println!("{json}");
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    if let Err(err) = std::fs::write(out_path, format!("{json}\n")) {
        eprintln!("bench_service: could not write {out_path}: {err}");
        std::process::exit(2);
    }

    if check {
        let mut failed = false;
        for s in scenarios.iter().chain(&sweep) {
            if !s.ok {
                eprintln!(
                    "bench_service: CHECK FAILED: scenario {} (workers {}) left sessions \
                     unaccepted, leaked, or took illegal transitions",
                    s.name, s.workers
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_service: all {} scenarios + {} sweep points clean (every \
             session accepted, zero leaks, zero illegal transitions)",
            scenarios.len(),
            sweep.len()
        );
    }
}

fn scenario_json(sc: &Scenario, comma: &str) -> String {
    format!(
        "    {{ \"name\": \"{}\", \"sessions\": {}, \"workers\": {}, \
         \"wall_s\": {:.6}, \"throughput_sps\": {:.3}, \
         \"latency_mean_ms\": {:.3}, \"latency_p50_ms\": {:.3}, \
         \"latency_p95_ms\": {:.3}, \"attempts\": {}, \
         \"reformations\": {}, \"ok\": {} }}{}\n",
        sc.name,
        sc.sessions,
        sc.workers,
        sc.wall_s,
        sc.throughput_sps,
        sc.latency_mean_ms,
        sc.latency_p50_ms,
        sc.latency_p95_ms,
        sc.attempts,
        sc.reformations,
        sc.ok,
        comma
    )
}

/// Hand-rolled JSON: the offline build has no serde_json.
fn render_json(
    scenarios: &[Scenario],
    sweep: &[Scenario],
    smoke: bool,
    workers: usize,
    single_core: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"service\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"workers\": {workers},\n"));
    // Single hardware thread: workers were time-sliced, so throughput
    // and latency measure serialized execution, not concurrency.
    s.push_str(&format!("  \"single_core_host\": {single_core},\n"));
    s.push_str(&format!("  \"host\": {},\n", shs_bench::host_json(workers)));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str(&scenario_json(
            sc,
            if i + 1 < scenarios.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"saturation_sweep\": [\n");
    for (i, sc) in sweep.iter().enumerate() {
        s.push_str(&scenario_json(
            sc,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n");
    s.push('}');
    s
}
