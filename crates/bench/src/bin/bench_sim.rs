//! **Simulation benchmark** — the capacity frontier of the handshake
//! service under the deterministic discrete-event simulator (`shs-sim`),
//! recorded persistently in `BENCH_sim.json` at the repository root
//! (experiment E20 in `EXPERIMENTS.md`).
//!
//! One run drives:
//!
//! * a **clean capacity burst**: thousands of concurrent 3-party
//!   sessions through the real handshake engine over simulated media
//!   (2,048 virtual workers, peak virtual concurrency ≥ 2,000), with
//!   virtual-time throughput and latency histograms;
//! * five **adversary campaigns** (partition, slow-loris, phase-timed
//!   crash, Sybil flood, epoch churn), each landing sessions in a
//!   distinct terminal-class histogram.
//!
//! The `deterministic` section of the JSON contains **virtual-time
//! numbers only** and is byte-identical across runs with the same seed
//! (that is the simulator's bit-reproducibility contract; `--check`
//! gates on it). Wall-clock facts live in the `host` wrapper.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin bench_sim [-- --smoke] [-- --check]
//! ```

use shs_bench::timed;
use shs_sim::{run_suite, SuiteConfig, SuiteReport};

const SEED: u64 = 0xE20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    for a in &args {
        if !matches!(a.as_str(), "--smoke" | "--check" | "--") {
            eprintln!("bench_sim: unknown flag `{a}` (use --smoke / --check)");
            std::process::exit(2);
        }
    }

    let cfg = if smoke {
        SuiteConfig::smoke(SEED)
    } else {
        SuiteConfig::full(SEED)
    };
    let (wall_s, report) = timed(|| run_suite(&cfg));

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = render_json(&report, smoke, wall_s, workers);
    println!("{json}");
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    if let Err(err) = std::fs::write(out_path, format!("{json}\n")) {
        eprintln!("bench_sim: could not write {out_path}: {err}");
        std::process::exit(2);
    }

    if check {
        let mut failed = false;
        let cap = &report.capacity;
        let floor = cfg.burst_workers as u64 * 9 / 10;
        if cap.peak_concurrency < floor.min(2_000) {
            eprintln!(
                "bench_sim: CHECK FAILED: peak concurrency {} below floor {}",
                cap.peak_concurrency,
                floor.min(2_000)
            );
            failed = true;
        }
        if cap.classes.accepted != cap.sessions {
            eprintln!(
                "bench_sim: CHECK FAILED: clean burst left {} of {} sessions unaccepted",
                cap.sessions - cap.classes.accepted,
                cap.sessions
            );
            failed = true;
        }
        if cap.throughput_millis_per_sec() == 0 {
            eprintln!("bench_sim: CHECK FAILED: zero virtual throughput");
            failed = true;
        }
        // The adversaries must stay distinguishable by histogram alone.
        let sigs: Vec<(&str, Vec<&str>)> = report
            .scenarios
            .iter()
            .map(|r| (r.name, r.classes.signature()))
            .collect();
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                if sigs[i].1 == sigs[j].1 {
                    eprintln!(
                        "bench_sim: CHECK FAILED: {} and {} share the class histogram {:?}",
                        sigs[i].0, sigs[j].0, sigs[i].1
                    );
                    failed = true;
                }
            }
        }
        // Bit-reproducibility: a second smoke-scale run must render the
        // identical deterministic section, byte for byte.
        let probe = SuiteConfig::smoke(SEED ^ 0xD5);
        let a = run_suite(&probe).deterministic_json();
        let b = run_suite(&probe).deterministic_json();
        if a != b {
            eprintln!("bench_sim: CHECK FAILED: deterministic section differs across runs");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "bench_sim: check clean: peak concurrency {}, {} sessions accepted, {} \
             adversary histograms pairwise distinct, deterministic JSON reproducible",
            cap.peak_concurrency,
            cap.classes.accepted,
            sigs.len()
        );
    }
}

/// Hand-rolled JSON: the offline build has no serde_json. The
/// `deterministic` value comes verbatim from the simulator and must
/// not be decorated with anything host-dependent.
fn render_json(report: &SuiteReport, smoke: bool, wall_s: f64, workers: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"sim\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"host\": {},\n", shs_bench::host_json(workers)));
    s.push_str(&format!("  \"wall_s\": {wall_s:.6},\n"));
    s.push_str(&format!(
        "  \"deterministic\": {}\n",
        report.deterministic_json()
    ));
    s.push('}');
    s
}
