//! **E7 (Figure B)** — the design-space attacks of §3, run live:
//!
//! (a) a handshake built on CGKD alone is detectable by a passive insider;
//! (b) dropping GSIG revocation lets a revoked member with a leaked group
//!     key pass (ACJT instantiation), while verifier-local revocation
//!     (KY instantiation) blocks it;
//! (c) without self-distinction one insider impersonates several members;
//!     scheme 2 detects it.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin fig_attacks
//! ```

use shs_bench::{group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_crypto::hmac;

fn main() {
    attack_a_eavesdropping_insider();
    attack_b_leaked_key();
    attack_c_multirole_insider();
}

fn attack_a_eavesdropping_insider() {
    println!("=== (a) §3 drawback 1: CGKD-only handshakes are detectable ===\n");
    let mut r = rng("fig-e7a");
    let (_, members) = group(SchemeKind::Scheme1, 3, &mut r);

    // Naive design: authenticate by MAC under the group key directly.
    let nonce = b"naive-session";
    let tag = hmac::mac(members[0].group_key().as_bytes(), nonce);
    let insider_detects = hmac::verify(members[2].group_key().as_bytes(), nonce, &tag);
    println!("naive CGKD-only design : passive insider detects handshake = {insider_detects}");

    // GCD: the insider observes a phase-2 tag keyed by k' = k* ⊕ k and
    // cannot verify it without having joined the DGKA.
    let session = [Actor::Member(&members[0]), Actor::Member(&members[1])];
    let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
    let observed = &result
        .traffic
        .records()
        .iter()
        .find(|rec| rec.round == "phase2-mac")
        .unwrap()
        .payload;
    // The insider's best guess: its own group key against the observed
    // bytes (it cannot reconstruct k*).
    let matches = shs_crypto::ct::eq(
        observed,
        &hmac::mac(members[2].group_key().as_bytes(), nonce),
    );
    println!("GCD                     : passive insider detects handshake = {matches}\n");
    assert!(insider_detects && !matches);
}

fn attack_b_leaked_key() {
    println!("=== (b) §3 revocation interplay: leaked CGKD key, revoked member ===\n");
    for (scheme, label) in [
        (SchemeKind::Scheme1Classic, "ACJT (GSIG revocation dropped)"),
        (SchemeKind::Scheme1, "KY + verifier-local revocation "),
    ] {
        let mut r = rng("fig-e7b");
        let (mut ga, mut members) = group(scheme, 3, &mut r);
        let mut victim = members.pop().unwrap();
        let accomplice = members.pop().unwrap();
        let update = ga.remove(victim.id(), &mut r).unwrap();
        members[0].apply_update(&update).unwrap();
        let mut accomplice = accomplice;
        accomplice.apply_update(&update).unwrap();
        victim.adopt_leaked_key(accomplice.leak_group_key(), accomplice.epoch());

        let session = [
            Actor::Member(&members[0]),
            Actor::Member(&accomplice),
            Actor::Member(&victim),
        ];
        let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
        println!(
            "{label}: revoked member fools honest member = {}",
            result.outcomes[0].accepted
        );
    }
    println!("\n-> exactly the paper's point: both revocation components are needed.\n");
}

fn attack_c_multirole_insider() {
    println!("=== (c) self-distinction: insider plays two of three slots ===\n");
    for (scheme, label) in [
        (SchemeKind::Scheme1, "scheme 1 (no self-distinction)"),
        (
            SchemeKind::Scheme2SelfDistinct,
            "scheme 2 (self-distinction) ",
        ),
    ] {
        let mut r = rng("fig-e7c");
        let (_, members) = group(scheme, 2, &mut r);
        let session = [
            Actor::Member(&members[0]),
            Actor::Member(&members[1]),
            Actor::Member(&members[0]),
        ];
        let result = run_handshake(&session, &HandshakeOptions::default(), &mut r).unwrap();
        let honest = &result.outcomes[1];
        println!(
            "{label}: honest member accepts 3 'distinct' peers = {} (duplicates flagged: {:?})",
            honest.accepted, honest.duplicate_slots
        );
    }
    println!(
        "\n-> without self-distinction an honest participant 'may be fooled into\n\
         making a wrong decision when the number of participating parties is a\n\
         factor in the decision-making policy' (§1.1)."
    );
}
