//! **Fault tolerance figure** — sweep per-delivery drop and corruption
//! rates and measure what the hardened runtime delivers: the fraction of
//! sessions that still fully complete, the retransmission cost of the
//! survivors, and how the rest degrade into structured aborts (never
//! hangs). Emits one JSON document on stdout.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin fig_fault_tolerance
//! ```

use shs_bench::{group, rng};
use shs_core::handshake::run_handshake_with_net;
use shs_core::{Actor, HandshakeOptions, SchemeKind};
use shs_net::fault::{FaultPlan, FaultRule};
use shs_net::sync::BroadcastNet;
use shs_net::DeliveryPolicy;

const TRIALS: u32 = 25;
const SLOTS: usize = 3;

struct Point {
    fault: &'static str,
    rate: f64,
    completed: u32,
    aborted_slots: u32,
    total_retries: u32,
    total_exchanges: u32,
    budget_exhausted: u32,
}

fn main() {
    let mut r = rng("fig-fault-tolerance");
    let (_, members) = group(SchemeKind::Scheme1, SLOTS, &mut r);
    let acts: Vec<Actor<'_>> = members.iter().map(Actor::Member).collect();
    let opts = HandshakeOptions::default();

    let rates = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5];
    let mut points = Vec::new();
    for fault in ["drop", "corrupt"] {
        for &rate in &rates {
            let mut point = Point {
                fault,
                rate,
                completed: 0,
                aborted_slots: 0,
                total_retries: 0,
                total_exchanges: 0,
                budget_exhausted: 0,
            };
            for trial in 0..TRIALS {
                let seed = 1000 * (rate * 100.0) as u64 + trial as u64;
                let rule = match fault {
                    "drop" => FaultRule::drop().with_probability(rate),
                    _ => FaultRule::corrupt(2).with_probability(rate),
                };
                let mut net = BroadcastNet::new(SLOTS, DeliveryPolicy::Synchronous);
                net.set_fault_plan(FaultPlan::new(seed).with(rule));
                let result = run_handshake_with_net(&acts, &opts, &mut net, &mut r)
                    .expect("hardened runtime always returns a structured result");
                if result.outcomes.iter().all(|o| o.accepted) {
                    point.completed += 1;
                }
                point.aborted_slots +=
                    result.outcomes.iter().filter(|o| o.abort.is_some()).count() as u32;
                point.total_retries += result.stats.retries;
                point.total_exchanges += result.stats.exchanges;
                if result.stats.budget_exhausted {
                    point.budget_exhausted += 1;
                }
            }
            points.push(point);
        }
    }

    // Hand-rolled JSON: the offline build has no serde_json.
    println!("{{");
    println!("  \"figure\": \"fault_tolerance\",");
    println!("  \"slots\": {SLOTS},");
    println!("  \"trials_per_point\": {TRIALS},");
    println!(
        "  \"budget\": {{ \"max_exchanges\": {}, \"retries_per_round\": {} }},",
        opts.budget.max_exchanges, opts.budget.retries_per_round
    );
    println!("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        println!(
            "    {{ \"fault\": \"{}\", \"rate\": {:.2}, \"completion_rate\": {:.3}, \
             \"mean_retries\": {:.2}, \"mean_exchanges\": {:.2}, \
             \"aborted_slots\": {}, \"budget_exhausted\": {} }}{}",
            p.fault,
            p.rate,
            f64::from(p.completed) / f64::from(TRIALS),
            f64::from(p.total_retries) / f64::from(TRIALS),
            f64::from(p.total_exchanges) / f64::from(TRIALS),
            p.aborted_slots,
            p.budget_exhausted,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}
