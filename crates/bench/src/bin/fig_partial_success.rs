//! **E6 (Figure A)** — partially-successful handshakes (§7 extension):
//! sweep over compositions of a 5-party session and report, for each
//! party, the sub-group `Δ` it discovered and whether its sub-handshake
//! completed. Includes the paper's own worked example (2 of group A + 3
//! of group B).
//!
//! ```sh
//! cargo run --release -p shs-bench --bin fig_partial_success
//! ```

use shs_bench::{group, rng};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

fn main() {
    let mut r = rng("fig-e6");
    let (_, a) = group(SchemeKind::Scheme1, 5, &mut r);
    let (_, b) = group(SchemeKind::Scheme1, 5, &mut r);
    let (_, c) = group(SchemeKind::Scheme1, 5, &mut r);

    // Compositions over 5 slots: which group sits at each slot.
    let compositions: Vec<(&str, Vec<usize>)> = vec![
        ("AAAAA (full success)", vec![0, 0, 0, 0, 0]),
        ("AABBB (paper's example)", vec![0, 0, 1, 1, 1]),
        ("ABABA", vec![0, 1, 0, 1, 0]),
        ("AABBC", vec![0, 0, 1, 1, 2]),
        ("ABCAB", vec![0, 1, 2, 0, 1]),
        ("ABCBC (singleton A)", vec![0, 1, 2, 1, 2]),
    ];
    let pools = [&a, &b, &c];

    for (label, comp) in &compositions {
        // Use distinct members of each pool per slot.
        let mut used = [0usize; 3];
        let actors: Vec<Actor<'_>> = comp
            .iter()
            .map(|&g| {
                let member = &pools[g][used[g]];
                used[g] += 1;
                Actor::Member(member)
            })
            .collect();
        let result = run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();
        println!("\ncomposition {label}:");
        for o in &result.outcomes {
            println!(
                "  slot {}: group {}, Δ = {:?} (|Δ| = {}), {}",
                o.slot,
                ["A", "B", "C"][comp[o.slot]],
                o.same_group_slots,
                o.same_group_slots.len(),
                if o.accepted {
                    "FULL handshake"
                } else if o.partial_accepted() {
                    "partial handshake completed"
                } else {
                    "no handshake (singleton)"
                }
            );
        }
    }
    println!(
        "\nReading the figure: every sub-group of size ≥ 2 completes its own\n\
         handshake and learns exactly its size — 'partially-successful secret\n\
         handshakes ... without incurring any extra complexity' (§7). Singleton\n\
         parties complete nothing and learn nothing."
    );
}
