//! **E4 (Table 4)** — CGKD building-block comparison (§3/§5): tree-based
//! rekeying (LKH, Wong–Gouda–Lam) costs `O(log n)` messages per
//! membership change vs the flat star scheme's `O(n)`; the stateless
//! Subset-Difference method trades member storage (`O(log² n)` labels)
//! for covers of size `O(r)` in the number of revocations.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_cgkd
//! ```

use shs_bench::{header, rng, row};
use shs_cgkd::{lkh::LkhController, sd::SdController, star::StarController, Controller};

fn main() {
    let sweep = [16u32, 64, 256, 1024, 4096];
    let mut r = rng("table-e4");

    println!("=== Rekey broadcast size per LEAVE at group size n ===\n");
    header(&[
        "n",
        "lkh items",
        "lkh bytes",
        "star items",
        "star bytes",
        "sd items",
        "sd bytes",
        "sd labels",
    ]);
    for &n in &sweep {
        // Build each controller with n members, then evict one.
        let mut lkh = LkhController::new(n, &mut r);
        let mut star = StarController::new(n, &mut r);
        let mut sd = SdController::new(n, &mut r);
        let mut sd_label_count = 0usize;
        for i in 0..n {
            lkh.admit(&mut r).unwrap();
            star.admit(&mut r).unwrap();
            let (_, w, _) = sd.admit(&mut r).unwrap();
            if i == n / 2 {
                sd_label_count = w.labels.len();
            }
        }
        let victim = lkh.members()[(n / 2) as usize];
        let lkh_b = lkh.evict(victim, &mut r).unwrap();
        let victim = star.members()[(n / 2) as usize];
        let star_b = star.evict(victim, &mut r).unwrap();
        let victim = sd.members()[(n / 2) as usize];
        let sd_b = sd.evict(victim, &mut r).unwrap();

        let l = LkhController::stats(&lkh_b);
        let s = StarController::stats(&star_b);
        let d = SdController::stats(&sd_b);
        row(&[
            format!("{n}"),
            format!("{}", l.items),
            format!("{}", l.bytes),
            format!("{}", s.items),
            format!("{}", s.bytes),
            format!("{}", d.items),
            format!("{}", d.bytes),
            format!("{sd_label_count}"),
        ]);
    }

    println!("\n=== SD cover size vs number of revocations (n = 1024) ===\n");
    header(&["revoked r", "cover size", "bound 2r-1"]);
    let mut sd = SdController::new(1024, &mut r);
    let mut ids = Vec::new();
    for _ in 0..1024 {
        let (id, _, _) = sd.admit(&mut r).unwrap();
        ids.push(id);
    }
    let mut alive = ids.clone();
    let mut revoked = 0usize;
    for target in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        while revoked < target {
            // Scatter revocations pseudo-randomly across the tree.
            let idx = (revoked * 37 + 11) % alive.len();
            let victim = alive.swap_remove(idx);
            sd.evict(victim, &mut r).unwrap();
            revoked += 1;
        }
        row(&[
            format!("{revoked}"),
            format!("{}", sd.cover_size()),
            format!("{}", 2 * revoked - 1),
        ]);
    }
    println!(
        "\nReading the tables: LKH item counts track 2·log2(n); star grows\n\
         linearly; SD broadcasts depend only on r (bounded by 2r-1), at the\n\
         price of O(log² n) labels stored per member."
    );
}
