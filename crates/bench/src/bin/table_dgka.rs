//! **E3 (Table 3)** — DGKA building-block comparison (§6 / Appendix D):
//! Burmester–Desmedt needs two broadcast rounds and a constant number of
//! *full-size* exponentiations per party, while GDH.2 chains `m-1` unicast
//! messages with work growing along the chain. The paper singles out BD
//! (and its Katz–Yung variant) as "particularly efficient".
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_dgka
//! ```

use shs_bench::{header, mean, rng, row, timed};
use shs_bigint::counters;
use shs_dgka::{bd, gdh};
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};

fn main() {
    let group = SchnorrGroup::system_wide(SchnorrPreset::Test);
    let sweep = [2usize, 3, 4, 6, 8, 12, 16, 24, 32];
    let mut r = rng("table-e3");

    println!("=== Burmester-Desmedt vs GDH.2 (Steiner-Tsudik-Waidner) ===\n");
    header(&[
        "m",
        "bd exp/pty",
        "bd rounds",
        "bd wall s",
        "gdh exp/pty",
        "gdh max/pty",
        "gdh rounds",
        "gdh wall s",
    ]);
    for &m in &sweep {
        // BD: measure total exps across all parties, divide by m.
        counters::reset();
        let (bd_secs, outputs) = timed(|| bd::run(group, m, &mut r).unwrap());
        let bd_exps = counters::snapshot().modexp;
        assert!(outputs.iter().all(|o| o.key == outputs[0].key));

        // GDH: per-party costs differ; report mean and max.
        let (gdh_secs, gdh_costs) = timed(|| gdh_per_party_costs(group, m, &mut r));
        row(&[
            format!("{m}"),
            format!("{:.1}", bd_exps as f64 / m as f64),
            "2".to_string(),
            format!("{bd_secs:.3}"),
            format!("{:.1}", mean(&gdh_costs)),
            format!("{}", gdh_costs.iter().max().unwrap()),
            format!("{m}"),
            format!("{gdh_secs:.3}"),
        ]);
    }
    println!(
        "\nReading the table: BD's exp/party stays ~constant in protocol work\n\
         (the residual growth is the m membership checks on received elements);\n\
         GDH's *maximum* per-party cost grows linearly with position, and it\n\
         needs m rounds of latency vs BD's 2 — the trade-off behind the paper's\n\
         choice of BD-style DGKA for the instantiations."
    );
}

fn gdh_per_party_costs(
    group: &'static shs_groups::schnorr::SchnorrGroup,
    m: usize,
    r: &mut impl rand::RngCore,
) -> Vec<u64> {
    let mut costs = vec![0u64; m];
    let parties: Vec<gdh::Party<'_>> = (0..m)
        .map(|i| gdh::Party::new(group, m, i, r).unwrap())
        .collect();
    let (c, mut upflow) = counters::measure(|| parties[0].initiate().unwrap());
    costs[0] += c.modexp;
    let mut broadcast = None;
    for (i, p) in parties.iter().enumerate().skip(1) {
        let (c, step) = counters::measure(|| p.advance(&upflow).unwrap());
        costs[i] += c.modexp;
        match step {
            gdh::Step::Upflow(next) => upflow = next,
            gdh::Step::Broadcast(b) => {
                broadcast = Some(b);
                break;
            }
        }
    }
    let broadcast = broadcast.expect("last party broadcasts");
    let mut keys = Vec::new();
    for (i, p) in parties.iter().enumerate() {
        let (c, out) = counters::measure(|| p.finish(&broadcast).unwrap());
        costs[i] += c.modexp;
        keys.push(out.key);
    }
    assert!(keys.iter().all(|k| *k == keys[0]));
    costs
}
