//! **E11 / E12 / E14 (ablation)** — the "flexible framework" claims of
//! §1.1: every slot of the compiler is swappable without changing
//! handshake semantics.
//!
//! * E11: full handshakes with each registered Phase I DGKA — same
//!   outcomes, different round/exponentiation profile.
//! * E12: a group authority on each registered CGKD backend — same
//!   lifecycle semantics, different update discipline (SD members may
//!   skip epochs; LKH and Star receivers are stateful).
//! * E14: the full GSIG × CGKD × DGKA instantiation matrix, every cell
//!   built through `shs_core::factory` and run end to end.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_flexibility
//! ```

use shs_bench::{group, header, mean, rng, row, timed};
use shs_core::config::{CgkdChoice, DgkaChoice};
use shs_core::fixtures::group_with_config;
use shs_core::handshake::run_handshake;
use shs_core::{Actor, GroupConfig, HandshakeOptions, SchemeKind};

fn main() {
    dgka_ablation();
    cgkd_ablation();
    instantiation_matrix();
}

fn dgka_ablation() {
    println!("=== E11: handshake with swapped DGKA slot ===\n");
    header(&[
        "dgka",
        "m",
        "accepted",
        "exp/party",
        "dgka rounds",
        "bytes/party",
        "wall s",
    ]);
    let mut r = rng("table-e11");
    let (_, members) = group(SchemeKind::Scheme1, 8, &mut r);
    for choice in DgkaChoice::ALL {
        for m in [2usize, 4, 8] {
            let actors: Vec<Actor<'_>> = members[..m].iter().map(Actor::Member).collect();
            let opts = HandshakeOptions {
                dgka: choice,
                ..Default::default()
            };
            let (secs, result) = timed(|| run_handshake(&actors, &opts, &mut r).unwrap());
            let ok = result.outcomes.iter().all(|o| o.accepted);
            let exps: Vec<u64> = result.costs.iter().map(|c| c.modexp).collect();
            let bytes: Vec<u64> = result.costs.iter().map(|c| c.bytes_sent).collect();
            let rounds = result
                .traffic
                .records()
                .iter()
                .filter(|rec| rec.round.starts_with("dgka"))
                .map(|rec| rec.round.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            row(&[
                format!("{choice:?}"),
                format!("{m}"),
                format!("{ok}"),
                format!("{:.1}", mean(&exps)),
                format!("{rounds}"),
                format!("{:.0}", mean(&bytes)),
                format!("{secs:.3}"),
            ]);
        }
    }
    println!(
        "\nReading the table: identical outcomes under every protocol; GDH trades\n\
         BD's 2 rounds for m rounds (plus cover traffic), and the Katz–Yung\n\
         compiler buys authenticated Phase I for two extra rounds and the\n\
         signature exponentiations — the compiler claim of §6.\n"
    );
}

fn cgkd_ablation() {
    println!("=== E12: group authority with swapped CGKD backend ===\n");
    header(&[
        "backend",
        "members",
        "admit s",
        "remove s",
        "hs ok",
        "stateless?",
    ]);
    let mut r = rng("table-e12");
    for backend in CgkdChoice::ALL {
        let n = 8usize;
        let config = GroupConfig::test_with_cgkd(SchemeKind::Scheme1, backend);
        let ((mut ga, mut members), admit_s) = {
            let (t, g) = timed(|| group_with_config(config, n, &mut r).unwrap());
            (g, t)
        };
        // Remove one member.
        let victim = members.pop().unwrap();
        let (remove_s, update) = timed(|| ga.remove(victim.id(), &mut r).unwrap());
        for m in members.iter_mut() {
            m.apply_update(&update).unwrap();
        }
        // Handshake still works.
        let actors: Vec<Actor<'_>> = members[..4].iter().map(Actor::Member).collect();
        let result = run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();
        let ok = result.outcomes.iter().all(|o| o.accepted);
        // Statelessness probe: admit twice, deliver only the second update
        // to a sleeper.
        let sleeper_ok = {
            let (_x, _u1) = ga.admit(&mut r).unwrap();
            let (_y, u2) = ga.admit(&mut r).unwrap();
            members[0].apply_update(&u2).is_ok()
        };
        row(&[
            format!("{backend:?}"),
            format!("{n}"),
            format!("{admit_s:.3}"),
            format!("{remove_s:.4}"),
            format!("{ok}"),
            format!("{sleeper_ok}"),
        ]);
    }
    println!(
        "\nReading the table: every backend drives the same framework; only SD\n\
         lets a member skip updates (stateless receivers), while LKH and Star\n\
         require in-order processing — the [33] vs [26] trade-off of §5.\n"
    );
}

fn instantiation_matrix() {
    println!("=== E14: full GSIG x CGKD x DGKA instantiation matrix ===\n");
    header(&["gsig", "cgkd", "dgka", "accepted", "key agree", "wall s"]);
    let mut r = rng("table-e14");
    let m = 3usize;
    for scheme in SchemeKind::ALL {
        for cgkd in CgkdChoice::ALL {
            let config = GroupConfig::test_with_cgkd(scheme, cgkd);
            let (_, members) = group_with_config(config, m, &mut r).unwrap();
            let actors: Vec<Actor<'_>> = members.iter().map(Actor::Member).collect();
            for dgka in DgkaChoice::ALL {
                let opts = HandshakeOptions::with_dgka(dgka);
                let (secs, result) = timed(|| run_handshake(&actors, &opts, &mut r).unwrap());
                let ok = result.outcomes.iter().all(|o| o.accepted);
                let agree = match &result.outcomes[0].session_key {
                    Some(k0) => result
                        .outcomes
                        .iter()
                        .all(|o| o.session_key.as_ref().is_some_and(|k| k.ct_eq(k0))),
                    None => false,
                };
                row(&[
                    format!("{scheme:?}"),
                    format!("{cgkd:?}"),
                    format!("{dgka:?}"),
                    format!("{ok}"),
                    format!("{agree}"),
                    format!("{secs:.3}"),
                ]);
            }
        }
    }
    println!(
        "\nReading the table: all 27 cells accept with an agreed session key —\n\
         the three axes compose freely, which is the framework claim in full."
    );
}
