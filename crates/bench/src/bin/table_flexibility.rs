//! **E11 / E12 (ablation)** — the "flexible framework" claims of §1.1:
//! the DGKA and CGKD slots of the compiler are swappable without changing
//! handshake semantics.
//!
//! * E11: full handshakes with Burmester–Desmedt vs GDH.2 Phase I — same
//!   outcomes, different round/exponentiation profile.
//! * E12: a group authority on the LKH backend vs the stateless
//!   Subset-Difference backend — same lifecycle semantics, different
//!   update discipline (SD members may skip epochs).
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_flexibility
//! ```

use shs_bench::{group, header, mean, rng, row, timed};
use shs_core::config::DgkaChoice;
use shs_core::handshake::run_handshake;
use shs_core::{Actor, GroupAuthority, GroupConfig, HandshakeOptions, Member, SchemeKind};

fn main() {
    dgka_ablation();
    cgkd_ablation();
}

fn dgka_ablation() {
    println!("=== E11: handshake with swapped DGKA slot ===\n");
    header(&[
        "dgka",
        "m",
        "accepted",
        "exp/party",
        "dgka rounds",
        "bytes/party",
        "wall s",
    ]);
    let mut r = rng("table-e11");
    let (_, members) = group(SchemeKind::Scheme1, 8, &mut r);
    for (choice, label) in [
        (DgkaChoice::BurmesterDesmedt, "bd"),
        (DgkaChoice::Gdh2, "gdh2"),
    ] {
        for m in [2usize, 4, 8] {
            let actors: Vec<Actor<'_>> = members[..m].iter().map(Actor::Member).collect();
            let opts = HandshakeOptions {
                dgka: choice,
                ..Default::default()
            };
            let (secs, result) = timed(|| run_handshake(&actors, &opts, &mut r).unwrap());
            let ok = result.outcomes.iter().all(|o| o.accepted);
            let exps: Vec<u64> = result.costs.iter().map(|c| c.modexp).collect();
            let bytes: Vec<u64> = result.costs.iter().map(|c| c.bytes_sent).collect();
            let rounds = result
                .traffic
                .records()
                .iter()
                .filter(|rec| rec.round.starts_with("dgka"))
                .map(|rec| rec.round.clone())
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            row(&[
                label.to_string(),
                format!("{m}"),
                format!("{ok}"),
                format!("{:.1}", mean(&exps)),
                format!("{rounds}"),
                format!("{:.0}", mean(&bytes)),
                format!("{secs:.3}"),
            ]);
        }
    }
    println!(
        "\nReading the table: identical outcomes under both protocols; GDH trades\n\
         BD's 2 rounds for m rounds (plus cover traffic) — the compiler claim of §6.\n"
    );
}

fn build_sd_group(n: usize, r: &mut impl rand::RngCore) -> (GroupAuthority, Vec<Member>) {
    let (rsa, secret) = shs_gsig::fixtures::test_rsa_setting().clone();
    let mut ga =
        GroupAuthority::create_with_rsa(GroupConfig::test_sd(SchemeKind::Scheme1), rsa, secret, r);
    let mut members: Vec<Member> = Vec::new();
    for _ in 0..n {
        let (joiner, update) = ga.admit(r).unwrap();
        for m in members.iter_mut() {
            m.apply_update(&update).unwrap();
        }
        members.push(joiner);
    }
    (ga, members)
}

fn cgkd_ablation() {
    println!("=== E12: group authority with swapped CGKD backend ===\n");
    header(&[
        "backend",
        "members",
        "admit s",
        "remove s",
        "hs ok",
        "stateless?",
    ]);
    let mut r = rng("table-e12");
    for backend in ["lkh", "sd"] {
        let n = 8usize;
        let ((mut ga, mut members), admit_s) = if backend == "lkh" {
            let (t, g) = timed(|| group(SchemeKind::Scheme1, n, &mut r));
            (g, t)
        } else {
            let (t, g) = timed(|| build_sd_group(n, &mut r));
            (g, t)
        };
        // Remove one member.
        let victim = members.pop().unwrap();
        let (remove_s, update) = timed(|| ga.remove(victim.id(), &mut r).unwrap());
        for m in members.iter_mut() {
            m.apply_update(&update).unwrap();
        }
        // Handshake still works.
        let actors: Vec<Actor<'_>> = members[..4].iter().map(Actor::Member).collect();
        let result = run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();
        let ok = result.outcomes.iter().all(|o| o.accepted);
        // Statelessness probe: admit twice, deliver only the second update
        // to a sleeper.
        let sleeper_ok = {
            let (_x, _u1) = ga.admit(&mut r).unwrap();
            let (_y, u2) = ga.admit(&mut r).unwrap();
            members[0].apply_update(&u2).is_ok()
        };
        row(&[
            backend.to_string(),
            format!("{n}"),
            format!("{admit_s:.3}"),
            format!("{remove_s:.4}"),
            format!("{ok}"),
            format!("{sleeper_ok}"),
        ]);
    }
    println!(
        "\nReading the table: both backends drive the same framework; only SD\n\
         lets a member skip updates (stateless receivers), while LKH requires\n\
         in-order processing — the [33] vs [26] trade-off of §5."
    );
}
