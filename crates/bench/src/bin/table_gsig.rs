//! **E5 (Table 5)** — GSIG building-block costs (§4): sign / verify /
//! open wall time and exponentiation counts for the three instantiation
//! choices, across parameter presets. Group-signature work dominates a
//! handshake's Phase III, so this table explains the handshake-scaling
//! results of E1/E2.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_gsig [--paper]
//! ```
//!
//! `--paper` additionally exercises the 2048-bit `Paper` preset (slow:
//! fresh safe-prime generation).

use shs_bench::{header, rng, row, timed};
use shs_bigint::counters;
use shs_gsig::params::{GsigParams, GsigPreset};
use shs_gsig::{acjt, fixtures, ky};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    println!("=== Group-signature costs (per operation) ===\n");
    header(&[
        "scheme",
        "preset",
        "sign s",
        "sign exp",
        "verify s",
        "verify exp",
        "open s",
        "sig bytes",
    ]);

    bench_ky("KY", GsigPreset::Test, ky::SignBasis::Random);
    bench_ky(
        "KY+selfdist",
        GsigPreset::Test,
        ky::SignBasis::Common(b"session"),
    );
    bench_acjt("ACJT", GsigPreset::Test);
    if paper {
        bench_ky("KY", GsigPreset::Paper, ky::SignBasis::Random);
        bench_acjt("ACJT", GsigPreset::Paper);
    } else {
        bench_ky("KY", GsigPreset::Small, ky::SignBasis::Random);
    }
    println!(
        "\nReading the table: one KY signature costs ~12 exponentiations to\n\
         produce and ~13 to verify; ACJT saves the four tag exponentiations\n\
         (no T4..T7). Phase III of an m-party handshake verifies m-1\n\
         signatures, which is where the O(m) of E1/E2 comes from."
    );
}

fn setting(preset: GsigPreset) -> (shs_groups::rsa::RsaGroup, shs_groups::rsa::RsaSecret) {
    match preset {
        GsigPreset::Test => fixtures::test_rsa_setting().clone(),
        _ => {
            let params = GsigParams::preset(preset);
            shs_groups::rsa::RsaGroup::generate_deterministic(
                params.modulus_bits,
                format!("bench-rsa-{preset:?}").as_bytes(),
            )
        }
    }
}

fn bench_ky(label: &str, preset: GsigPreset, basis: ky::SignBasis<'_>) {
    let mut r = rng("table-e5-ky");
    let (rsa, secret) = setting(preset);
    let params = GsigParams::preset(preset);
    let mut gm = ky::GroupManager::setup_with_rsa(params, rsa, secret, &mut r);
    let (js, req) = ky::start_join(gm.public_key(), &mut r);
    let resp = gm.admit(&req, &mut r).unwrap();
    let key = ky::finish_join(gm.public_key(), js, &resp).unwrap();
    let pk = gm.public_key();

    counters::reset();
    let (sign_s, sig) = timed(|| ky::sign(pk, &key, b"bench message", basis, &mut r));
    let sign_exp = counters::snapshot().modexp;
    let expected = match basis {
        ky::SignBasis::Common(b) => Some(pk.common_t7(b)),
        ky::SignBasis::Random => None,
    };
    counters::reset();
    let (verify_s, _) =
        timed(|| ky::verify(pk, b"bench message", &sig, expected.as_ref()).unwrap());
    let verify_exp = counters::snapshot().modexp;
    let (open_s, _) = timed(|| gm.open(b"bench message", &sig).unwrap());
    let sig_bytes = 7 * (params.modulus_bits as usize / 8) + 32; // tags + challenge (responses extra)
    row(&[
        label.to_string(),
        format!("{preset:?}"),
        format!("{sign_s:.4}"),
        format!("{sign_exp}"),
        format!("{verify_s:.4}"),
        format!("{verify_exp}"),
        format!("{open_s:.4}"),
        format!("~{sig_bytes}+resp"),
    ]);
}

fn bench_acjt(label: &str, preset: GsigPreset) {
    let mut r = rng("table-e5-acjt");
    let (rsa, secret) = setting(preset);
    let params = GsigParams::preset(preset);
    let mut gm = acjt::GroupManager::setup_with_rsa(params, rsa, secret, &mut r);
    let (js, req) = acjt::start_join(gm.public_key(), &mut r);
    let resp = gm.admit(&req, &mut r).unwrap();
    let key = acjt::finish_join(gm.public_key(), js, &resp).unwrap();
    let pk = gm.public_key();

    counters::reset();
    let (sign_s, sig) = timed(|| acjt::sign(pk, &key, b"bench message", &mut r));
    let sign_exp = counters::snapshot().modexp;
    counters::reset();
    let (verify_s, _) = timed(|| acjt::verify(pk, b"bench message", &sig).unwrap());
    let verify_exp = counters::snapshot().modexp;
    let (open_s, _) = timed(|| gm.open(b"bench message", &sig).unwrap());
    let sig_bytes = 3 * (params.modulus_bits as usize / 8) + 32;
    row(&[
        label.to_string(),
        format!("{preset:?}"),
        format!("{sign_s:.4}"),
        format!("{sign_exp}"),
        format!("{verify_s:.4}"),
        format!("{verify_exp}"),
        format!("{open_s:.4}"),
        format!("~{sig_bytes}+resp"),
    ]);
}
