//! **E1 / E2 (Table 1, Table 2)** — the paper's headline efficiency
//! claims (§8.1, §8.2): in an `m`-party handshake *each party computes
//! only `O(m)` modular exponentiations and sends/receives `O(m)`
//! messages*.
//!
//! This binary runs full handshakes for a sweep of `m` under both
//! instantiations, counting per-party modular exponentiations exactly
//! (via the `shs-bigint` instrumentation) together with per-party message
//! and byte counts, and prints the per-`m` ratio to expose linearity.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_handshake_complexity
//! ```

use shs_bench::{group, header, mean, rng, row, timed};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

fn main() {
    let sweep = [2usize, 3, 4, 6, 8, 12, 16];
    for (scheme, label) in [
        (SchemeKind::Scheme1, "Scheme 1 (KY, no self-distinction)"),
        (
            SchemeKind::Scheme2SelfDistinct,
            "Scheme 2 (self-distinction)",
        ),
    ] {
        println!("\n=== {label} — per-party handshake cost vs m ===");
        println!("paper claim: O(m) modular exponentiations and O(m) messages per party\n");
        header(&[
            "m",
            "exp/party",
            "exp/m",
            "msgs sent",
            "msgs rcvd",
            "bytes sent",
            "wall s",
        ]);
        let mut r = rng("table-e1");
        let (_, members) = group(scheme, *sweep.last().unwrap(), &mut r);
        for &m in &sweep {
            let actors: Vec<Actor<'_>> = members[..m].iter().map(Actor::Member).collect();
            let (secs, result) =
                timed(|| run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap());
            assert!(result.outcomes.iter().all(|o| o.accepted), "m={m}");
            let exps: Vec<u64> = result.costs.iter().map(|c| c.modexp).collect();
            let bytes: Vec<u64> = result.costs.iter().map(|c| c.bytes_sent).collect();
            let per_party = mean(&exps);
            row(&[
                format!("{m}"),
                format!("{per_party:.1}"),
                format!("{:.2}", per_party / m as f64),
                format!("{}", result.costs[0].messages_sent),
                // Broadcast medium: each party receives every other
                // party's message in each of the 4 rounds.
                format!("{}", 4 * (m - 1)),
                format!("{:.0}", mean(&bytes)),
                format!("{secs:.3}"),
            ]);
        }
    }
    println!(
        "\nReading the table: `exp/m` stabilizing to a constant as m grows is the\n\
         O(m) claim; `msgs sent` is constant (4 broadcasts) and `msgs rcvd` is\n\
         4(m-1) = O(m), matching §8.1/§8.2."
    );
}
