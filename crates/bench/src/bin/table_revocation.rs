//! **E9 (ablation)** — revocation mechanisms compared, reproducing the
//! cost intuition behind §3's design discussion ("revocation in \[GSIG\] is
//! quite expensive, usually based on dynamic accumulators"):
//!
//! * **VLR** (what this framework ships): verifying a signature costs one
//!   extra exponentiation per CRL token.
//! * **CL dynamic accumulator**: each membership change forces every
//!   member to update its witness (an exponentiation or a Bézout
//!   combination).
//! * **CGKD-only**: cheap (the LKH rekey already paid for) but, as E7b
//!   shows, insufficient on its own.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_revocation
//! ```

use shs_bench::{header, rng, row, timed};
use shs_bigint::Ubig;
use shs_gsig::accumulator::{Accumulator, Witness};
use shs_gsig::fixtures;
use shs_gsig::ky::{self, SignBasis};
use shs_gsig::params::{GsigParams, GsigPreset};

fn main() {
    vlr_check_cost();
    accumulator_costs();
}

fn vlr_check_cost() {
    println!("=== VLR: signature verification time vs CRL size ===\n");
    header(&["crl size", "verify s", "overhead vs empty"]);
    let mut r = rng("table-e9-vlr");
    let (mut gm, keys) = fixtures::group_with_members_mut(1);
    let pk = ky::GroupPublicKey::from_params(gm.public_key().to_params());
    let sig = ky::sign(&pk, &keys[0], b"m", SignBasis::Random, &mut r);

    // Manufacture CRL tokens for fictitious members (structurally
    // identical to real ones).
    let params = GsigParams::preset(GsigPreset::Test);
    let mut tokens = Vec::new();
    let mut base = None;
    for crl_size in [0usize, 4, 16, 64, 256] {
        while tokens.len() < crl_size {
            tokens.push(ky::RevocationToken {
                id: ky::MemberId(1000 + tokens.len() as u64),
                x: params.sample_lambda(&mut r),
            });
        }
        let (secs, res) = timed(|| ky::verify_with_tokens(&pk, b"m", &sig, None, &tokens));
        res.unwrap();
        let base_secs = *base.get_or_insert(secs);
        row(&[
            format!("{crl_size}"),
            format!("{secs:.4}"),
            format!("{:.1}x", secs / base_secs),
        ]);
    }
    let _ = &mut gm;
    println!();
}

fn accumulator_costs() {
    println!("=== CL dynamic accumulator: witness maintenance under churn ===\n");
    header(&["members", "add: wit-upd s", "remove: wit-upd s", "verify s"]);
    let (group, secret) = fixtures::test_rsa_setting();
    let mut r = rng("table-e9-acc");
    for n in [8usize, 32, 128] {
        let mut acc = Accumulator::new(group, &mut r);
        // Distinct small primes standing in for the certificate primes
        // e_i (same algebra, cheaper to generate).
        let mut primes: Vec<Ubig> = Vec::with_capacity(n);
        let mut candidate = 65537u64;
        while primes.len() < n {
            let c = Ubig::from_u64(candidate);
            if shs_bigint::prime::is_prime(&c, &mut r) {
                primes.push(c);
            }
            candidate += 2;
        }
        let mut witnesses: Vec<Witness> = Vec::new();
        let mut add_update_time = 0.0;
        for p in &primes {
            let (w, ev) = acc.add(group, p).unwrap();
            let (secs, _) = timed(|| {
                for old in witnesses.iter_mut() {
                    old.apply(group, &ev).unwrap();
                }
            });
            add_update_time = secs; // time of the LAST (largest) update wave
            witnesses.push(w);
        }
        // Remove one member: everyone else recomputes via Bézout.
        let victim = primes[n / 2].clone();
        let ev = acc.remove(group, secret, &victim).unwrap();
        let (remove_secs, _) = timed(|| {
            for (i, w) in witnesses.iter_mut().enumerate() {
                if i != n / 2 {
                    w.apply(group, &ev).unwrap();
                }
            }
        });
        let (verify_secs, ok) = timed(|| acc.verify(group, &witnesses[0]));
        assert!(ok);
        row(&[
            format!("{n}"),
            format!("{add_update_time:.4}"),
            format!("{remove_secs:.4}"),
            format!("{verify_secs:.5}"),
        ]);
    }
    println!(
        "\nReading the tables: VLR adds one cheap exponentiation per revoked\n\
         member at verification time and costs members NOTHING on updates;\n\
         the accumulator makes every member do work on every membership\n\
         change (the 'quite expensive' option of §3). GCD therefore pairs\n\
         VLR-style GSIG revocation with the CGKD rekey."
    );
}
