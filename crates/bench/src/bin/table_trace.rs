//! **E8 (Figure C)** — traceability cost: `GCD.TraceUser` decrypts every
//! `δ_i` with the tracing secret key, opens every `θ_i`, and runs
//! `GSIG.Open`. The table reports trace latency and correctness vs the
//! number of handshake participants.
//!
//! ```sh
//! cargo run --release -p shs-bench --bin table_trace
//! ```

use shs_bench::{group, header, rng, row, timed};
use shs_core::handshake::run_handshake;
use shs_core::{Actor, HandshakeOptions, SchemeKind};

fn main() {
    println!("=== GCD.TraceUser latency vs participants ===\n");
    header(&["m", "traced ok", "trace s", "s/slot"]);
    let mut r = rng("table-e8");
    let (ga, members) = group(SchemeKind::Scheme1, 12, &mut r);
    for m in [2usize, 4, 8, 12] {
        let actors: Vec<Actor<'_>> = members[..m].iter().map(Actor::Member).collect();
        let result = run_handshake(&actors, &HandshakeOptions::default(), &mut r).unwrap();
        assert!(result.outcomes.iter().all(|o| o.accepted));
        let (secs, traced) = timed(|| ga.trace(&result.transcript));
        let ok = traced.iter().filter(|t| t.result.is_ok()).count();
        assert_eq!(ok, m);
        row(&[
            format!("{m}"),
            format!("{ok}/{m}"),
            format!("{secs:.4}"),
            format!("{:.4}", secs / m as f64),
        ]);
    }
    println!(
        "\nReading the table: tracing is linear in m (one CCA decryption, one\n\
         AEAD open and one GSIG.Open per slot) and recovers every participant\n\
         of a successful handshake — Fig. 2 'traceability'."
    );
}
