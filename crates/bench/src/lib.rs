//! Shared helpers for the benchmark harness: deterministic fixtures and a
//! small fixed-width table printer used by the `table_*` / `fig_*`
//! binaries that regenerate the paper's quantitative claims (see
//! `EXPERIMENTS.md` at the repository root for the experiment index).

use rand::RngCore;
use shs_core::{GroupAuthority, Member, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

/// Deterministic RNG for an experiment.
pub fn rng(label: &str) -> HmacDrbg {
    HmacDrbg::from_seed(label.as_bytes())
}

/// A test-preset group with `n` fully-updated members.
pub fn group(
    scheme: SchemeKind,
    n: usize,
    rng: &mut impl RngCore,
) -> (GroupAuthority, Vec<Member>) {
    shs_core::fixtures::group_with_members(scheme, n, rng).expect("bench fixture")
}

/// Prints a row of fixed-width cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join("  "));
}

/// Prints a header row followed by a rule.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 14));
}

/// Arithmetic mean of a u64 slice.
pub fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

/// Wall-clock helper returning (elapsed-seconds, result).
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2, 4]), 3.0);
    }
}
