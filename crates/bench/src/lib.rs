//! Shared helpers for the benchmark harness: deterministic fixtures and a
//! small fixed-width table printer used by the `table_*` / `fig_*`
//! binaries that regenerate the paper's quantitative claims (see
//! `EXPERIMENTS.md` at the repository root for the experiment index).

use rand::RngCore;
use shs_core::{GroupAuthority, Member, SchemeKind};
use shs_crypto::drbg::HmacDrbg;

/// Deterministic RNG for an experiment.
pub fn rng(label: &str) -> HmacDrbg {
    HmacDrbg::from_seed(label.as_bytes())
}

/// A test-preset group with `n` fully-updated members.
pub fn group(
    scheme: SchemeKind,
    n: usize,
    rng: &mut impl RngCore,
) -> (GroupAuthority, Vec<Member>) {
    shs_core::fixtures::group_with_members(scheme, n, rng).expect("bench fixture")
}

/// Prints a row of fixed-width cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join("  "));
}

/// Prints a header row followed by a rule.
pub fn header(cells: &[&str]) {
    row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(cells.len() * 14));
}

/// Arithmetic mean of a u64 slice.
pub fn mean(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<u64>() as f64 / xs.len() as f64
}

/// Wall-clock helper returning (elapsed-seconds, result).
pub fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// The CPU model the benchmark ran on, from `/proc/cpuinfo` where
/// available, `"unknown"` elsewhere — numbers without the host they
/// were measured on are not comparable across baselines.
pub fn cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A `"host"` JSON object fragment (hand-rolled; the offline build has
/// no serde_json) recording where the numbers came from: CPU model,
/// logical CPU count, OS, and the worker count the harness used.
pub fn host_json(workers: usize) -> String {
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!(
        "{{ \"cpu_model\": \"{}\", \"cpus\": {}, \"os\": \"{}\", \"workers\": {} }}",
        cpu_model().replace('"', "'"),
        cpus,
        std::env::consts::OS,
        workers
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2, 4]), 3.0);
    }
}
