//! Instrumentation counters for modular-arithmetic operations.
//!
//! The paper states its efficiency claims in *numbers of modular
//! exponentiations per participant* (§8.1/§8.2: `O(m)` for an `m`-party
//! handshake). These thread-local counters let the benchmark harness measure
//! exactly that, without timing noise.
//!
//! ```rust
//! use shs_bigint::{counters, Ubig};
//!
//! let (counts, _) = counters::measure(|| {
//!     Ubig::from_u64(2).modpow(&Ubig::from_u64(100), &Ubig::from_u64(101))
//! });
//! assert_eq!(counts.modexp, 1);
//! ```

use std::cell::Cell;

thread_local! {
    static MODEXP: Cell<u64> = const { Cell::new(0) };
    static MODMUL: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Number of modular exponentiations.
    pub modexp: u64,
    /// Number of modular multiplications requested at the API level
    /// (not the internal multiplications of an exponentiation).
    pub modmul: u64,
}

impl OpCounts {
    /// Component-wise difference (`self - earlier`).
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            modexp: self.modexp - earlier.modexp,
            modmul: self.modmul - earlier.modmul,
        }
    }
}

/// Records one modular exponentiation on the current thread.
#[inline]
pub fn record_modexp() {
    MODEXP.with(|c| c.set(c.get() + 1));
}

/// Records one modular multiplication on the current thread.
#[inline]
pub fn record_modmul() {
    MODMUL.with(|c| c.set(c.get() + 1));
}

/// Current counter values for this thread.
pub fn snapshot() -> OpCounts {
    OpCounts {
        modexp: MODEXP.with(Cell::get),
        modmul: MODMUL.with(Cell::get),
    }
}

/// Resets this thread's counters to zero.
pub fn reset() {
    MODEXP.with(|c| c.set(0));
    MODMUL.with(|c| c.set(0));
}

/// Runs `f` and returns the operation counts it incurred together with its
/// result.
pub fn measure<T>(f: impl FnOnce() -> T) -> (OpCounts, T) {
    let before = snapshot();
    let out = f();
    (snapshot().since(&before), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ubig;

    #[test]
    fn measures_modexp() {
        let m = Ubig::from_u64(10007);
        let (counts, _) = measure(|| {
            for i in 2..7u64 {
                let _ = Ubig::from_u64(i).modpow(&Ubig::from_u64(100), &m);
            }
        });
        assert_eq!(counts.modexp, 5);
    }

    #[test]
    fn since_subtracts() {
        let a = OpCounts {
            modexp: 10,
            modmul: 20,
        };
        let b = OpCounts {
            modexp: 4,
            modmul: 5,
        };
        assert_eq!(
            a.since(&b),
            OpCounts {
                modexp: 6,
                modmul: 15
            }
        );
    }
}
