//! CRT-accelerated exponentiation for callers that know the factorization
//! `n = p·q` (the authority side of the RSA-based group signatures).
//!
//! Splitting `x^e mod pq` into `x^{e mod p−1} mod p` and `x^{e mod q−1}
//! mod q` plus a Garner recombination replaces one full-width
//! exponentiation with two half-width, quarter-length ones — the classic
//! ~4× RSA private-key speedup.

use crate::mont::MontCtx;
use crate::{BigintError, Ubig};
use std::sync::{Arc, Mutex, OnceLock};

/// Capacity of the process-wide [`CrtCtx::shared`] cache (one entry per
/// live RSA trapdoor; a workspace rarely holds more than a couple).
const SHARED_CACHE_CAP: usize = 8;

fn shared_cache() -> &'static Mutex<Vec<Arc<CrtCtx>>> {
    static CACHE: OnceLock<Mutex<Vec<Arc<CrtCtx>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// A reusable CRT exponentiation context for a known factorization
/// `n = p·q` with `p`, `q` **odd primes**.
///
/// Holds Montgomery contexts for both halves plus the Garner constant
/// `q^{-1} mod p`, so each [`CrtCtx::modpow`] costs only the two
/// half-width exponentiations.
///
/// The exponent reduction `e mod (p−1)` relies on Fermat's little
/// theorem, so the result is only correct when `p` and `q` really are
/// prime — which the authority generating them guarantees.
#[derive(Debug)]
pub struct CrtCtx {
    p_ctx: Arc<MontCtx>,
    q_ctx: Arc<MontCtx>,
    /// `p − 1` and `q − 1` (Fermat exponent moduli).
    p1: Ubig,
    q1: Ubig,
    /// `q^{-1} mod p` (Garner recombination constant).
    qinv_p: Ubig,
    /// `n = p·q`.
    n: Ubig,
}

impl CrtCtx {
    /// Builds a context for the factorization `n = p·q`.
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::NotCoprime`] when `gcd(p, q) != 1` (the
    /// Garner constant does not exist).
    ///
    /// # Panics
    ///
    /// Panics if `p` or `q` is even or < 3 (Montgomery preconditions).
    pub fn new(p: &Ubig, q: &Ubig) -> Result<CrtCtx, BigintError> {
        let qinv_p = crate::gcd::modinv(&q.rem(p), p).map_err(|_| BigintError::NotCoprime)?;
        Ok(CrtCtx {
            p_ctx: MontCtx::shared(p),
            q_ctx: MontCtx::shared(q),
            p1: p.sub_u64(1),
            q1: q.sub_u64(1),
            qinv_p,
            n: p.mul(q),
        })
    }

    /// Returns a shared, cached context for `(p, q)`, building it on a
    /// miss. Same contract as [`CrtCtx::new`].
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::NotCoprime`] when `gcd(p, q) != 1`.
    pub fn shared(p: &Ubig, q: &Ubig) -> Result<Arc<CrtCtx>, BigintError> {
        let mut cache = shared_cache().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = cache
            .iter()
            .position(|c| c.p_ctx.modulus() == p && c.q_ctx.modulus() == q)
        {
            let ctx = cache.remove(pos);
            cache.push(Arc::clone(&ctx));
            return Ok(ctx);
        }
        drop(cache);
        let ctx = Arc::new(CrtCtx::new(p, q)?);
        let mut cache = shared_cache().lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= SHARED_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(Arc::clone(&ctx));
        Ok(ctx)
    }

    /// The recombined modulus `n = p·q`.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// `base^exp mod p·q` via two half-width exponentiations and a Garner
    /// recombination.
    ///
    /// Exponents are reduced mod `p−1` / `q−1` (Fermat), so the per-half
    /// cost scales with the *reduced* exponent width. Correct for any
    /// `base` (multiples of `p` or `q` are handled explicitly).
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        crate::counters::record_modexp();
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        let rp = self.half_pow(&self.p_ctx, &self.p1, base, exp);
        let rq = self.half_pow(&self.q_ctx, &self.q1, base, exp);
        // Garner: x = rq + q·((rp − rq)·q⁻¹ mod p)  —  x ≡ rp (p), rq (q).
        let p = self.p_ctx.modulus();
        let q = self.q_ctx.modulus();
        let t = rp.subm(&rq.rem(p), p).mulm(&self.qinv_p, p);
        rq.add(&q.mul(&t))
    }

    /// `base^exp mod h` for one half `h`, with the exponent reduced mod
    /// `h − 1` (valid because `h` is prime).
    fn half_pow(&self, ctx: &MontCtx, h1: &Ubig, base: &Ubig, exp: &Ubig) -> Ubig {
        let b = base.rem(ctx.modulus());
        if b.is_zero() {
            // base ≡ 0 (mod h): the power is 0 for every exp > 0, a case
            // Fermat reduction would get wrong when exp ≡ 0 (mod h−1).
            return Ubig::zero();
        }
        let e = exp.rem(h1);
        if e.is_zero() {
            // exp > 0 and exp ≡ 0 (mod h−1): b^{h−1} ≡ 1 by Fermat.
            return Ubig::one();
        }
        ctx.modpow(&b, &e)
    }
}

impl Ubig {
    /// `self^exp mod p·q` using the known factorization — see
    /// [`CrtCtx::modpow`]. Builds (or fetches) a shared [`CrtCtx`].
    ///
    /// Records exactly one `modexp`, matching the plain [`Ubig::modpow`]
    /// call it replaces, so experiment cost tables are unchanged by the
    /// acceleration.
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::NotCoprime`] when `gcd(p, q) != 1`.
    pub fn modpow_crt(&self, exp: &Ubig, p: &Ubig, q: &Ubig) -> Result<Ubig, BigintError> {
        Ok(CrtCtx::shared(p, q)?.modpow(self, exp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_plain_modpow() {
        let p = Ubig::from_u64(0xffff_fffb); // 2^32 − 5, prime
        let q = Ubig::from_u64(0xffff_ffef); // 2^32 − 17, prime
        let n = p.mul(&q);
        let ctx = CrtCtx::new(&p, &q).unwrap();
        for (b, e) in [
            (Ubig::from_u64(2), Ubig::from_u64(10)),
            (
                Ubig::from_u64(31337),
                Ubig::from_hex("123456789abcdef0").unwrap(),
            ),
            (n.add_u64(5), Ubig::from_u64(3)), // base > n
            (Ubig::zero(), Ubig::from_u64(7)),
            (Ubig::from_u64(7), Ubig::zero()),
            (p.clone(), Ubig::from_u64(9)), // base ≡ 0 mod p
        ] {
            assert_eq!(ctx.modpow(&b, &e), b.modpow(&e, &n), "b={b:?} e={e:?}");
        }
    }

    #[test]
    fn exponent_multiple_of_order() {
        let p = Ubig::from_u64(101);
        let q = Ubig::from_u64(103);
        let n = p.mul(&q);
        let ctx = CrtCtx::new(&p, &q).unwrap();
        // exp ≡ 0 mod p−1 (and mod q−1): Fermat edge case.
        let e = Ubig::from_u64(100 * 102);
        let b = Ubig::from_u64(7);
        assert_eq!(ctx.modpow(&b, &e), b.modpow(&e, &n));
    }

    #[test]
    fn shared_cache_roundtrip() {
        let p = Ubig::from_u64(1_000_003);
        let q = Ubig::from_u64(1_000_033);
        let a = CrtCtx::shared(&p, &q).unwrap();
        let b = CrtCtx::shared(&p, &q).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let x = Ubig::from_u64(424_242);
        let e = Ubig::from_u64(65_537);
        assert_eq!(a.modpow(&x, &e), x.modpow(&e, a.modulus()));
    }

    #[test]
    fn non_coprime_halves_rejected() {
        let p = Ubig::from_u64(15);
        let q = Ubig::from_u64(25);
        assert!(matches!(CrtCtx::new(&p, &q), Err(BigintError::NotCoprime)));
    }
}
