//! Division: Knuth Algorithm D (TAOCP vol. 2, 4.3.1) with a single-limb
//! fast path.

use crate::{BigintError, Ubig};

impl Ubig {
    /// Simultaneous quotient and remainder: `(self / d, self % d)`.
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::DivisionByZero`] when `d` is zero.
    pub fn divrem(&self, d: &Ubig) -> Result<(Ubig, Ubig), BigintError> {
        if d.is_zero() {
            return Err(BigintError::DivisionByZero);
        }
        if self.cmp_mag(d) == std::cmp::Ordering::Less {
            return Ok((Ubig::zero(), self.clone()));
        }
        if d.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(d.limbs[0]);
            return Ok((q, Ubig::from_u64(r)));
        }
        Ok(knuth_d(self, d))
    }

    /// Quotient and remainder by a single limb.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem_u64(&self, d: u64) -> (Ubig, u64) {
        assert!(d != 0, "division by zero");
        crate::trace::limb_div(self.limbs.len() as u64);
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Ubig::from_limbs(out), rem as u64)
    }
}

/// Knuth Algorithm D for multi-limb divisors.
///
/// Preconditions (checked by the caller): `d` has at least 2 limbs and
/// `u >= d`.
fn knuth_d(u: &Ubig, d: &Ubig) -> (Ubig, Ubig) {
    const B: u128 = 1u128 << 64;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = d.limbs.last().unwrap().leading_zeros();
    let vn = d.shl(shift);
    let mut un = u.shl(shift).limbs;
    let n = vn.limbs.len();
    let m = un.len() - n;
    un.push(0); // room for the virtual high limb u[m+n]

    let v = &vn.limbs;
    let v_hi = v[n - 1];
    let v_lo = v[n - 2];

    let mut q = vec![0u64; m + 1];

    // D2/D7: loop over quotient digits from most significant down.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two dividend limbs.
        crate::trace::limb_div(1);
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / v_hi as u128;
        let mut rhat = top % v_hi as u128;
        while qhat >= B || qhat * v_lo as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
            // Value-dependent qhat correction (why reduction traces are
            // only input-independent when the dividend is already reduced).
            crate::trace::branch();
            qhat -= 1;
            rhat += v_hi as u128;
            if rhat >= B {
                break;
            }
        }

        // D4: multiply and subtract un[j..j+n+1] -= qhat * v.
        crate::trace::limb_mul(n as u64);
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * v[i] as u128 + carry;
            carry = p >> 64;
            let sub = (p as u64) as i128;
            let t = un[j + i] as i128 - sub - borrow;
            if t < 0 {
                un[j + i] = (t + B as i128) as u64;
                borrow = 1;
            } else {
                un[j + i] = t as u64;
                borrow = 0;
            }
        }
        let t = un[j + n] as i128 - carry as i128 - borrow;
        if t < 0 {
            // D6: qhat was one too large; add the divisor back.
            crate::trace::branch();
            crate::trace::limb_add(n as u64);
            un[j + n] = (t + B as i128) as u64;
            qhat -= 1;
            let mut carry2 = 0u64;
            for i in 0..n {
                let (s, c1) = un[j + i].overflowing_add(v[i]);
                let (s, c2) = s.overflowing_add(carry2);
                carry2 = (c1 as u64) + (c2 as u64);
                un[j + i] = s;
            }
            un[j + n] = un[j + n].wrapping_add(carry2);
        } else {
            un[j + n] = t as u64;
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let rem = Ubig::from_limbs(un[..n].to_vec()).shr(shift);
    (Ubig::from_limbs(q), rem)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &Ubig, b: &Ubig) {
        let (q, r) = a.divrem(b).unwrap();
        assert!(
            r.cmp_mag(b) == std::cmp::Ordering::Less,
            "remainder too big"
        );
        assert_eq!(&q.mul(b).add(&r), a, "reconstruction failed");
    }

    #[test]
    fn division_by_zero_is_error() {
        assert_eq!(
            Ubig::one().divrem(&Ubig::zero()),
            Err(BigintError::DivisionByZero)
        );
    }

    #[test]
    fn small_divisions() {
        let (q, r) = Ubig::from_u64(100).divrem(&Ubig::from_u64(7)).unwrap();
        assert_eq!(q, Ubig::from_u64(14));
        assert_eq!(r, Ubig::from_u64(2));
        // Dividend smaller than divisor.
        let (q, r) = Ubig::from_u64(3).divrem(&Ubig::from_u64(7)).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, Ubig::from_u64(3));
    }

    #[test]
    fn single_limb_divisor() {
        let a = Ubig::from_limbs(vec![u64::MAX, u64::MAX, 12345]);
        check(&a, &Ubig::from_u64(97));
        check(&a, &Ubig::from_u64(u64::MAX));
    }

    #[test]
    fn multi_limb_divisions() {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (na, nb) in [(3usize, 2usize), (8, 3), (16, 8), (40, 17), (5, 5)] {
            let a = Ubig::from_limbs((0..na).map(|_| next()).collect());
            let b = Ubig::from_limbs((0..nb).map(|_| next()).collect());
            if b.is_zero() {
                continue;
            }
            check(&a, &b);
        }
    }

    #[test]
    fn knuth_addback_branch() {
        // Classic adversarial case exercising step D6: divisor with top limb
        // 0x8000.. and dividend crafted so the first qhat estimate
        // overshoots.
        let b = Ubig::from_limbs(vec![0, 0x8000_0000_0000_0000]);
        let a = Ubig::from_limbs(vec![u64::MAX, u64::MAX - 1, 0x7fff_ffff_ffff_ffff]);
        check(&a, &b);
        let b2 = Ubig::from_limbs(vec![u64::MAX, 0x8000_0000_0000_0000]);
        let a2 = Ubig::from_limbs(vec![0, 0, 1, 0x8000_0000_0000_0000]);
        check(&a2, &b2);
    }

    #[test]
    fn exact_division() {
        let b = Ubig::from_limbs(vec![0xdead_beef, 0xfeed_face, 0x1234]);
        let q_expect = Ubig::from_limbs(vec![42, 0, 99, 7]);
        let a = b.mul(&q_expect);
        let (q, r) = a.divrem(&b).unwrap();
        assert_eq!(q, q_expect);
        assert!(r.is_zero());
    }
}
