//! Fixed-base exponentiation with a precomputed window table.
//!
//! For a long-lived public base `g` (scheme generators `a, b, g, h, y` in
//! the ACJT/KY group signatures), all squarings of the square-and-multiply
//! ladder can be paid once at table-build time: store
//! `g^(d · 2^{w·i})` for every window position `i` and digit `d`, and an
//! exponentiation becomes one masked table scan plus one Montgomery
//! multiplication per window — no squarings at all.

use crate::mont::{select_entry, window_chunk, MontCtx, WINDOW};
use crate::Ubig;
use std::sync::Arc;

/// A precomputed fixed-base exponentiation table over a shared
/// [`MontCtx`].
///
/// `table[i][d] = base^(d · 2^{WINDOW·i}) mod n` in Montgomery form, for
/// window positions `i < ⌈max_bits/WINDOW⌉` and digits `d < 2^WINDOW`.
/// [`FixedBase::pow`] is safe for secret exponents (masked scans,
/// always-multiply); [`FixedBase::pow_vartime`] is the public-data fast
/// path.
pub struct FixedBase {
    ctx: Arc<MontCtx>,
    base: Ubig,
    max_bits: u32,
    /// `table[i][d]` = base^(d·2^{WINDOW·i}) in Montgomery form.
    table: Vec<Vec<Vec<u64>>>,
}

impl FixedBase {
    /// Builds a table covering exponents up to `max_bits` bits.
    ///
    /// Cost: `⌈max_bits/WINDOW⌉ · (2^WINDOW − 2)` Montgomery
    /// multiplications, paid once per (base, modulus) pair.
    ///
    /// # Panics
    ///
    /// Panics if `max_bits` is zero.
    pub fn new(ctx: Arc<MontCtx>, base: &Ubig, max_bits: u32) -> FixedBase {
        assert!(max_bits > 0, "fixed-base table needs a nonzero width");
        let windows = max_bits.div_ceil(WINDOW);
        let mut table = Vec::with_capacity(windows as usize);
        // g_w = base^(2^{WINDOW·w}) in Montgomery form, advanced by WINDOW
        // squarings per window position.
        let mut g_w = ctx.to_mont(base);
        for _ in 0..windows {
            table.push(ctx.pow_table(&g_w));
            for _ in 0..WINDOW {
                g_w = ctx.mont_mul(&g_w, &g_w);
            }
        }
        FixedBase {
            ctx,
            base: base.clone(),
            max_bits,
            table,
        }
    }

    /// The widest exponent (in bits) the table covers.
    pub fn max_bits(&self) -> u32 {
        self.max_bits
    }

    /// The modulus context this table was built over.
    pub fn ctx(&self) -> &Arc<MontCtx> {
        &self.ctx
    }

    /// `base^exp mod n`, constant-trace for secret exponents.
    ///
    /// Every covered window is processed — a masked scan over its table row
    /// followed by one multiplication (digit 0 multiplies by one in
    /// Montgomery form) — so the trace depends only on the public width
    /// class `⌈exp.bits()/WINDOW⌉`, exactly like [`MontCtx::modpow`], but
    /// with zero squarings. Exponents wider than `max_bits` fall back to
    /// `modpow` (the width is public, so the branch is too).
    pub fn pow(&self, exp: &Ubig) -> Ubig {
        if exp.bits() > self.max_bits {
            return self.ctx.modpow(&self.base, exp);
        }
        if exp.is_zero() {
            return Ubig::one().rem(self.ctx.modulus());
        }
        let bits = exp.bits();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.ctx.one_mont().to_vec();
        for w in 0..windows {
            let entry = select_entry(&self.table[w as usize], window_chunk(exp, bits, w));
            acc = self.ctx.mont_mul(&acc, &entry);
        }
        self.ctx.from_mont(&acc)
    }

    /// `base^exp mod n` by direct table indexing, zero digits skipped.
    ///
    /// For **public** exponents only; the shs-lint `vartime-usage` rule
    /// pins down the allowed call sites.
    pub fn pow_vartime(&self, exp: &Ubig) -> Ubig {
        if exp.bits() > self.max_bits {
            return self.ctx.modpow_vartime(&self.base, exp);
        }
        if exp.is_zero() {
            return Ubig::one().rem(self.ctx.modulus());
        }
        let bits = exp.bits();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.ctx.one_mont().to_vec();
        for w in 0..windows {
            let chunk = window_chunk(exp, bits, w);
            if chunk != 0 {
                acc = self.ctx.mont_mul(&acc, &self.table[w as usize][chunk]);
            }
        }
        self.ctx.from_mont(&acc)
    }
}

impl std::fmt::Debug for FixedBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FixedBase")
            .field("max_bits", &self.max_bits)
            .field("windows", &self.table.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_modpow_across_widths() {
        let n = Ubig::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let ctx = MontCtx::shared(&n);
        let g = Ubig::from_u64(31337);
        let fb = FixedBase::new(Arc::clone(&ctx), &g, 192);
        for e in [
            Ubig::zero(),
            Ubig::one(),
            Ubig::from_u64(2),
            Ubig::from_u64(0xffff_ffff_ffff_fffe),
            Ubig::from_hex("123456789abcdef0fedcba9876543210").unwrap(),
        ] {
            assert_eq!(fb.pow(&e), ctx.modpow(&g, &e));
            assert_eq!(fb.pow_vartime(&e), ctx.modpow(&g, &e));
        }
    }

    #[test]
    fn oversized_exponent_falls_back() {
        let n = Ubig::from_u64(1_000_000_007);
        let ctx = MontCtx::shared(&n);
        let g = Ubig::from_u64(5);
        let fb = FixedBase::new(Arc::clone(&ctx), &g, 8);
        let e = Ubig::from_u64(1 << 20);
        assert_eq!(fb.pow(&e), ctx.modpow(&g, &e));
        assert_eq!(fb.pow_vartime(&e), ctx.modpow(&g, &e));
    }
}
