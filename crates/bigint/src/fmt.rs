//! Display / parsing for [`Ubig`] (hex, decimal) and [`crate::Int`].

use crate::{BigintError, Ubig};
use std::fmt;
use std::str::FromStr;

impl Ubig {
    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::ParseError`] on empty input or non-hex digits.
    pub fn from_hex(s: &str) -> Result<Ubig, BigintError> {
        if s.is_empty() {
            return Err(BigintError::ParseError);
        }
        let mut out = Ubig::zero();
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(BigintError::ParseError)?;
            out = out.shl(4).add_u64(d as u64);
        }
        Ok(out)
    }

    /// Lowercase hexadecimal encoding (no prefix; `"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::ParseError`] on empty input or non-decimal
    /// digits.
    pub fn from_dec(s: &str) -> Result<Ubig, BigintError> {
        if s.is_empty() {
            return Err(BigintError::ParseError);
        }
        let mut out = Ubig::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(BigintError::ParseError)?;
            out = out.mul_u64(10).add_u64(d as u64);
        }
        Ok(out)
    }

    /// Decimal encoding.
    pub fn to_dec(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel off 19 decimal digits at a time (largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut n = self.clone();
        let mut parts: Vec<u64> = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.divrem_u64(CHUNK);
            parts.push(r);
            n = q;
        }
        let mut s = parts.last().unwrap().to_string();
        for p in parts.iter().rev().skip(1) {
            s.push_str(&format!("{p:019}"));
        }
        s
    }
}

impl fmt::Display for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_dec())
    }
}

impl fmt::Debug for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Keep debug output short for big numbers.
        let hex = self.to_hex();
        if hex.len() <= 32 {
            write!(f, "Ubig(0x{hex})")
        } else {
            write!(
                f,
                "Ubig(0x{}..{} [{} bits])",
                &hex[..8],
                &hex[hex.len() - 8..],
                self.bits()
            )
        }
    }
}

impl fmt::LowerHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::UpperHex for Ubig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex().to_uppercase())
    }
}

impl FromStr for Ubig {
    type Err = BigintError;

    /// Parses decimal by default, hexadecimal with an `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Ubig::from_hex(hex)
        } else {
            Ubig::from_dec(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let n = Ubig::from_hex(s).unwrap();
            assert_eq!(n.to_hex(), s);
        }
        // Leading zeros parse but do not round-trip verbatim.
        assert_eq!(Ubig::from_hex("000ff").unwrap().to_hex(), "ff");
    }

    #[test]
    fn dec_roundtrip() {
        for s in [
            "0",
            "7",
            "18446744073709551615",
            "340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            let n = Ubig::from_dec(s).unwrap();
            assert_eq!(n.to_dec(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Ubig::from_dec("").is_err());
        assert!(Ubig::from_dec("12a").is_err());
        assert!(Ubig::from_hex("xyz").is_err());
    }

    #[test]
    fn from_str_prefixes() {
        assert_eq!("0xff".parse::<Ubig>().unwrap(), Ubig::from_u64(255));
        assert_eq!("255".parse::<Ubig>().unwrap(), Ubig::from_u64(255));
    }

    #[test]
    fn hex_dec_consistency() {
        let n = Ubig::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let d = n.to_dec();
        assert_eq!(Ubig::from_dec(&d).unwrap(), n);
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Ubig::zero()).is_empty());
        let big = Ubig::one().shl(500);
        assert!(format!("{big:?}").contains("bits"));
    }
}
