//! Greatest common divisors, extended Euclid, modular inverses, LCM and CRT.

use crate::{BigintError, Int, Ubig};

/// Binary GCD of two naturals.
pub fn gcd(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let az = a.trailing_zeros().unwrap();
    let bz = b.trailing_zeros().unwrap();
    let shift = az.min(bz);
    let mut u = a.shr(az);
    let mut v = b.shr(bz);
    loop {
        if u > v {
            std::mem::swap(&mut u, &mut v);
        }
        v = v.sub(&u);
        if v.is_zero() {
            return u.shl(shift);
        }
        v = v.shr(v.trailing_zeros().unwrap());
    }
}

/// Least common multiple.
pub fn lcm(a: &Ubig, b: &Ubig) -> Ubig {
    if a.is_zero() || b.is_zero() {
        return Ubig::zero();
    }
    a.div(&gcd(a, b)).mul(b)
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn ext_gcd(a: &Ubig, b: &Ubig) -> (Ubig, Int, Int) {
    let mut r0 = Int::from_ubig(a.clone());
    let mut r1 = Int::from_ubig(b.clone());
    let mut s0 = Int::one();
    let mut s1 = Int::zero();
    let mut t0 = Int::zero();
    let mut t1 = Int::one();
    while !r1.is_zero() {
        // Iteration count is input-dependent (Euclid); recorded so the
        // trace harness can see it.
        crate::trace::branch();
        let (q, r) = r0.divrem(&r1);
        let s = s0.sub(&q.mul(&s1));
        let t = t0.sub(&q.mul(&t1));
        r0 = r1;
        r1 = r;
        s0 = s1;
        s1 = s;
        t0 = t1;
        t1 = t;
    }
    (r0.into_magnitude(), s0, t0)
}

/// Modular inverse: `a^{-1} mod m`.
///
/// # Errors
///
/// [`BigintError::DivisionByZero`] when `m` is zero,
/// [`BigintError::NotInvertible`] when `gcd(a, m) != 1`.
pub fn modinv(a: &Ubig, m: &Ubig) -> Result<Ubig, BigintError> {
    if m.is_zero() {
        return Err(BigintError::DivisionByZero);
    }
    if m.is_one() {
        return Ok(Ubig::zero());
    }
    let a = a.rem(m);
    let (g, x, _) = ext_gcd(&a, m);
    if !g.is_one() {
        return Err(BigintError::NotInvertible);
    }
    Ok(x.mod_ubig(m))
}

/// Chinese Remainder Theorem for two congruences: finds the unique
/// `x mod (m1*m2)` with `x ≡ r1 (mod m1)` and `x ≡ r2 (mod m2)`.
///
/// # Errors
///
/// [`BigintError::NotCoprime`] when `gcd(m1, m2) != 1`.
pub fn crt_pair(r1: &Ubig, m1: &Ubig, r2: &Ubig, m2: &Ubig) -> Result<Ubig, BigintError> {
    let m1_inv = modinv(m1, m2).map_err(|_| BigintError::NotCoprime)?;
    // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2)
    let r1m = Int::from_ubig(r1.rem(m1));
    let diff = Int::from_ubig(r2.clone()).sub(&r1m.clone());
    let t = diff.mod_ubig(m2).mulm(&m1_inv, m2);
    Ok(r1m.into_magnitude().add(&m1.mul(&t)))
}

/// General CRT over a list of (residue, modulus) pairs with pairwise-coprime
/// moduli.
///
/// # Errors
///
/// [`BigintError::NotCoprime`] when moduli share a factor; the empty list is
/// an error too (there is no canonical modulus).
pub fn crt(pairs: &[(Ubig, Ubig)]) -> Result<Ubig, BigintError> {
    let mut iter = pairs.iter();
    let (mut r, mut m) = iter.next().cloned().ok_or(BigintError::NotCoprime)?;
    for (ri, mi) in iter {
        r = crt_pair(&r, &m, ri, mi)?;
        m = m.mul(mi);
    }
    Ok(r.rem(&m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(
            gcd(&Ubig::from_u64(12), &Ubig::from_u64(18)),
            Ubig::from_u64(6)
        );
        assert_eq!(gcd(&Ubig::zero(), &Ubig::from_u64(5)), Ubig::from_u64(5));
        assert_eq!(gcd(&Ubig::from_u64(5), &Ubig::zero()), Ubig::from_u64(5));
        assert_eq!(gcd(&Ubig::from_u64(17), &Ubig::from_u64(13)), Ubig::one());
        assert_eq!(
            gcd(&Ubig::from_u64(1 << 20), &Ubig::from_u64(1 << 12)),
            Ubig::from_u64(1 << 12)
        );
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(
            lcm(&Ubig::from_u64(4), &Ubig::from_u64(6)),
            Ubig::from_u64(12)
        );
        assert_eq!(lcm(&Ubig::zero(), &Ubig::from_u64(6)), Ubig::zero());
    }

    #[test]
    fn ext_gcd_bezout() {
        let a = Ubig::from_u64(240);
        let b = Ubig::from_u64(46);
        let (g, x, y) = ext_gcd(&a, &b);
        assert_eq!(g, Ubig::from_u64(2));
        let lhs = Int::from_ubig(a).mul(&x).add(&Int::from_ubig(b).mul(&y));
        assert_eq!(lhs, Int::from_ubig(g));
    }

    #[test]
    fn modinv_works() {
        let m = Ubig::from_u64(97);
        for a in [1u64, 2, 50, 96] {
            let inv = modinv(&Ubig::from_u64(a), &m).unwrap();
            assert_eq!(Ubig::from_u64(a).mulm(&inv, &m), Ubig::one());
        }
        assert_eq!(
            modinv(&Ubig::from_u64(6), &Ubig::from_u64(9)),
            Err(BigintError::NotInvertible)
        );
        assert_eq!(
            modinv(&Ubig::one(), &Ubig::zero()),
            Err(BigintError::DivisionByZero)
        );
    }

    #[test]
    fn modinv_large() {
        // Inverse modulo a 128-bit prime.
        let p = Ubig::from_u128(0xffffffffffffffffffffffffffffff61); // 2^128 - 159 is prime
        let a = Ubig::from_u128(0x123456789abcdef0fedcba9876543210);
        let inv = modinv(&a, &p).unwrap();
        assert_eq!(a.mulm(&inv, &p), Ubig::one());
    }

    #[test]
    fn crt_two() {
        // x = 2 mod 3, x = 3 mod 5 -> x = 8 mod 15
        let x = crt_pair(
            &Ubig::from_u64(2),
            &Ubig::from_u64(3),
            &Ubig::from_u64(3),
            &Ubig::from_u64(5),
        )
        .unwrap();
        assert_eq!(x.rem(&Ubig::from_u64(15)), Ubig::from_u64(8));
    }

    #[test]
    fn crt_many() {
        // x = 1 mod 2, 2 mod 3, 3 mod 5, 4 mod 7 -> check all congruences
        let pairs = vec![
            (Ubig::from_u64(1), Ubig::from_u64(2)),
            (Ubig::from_u64(2), Ubig::from_u64(3)),
            (Ubig::from_u64(3), Ubig::from_u64(5)),
            (Ubig::from_u64(4), Ubig::from_u64(7)),
        ];
        let x = crt(&pairs).unwrap();
        for (r, m) in &pairs {
            assert_eq!(&x.rem(m), r);
        }
        assert!(crt(&[]).is_err());
        assert!(crt(&[
            (Ubig::one(), Ubig::from_u64(4)),
            (Ubig::one(), Ubig::from_u64(6))
        ])
        .is_err());
    }
}
