//! Signed arbitrary-precision integers.
//!
//! [`Int`] is a thin sign-magnitude wrapper around [`Ubig`]. It exists for
//! two purposes: the extended Euclidean algorithm, and Fiat–Shamir proof
//! responses of the form `s = ρ − c·x`, which are integers over `Z` (not
//! residues) and may be negative. Group exponentiation by an `Int` exponent
//! is provided by `shs-groups`.

use crate::Ubig;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Sign of an [`Int`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Negative (magnitude is non-zero).
    Minus,
    /// Zero or positive.
    Plus,
}

/// A signed arbitrary-precision integer in sign-magnitude form.
///
/// Invariant: zero always has sign [`Sign::Plus`].
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Int {
    sign: Sign,
    mag: Ubig,
}

impl Int {
    /// Zero.
    pub fn zero() -> Int {
        Int {
            sign: Sign::Plus,
            mag: Ubig::zero(),
        }
    }

    /// One.
    pub fn one() -> Int {
        Int {
            sign: Sign::Plus,
            mag: Ubig::one(),
        }
    }

    /// A non-negative integer from a [`Ubig`].
    pub fn from_ubig(mag: Ubig) -> Int {
        Int {
            sign: Sign::Plus,
            mag,
        }
    }

    /// Builds from a sign and a magnitude, normalizing `-0` to `+0`.
    pub fn new(sign: Sign, mag: Ubig) -> Int {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// From a machine integer.
    pub fn from_i64(v: i64) -> Int {
        if v < 0 {
            Int::new(Sign::Minus, Ubig::from_u64(v.unsigned_abs()))
        } else {
            Int::from_ubig(Ubig::from_u64(v as u64))
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &Ubig {
        &self.mag
    }

    /// Consumes the integer and returns its magnitude.
    pub fn into_magnitude(self) -> Ubig {
        self.mag
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Number of significant bits of the magnitude.
    pub fn bits(&self) -> u32 {
        self.mag.bits()
    }

    /// Negation.
    pub fn neg(&self) -> Int {
        Int::new(
            match self.sign {
                Sign::Plus => Sign::Minus,
                Sign::Minus => Sign::Plus,
            },
            self.mag.clone(),
        )
    }

    /// Addition.
    pub fn add(&self, other: &Int) -> Int {
        if self.sign == other.sign {
            return Int::new(self.sign, self.mag.add(&other.mag));
        }
        match self.mag.cmp(&other.mag) {
            Ordering::Equal => Int::zero(),
            Ordering::Greater => Int::new(self.sign, self.mag.sub(&other.mag)),
            Ordering::Less => Int::new(other.sign, other.mag.sub(&self.mag)),
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Int) -> Int {
        self.add(&other.neg())
    }

    /// Multiplication.
    pub fn mul(&self, other: &Int) -> Int {
        let sign = if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Int::new(sign, self.mag.mul(&other.mag))
    }

    /// Multiplication by an unsigned big integer.
    pub fn mul_ubig(&self, other: &Ubig) -> Int {
        Int::new(self.sign, self.mag.mul(other))
    }

    /// Reduces into the canonical residue range `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_ubig(&self, m: &Ubig) -> Ubig {
        let r = self.mag.rem(m);
        match self.sign {
            Sign::Plus => r,
            Sign::Minus => {
                if r.is_zero() {
                    r
                } else {
                    m.sub(&r)
                }
            }
        }
    }

    /// Truncated division with remainder (`self = q*d + r`, `|r| < |d|`,
    /// `r` has the sign of `self`).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn divrem(&self, d: &Int) -> (Int, Int) {
        let (q, r) = self.mag.divrem(&d.mag).expect("divisor must be non-zero");
        let qs = if self.sign == d.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        (Int::new(qs, q), Int::new(self.sign, r))
    }

    /// Comparison against another `Int`.
    pub fn cmp_int(&self, other: &Int) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => {
                if self.is_zero() && other.is_zero() {
                    Ordering::Equal
                } else {
                    Ordering::Greater
                }
            }
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_int(other)
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "Int(-{:?})", self.mag)
        } else {
            write!(f, "Int({:?})", self.mag)
        }
    }
}

impl From<Ubig> for Int {
    fn from(v: Ubig) -> Int {
        Int::from_ubig(v)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        Int::from_i64(v)
    }
}

impl Default for Int {
    fn default() -> Self {
        Int::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_addition() {
        let a = Int::from_i64(10);
        let b = Int::from_i64(-4);
        assert_eq!(a.add(&b), Int::from_i64(6));
        assert_eq!(b.add(&a), Int::from_i64(6));
        assert_eq!(a.add(&a.neg()), Int::zero());
        assert_eq!(
            Int::from_i64(-10).add(&Int::from_i64(-5)),
            Int::from_i64(-15)
        );
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(Int::from_i64(-3).mul(&Int::from_i64(7)), Int::from_i64(-21));
        assert_eq!(Int::from_i64(-3).mul(&Int::from_i64(-7)), Int::from_i64(21));
        assert_eq!(Int::from_i64(-3).mul(&Int::zero()), Int::zero());
        assert!(!Int::from_i64(-3).mul(&Int::zero()).is_negative());
    }

    #[test]
    fn mod_reduces_to_range() {
        let m = Ubig::from_u64(7);
        assert_eq!(Int::from_i64(-1).mod_ubig(&m), Ubig::from_u64(6));
        assert_eq!(Int::from_i64(-15).mod_ubig(&m), Ubig::from_u64(6));
        assert_eq!(Int::from_i64(14).mod_ubig(&m), Ubig::zero());
        assert_eq!(Int::from_i64(-14).mod_ubig(&m), Ubig::zero());
    }

    #[test]
    fn ordering() {
        assert!(Int::from_i64(-5) < Int::from_i64(-4));
        assert!(Int::from_i64(-1) < Int::zero());
        assert!(Int::from_i64(1) > Int::from_i64(-100));
    }

    #[test]
    fn divrem_signs() {
        let (q, r) = Int::from_i64(-7).divrem(&Int::from_i64(2));
        assert_eq!(q, Int::from_i64(-3));
        assert_eq!(r, Int::from_i64(-1));
        let (q, r) = Int::from_i64(7).divrem(&Int::from_i64(-2));
        assert_eq!(q, Int::from_i64(-3));
        assert_eq!(r, Int::from_i64(1));
    }

    #[test]
    fn display() {
        assert_eq!(Int::from_i64(-42).to_string(), "-42");
        assert_eq!(Int::zero().to_string(), "0");
    }
}
