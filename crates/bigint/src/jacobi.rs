//! The Jacobi symbol, used for quadratic-residue tests in `QR(n)` and
//! Schnorr-group membership checks.

use crate::Ubig;

/// Computes the Jacobi symbol `(a/n)` for odd `n > 0`.
///
/// Returns `1`, `-1`, or `0` (when `gcd(a, n) != 1`).
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &Ubig, n: &Ubig) -> i32 {
    assert!(
        n.is_odd() && !n.is_zero(),
        "Jacobi symbol requires odd positive n"
    );
    let mut a = a.rem(n);
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        // Pull out factors of two: (2/n) = (-1)^((n^2-1)/8).
        let tz = a.trailing_zeros().unwrap();
        if tz % 2 == 1 {
            let n_mod8 = n.low_u64() & 7;
            if n_mod8 == 3 || n_mod8 == 5 {
                result = -result;
            }
        }
        a = a.shr(tz);
        // Quadratic reciprocity: flip sign iff a ≡ n ≡ 3 (mod 4).
        if (a.low_u64() & 3) == 3 && (n.low_u64() & 3) == 3 {
            result = -result;
        }
        std::mem::swap(&mut a, &mut n);
        a = a.rem(&n);
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

/// Is `a` a quadratic residue modulo the odd prime `p`?
///
/// Decided by Euler's criterion: `a^((p-1)/2) ≡ 1 (mod p)`.
pub fn is_qr_mod_prime(a: &Ubig, p: &Ubig) -> bool {
    let a = a.rem(p);
    if a.is_zero() {
        return false;
    }
    a.modpow(&p.sub_u64(1).shr(1), p).is_one()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_known_values() {
        // Table values for (a/7): 1,1,2->1? squares mod 7: 1,2,4.
        let seven = Ubig::from_u64(7);
        assert_eq!(jacobi(&Ubig::from_u64(1), &seven), 1);
        assert_eq!(jacobi(&Ubig::from_u64(2), &seven), 1);
        assert_eq!(jacobi(&Ubig::from_u64(3), &seven), -1);
        assert_eq!(jacobi(&Ubig::from_u64(4), &seven), 1);
        assert_eq!(jacobi(&Ubig::from_u64(5), &seven), -1);
        assert_eq!(jacobi(&Ubig::from_u64(6), &seven), -1);
        assert_eq!(jacobi(&Ubig::from_u64(7), &seven), 0);
        // (a/9) = 0 iff 3 | a, else 1 (9 is a square).
        let nine = Ubig::from_u64(9);
        assert_eq!(jacobi(&Ubig::from_u64(2), &nine), 1);
        assert_eq!(jacobi(&Ubig::from_u64(3), &nine), 0);
    }

    #[test]
    fn jacobi_matches_euler_for_primes() {
        let p = Ubig::from_u64(1009);
        for a in 1..60u64 {
            let a = Ubig::from_u64(a);
            let expected = if is_qr_mod_prime(&a, &p) { 1 } else { -1 };
            assert_eq!(jacobi(&a, &p), expected, "a = {a}");
        }
    }

    #[test]
    fn jacobi_multiplicative() {
        let n = Ubig::from_u64(9907); // odd prime
        for (a, b) in [(3u64, 5u64), (10, 21), (100, 33)] {
            let ja = jacobi(&Ubig::from_u64(a), &n);
            let jb = jacobi(&Ubig::from_u64(b), &n);
            let jab = jacobi(&Ubig::from_u64(a * b), &n);
            assert_eq!(jab, ja * jb);
        }
    }

    #[test]
    fn qr_detects_squares() {
        let p = Ubig::from_u64(10007);
        for x in 2..40u64 {
            let sq = Ubig::from_u64(x * x).rem(&p);
            assert!(is_qr_mod_prime(&sq, &p));
        }
        assert!(!is_qr_mod_prime(&Ubig::zero(), &p));
    }
}
