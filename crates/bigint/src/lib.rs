//! Arbitrary-precision integer arithmetic for the `secret-handshakes`
//! workspace.
//!
//! Every cryptographic substrate in this repository (Schnorr groups, safe-RSA
//! moduli, ACJT/Kiayias–Yung group signatures, Burmester–Desmedt and GDH key
//! agreement, Cramer–Shoup encryption) is built on this crate; no external
//! bignum library is used.
//!
//! The central type is [`Ubig`], an arbitrary-precision natural number stored
//! as little-endian 64-bit limbs, together with a signed companion [`Int`]
//! used by the extended Euclidean algorithm and by Fiat–Shamir proofs whose
//! responses are integers (possibly negative) rather than residues.
//!
//! # Highlights
//!
//! * Schoolbook and Karatsuba multiplication ([`Ubig::mul`]).
//! * Knuth Algorithm D division ([`Ubig::divrem`]).
//! * Montgomery modular exponentiation with a fixed 4-bit window
//!   ([`Ubig::modpow`], [`mont::MontCtx`]), shared-context caching
//!   ([`mont::MontCtx::shared`]), and an acceleration layer: fixed-base
//!   precomputation tables ([`fixed_base::FixedBase`]), Straus/Shamir
//!   simultaneous multi-exponentiation ([`mont::MontCtx::multi_exp`]) and
//!   CRT-split exponentiation for known factorizations
//!   ([`crt::CrtCtx`], [`Ubig::modpow_crt`]). Constant-trace kernels for
//!   secret exponents; explicitly-named `*_vartime` fast paths for public
//!   data, policed by the shs-lint `vartime-usage` rule.
//! * Miller–Rabin primality testing and (safe-)prime generation
//!   ([`prime`]).
//! * Binary and extended GCD, modular inverse, Jacobi symbol, CRT
//!   ([`gcd`], [`jacobi`]).
//! * Instrumentation counters ([`counters`]) so experiments can report the
//!   *number* of modular exponentiations a protocol performs — the unit in
//!   which the paper states its complexity claims.
//! * Limb-level operation traces ([`trace`], behind the `trace-ops`
//!   feature) asserting that the Montgomery kernels do *secret-independent*
//!   work: same-width exponents produce identical traces.
//!
//! # Example
//!
//! ```rust
//! use shs_bigint::Ubig;
//!
//! let p = Ubig::from_u64(101);
//! let g = Ubig::from_u64(7);
//! // 7^100 mod 101 == 1 by Fermat's little theorem.
//! assert_eq!(g.modpow(&Ubig::from_u64(100), &p), Ubig::one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod div;
mod fmt;
mod int;
mod mul;
mod ubig;

pub mod counters;
pub mod crt;
pub mod fixed_base;
pub mod gcd;
pub mod jacobi;
pub mod mont;
pub mod prime;
pub mod rng;
pub mod trace;

pub use crt::CrtCtx;
pub use fixed_base::FixedBase;
pub use int::{Int, Sign};
pub use ubig::Ubig;

/// Errors produced by fallible bigint operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigintError {
    /// Division or reduction by zero was attempted.
    DivisionByZero,
    /// A modular inverse was requested for a non-invertible element.
    NotInvertible,
    /// A string could not be parsed as a number in the requested radix.
    ParseError,
    /// CRT moduli were not pairwise coprime.
    NotCoprime,
}

impl std::fmt::Display for BigintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BigintError::DivisionByZero => write!(f, "division by zero"),
            BigintError::NotInvertible => {
                write!(f, "element is not invertible modulo the given modulus")
            }
            BigintError::ParseError => write!(f, "invalid digit for the requested radix"),
            BigintError::NotCoprime => write!(f, "CRT moduli are not pairwise coprime"),
        }
    }
}

impl std::error::Error for BigintError {}
