//! Montgomery modular arithmetic (CIOS reduction, Koç et al.) and
//! fixed-window exponentiation, plus the shared-context cache and the
//! Straus/Shamir simultaneous multi-exponentiation kernels.

use crate::Ubig;
use std::sync::{Arc, Mutex, OnceLock};

/// Window width (bits) for fixed-window exponentiation.
pub(crate) const WINDOW: u32 = 4;

/// Capacity of the process-wide [`MontCtx::shared`] cache. A handshake
/// workspace touches a handful of moduli (RSA n per scheme, Schnorr p/q,
/// CRT halves); 16 covers every live modulus with room to spare.
const SHARED_CACHE_CAP: usize = 16;

fn shared_cache() -> &'static Mutex<Vec<Arc<MontCtx>>> {
    static CACHE: OnceLock<Mutex<Vec<Arc<MontCtx>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// A reusable Montgomery context for an odd modulus.
///
/// Construction costs one division; every subsequent multiplication is
/// division-free. Used by [`Ubig::modpow`] and by `shs-groups` for repeated
/// exponentiation under the same modulus.
#[derive(Debug, Clone)]
pub struct MontCtx {
    n: Ubig,
    n_limbs: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^{64k}`.
    rr: Vec<u64>,
    /// `R mod n` (the Montgomery form of one).
    r1: Vec<u64>,
    k: usize,
}

impl MontCtx {
    /// Creates a context for the given odd modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or < 3.
    pub fn new(n: Ubig) -> MontCtx {
        assert!(n.is_odd(), "Montgomery modulus must be odd");
        assert!(n > Ubig::one(), "Montgomery modulus must be >= 3");
        let k = n.limbs().len();
        let mut n_limbs = n.limbs().to_vec();
        n_limbs.resize(k, 0);

        // Newton iteration for n0^{-1} mod 2^64 (converges in 6 steps).
        let n0 = n_limbs[0];
        let mut inv: u64 = n0;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        let r = Ubig::one().shl(64 * k as u32).rem(&n);
        let rr_big = r.mul(&r).rem(&n);
        let rr = pad(rr_big.limbs(), k);
        let r1 = pad(r.limbs(), k);

        MontCtx {
            n,
            n_limbs,
            n0inv,
            rr,
            r1,
            k,
        }
    }

    /// Returns a shared, cached context for the given odd modulus.
    ///
    /// Contexts are expensive to build (one full division for `R mod n`,
    /// another for `R² mod n`); callers that exponentiate repeatedly under
    /// the same modulus — `Ubig::modpow`, Miller–Rabin rounds, group
    /// wrappers — hit a process-wide MRU cache instead of rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or < 3 (on a cache miss; see [`MontCtx::new`]).
    pub fn shared(n: &Ubig) -> Arc<MontCtx> {
        let mut cache = shared_cache().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = cache.iter().position(|c| c.n == *n) {
            let ctx = cache.remove(pos);
            cache.push(Arc::clone(&ctx));
            return ctx;
        }
        drop(cache);
        // Build outside the lock: context construction does divisions.
        let ctx = Arc::new(MontCtx::new(n.clone()));
        let mut cache = shared_cache().lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= SHARED_CACHE_CAP {
            cache.remove(0);
        }
        cache.push(Arc::clone(&ctx));
        ctx
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// `R mod n`, the Montgomery form of one.
    pub(crate) fn one_mont(&self) -> &[u64] {
        &self.r1
    }

    /// CIOS Montgomery multiplication of two k-limb Montgomery-form values.
    ///
    /// Constant-trace: the limb-operation sequence depends only on `k`,
    /// never on the values of `a` or `b` (the final subtraction is always
    /// computed and selected by mask, not branched on).
    #[allow(clippy::needless_range_loop)] // textbook CIOS index arithmetic
    pub(crate) fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let n = &self.n_limbs;
        // 2k² limb multiplications: k per a·b[i] pass, k per reduction pass.
        crate::trace::limb_mul(2 * (k as u64) * (k as u64));
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let bi = b[i];
            // t += a * b[i]
            let mut carry = 0u128;
            for j in 0..k {
                let s = t[j] as u128 + (a[j] as u128) * (bi as u128) + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // Reduce one limb: t = (t + m*n) / 2^64.
            let m = t[0].wrapping_mul(self.n0inv);
            let s = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + (m as u128) * (n[j] as u128) + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
        }
        // Final subtraction, branch-free: always compute `t - n` and select
        // the reduced value by mask. CIOS guarantees the accumulator is
        // below 2n, so one conditional subtraction suffices; doing it as a
        // masked select removes the classic value-dependent timing leak of
        // the "sometimes subtract" step.
        crate::trace::limb_add(2 * k as u64);
        let overflow = t[k] != 0;
        let mut out = t[..k].to_vec();
        let mut diff = vec![0u64; k];
        let mut borrow = 0u64;
        for i in 0..k {
            let (d, b1) = out[i].overflowing_sub(n[i]);
            let (d, b2) = d.overflowing_sub(borrow);
            diff[i] = d;
            borrow = u64::from(b1) | u64::from(b2);
        }
        // Subtract when the accumulator overflowed R or when out >= n
        // (equivalently: the trial subtraction did not borrow). With the
        // overflow limb, the borrow cancels against the hidden 2^{64k}.
        let need_sub = overflow | (borrow == 0);
        let mask = 0u64.wrapping_sub(u64::from(need_sub));
        for i in 0..k {
            out[i] = (diff[i] & mask) | (out[i] & !mask);
        }
        out
    }

    pub(crate) fn to_mont(&self, x: &Ubig) -> Vec<u64> {
        let reduced = x.rem(&self.n);
        self.mont_mul(&pad(reduced.limbs(), self.k), &self.rr)
    }

    #[allow(clippy::wrong_self_convention)] // Montgomery-form terminology
    pub(crate) fn from_mont(&self, x: &[u64]) -> Ubig {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        Ubig::from_limbs(self.mont_mul(x, &one))
    }

    /// Modular multiplication `a*b mod n` via Montgomery form.
    pub fn modmul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        crate::counters::record_modmul();
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` with a fixed 4-bit window.
    ///
    /// Secret-independent for a fixed public bit-width: every window
    /// performs exactly `WINDOW` squarings and one multiplication (a zero
    /// window multiplies by `table[0] = 1` in Montgomery form, which has
    /// the same operation trace as any other entry), and the table entry
    /// is fetched with a masked scan over the whole table rather than an
    /// index. Only `exp.bits()` — the public width — shapes the operation
    /// sequence; the bigint `trace-ops` tests pin this down.
    pub fn modpow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        let base_m = self.to_mont(base);
        let table = self.pow_table(&base_m);
        let bits = exp.bits();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            let entry = select_entry(&table, window_chunk(exp, bits, w));
            acc = self.mont_mul(&acc, &entry);
        }
        self.from_mont(&acc)
    }

    /// Variable-time modular exponentiation for **public** data.
    ///
    /// Same 4-bit fixed window as [`MontCtx::modpow`], but the table entry
    /// is fetched by direct index (no masked scan) and zero windows skip
    /// their multiplication, so the operation trace depends on the exponent
    /// *value*. Use only where base, exponent and result are all public —
    /// signature/proof verification over broadcast data. The shs-lint
    /// `vartime-usage` rule pins down the allowed call sites.
    pub fn modpow_vartime(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        let base_m = self.to_mont(base);
        let table = self.pow_table(&base_m);
        let bits = exp.bits();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.r1.clone();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..WINDOW {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let chunk = window_chunk(exp, bits, w);
            if chunk != 0 {
                acc = self.mont_mul(&acc, &table[chunk]);
                started = true;
            }
        }
        self.from_mont(&acc)
    }

    /// Constant-trace Straus/Shamir simultaneous multi-exponentiation:
    /// `∏ baseᵢ^expᵢ mod n`.
    ///
    /// One shared squaring chain serves every term, so `t` terms of
    /// `b`-bit exponents cost `b` squarings plus `t·⌈b/4⌉` masked-scan
    /// multiplications — versus `t·b` squarings for `t` separate
    /// [`MontCtx::modpow`] calls. Safe for secret exponents: each digit is
    /// fetched with the same masked table scan as `modpow`, every window
    /// multiplies (a zero digit multiplies by 1 in Montgomery form), and
    /// all exponents are processed to the width of the *longest* one, so
    /// the trace depends only on the term count, the modulus width and
    /// `max(expᵢ.bits())`.
    pub fn multi_exp(&self, pairs: &[(&Ubig, &Ubig)]) -> Ubig {
        let Some(bits) = pairs.iter().map(|(_, e)| e.bits()).max() else {
            return Ubig::one().rem(&self.n);
        };
        let tables: Vec<Vec<Vec<u64>>> = pairs
            .iter()
            .map(|(b, _)| self.pow_table(&self.to_mont(b)))
            .collect();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            for (table, (_, exp)) in tables.iter().zip(pairs) {
                let entry = select_entry(table, window_chunk(exp, bits, w));
                acc = self.mont_mul(&acc, &entry);
            }
        }
        self.from_mont(&acc)
    }

    /// Variable-time Straus multi-exponentiation for **public** data:
    /// `∏ baseᵢ^expᵢ mod n` with direct table indexing and zero digits
    /// skipped. The workhorse of signature/ZK-proof verification, where
    /// every operand arrived on the broadcast channel. The shs-lint
    /// `vartime-usage` rule pins down the allowed call sites.
    pub fn multi_exp_vartime(&self, pairs: &[(&Ubig, &Ubig)]) -> Ubig {
        // Zero-exponent terms contribute a factor of one: drop them.
        let live: Vec<&(&Ubig, &Ubig)> = pairs.iter().filter(|(_, e)| !e.is_zero()).collect();
        let Some(bits) = live.iter().map(|(_, e)| e.bits()).max() else {
            return Ubig::one().rem(&self.n);
        };
        let tables: Vec<Vec<Vec<u64>>> = live
            .iter()
            .map(|(b, _)| self.pow_table(&self.to_mont(b)))
            .collect();
        let windows = bits.div_ceil(WINDOW);
        let mut acc = self.r1.clone();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..WINDOW {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            for (table, (_, exp)) in tables.iter().zip(&live) {
                let chunk = window_chunk(exp, bits, w);
                if chunk != 0 {
                    acc = self.mont_mul(&acc, &table[chunk]);
                    started = true;
                }
            }
        }
        self.from_mont(&acc)
    }

    /// Precomputes `base^0 .. base^{2^WINDOW - 1}` in Montgomery form.
    pub(crate) fn pow_table(&self, base_m: &[u64]) -> Vec<Vec<u64>> {
        let table_len = 1usize << WINDOW;
        let mut table = Vec::with_capacity(table_len);
        table.push(self.r1.clone());
        table.push(base_m.to_vec());
        for i in 2..table_len {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, base_m));
        }
        table
    }
}

/// Extracts the 4-bit window `w` of `exp` (bits past `bits` read as zero).
pub(crate) fn window_chunk(exp: &Ubig, bits: u32, w: u32) -> usize {
    let mut chunk = 0usize;
    for b in (0..WINDOW).rev() {
        let bit_idx = w * WINDOW + b;
        let bit = bit_idx < bits && exp.bit(bit_idx);
        chunk = (chunk << 1) | usize::from(bit);
    }
    chunk
}

/// Masked constant-trace table lookup: reads every entry and keeps the
/// selected one, so neither the branch predictor nor the data cache sees
/// which window value the secret exponent produced.
pub(crate) fn select_entry(table: &[Vec<u64>], idx: usize) -> Vec<u64> {
    let mut out = vec![0u64; table[0].len()];
    for (i, entry) in table.iter().enumerate() {
        let mask = 0u64.wrapping_sub(u64::from(i == idx));
        for (o, &e) in out.iter_mut().zip(entry) {
            *o |= e & mask;
        }
    }
    out
}

fn pad(limbs: &[u64], k: usize) -> Vec<u64> {
    let mut v = limbs.to_vec();
    v.resize(k, 0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow reference modpow by square-and-multiply with full divisions.
    fn slow_modpow(base: &Ubig, exp: &Ubig, m: &Ubig) -> Ubig {
        let mut acc = Ubig::one().rem(m);
        let mut b = base.rem(m);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = acc.mul(&b).rem(m);
            }
            b = b.mul(&b).rem(m);
        }
        acc
    }

    #[test]
    fn matches_slow_modpow_small() {
        let m = Ubig::from_u64(1_000_000_007);
        let ctx = MontCtx::new(m.clone());
        for (b, e) in [(2u64, 10u64), (31337, 65537), (999999999, 123456789)] {
            let b = Ubig::from_u64(b);
            let e = Ubig::from_u64(e);
            assert_eq!(ctx.modpow(&b, &e), slow_modpow(&b, &e, &m));
        }
    }

    #[test]
    fn matches_slow_modpow_multilimb() {
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for limbs in [2usize, 4, 7] {
            let mut mv: Vec<u64> = (0..limbs).map(|_| next()).collect();
            mv[0] |= 1; // odd
            let m = Ubig::from_limbs(mv);
            let ctx = MontCtx::new(m.clone());
            let b = Ubig::from_limbs((0..limbs + 1).map(|_| next()).collect());
            let e = Ubig::from_limbs((0..2).map(|_| next()).collect());
            assert_eq!(ctx.modpow(&b, &e), slow_modpow(&b, &e, &m), "limbs {limbs}");
        }
    }

    #[test]
    fn modmul_matches_naive() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let ctx = MontCtx::new(m.clone());
        let a = Ubig::from_hex("123456789abcdef").unwrap();
        let b = Ubig::from_hex("fedcba9876543210fedcba").unwrap();
        assert_eq!(ctx.modmul(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn exponent_edge_cases() {
        let m = Ubig::from_u64(101);
        let ctx = MontCtx::new(m.clone());
        assert_eq!(ctx.modpow(&Ubig::from_u64(7), &Ubig::zero()), Ubig::one());
        assert_eq!(
            ctx.modpow(&Ubig::from_u64(7), &Ubig::one()),
            Ubig::from_u64(7)
        );
        assert_eq!(ctx.modpow(&Ubig::zero(), &Ubig::from_u64(5)), Ubig::zero());
        // Base larger than the modulus gets reduced.
        assert_eq!(
            ctx.modpow(&Ubig::from_u64(108), &Ubig::from_u64(2)),
            Ubig::from_u64(49)
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_modulus_rejected() {
        let _ = MontCtx::new(Ubig::from_u64(100));
    }

    #[test]
    fn vartime_matches_ct() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let ctx = MontCtx::new(m.clone());
        for (b, e) in [
            (Ubig::from_u64(2), Ubig::zero()),
            (Ubig::from_u64(2), Ubig::one()),
            (Ubig::from_u64(31337), Ubig::from_u64(65537)),
            (
                Ubig::from_hex("deadbeefcafef00d").unwrap(),
                // Interior zero window exercises the skip path.
                Ubig::from_hex("a00000000000000b").unwrap(),
            ),
        ] {
            assert_eq!(ctx.modpow_vartime(&b, &e), ctx.modpow(&b, &e));
        }
    }

    #[test]
    fn multi_exp_matches_product_of_modpows() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1").unwrap();
        let ctx = MontCtx::new(m.clone());
        let bases = [
            Ubig::from_u64(2),
            Ubig::from_u64(31337),
            Ubig::from_hex("deadbeefcafef00d1234").unwrap(),
        ];
        let exps = [
            Ubig::from_u64(65537),
            Ubig::zero(),
            Ubig::from_hex("fedcba9876543210fedcba9876543210ff").unwrap(),
        ];
        let pairs: Vec<(&Ubig, &Ubig)> = bases.iter().zip(exps.iter()).collect();
        let naive = bases
            .iter()
            .zip(&exps)
            .fold(Ubig::one(), |acc, (b, e)| acc.mulm(&ctx.modpow(b, e), &m));
        assert_eq!(ctx.multi_exp(&pairs), naive);
        assert_eq!(ctx.multi_exp_vartime(&pairs), naive);
        // Empty product is one.
        assert_eq!(ctx.multi_exp(&[]), Ubig::one());
        assert_eq!(ctx.multi_exp_vartime(&[]), Ubig::one());
    }

    #[test]
    fn shared_cache_returns_same_ctx() {
        let m = Ubig::from_hex("abcdef123456789abcdef12345670001").unwrap();
        let a = MontCtx::shared(&m);
        let b = MontCtx::shared(&m);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.modulus(), &m);
    }
}
