//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold.

use crate::Ubig;

/// Operand size (in limbs) above which Karatsuba is used.
const KARATSUBA_THRESHOLD: usize = 24;

impl Ubig {
    /// Multiplication: `self * other`.
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let out = mul_slices(&self.limbs, &other.limbs);
        Ubig::from_limbs(out)
    }

    /// Multiplication by a `u64`.
    pub fn mul_u64(&self, v: u64) -> Ubig {
        if v == 0 || self.is_zero() {
            return Ubig::zero();
        }
        crate::trace::limb_mul(self.limbs.len() as u64);
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            let t = (l as u128) * (v as u128) + carry as u128;
            out.push(t as u64);
            carry = (t >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        Ubig::from_limbs(out)
    }

    /// Squaring (currently delegates to `mul`).
    pub fn square(&self) -> Ubig {
        self.mul(self)
    }
}

fn mul_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        schoolbook(a, b)
    } else {
        karatsuba(a, b)
    }
}

fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            // Value-dependent shortcut: visible in the op trace as a
            // missing row of limb multiplications plus a branch event.
            crate::trace::branch();
            continue;
        }
        crate::trace::limb_mul(b.len() as u64);
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let t = (ai as u128) * (bj as u128) + out[i + j] as u128 + carry as u128;
            out[i + j] = t as u64;
            carry = (t >> 64) as u64;
        }
        out[i + b.len()] = carry;
    }
    out
}

/// Karatsuba multiplication on normalized limb slices.
fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let split = a.len().max(b.len()) / 2;
    if a.len() <= split || b.len() <= split {
        // One operand fits entirely in the low half; schoolbook handles the
        // imbalance efficiently enough.
        return schoolbook(a, b);
    }
    let (a0, a1) = a.split_at(split);
    let (b0, b1) = b.split_at(split);
    let a0 = trim(a0);
    let b0 = trim(b0);

    let z0 = mul_slices(a0, b0); // low * low
    let z2 = mul_slices(a1, b1); // high * high

    // (a0 + a1)(b0 + b1)
    let asum = add_slices(a0, a1);
    let bsum = add_slices(b0, b1);
    let mut z1 = mul_slices(&asum, &bsum);
    // z1 -= z0 + z2
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);

    // result = z0 + z1 << (64*split) + z2 << (2*64*split)
    let mut out = vec![0u64; a.len() + b.len()];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    out
}

fn trim(s: &[u64]) -> &[u64] {
    let mut len = s.len();
    while len > 0 && s[len - 1] == 0 {
        len -= 1;
    }
    &s[..len]
}

fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(big.len() + 1);
    let mut carry = 0u64;
    #[allow(clippy::needless_range_loop)] // parallel indexing of two slices
    for i in 0..big.len() {
        let s = small.get(i).copied().unwrap_or(0);
        let (t, c1) = big[i].overflowing_add(s);
        let (t, c2) = t.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out.push(t);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a -= b`, asserting no final borrow (caller guarantees `a >= b`).
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    #[allow(clippy::needless_range_loop)] // parallel indexing of two slices
    for i in 0..a.len() {
        let bv = b.get(i).copied().unwrap_or(0);
        let (t, b1) = a[i].overflowing_sub(bv);
        let (t, b2) = t.overflowing_sub(borrow);
        borrow = (b1 as u64) + (b2 as u64);
        a[i] = t;
    }
    debug_assert_eq!(borrow, 0, "karatsuba interior subtraction underflow");
}

/// `out[offset..] += v` with carry propagation; `out` must be long enough.
fn add_at(out: &mut [u64], v: &[u64], offset: usize) {
    let mut carry = 0u64;
    let mut i = 0;
    while i < v.len() || carry != 0 {
        let idx = offset + i;
        if idx >= out.len() {
            debug_assert_eq!(carry, 0);
            debug_assert!(v[i..].iter().all(|&x| x == 0));
            break;
        }
        let add = v.get(i).copied().unwrap_or(0);
        let (t, c1) = out[idx].overflowing_add(add);
        let (t, c2) = t.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out[idx] = t;
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        assert_eq!(
            Ubig::from_u64(7).mul(&Ubig::from_u64(6)),
            Ubig::from_u64(42)
        );
        assert_eq!(Ubig::from_u64(7).mul(&Ubig::zero()), Ubig::zero());
        let max = Ubig::from_u64(u64::MAX);
        assert_eq!(
            max.mul(&max),
            Ubig::from_u128((u64::MAX as u128) * (u64::MAX as u128))
        );
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = Ubig::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert_eq!(a.mul_u64(99991), a.mul(&Ubig::from_u64(99991)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Deterministic pseudo-random limbs big enough to trigger Karatsuba.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for size in [30usize, 49, 64, 100] {
            let a: Vec<u64> = (0..size).map(|_| next()).collect();
            let b: Vec<u64> = (0..size + 7).map(|_| next()).collect();
            let kara = karatsuba(&a, &b);
            let school = schoolbook(&a, &b);
            assert_eq!(trim(&kara), trim(&school), "size {size}");
        }
    }

    #[test]
    fn distributivity() {
        let a = Ubig::from_u128(u128::MAX - 5);
        let b = Ubig::from_u128(u128::MAX / 3);
        let c = Ubig::from_u64(0xdead_beef);
        // a*(b+c) == a*b + a*c
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}
