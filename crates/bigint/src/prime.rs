//! Primality testing (Miller–Rabin) and prime generation, including the
//! safe primes (`p = 2p' + 1`) required by the ACJT / Kiayias–Yung group
//! signature setting and by Schnorr groups.

use crate::{rng, Ubig};
use rand::RngCore;
use std::sync::OnceLock;

/// Number of Miller–Rabin rounds used by default (error < 4^-64 plus the
/// much stronger average-case bounds for random candidates).
pub const DEFAULT_MR_ROUNDS: u32 = 32;

/// Small primes used for trial-division prefiltering.
fn small_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        const LIMIT: usize = 8192;
        let mut sieve = vec![true; LIMIT];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..LIMIT {
            if sieve[i] {
                let mut j = i * i;
                while j < LIMIT {
                    sieve[j] = false;
                    j += i;
                }
            }
        }
        (2..LIMIT as u64).filter(|&i| sieve[i as usize]).collect()
    })
}

/// Trial division against the small-prime table. Returns `false` if a small
/// factor is found (and the number is not that prime itself).
fn passes_trial_division(n: &Ubig) -> bool {
    for &p in small_primes() {
        let (q, r) = n.divrem_u64(p);
        if r == 0 {
            // n is divisible by p; n is prime only if n == p.
            return n.to_u64() == Some(p);
        }
        if q < Ubig::from_u64(p) {
            // p^2 > n and no divisor found: definitely prime.
            return true;
        }
    }
    true
}

/// One Miller–Rabin round with the given base.
fn mr_round(n: &Ubig, base: &Ubig, d: &Ubig, s: u32) -> bool {
    let n_minus_1 = n.sub_u64(1);
    let mut x = base.modpow(d, n);
    if x.is_one() || x == n_minus_1 {
        crate::trace::branch();
        return true;
    }
    for _ in 1..s {
        // The witness loop exits early on ±1 — inherently value-dependent,
        // recorded so the trace harness can see how far each round ran.
        crate::trace::branch();
        x = x.sqm(n);
        if x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false;
        }
    }
    false
}

/// Probabilistic primality test: trial division followed by `rounds`
/// Miller–Rabin rounds with random bases (plus base 2).
pub fn is_probable_prime(n: &Ubig, rounds: u32, rng: &mut (impl RngCore + ?Sized)) -> bool {
    if let Some(v) = n.to_u64() {
        if v < 2 {
            return false;
        }
        if v == 2 || v == 3 {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    if !passes_trial_division(n) {
        return false;
    }
    if n.to_u64().is_some_and(|v| (v as u128) < 8192 * 8192) {
        // Trial division was exhaustive for such small numbers.
        return true;
    }

    // n-1 = d * 2^s with d odd.
    let n_minus_1 = n.sub_u64(1);
    let s = n_minus_1
        .trailing_zeros()
        .expect("n-1 of odd n>2 is nonzero");
    let d = n_minus_1.shr(s);

    if !mr_round(n, &Ubig::from_u64(2), &d, s) {
        return false;
    }
    let two = Ubig::from_u64(2);
    let hi = n_minus_1.clone();
    for _ in 0..rounds {
        let base = rng::range(rng, &two, &hi);
        if !mr_round(n, &base, &d, s) {
            return false;
        }
    }
    true
}

/// Convenience wrapper using [`DEFAULT_MR_ROUNDS`].
pub fn is_prime(n: &Ubig, rng: &mut (impl RngCore + ?Sized)) -> bool {
    is_probable_prime(n, DEFAULT_MR_ROUNDS, rng)
}

/// Generates a random prime with exactly `bits` bits.
///
/// Uses an incremental search: a random odd starting point, residues against
/// the small-prime table maintained incrementally, Miller–Rabin on
/// survivors.
///
/// # Panics
///
/// Panics if `bits < 3`.
pub fn gen_prime(bits: u32, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
    assert!(bits >= 3, "primes below 3 bits are not useful here");
    loop {
        let start = rng::random_odd_bits(rng, bits);
        if let Some(p) = search_from(
            &start,
            bits,
            8192,
            |c, r| is_probable_prime(c, DEFAULT_MR_ROUNDS, r),
            rng,
        ) {
            return p;
        }
    }
}

/// Incremental prime search: steps `start, start+2, start+4, ...` for up to
/// `max_steps` candidates, keeping residues modulo the small primes
/// incrementally so that most composites are rejected without any bignum
/// work. Candidates are also required to keep the requested bit-length.
fn search_from<R: RngCore + ?Sized>(
    start: &Ubig,
    bits: u32,
    max_steps: u64,
    test: impl Fn(&Ubig, &mut R) -> bool,
    rng: &mut R,
) -> Option<Ubig> {
    let primes = small_primes();
    // residues[i] = start mod primes[i]
    let residues: Vec<u64> = primes.iter().map(|&p| start.divrem_u64(p).1).collect();
    let mut offset = 0u64;
    while offset < max_steps * 2 {
        let divisible = primes.iter().zip(&residues).any(|(&p, &r)| {
            (r + offset).is_multiple_of(p) && !(offset == 0 && start.to_u64() == Some(p))
        });
        if !divisible {
            let candidate = start.add_u64(offset);
            if candidate.bits() != bits {
                return None; // walked out of the bit range; caller restarts
            }
            if test(&candidate, rng) {
                return Some(candidate);
            }
        }
        offset += 2;
    }
    None
}

/// Generates a *safe prime* `p = 2q + 1` (with `q` also prime) of exactly
/// `bits` bits, returning `(p, q)`.
///
/// # Panics
///
/// Panics if `bits < 5`.
pub fn gen_safe_prime(bits: u32, rng: &mut (impl RngCore + ?Sized)) -> (Ubig, Ubig) {
    assert!(bits >= 5, "safe primes below 5 bits are not useful here");
    let primes = small_primes();
    loop {
        // Search on q of (bits-1) bits; p = 2q+1 must avoid small factors
        // too, so both are filtered against the small-prime table
        // incrementally.
        let q = rng::random_odd_bits(rng, bits - 1);
        let mut steps = 0u32;
        let residues: Vec<u64> = primes.iter().map(|&p| q.divrem_u64(p).1).collect();
        let mut offset = 0u64;
        'search: while steps < 4096 {
            let bad = primes.iter().zip(&residues).any(|(&p, &r)| {
                let rq = (r + offset) % p;
                // q divisible by p, or p_candidate = 2q+1 divisible by p
                rq == 0 || (2 * rq + 1).is_multiple_of(p)
            });
            if !bad {
                let qc = q.add_u64(offset);
                if qc.bits() != bits - 1 {
                    break 'search;
                }
                if is_probable_prime(&qc, DEFAULT_MR_ROUNDS, rng) {
                    let pc = qc.shl(1).add_u64(1);
                    if pc.bits() == bits && is_probable_prime(&pc, DEFAULT_MR_ROUNDS, rng) {
                        return (pc, qc);
                    }
                }
                steps += 1;
            }
            offset += 2;
            if offset > 1 << 22 {
                break 'search;
            }
        }
        // Fall through: restart the outer loop with a fresh random q.
    }
}

/// Generates a random prime in the half-open interval `[lo, hi)`.
///
/// Used by ACJT to draw the per-member prime `e ∈ Γ`.
///
/// # Panics
///
/// Panics if the interval is empty.
pub fn gen_prime_in_range(lo: &Ubig, hi: &Ubig, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
    assert!(lo < hi, "empty interval");
    loop {
        let mut candidate = rng::range(rng, lo, hi);
        candidate.set_bit(0); // make odd (may equal lo-1+1; still in range since hi-lo > 1 in practice)
        if candidate >= *hi {
            continue;
        }
        if candidate < *lo {
            continue;
        }
        if is_probable_prime(&candidate, DEFAULT_MR_ROUNDS, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn small_prime_classification() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 101, 997, 65537, 1_000_000_007];
        let composites = [
            0u64,
            1,
            4,
            9,
            100,
            561, /* Carmichael */
            65535,
            1_000_000_005,
        ];
        for p in primes {
            assert!(is_prime(&Ubig::from_u64(p), &mut r), "{p} should be prime");
        }
        for c in composites {
            assert!(
                !is_prime(&Ubig::from_u64(c), &mut r),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn known_large_prime() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let m127 = Ubig::one().shl(127).sub_u64(1);
        assert!(is_prime(&m127, &mut r));
        // 2^128 - 159 is prime; 2^128 - 1 is not.
        let p = Ubig::one().shl(128).sub_u64(159);
        assert!(is_prime(&p, &mut r));
        let np = Ubig::one().shl(128).sub_u64(1);
        assert!(!is_prime(&np, &mut r));
    }

    #[test]
    fn generated_primes_have_right_size() {
        let mut r = rng();
        for bits in [32u32, 64, 128, 256] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bits(), bits);
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut r = rng();
        let (p, q) = gen_safe_prime(96, &mut r);
        assert_eq!(p.bits(), 96);
        assert_eq!(p, q.shl(1).add_u64(1));
        assert!(is_prime(&p, &mut r));
        assert!(is_prime(&q, &mut r));
    }

    #[test]
    fn prime_in_range() {
        let mut r = rng();
        let lo = Ubig::from_u64(1 << 20);
        let hi = Ubig::from_u64(1 << 21);
        for _ in 0..5 {
            let p = gen_prime_in_range(&lo, &hi, &mut r);
            assert!(p >= lo && p < hi);
            assert!(is_prime(&p, &mut r));
        }
    }
}
