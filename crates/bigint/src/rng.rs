//! Uniform random [`Ubig`] generation from any [`rand::RngCore`].

use crate::Ubig;
use rand::RngCore;

/// A uniformly random number with exactly `bits` significant bits
/// (the top bit is always set); `bits == 0` yields zero.
pub fn random_bits(rng: &mut (impl RngCore + ?Sized), bits: u32) -> Ubig {
    if bits == 0 {
        return Ubig::zero();
    }
    let limbs = bits.div_ceil(64) as usize;
    let mut v = vec![0u64; limbs];
    for l in v.iter_mut() {
        *l = rng.next_u64();
    }
    let top_bits = ((bits - 1) % 64) + 1;
    let last = &mut v[limbs - 1];
    if top_bits < 64 {
        *last &= (1u64 << top_bits) - 1;
    }
    *last |= 1u64 << (top_bits - 1);
    Ubig::from_limbs(v)
}

/// A uniformly random number in `[0, bound)` via rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn below(rng: &mut (impl RngCore + ?Sized), bound: &Ubig) -> Ubig {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bits();
    let limbs = bits.div_ceil(64) as usize;
    let top_bits = ((bits - 1) % 64) + 1;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    loop {
        let mut v = vec![0u64; limbs];
        for l in v.iter_mut() {
            *l = rng.next_u64();
        }
        v[limbs - 1] &= mask;
        let candidate = Ubig::from_limbs(v);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// A uniformly random number in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn range(rng: &mut (impl RngCore + ?Sized), lo: &Ubig, hi: &Ubig) -> Ubig {
    assert!(lo < hi, "empty range");
    let width = hi.sub(lo);
    lo.add(&below(rng, &width))
}

/// A uniformly random odd number with exactly `bits` bits (`bits >= 2`).
pub fn random_odd_bits(rng: &mut (impl RngCore + ?Sized), bits: u32) -> Ubig {
    assert!(
        bits >= 2,
        "need at least 2 bits for an odd number with top bit set"
    );
    let mut n = random_bits(rng, bits);
    n.set_bit(0);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_bits_has_exact_width() {
        let mut r = rng();
        for bits in [1u32, 5, 63, 64, 65, 200] {
            let n = random_bits(&mut r, bits);
            assert_eq!(n.bits(), bits, "bits {bits}");
        }
        assert_eq!(random_bits(&mut r, 0), Ubig::zero());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = rng();
        let bound = Ubig::from_u64(1000);
        for _ in 0..200 {
            assert!(below(&mut r, &bound) < bound);
        }
        // A power-of-two bound exercises the mask edge.
        let bound = Ubig::one().shl(64);
        for _ in 0..50 {
            assert!(below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn below_covers_small_range() {
        // All values of [0, 4) should appear quickly.
        let mut r = rng();
        let bound = Ubig::from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[below(&mut r, &bound).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = rng();
        let lo = Ubig::from_u64(500);
        let hi = Ubig::from_u64(520);
        for _ in 0..100 {
            let v = range(&mut r, &lo, &hi);
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn odd_is_odd() {
        let mut r = rng();
        for _ in 0..20 {
            let n = random_odd_bits(&mut r, 128);
            assert!(n.is_odd());
            assert_eq!(n.bits(), 128);
        }
    }
}
