//! Limb-level operation traces for secret-independence tests (the
//! `trace-ops` feature).
//!
//! [`crate::counters`] counts API-level operations to back the paper's
//! complexity claims; this module counts *limb-level* events —
//! multiplications, additions/subtractions, quotient-digit estimates, and
//! data-dependent branches — inside the bigint kernels
//! ([`crate::mont::MontCtx`], [`crate::Ubig::mul`], [`crate::Ubig::divrem`],
//! [`crate::gcd::ext_gcd`], Miller–Rabin). Tests capture the trace of a
//! computation over one secret and assert it is *identical* to the trace
//! over another secret of the same public width: any secret-dependent
//! early-exit, skipped multiply, or conditional subtraction shows up as a
//! count difference. This is the dynamic complement of the `shs-lint`
//! static pass, which cannot see control flow.
//!
//! Recording is compiled to a no-op unless the crate is built with
//! `--features trace-ops`, so production builds pay nothing. Counters are
//! thread-local; recording granularity is one call per kernel pass (a
//! whole inner loop records its limb count at once), keeping the
//! instrumented overhead far below one counter update per limb.

/// A snapshot of limb-level event counts on the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpTrace {
    /// Limb additions / subtractions (carry chains).
    pub limb_add: u64,
    /// Limb multiplications (64×64 → 128).
    pub limb_mul: u64,
    /// Quotient-digit estimates (per-limb division steps).
    pub limb_div: u64,
    /// Data-dependent branches taken: quotient corrections, add-backs,
    /// early exits, skipped-zero-limb shortcuts.
    pub branch: u64,
}

impl OpTrace {
    /// Component-wise difference (`self - earlier`).
    #[must_use]
    pub fn since(&self, earlier: &OpTrace) -> OpTrace {
        OpTrace {
            limb_add: self.limb_add - earlier.limb_add,
            limb_mul: self.limb_mul - earlier.limb_mul,
            limb_div: self.limb_div - earlier.limb_div,
            branch: self.branch - earlier.branch,
        }
    }

    /// Total events of any kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.limb_add + self.limb_mul + self.limb_div + self.branch
    }
}

/// Whether trace recording is compiled into this build.
pub const ENABLED: bool = cfg!(feature = "trace-ops");

#[cfg(feature = "trace-ops")]
mod active {
    use super::OpTrace;
    use std::cell::Cell;

    thread_local! {
        static LIMB_ADD: Cell<u64> = const { Cell::new(0) };
        static LIMB_MUL: Cell<u64> = const { Cell::new(0) };
        static LIMB_DIV: Cell<u64> = const { Cell::new(0) };
        static BRANCH: Cell<u64> = const { Cell::new(0) };
    }

    /// Records `n` limb additions/subtractions.
    #[inline]
    pub fn limb_add(n: u64) {
        LIMB_ADD.with(|c| c.set(c.get() + n));
    }

    /// Records `n` limb multiplications.
    #[inline]
    pub fn limb_mul(n: u64) {
        LIMB_MUL.with(|c| c.set(c.get() + n));
    }

    /// Records `n` quotient-digit estimates.
    #[inline]
    pub fn limb_div(n: u64) {
        LIMB_DIV.with(|c| c.set(c.get() + n));
    }

    /// Records one taken data-dependent branch.
    #[inline]
    pub fn branch() {
        BRANCH.with(|c| c.set(c.get() + 1));
    }

    /// Current counter values for this thread.
    pub fn snapshot() -> OpTrace {
        OpTrace {
            limb_add: LIMB_ADD.with(Cell::get),
            limb_mul: LIMB_MUL.with(Cell::get),
            limb_div: LIMB_DIV.with(Cell::get),
            branch: BRANCH.with(Cell::get),
        }
    }

    /// Resets this thread's counters to zero.
    pub fn reset() {
        LIMB_ADD.with(|c| c.set(0));
        LIMB_MUL.with(|c| c.set(0));
        LIMB_DIV.with(|c| c.set(0));
        BRANCH.with(|c| c.set(0));
    }
}

#[cfg(not(feature = "trace-ops"))]
mod active {
    use super::OpTrace;

    /// Records `n` limb additions/subtractions (no-op in this build).
    #[inline(always)]
    pub fn limb_add(_n: u64) {}

    /// Records `n` limb multiplications (no-op in this build).
    #[inline(always)]
    pub fn limb_mul(_n: u64) {}

    /// Records `n` quotient-digit estimates (no-op in this build).
    #[inline(always)]
    pub fn limb_div(_n: u64) {}

    /// Records one taken data-dependent branch (no-op in this build).
    #[inline(always)]
    pub fn branch() {}

    /// Current counter values for this thread (always zero in this build).
    pub fn snapshot() -> OpTrace {
        OpTrace::default()
    }

    /// Resets this thread's counters to zero (no-op in this build).
    pub fn reset() {}
}

pub use active::{branch, limb_add, limb_div, limb_mul, reset, snapshot};

/// Runs `f`, returning the limb-op trace it incurred plus its result.
///
/// Without the `trace-ops` feature the trace is always zero.
pub fn capture<T>(f: impl FnOnce() -> T) -> (OpTrace, T) {
    let before = snapshot();
    let out = f();
    (snapshot().since(&before), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = OpTrace {
            limb_add: 10,
            limb_mul: 20,
            limb_div: 5,
            branch: 3,
        };
        let b = OpTrace {
            limb_add: 1,
            limb_mul: 2,
            limb_div: 3,
            branch: 1,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            OpTrace {
                limb_add: 9,
                limb_mul: 18,
                limb_div: 2,
                branch: 2
            }
        );
        assert_eq!(d.total(), 31);
    }

    #[test]
    #[cfg(feature = "trace-ops")]
    fn capture_sees_recorded_events() {
        let (t, ()) = capture(|| {
            limb_mul(7);
            limb_add(2);
            branch();
        });
        assert_eq!(t.limb_mul, 7);
        assert_eq!(t.limb_add, 2);
        assert_eq!(t.branch, 1);
    }

    #[test]
    #[cfg(not(feature = "trace-ops"))]
    fn disabled_build_records_nothing() {
        let (t, ()) = capture(|| {
            limb_mul(7);
            branch();
        });
        assert_eq!(t, OpTrace::default());
        assert!(!ENABLED);
    }
}
