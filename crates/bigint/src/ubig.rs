//! The [`Ubig`] arbitrary-precision natural number.

use crate::BigintError;
use serde::{Deserialize, Serialize};

/// An arbitrary-precision natural number (unsigned big integer).
///
/// Stored as little-endian `u64` limbs with the invariant that the most
/// significant limb is non-zero (zero is represented by an empty limb
/// vector).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Ubig {
    pub(crate) limbs: Vec<u64>,
}

impl Ubig {
    /// The number zero.
    #[inline]
    pub fn zero() -> Self {
        Ubig { limbs: Vec::new() }
    }

    /// The number one.
    #[inline]
    pub fn one() -> Self {
        Ubig { limbs: vec![1] }
    }

    /// Builds a `Ubig` from a single `u64`.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Builds a `Ubig` from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = Ubig {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Builds a `Ubig` from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Read-only view of the little-endian limbs.
    #[inline]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Best-effort zeroization: overwrites every limb, routes the buffer
    /// through [`std::hint::black_box`] so the stores count as observed and
    /// cannot be elided as dead writes, then resets to the canonical zero.
    ///
    /// The workspace forbids `unsafe`, so a true volatile wipe is not
    /// available; this is the strongest erasure safe stable Rust offers.
    /// Capacity freed by earlier reallocations is not recoverable.
    pub fn wipe(&mut self) {
        for limb in self.limbs.iter_mut() {
            *limb = 0;
        }
        std::hint::black_box(&mut self.limbs);
        self.limbs.clear();
    }

    /// Is this number zero?
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this number one?
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Is this number even?
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Is this number odd?
    #[inline]
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Strips high zero limbs to restore the representation invariant.
    #[inline]
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() as u32 - 1) * 64 + (64 - hi.leading_zeros()),
        }
    }

    /// Returns bit `i` (little-endian bit order) as a bool.
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one, growing the number if needed.
    pub fn set_bit(&mut self, i: u32) {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << (i % 64);
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Low 64 bits (wrapping conversion).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Comparison helper; `Ord` is implemented in terms of this.
    pub(crate) fn cmp_mag(&self, other: &Ubig) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            o => return o,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Addition: `self + other`.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let (big, small) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(big.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..big.limbs.len() {
            let b = big.limbs[i];
            let s = small.limbs.get(i).copied().unwrap_or(0);
            let (t, c1) = b.overflowing_add(s);
            let (t, c2) = t.overflowing_add(carry);
            carry = (c1 as u64) + (c2 as u64);
            out.push(t);
        }
        if carry != 0 {
            out.push(carry);
        }
        Ubig::from_limbs(out)
    }

    /// In-place addition of a `u64`.
    pub fn add_u64(&self, v: u64) -> Ubig {
        self.add(&Ubig::from_u64(v))
    }

    /// Subtraction: `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (naturals cannot go negative); use
    /// [`crate::Int`] for signed arithmetic.
    pub fn sub(&self, other: &Ubig) -> Ubig {
        assert!(
            self.cmp_mag(other) != std::cmp::Ordering::Less,
            "Ubig::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (t, b1) = a.overflowing_sub(b);
            let (t, b2) = t.overflowing_sub(borrow);
            borrow = (b1 as u64) + (b2 as u64);
            out.push(t);
        }
        debug_assert_eq!(borrow, 0);
        Ubig::from_limbs(out)
    }

    /// Wrapping subtraction of a `u64`; panics on underflow.
    pub fn sub_u64(&self, v: u64) -> Ubig {
        self.sub(&Ubig::from_u64(v))
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: u32) -> Ubig {
        if self.is_zero() || bits == 0 {
            if bits == 0 {
                return self.clone();
            }
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Ubig::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: u32) -> Ubig {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return Ubig::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        Ubig::from_limbs(out)
    }

    /// Number of trailing zero bits (`None` for zero).
    pub fn trailing_zeros(&self) -> Option<u32> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u32 * 64 + l.trailing_zeros());
            }
        }
        None
    }

    /// Big-endian byte encoding without leading zero bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Big-endian byte encoding left-padded with zeros to exactly `len`
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Ubig {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Ubig::from_limbs(limbs)
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Ubig) -> Ubig {
        self.divrem(m).expect("modulus must be non-zero").1
    }

    /// `self / d` (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn div(&self, d: &Ubig) -> Ubig {
        self.divrem(d).expect("divisor must be non-zero").0
    }

    /// Modular addition: `(self + b) mod m`; inputs must be reduced.
    pub fn addm(&self, b: &Ubig, m: &Ubig) -> Ubig {
        let s = self.add(b);
        if s.cmp_mag(m) != std::cmp::Ordering::Less {
            s.sub(m)
        } else {
            s
        }
    }

    /// Modular subtraction: `(self - b) mod m`; inputs must be reduced.
    pub fn subm(&self, b: &Ubig, m: &Ubig) -> Ubig {
        if self.cmp_mag(b) != std::cmp::Ordering::Less {
            self.sub(b)
        } else {
            self.add(m).sub(b)
        }
    }

    /// Modular multiplication: `(self * b) mod m`.
    pub fn mulm(&self, b: &Ubig, m: &Ubig) -> Ubig {
        crate::counters::record_modmul();
        self.mul(b).rem(m)
    }

    /// Modular squaring.
    pub fn sqm(&self, m: &Ubig) -> Ubig {
        self.mulm(self, m)
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery arithmetic with a fixed 4-bit window for odd moduli
    /// and falls back to binary square-and-multiply for even moduli.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Ubig, m: &Ubig) -> Ubig {
        assert!(!m.is_zero(), "modulus must be non-zero");
        crate::counters::record_modexp();
        if m.is_one() {
            return Ubig::zero();
        }
        if m.is_odd() {
            // Shared cache: repeated exponentiation under the same modulus
            // (Miller–Rabin rounds, group operations) reuses one context
            // instead of re-deriving R² and n′ every call.
            let ctx = crate::mont::MontCtx::shared(m);
            return ctx.modpow(self, exp);
        }
        // Even modulus: plain square-and-multiply. Rare in this workspace
        // (all crypto moduli are odd) but kept for completeness.
        let mut base = self.rem(m);
        let mut acc = Ubig::one();
        for i in 0..exp.bits() {
            if exp.bit(i) {
                acc = acc.mulm(&base, m);
            }
            base = base.sqm(m);
        }
        acc
    }

    /// Modular inverse `self^{-1} mod m`.
    ///
    /// # Errors
    ///
    /// Returns [`BigintError::NotInvertible`] when `gcd(self, m) != 1` and
    /// [`BigintError::DivisionByZero`] when `m` is zero.
    pub fn modinv(&self, m: &Ubig) -> Result<Ubig, BigintError> {
        crate::gcd::modinv(self, m)
    }
}

impl Ord for Ubig {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp_mag(other)
    }
}

impl PartialOrd for Ubig {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Self {
        Ubig::from_u64(v)
    }
}

impl From<u32> for Ubig {
    fn from(v: u32) -> Self {
        Ubig::from_u64(v as u64)
    }
}

impl From<u128> for Ubig {
    fn from(v: u128) -> Self {
        Ubig::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipe_clears_limbs() {
        let mut x = Ubig::from_u128(0xdead_beef_dead_beef_dead_beef_dead_beef);
        x.wipe();
        assert!(x.is_zero());
        assert!(x.limbs().is_empty());
        // Wiped values are back to canonical zero and fully usable.
        assert_eq!(x.add_u64(3), Ubig::from_u64(3));
    }

    #[test]
    fn zero_and_one() {
        assert!(Ubig::zero().is_zero());
        assert!(Ubig::one().is_one());
        assert_eq!(Ubig::zero().bits(), 0);
        assert_eq!(Ubig::one().bits(), 1);
        assert!(Ubig::zero().is_even());
        assert!(Ubig::one().is_odd());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Ubig::from_u128(0xFFFF_FFFF_FFFF_FFFF_FFFF_FFFF_u128);
        let b = Ubig::from_u64(12345);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&b).sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Ubig::from_u64(u64::MAX);
        let b = Ubig::one();
        let s = a.add(&b);
        assert_eq!(s.limbs(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Ubig::one().sub(&Ubig::from_u64(2));
    }

    #[test]
    fn shifts() {
        let a = Ubig::from_u64(0b1011);
        assert_eq!(a.shl(3).to_u64(), Some(0b1011000));
        assert_eq!(a.shl(64).limbs(), &[0, 0b1011]);
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(2).to_u64(), Some(0b10));
        assert_eq!(a.shr(100), Ubig::zero());
        let b = Ubig::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert_eq!(b.shl(17).shr(17), b);
    }

    #[test]
    fn bit_access() {
        let mut a = Ubig::zero();
        a.set_bit(0);
        a.set_bit(70);
        assert!(a.bit(0));
        assert!(a.bit(70));
        assert!(!a.bit(1));
        assert!(!a.bit(200));
        assert_eq!(a.bits(), 71);
        assert_eq!(a.trailing_zeros(), Some(0));
        assert_eq!(Ubig::from_u64(8).trailing_zeros(), Some(3));
        assert_eq!(Ubig::zero().trailing_zeros(), None);
    }

    #[test]
    fn byte_roundtrip() {
        let a = Ubig::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        let bytes = a.to_bytes_be();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(Ubig::from_bytes_be(&bytes), a);
        assert_eq!(Ubig::from_bytes_be(&[]), Ubig::zero());
        let padded = a.to_bytes_be_padded(20);
        assert_eq!(padded.len(), 20);
        assert_eq!(Ubig::from_bytes_be(&padded), a);
    }

    #[test]
    fn modpow_small_cases() {
        let m = Ubig::from_u64(1000000007);
        assert_eq!(
            Ubig::from_u64(2).modpow(&Ubig::from_u64(10), &m),
            Ubig::from_u64(1024)
        );
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(
            Ubig::from_u64(31337).modpow(&Ubig::from_u64(1000000006), &m),
            Ubig::one()
        );
        // Anything mod 1 is 0.
        assert_eq!(
            Ubig::from_u64(5).modpow(&Ubig::from_u64(5), &Ubig::one()),
            Ubig::zero()
        );
        // Exponent zero gives 1.
        assert_eq!(Ubig::from_u64(5).modpow(&Ubig::zero(), &m), Ubig::one());
    }

    #[test]
    fn modpow_even_modulus() {
        let m = Ubig::from_u64(100);
        assert_eq!(
            Ubig::from_u64(7).modpow(&Ubig::from_u64(3), &m),
            Ubig::from_u64(343 % 100)
        );
    }

    #[test]
    fn modular_add_sub() {
        let m = Ubig::from_u64(97);
        let a = Ubig::from_u64(90);
        let b = Ubig::from_u64(20);
        assert_eq!(a.addm(&b, &m), Ubig::from_u64(13));
        assert_eq!(b.subm(&a, &m), Ubig::from_u64(27));
    }
}
