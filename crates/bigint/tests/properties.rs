//! Property-based tests of the arithmetic laws every protocol in this
//! workspace silently relies on.

use proptest::prelude::*;
use shs_bigint::mont::MontCtx;
use shs_bigint::{gcd, jacobi, CrtCtx, FixedBase, Int, Ubig};

/// Odd primes of assorted widths (single-limb through three-limb) for the
/// CRT agreement property; `CrtCtx` requires genuinely prime halves.
const TEST_PRIMES: &[&str] = &[
    "65",                                               // 101
    "fffffffb",                                         // 2^32 − 5
    "1fffffffffffffff",                                 // 2^61 − 1 (Mersenne)
    "48995b1ff16287e4e9c349e03602f8ad",                 // 127-bit
    "8a368ce7dc570131f8e1daa7cbceabdf",                 // 128-bit
    "94a0bccb8a476a87e49d681d51d87c6455fa1ab8458f1f19", // 192-bit
];

/// Strategy: a Ubig of up to `limbs` limbs.
fn ubig(limbs: usize) -> impl Strategy<Value = Ubig> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(Ubig::from_limbs)
}

/// Strategy: a non-zero Ubig.
fn ubig_nz(limbs: usize) -> impl Strategy<Value = Ubig> {
    ubig(limbs).prop_map(|u| if u.is_zero() { Ubig::one() } else { u })
}

/// Strategy: an odd modulus ≥ 3.
fn odd_modulus(limbs: usize) -> impl Strategy<Value = Ubig> {
    ubig_nz(limbs).prop_map(|mut u| {
        u.set_bit(0);
        u.set_bit(1);
        u
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_commutes(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in ubig(5), b in ubig(5), c in ubig(5)) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn sub_inverts_add(a in ubig(6), b in ubig(6)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn mul_commutes(a in ubig(5), b in ubig(5)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_associates(a in ubig(4), b in ubig(4), c in ubig(4)) {
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn mul_distributes(a in ubig(4), b in ubig(4), c in ubig(4)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn mul_u64_matches_general(a in ubig(6), v in any::<u64>()) {
        prop_assert_eq!(a.mul_u64(v), a.mul(&Ubig::from_u64(v)));
    }

    #[test]
    fn division_reconstructs(a in ubig(8), d in ubig_nz(4)) {
        let (q, r) = a.divrem(&d).unwrap();
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn divrem_u64_matches_general(a in ubig(8), d in 1u64..) {
        let (q1, r1) = a.divrem_u64(d);
        let (q2, r2) = a.divrem(&Ubig::from_u64(d)).unwrap();
        prop_assert_eq!(q1, q2);
        prop_assert_eq!(Ubig::from_u64(r1), r2);
    }

    #[test]
    fn shift_roundtrip(a in ubig(6), s in 0u32..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn shl_is_mul_by_power_of_two(a in ubig(5), s in 0u32..100) {
        let mut p = Ubig::zero();
        p.set_bit(s);
        prop_assert_eq!(a.shl(s), a.mul(&p));
    }

    #[test]
    fn byte_roundtrip(a in ubig(8)) {
        prop_assert_eq!(Ubig::from_bytes_be(&a.to_bytes_be()), a.clone());
        let padded = a.to_bytes_be_padded(8 * 8 + 3);
        prop_assert_eq!(Ubig::from_bytes_be(&padded), a);
    }

    #[test]
    fn string_roundtrips(a in ubig(5)) {
        prop_assert_eq!(Ubig::from_dec(&a.to_dec()).unwrap(), a.clone());
        prop_assert_eq!(Ubig::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn ordering_consistent_with_subtraction(a in ubig(5), b in ubig(5)) {
        if a >= b {
            let d = a.sub(&b);
            prop_assert_eq!(b.add(&d), a);
        } else {
            prop_assert!(b > a);
        }
    }

    #[test]
    fn modpow_is_homomorphic_in_exponent(
        base in ubig(3), e1 in ubig(2), e2 in ubig(2), m in odd_modulus(3)
    ) {
        // base^(e1+e2) == base^e1 · base^e2 (mod m)
        let lhs = base.modpow(&e1.add(&e2), &m);
        let rhs = base.modpow(&e1, &m).mulm(&base.modpow(&e2, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modpow_is_homomorphic_in_base(
        a in ubig(3), b in ubig(3), e in ubig(2), m in odd_modulus(3)
    ) {
        // (a·b)^e == a^e · b^e (mod m)
        let lhs = a.mul(&b).modpow(&e, &m);
        let rhs = a.modpow(&e, &m).mulm(&b.modpow(&e, &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn modpow_matches_iterated_multiplication(
        base in ubig(2), e in 0u32..50, m in odd_modulus(2)
    ) {
        let mut acc = Ubig::one().rem(&m);
        for _ in 0..e {
            acc = acc.mulm(&base, &m);
        }
        prop_assert_eq!(base.modpow(&Ubig::from_u64(e as u64), &m), acc);
    }

    #[test]
    fn gcd_divides_both(a in ubig_nz(4), b in ubig_nz(4)) {
        let g = gcd::gcd(&a, &b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn gcd_lcm_product(a in ubig_nz(3), b in ubig_nz(3)) {
        // gcd(a,b) · lcm(a,b) == a·b
        let g = gcd::gcd(&a, &b);
        let l = gcd::lcm(&a, &b);
        prop_assert_eq!(g.mul(&l), a.mul(&b));
    }

    #[test]
    fn bezout_identity(a in ubig_nz(4), b in ubig_nz(4)) {
        let (g, x, y) = gcd::ext_gcd(&a, &b);
        let lhs = Int::from_ubig(a.clone()).mul(&x).add(&Int::from_ubig(b.clone()).mul(&y));
        prop_assert_eq!(lhs, Int::from_ubig(g));
    }

    #[test]
    fn modinv_produces_inverses(a in ubig_nz(3), m in odd_modulus(3)) {
        if let Ok(inv) = gcd::modinv(&a, &m) {
            prop_assert_eq!(a.mulm(&inv, &m), Ubig::one().rem(&m));
        } else {
            prop_assert!(!gcd::gcd(&a.rem(&m), &m).is_one());
        }
    }

    #[test]
    fn jacobi_is_multiplicative(a in ubig(2), b in ubig(2), m in odd_modulus(2)) {
        let ja = jacobi::jacobi(&a, &m);
        let jb = jacobi::jacobi(&b, &m);
        let jab = jacobi::jacobi(&a.mul(&b), &m);
        prop_assert_eq!(jab, ja * jb);
    }

    #[test]
    fn int_add_sub_roundtrip(a in any::<i64>(), b in any::<i64>()) {
        let ia = Int::from_i64(a);
        let ib = Int::from_i64(b);
        prop_assert_eq!(ia.add(&ib).sub(&ib), ia);
    }

    #[test]
    fn int_mod_in_range(a in any::<i64>(), m in 1u64..) {
        let mu = Ubig::from_u64(m);
        let r = Int::from_i64(a).mod_ubig(&mu);
        prop_assert!(r < mu);
        // Congruence: r ≡ a (mod m) checked via i128 arithmetic.
        let expected = (a as i128).rem_euclid(m as i128) as u64;
        prop_assert_eq!(r, Ubig::from_u64(expected));
    }

    #[test]
    fn int_divrem_reconstructs(a in any::<i64>(), d in any::<i64>()) {
        prop_assume!(d != 0);
        let ia = Int::from_i64(a);
        let id = Int::from_i64(d);
        let (q, r) = ia.divrem(&id);
        prop_assert_eq!(q.mul(&id).add(&r), ia);
        prop_assert!(r.magnitude() < id.magnitude() || r.is_zero());
    }

    #[test]
    fn montgomery_matches_plain_reduction(a in ubig(4), b in ubig(4), m in odd_modulus(4)) {
        let ctx = shs_bigint::mont::MontCtx::new(m.clone());
        prop_assert_eq!(ctx.modmul(&a, &b), a.mul(&b).rem(&m));
    }

    // ---- acceleration-layer kernels agree with plain modpow ----------

    #[test]
    fn vartime_modpow_matches_ct(base in ubig(4), e in ubig(5), m in odd_modulus(4)) {
        // Exponents up to 5 limbs against 4-limb moduli: exponent > modulus
        // is routinely exercised.
        let ctx = MontCtx::new(m);
        prop_assert_eq!(ctx.modpow_vartime(&base, &e), ctx.modpow(&base, &e));
    }

    #[test]
    fn multi_exp_matches_modpow_product(
        b1 in ubig(4), b2 in ubig(4), b3 in ubig(4),
        e1 in ubig(5), e2 in ubig(1), e3 in ubig(3),
        m in odd_modulus(4),
    ) {
        // Deliberately mixed exponent widths (including frequent zeros from
        // the empty-limb case) so term padding to the longest width is hit.
        let ctx = MontCtx::new(m.clone());
        let pairs = [(&b1, &e1), (&b2, &e2), (&b3, &e3)];
        let naive = ctx
            .modpow(&b1, &e1)
            .mulm(&ctx.modpow(&b2, &e2), &m)
            .mulm(&ctx.modpow(&b3, &e3), &m);
        prop_assert_eq!(ctx.multi_exp(&pairs), naive.clone());
        prop_assert_eq!(ctx.multi_exp_vartime(&pairs), naive);
    }

    #[test]
    fn fixed_base_matches_modpow(base in ubig(4), e in ubig(4), m in odd_modulus(4)) {
        let ctx = MontCtx::shared(&m);
        // Table sized for 3 limbs: 4-limb exponents exercise the (public
        // width-class) fallback, smaller ones the table path; zero and one
        // come from the empty-limb strategy case.
        let fb = FixedBase::new(std::sync::Arc::clone(&ctx), &base, 192);
        prop_assert_eq!(fb.pow(&e), ctx.modpow(&base, &e));
        prop_assert_eq!(fb.pow_vartime(&e), ctx.modpow(&base, &e));
    }

    #[test]
    fn crt_modpow_matches_plain(
        pi in 0usize..6, qi in 0usize..6, base in ubig(7), e in ubig(7),
    ) {
        prop_assume!(pi != qi);
        let p = Ubig::from_hex(TEST_PRIMES[pi]).unwrap();
        let q = Ubig::from_hex(TEST_PRIMES[qi]).unwrap();
        let n = p.mul(&q);
        // base and e up to 7 limbs: both overflow every modulus in the list.
        prop_assert_eq!(base.modpow_crt(&e, &p, &q).unwrap(), base.modpow(&e, &n));
        // Edge exponents.
        prop_assert_eq!(base.modpow_crt(&Ubig::zero(), &p, &q).unwrap(), Ubig::one().rem(&n));
        prop_assert_eq!(base.modpow_crt(&Ubig::one(), &p, &q).unwrap(), base.rem(&n));
    }

    #[test]
    fn crt_ctx_handles_prime_multiples(k in 1u64..500, e in ubig(2)) {
        // base ≡ 0 (mod p): the Fermat shortcut must not misfire.
        let p = Ubig::from_hex(TEST_PRIMES[1]).unwrap();
        let q = Ubig::from_hex(TEST_PRIMES[2]).unwrap();
        let n = p.mul(&q);
        let base = p.mul(&Ubig::from_u64(k));
        let ctx = CrtCtx::shared(&p, &q).unwrap();
        prop_assert_eq!(ctx.modpow(&base, &e), base.modpow(&e, &n));
    }
}
