//! Secret-independence harness: the Montgomery kernels must perform an
//! *identical* sequence of limb operations for any two secrets of the same
//! public width. A trace mismatch means secret-dependent control flow —
//! precisely the class of side channel `shs-lint`'s token-level rules
//! cannot see.
//!
//! The `trace-ops` feature is switched on for these builds by the
//! self-dev-dependency in Cargo.toml, so this suite runs under plain
//! `cargo test` (tier-1).

use shs_bigint::mont::MontCtx;
use shs_bigint::{trace, FixedBase, Ubig};

/// Deterministic xorshift64* limb source.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn limbs(&mut self, k: usize) -> Vec<u64> {
        (0..k).map(|_| self.next()).collect()
    }

    /// A random odd k-limb modulus with the top bit set.
    fn modulus(&mut self, k: usize) -> Ubig {
        let mut v = self.limbs(k);
        v[0] |= 1;
        v[k - 1] |= 1 << 63;
        Ubig::from_limbs(v)
    }

    /// A random value with exactly `bits` bits (top bit forced).
    fn exact_bits(&mut self, bits: u32) -> Ubig {
        let k = (bits as usize).div_ceil(64);
        let mut v = self.limbs(k);
        let top = (bits - 1) % 64;
        v[k - 1] &= (1u64 << top) | ((1u64 << top) - 1);
        v[k - 1] |= 1 << top;
        let out = Ubig::from_limbs(v);
        assert_eq!(out.bits(), bits);
        out
    }

    /// A uniformly random value below `n` (rejection sampling).
    fn below(&mut self, n: &Ubig) -> Ubig {
        let k = n.limbs().len();
        loop {
            let x = Ubig::from_limbs(self.limbs(k));
            if x < *n {
                return x;
            }
        }
    }
}

/// Panics unless the counters actually record — i.e. the
/// self-dev-dependency switched `trace-ops` on for this build. Guards the
/// equality tests against passing vacuously on zero traces.
fn assert_harness_live() {
    let (t, _) = trace::capture(|| trace::limb_add(1));
    assert_eq!(t.limb_add, 1, "trace-ops feature is off in test builds");
}

#[test]
fn harness_is_compiled_in() {
    assert_harness_live();
}

#[test]
fn modpow_trace_is_exponent_independent() {
    let mut xs = Xs(0x5eed_5eed_5eed_5eed);
    // ≥ 8 pairs across several widths; each pair shares an exact bit-width
    // and must produce byte-identical operation traces.
    for (i, bits) in [192u32, 256, 256, 320, 384, 512, 512, 768, 1024]
        .into_iter()
        .enumerate()
    {
        let n = xs.modulus((bits as usize).div_ceil(64));
        let ctx = MontCtx::new(n.clone());
        let base = xs.below(&n);
        let e1 = xs.exact_bits(bits);
        let e2 = xs.exact_bits(bits);
        let (t1, r1) = trace::capture(|| ctx.modpow(&base, &e1));
        let (t2, r2) = trace::capture(|| ctx.modpow(&base, &e2));
        assert!(t1.total() > 0, "instrumentation recorded nothing");
        assert_eq!(
            t1, t2,
            "pair {i}: modpow trace depends on the {bits}-bit exponent value"
        );
        // Sanity: the traced runs are still correct.
        assert_eq!(r1, base.modpow(&e1, &n));
        assert_eq!(r2, base.modpow(&e2, &n));
    }
}

#[test]
fn modpow_trace_tracks_public_width_only() {
    // The trace is *supposed* to vary with the public bit-width — if it
    // didn't, the equality above would be vacuous.
    let mut xs = Xs(0x0123_4567_89ab_cdef);
    let n = xs.modulus(8);
    let ctx = MontCtx::new(n.clone());
    let base = xs.below(&n);
    let (t_short, _) = trace::capture(|| ctx.modpow(&base, &xs.exact_bits(128)));
    let (t_long, _) = trace::capture(|| ctx.modpow(&base, &xs.exact_bits(256)));
    assert_ne!(t_short, t_long, "width change must be visible in the trace");
}

#[test]
fn montgomery_modmul_trace_is_operand_independent() {
    let mut xs = Xs(0xfeed_f00d_feed_f00d);
    let n = xs.modulus(8);
    let ctx = MontCtx::new(n.clone());
    let mut reference = None;
    for i in 0..8 {
        let a = xs.below(&n);
        let b = xs.below(&n);
        let (t, r) = trace::capture(|| ctx.modmul(&a, &b));
        assert!(t.total() > 0);
        assert_eq!(r, a.mul(&b).rem(&n));
        let first = *reference.get_or_insert(t);
        assert_eq!(first, t, "pair {i}: modmul trace depends on operand values");
    }
}

#[test]
fn mulm_arithmetic_trace_is_operand_independent() {
    // `Ubig::mulm` goes through Knuth Algorithm D, whose rare qhat
    // corrections are value-dependent `branch` events by design (that is
    // exactly what the counter documents). The *arithmetic* work —
    // multiplications, quotient estimates, additions — must still be a
    // function of operand widths alone.
    let mut xs = Xs(0xabcd_abcd_abcd_abcd);
    let n = xs.modulus(8);
    let mut reference = None;
    for i in 0..8 {
        let a = xs.exact_bits(512);
        let b = xs.exact_bits(512);
        let (t, r) = trace::capture(|| a.mulm(&b, &n));
        assert_eq!(r, a.mul(&b).rem(&n));
        let shape = (t.limb_mul, t.limb_div, t.limb_add);
        let first = *reference.get_or_insert(shape);
        assert_eq!(
            first, shape,
            "pair {i}: mulm arithmetic trace depends on operand values"
        );
    }
}

#[test]
fn fixed_base_pow_trace_is_exponent_independent() {
    let mut xs = Xs(0x7ab1_e5ca_7ab1_e5ca);
    // The table is built once *outside* the captures: only the per-call
    // masked scan + multiply chain is on trial.
    for (i, bits) in [128u32, 192, 256, 256, 320, 512].into_iter().enumerate() {
        let n = xs.modulus(8);
        let ctx = MontCtx::shared(&n);
        let base = xs.below(&n);
        let fb = FixedBase::new(std::sync::Arc::clone(&ctx), &base, 512);
        let e1 = xs.exact_bits(bits);
        let e2 = xs.exact_bits(bits);
        let (t1, r1) = trace::capture(|| fb.pow(&e1));
        let (t2, r2) = trace::capture(|| fb.pow(&e2));
        assert!(t1.total() > 0, "instrumentation recorded nothing");
        assert_eq!(
            t1, t2,
            "pair {i}: FixedBase::pow trace depends on the {bits}-bit exponent value"
        );
        assert_eq!(r1, base.modpow(&e1, &n));
        assert_eq!(r2, base.modpow(&e2, &n));
    }
}

#[test]
fn fixed_base_pow_trace_tracks_public_width_only() {
    let mut xs = Xs(0x0f1b_a5e5_0f1b_a5e5);
    let n = xs.modulus(8);
    let ctx = MontCtx::shared(&n);
    let base = xs.below(&n);
    let fb = FixedBase::new(std::sync::Arc::clone(&ctx), &base, 512);
    let (t_short, _) = trace::capture(|| fb.pow(&xs.exact_bits(128)));
    let (t_long, _) = trace::capture(|| fb.pow(&xs.exact_bits(256)));
    assert_ne!(t_short, t_long, "width change must be visible in the trace");
}

#[test]
fn multi_exp_trace_is_exponent_independent() {
    let mut xs = Xs(0x57a5_b007_57a5_b007);
    // Same term count, same max width, different secret exponent values →
    // identical traces. Straus shares one squaring chain, so the trace is a
    // function of (term count, modulus width, max exponent width) only.
    for (i, bits) in [192u32, 256, 384, 512].into_iter().enumerate() {
        let n = xs.modulus(8);
        let ctx = MontCtx::new(n.clone());
        let bases: Vec<Ubig> = (0..3).map(|_| xs.below(&n)).collect();
        let e1: Vec<Ubig> = (0..3).map(|_| xs.exact_bits(bits)).collect();
        let e2: Vec<Ubig> = (0..3).map(|_| xs.exact_bits(bits)).collect();
        let p1: Vec<(&Ubig, &Ubig)> = bases.iter().zip(e1.iter()).collect();
        let p2: Vec<(&Ubig, &Ubig)> = bases.iter().zip(e2.iter()).collect();
        let (t1, r1) = trace::capture(|| ctx.multi_exp(&p1));
        let (t2, r2) = trace::capture(|| ctx.multi_exp(&p2));
        assert!(t1.total() > 0, "instrumentation recorded nothing");
        assert_eq!(
            t1, t2,
            "set {i}: multi_exp trace depends on {bits}-bit exponent values"
        );
        // Correctness of the traced runs.
        let naive = |es: &[Ubig]| {
            bases
                .iter()
                .zip(es)
                .fold(Ubig::one(), |acc, (b, e)| acc.mulm(&b.modpow(e, &n), &n))
        };
        assert_eq!(r1, naive(&e1));
        assert_eq!(r2, naive(&e2));
    }
}

#[test]
fn multi_exp_trace_only_sees_max_width() {
    // Shorter co-exponents hide behind the longest one: swapping a short
    // term's value (same max width overall) must not move the trace.
    let mut xs = Xs(0xd00d_d00d_d00d_d00d);
    let n = xs.modulus(8);
    let ctx = MontCtx::new(n.clone());
    let b1 = xs.below(&n);
    let b2 = xs.below(&n);
    let long = xs.exact_bits(512);
    let short_a = xs.exact_bits(64);
    let short_b = xs.exact_bits(200);
    let (ta, _) = trace::capture(|| ctx.multi_exp(&[(&b1, &long), (&b2, &short_a)]));
    let (tb, _) = trace::capture(|| ctx.multi_exp(&[(&b1, &long), (&b2, &short_b)]));
    assert_eq!(
        ta, tb,
        "multi_exp trace leaks the width of a non-maximal exponent"
    );
}

/// A knowingly-leaky square-and-multiply kernel: multiplies only on set
/// exponent bits, so its operation count is a function of the secret's
/// Hamming weight.
fn leaky_modpow(ctx: &MontCtx, base: &Ubig, exp: &Ubig) -> Ubig {
    let n = ctx.modulus();
    let mut acc = Ubig::one();
    let mut b = base.rem(n);
    for i in 0..exp.bits() {
        if exp.bit(i) {
            acc = ctx.modmul(&acc, &b); // the leak: skipped on zero bits
        }
        b = ctx.modmul(&b, &b);
    }
    acc
}

#[test]
#[should_panic(expected = "leaky kernel")]
fn canary_catches_a_leaky_kernel() {
    // Two same-width exponents with extreme Hamming weights. The harness
    // must flag the reference kernel; if this test ever stops panicking,
    // the trace counters have gone blind.
    assert_harness_live();
    let mut xs = Xs(0x1bad_b002_1bad_b002);
    let n = xs.modulus(4);
    let ctx = MontCtx::new(n.clone());
    let base = xs.below(&n);
    let sparse = Ubig::one().shl(255); // weight 1, 256 bits
    let dense = Ubig::one().shl(256).sub_u64(1); // weight 256, 256 bits
    let (t1, r1) = trace::capture(|| leaky_modpow(&ctx, &base, &sparse));
    let (t2, r2) = trace::capture(|| leaky_modpow(&ctx, &base, &dense));
    // The leaky kernel is functionally correct...
    assert_eq!(r1, base.modpow(&sparse, &n));
    assert_eq!(r2, base.modpow(&dense, &n));
    // ...but its trace betrays the secret.
    assert_eq!(t1, t2, "leaky kernel");
}
