//! Centralized group key distribution (the paper's **C** building block,
//! §5).
//!
//! A CGKD scheme lets a group controller `GC` maintain a shared group key
//! `k^{(t)}` across joins and leaves (`rekeying`), with *strong security*
//! in the sense of \[34\]: a revoked member learns nothing about keys of
//! epochs after its removal, and corruption at a later epoch reveals
//! nothing about earlier keys (all rekey material is fresh randomness, not
//! a PRF of old keys).
//!
//! Three schemes are implemented, matching the citations in §5/§8.1:
//!
//! * [`lkh`] — Logical Key Hierarchy / key graphs (Wong–Gouda–Lam \[33\]):
//!   `O(log n)` rekey messages per membership change.
//! * [`sd`] — the Subset-Difference method for stateless receivers
//!   (Naor–Naor–Lotspiech \[26\]): members hold `O(log² n)` labels and never
//!   update state; each broadcast covers the non-revoked set directly.
//! * [`star`] — the flat baseline: one key per member, `O(n)` rekeying.
//!
//! All three implement the [`Controller`] / [`MemberState`] traits so the
//! framework and the E4 benchmarks can swap them freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lkh;
pub mod sd;
pub mod star;
pub mod tree;

use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::Key;

/// A member identity inside a CGKD scheme (assigned by the controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// Errors produced by CGKD operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgkdError {
    /// The controller's capacity is exhausted.
    Full,
    /// Unknown or already-removed member.
    UnknownMember,
    /// A rekey broadcast arrived out of order (epoch mismatch).
    EpochMismatch,
    /// The member could not decrypt any item of the broadcast (it has been
    /// excluded, or state is corrupt).
    CannotDecrypt,
}

impl std::fmt::Display for CgkdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CgkdError::Full => write!(f, "group capacity exhausted"),
            CgkdError::UnknownMember => write!(f, "unknown member"),
            CgkdError::EpochMismatch => write!(f, "rekey broadcast out of order"),
            CgkdError::CannotDecrypt => write!(f, "no decryptable rekey item (member excluded?)"),
        }
    }
}

impl std::error::Error for CgkdError {}

/// Traffic statistics of one broadcast, for the E4 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BroadcastStats {
    /// Number of encrypted items in the broadcast.
    pub items: usize,
    /// Total ciphertext bytes.
    pub bytes: usize,
}

/// Controller (GC) side of a CGKD scheme.
pub trait Controller {
    /// The welcome package delivered to a joining member over the
    /// authenticated private channel (§5 assumes such a channel exists).
    type Welcome;
    /// The member-side state type.
    type Member: MemberState<Broadcast = Self::Broadcast>;
    /// The rekey broadcast type.
    type Broadcast;

    /// `CGKD.Join`: admits one member. Returns its id, the private welcome
    /// package, and the rekey broadcast for existing members.
    ///
    /// # Errors
    ///
    /// [`CgkdError::Full`] when capacity is exhausted.
    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, Self::Welcome, Self::Broadcast), CgkdError>;

    /// `CGKD.Leave`: evicts one member and rekeys.
    ///
    /// # Errors
    ///
    /// [`CgkdError::UnknownMember`] for ids not currently in the group.
    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<Self::Broadcast, CgkdError>;

    /// Builds the member state from a welcome package.
    fn member_from_welcome(&self, welcome: Self::Welcome) -> Self::Member;

    /// The current group key `k^{(t)}`.
    fn group_key(&self) -> &Key;

    /// The current epoch `t`.
    fn epoch(&self) -> u64;

    /// Current member ids.
    fn members(&self) -> Vec<UserId>;

    /// Size statistics for a broadcast (bench instrumentation).
    fn stats(broadcast: &Self::Broadcast) -> BroadcastStats;
}

/// Member (`U ∈ Δ^{(t)}`) side of a CGKD scheme.
pub trait MemberState {
    /// The broadcast type consumed by `CGKD.Rekey`.
    type Broadcast;

    /// `CGKD.Rekey`: processes a rekey broadcast, updating the group key.
    ///
    /// # Errors
    ///
    /// [`CgkdError::EpochMismatch`] on out-of-order delivery,
    /// [`CgkdError::CannotDecrypt`] when the member has been excluded.
    fn process(&mut self, broadcast: &Self::Broadcast) -> Result<(), CgkdError>;

    /// The member's current view of the group key.
    fn group_key(&self) -> &Key;

    /// The member's current epoch.
    fn epoch(&self) -> u64;

    /// This member's id.
    fn id(&self) -> UserId;

    /// Overwrites this member's view of the group key without any rekey
    /// processing.
    ///
    /// This models the §3 attack of the paper (an unrevoked member leaking
    /// the group key to a revoked one) in experiment E7b. It exists for
    /// attack experiments only; honest members never call it.
    fn force_group_key(&mut self, key: Key, epoch: u64);
}
