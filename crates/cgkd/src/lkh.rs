//! Logical Key Hierarchy (key graphs, Wong–Gouda–Lam \[33\]) with the
//! strong-security rekey discipline of \[34\]: every key on an affected path
//! is replaced by *fresh randomness* (never a one-way function of old
//! keys), and rekey items are AEAD-encrypted.
//!
//! Rekeying a join or leave touches one leaf-to-root path, so broadcasts
//! carry `O(log n)` items — the property measured in experiment E4.

use crate::{BroadcastStats, CgkdError, Controller, MemberState, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::{aead, Key};
use std::collections::{BTreeSet, HashMap};

/// One encrypted rekey item: the new key of `node`, encrypted under the
/// key of `under` (a child of `node`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RekeyItem {
    /// Tree node whose key is being replaced.
    pub node: u32,
    /// Child node under whose key the new key is encrypted.
    pub under: u32,
    /// AEAD ciphertext of the new key.
    pub ct: Vec<u8>,
}

/// A rekey broadcast: all items for one membership change.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LkhBroadcast {
    /// Epoch this broadcast moves the group *to*.
    pub epoch: u64,
    /// Encrypted rekey items (node keys bottom-up).
    pub items: Vec<RekeyItem>,
}

/// The private welcome package for a joining member.
#[derive(Debug, Clone)]
pub struct LkhWelcome {
    /// Assigned identity.
    pub id: UserId,
    /// Assigned leaf node index.
    pub leaf: u32,
    /// The member's individual (leaf) key.
    pub leaf_key: Key,
    /// The epoch *before* the join rekey (the member then processes the
    /// join broadcast like everyone else).
    pub epoch: u64,
    /// Tree capacity (for path computation).
    pub capacity: u32,
}

/// The group controller's LKH state.
pub struct LkhController {
    capacity: u32,
    /// Keys of occupied tree nodes (`1` is the root).
    keys: HashMap<u32, Key>,
    /// Number of members in each node's subtree.
    occupancy: Vec<u32>,
    leaf_of: HashMap<UserId, u32>,
    free_leaves: BTreeSet<u32>,
    group_key: Key,
    epoch: u64,
    next_id: u64,
}

impl std::fmt::Debug for LkhController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LkhController {{ capacity: {}, members: {}, epoch: {} }}",
            self.capacity,
            self.leaf_of.len(),
            self.epoch
        )
    }
}

/// Member-side LKH state: the keys along its leaf-to-root path.
#[derive(Debug, Clone)]
pub struct LkhMember {
    id: UserId,
    leaf: u32,
    keys: HashMap<u32, Key>,
    group_key: Key,
    epoch: u64,
}

fn parent(node: u32) -> u32 {
    node / 2
}

fn children(node: u32) -> (u32, u32) {
    (2 * node, 2 * node + 1)
}

/// Nodes from `leaf` (exclusive) up to and including the root.
fn path_up(leaf: u32) -> Vec<u32> {
    let mut path = Vec::new();
    let mut v = parent(leaf);
    while v >= 1 {
        path.push(v);
        if v == 1 {
            break;
        }
        v = parent(v);
    }
    path
}

impl LkhController {
    /// Creates a controller for up to `capacity` members (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: u32, rng: &mut dyn RngCore) -> LkhController {
        let capacity = capacity.max(2).next_power_of_two();
        LkhController {
            capacity,
            keys: HashMap::new(),
            occupancy: vec![0; (2 * capacity) as usize],
            leaf_of: HashMap::new(),
            free_leaves: (capacity..2 * capacity).collect(),
            group_key: Key::random(rng),
            epoch: 0,
            next_id: 0,
        }
    }

    fn rekey_path(&mut self, leaf: u32, rng: &mut dyn RngCore) -> Vec<RekeyItem> {
        let mut items = Vec::new();
        for v in path_up(leaf) {
            if self.occupancy[v as usize] == 0 {
                self.keys.remove(&v);
                continue;
            }
            let new_key = if v == 1 {
                let k = Key::random(rng);
                self.group_key = k.clone();
                k
            } else {
                Key::random(rng)
            };
            let (l, r) = children(v);
            for c in [l, r] {
                if self.occupancy[c as usize] > 0 {
                    if let Some(child_key) = self.keys.get(&c) {
                        let aad = format!("lkh-rekey:{}:{}:{}", self.epoch + 1, v, c);
                        items.push(RekeyItem {
                            node: v,
                            under: c,
                            ct: aead::seal(child_key, new_key.as_bytes(), aad.as_bytes(), rng),
                        });
                    }
                }
            }
            self.keys.insert(v, new_key);
        }
        items
    }
}

impl Controller for LkhController {
    type Welcome = LkhWelcome;
    type Member = LkhMember;
    type Broadcast = LkhBroadcast;

    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, LkhWelcome, LkhBroadcast), CgkdError> {
        let leaf = *self.free_leaves.iter().next().ok_or(CgkdError::Full)?;
        self.free_leaves.remove(&leaf);
        let id = UserId(self.next_id);
        self.next_id += 1;
        self.leaf_of.insert(id, leaf);

        let leaf_key = Key::random(rng);
        self.keys.insert(leaf, leaf_key.clone());
        self.occupancy[leaf as usize] = 1;
        for v in path_up(leaf) {
            self.occupancy[v as usize] += 1;
        }

        let welcome = LkhWelcome {
            id,
            leaf,
            leaf_key,
            epoch: self.epoch,
            capacity: self.capacity,
        };
        let items = self.rekey_path(leaf, rng);
        self.epoch += 1;
        Ok((
            id,
            welcome,
            LkhBroadcast {
                epoch: self.epoch,
                items,
            },
        ))
    }

    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<LkhBroadcast, CgkdError> {
        let leaf = self.leaf_of.remove(&id).ok_or(CgkdError::UnknownMember)?;
        self.keys.remove(&leaf);
        self.occupancy[leaf as usize] = 0;
        for v in path_up(leaf) {
            self.occupancy[v as usize] -= 1;
        }
        self.free_leaves.insert(leaf);
        let items = self.rekey_path(leaf, rng);
        if self.leaf_of.is_empty() {
            // Group emptied: nobody left to key; refresh the stored key so
            // the old one is never reused.
            self.group_key = Key::random(rng);
        }
        self.epoch += 1;
        Ok(LkhBroadcast {
            epoch: self.epoch,
            items,
        })
    }

    fn member_from_welcome(&self, welcome: LkhWelcome) -> LkhMember {
        let mut keys = HashMap::new();
        keys.insert(welcome.leaf, welcome.leaf_key.clone());
        LkhMember {
            id: welcome.id,
            leaf: welcome.leaf,
            keys,
            // Placeholder until the join broadcast is processed.
            group_key: welcome.leaf_key,
            epoch: welcome.epoch,
        }
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn members(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.leaf_of.keys().copied().collect();
        ids.sort();
        ids
    }

    fn stats(broadcast: &LkhBroadcast) -> BroadcastStats {
        BroadcastStats {
            items: broadcast.items.len(),
            bytes: broadcast.items.iter().map(|i| i.ct.len() + 8).sum(),
        }
    }
}

impl MemberState for LkhMember {
    type Broadcast = LkhBroadcast;

    fn process(&mut self, broadcast: &LkhBroadcast) -> Result<(), CgkdError> {
        if broadcast.epoch != self.epoch + 1 {
            return Err(CgkdError::EpochMismatch);
        }
        let my_path: BTreeSet<u32> = path_up(self.leaf).into_iter().collect();
        // Fixpoint decryption: items may arrive in any order.
        let mut learned: HashMap<u32, Key> = HashMap::new();
        let mut progress = true;
        while progress {
            progress = false;
            for item in &broadcast.items {
                if !my_path.contains(&item.node) || learned.contains_key(&item.node) {
                    continue;
                }
                let under_key = learned
                    .get(&item.under)
                    .or_else(|| self.keys.get(&item.under))
                    .cloned();
                let Some(under_key) = under_key else { continue };
                let aad = format!("lkh-rekey:{}:{}:{}", broadcast.epoch, item.node, item.under);
                if let Ok(pt) = aead::open(&under_key, &item.ct, aad.as_bytes()) {
                    let mut kb = [0u8; 32];
                    if pt.len() != 32 {
                        continue;
                    }
                    kb.copy_from_slice(&pt);
                    learned.insert(item.node, Key::from_bytes(kb));
                    progress = true;
                }
            }
        }
        // A broadcast that touches our path must yield the new root key;
        // one that doesn't touch it at all leaves the epoch bump only.
        let touches_us = broadcast.items.iter().any(|i| my_path.contains(&i.node));
        if touches_us {
            let Some(root) = learned.get(&1) else {
                return Err(CgkdError::CannotDecrypt);
            };
            self.group_key = root.clone();
            for (node, key) in learned {
                self.keys.insert(node, key);
            }
        }
        self.epoch = broadcast.epoch;
        Ok(())
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn id(&self) -> UserId {
        self.id
    }

    fn force_group_key(&mut self, key: Key, epoch: u64) {
        self.group_key = key;
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(70)
    }

    /// Admits `n` members, processing every broadcast at every member.
    fn build(n: usize, rng: &mut dyn RngCore) -> (LkhController, Vec<LkhMember>) {
        let mut gc = LkhController::new(16, rng);
        let mut members: Vec<LkhMember> = Vec::new();
        for _ in 0..n {
            let (_, welcome, broadcast) = gc.admit(rng).unwrap();
            let mut joiner = gc.member_from_welcome(welcome);
            for m in members.iter_mut() {
                m.process(&broadcast).unwrap();
            }
            joiner.process(&broadcast).unwrap();
            members.push(joiner);
        }
        (gc, members)
    }

    #[test]
    fn all_members_agree_on_group_key() {
        let mut r = rng();
        let (gc, members) = build(7, &mut r);
        for m in &members {
            assert_eq!(m.group_key(), gc.group_key(), "{}", m.id());
            assert_eq!(m.epoch(), gc.epoch());
        }
    }

    #[test]
    fn join_changes_group_key() {
        let mut r = rng();
        let mut gc = LkhController::new(8, &mut r);
        let (_, w1, b1) = gc.admit(&mut r).unwrap();
        let mut m1 = gc.member_from_welcome(w1);
        m1.process(&b1).unwrap();
        let key_before = gc.group_key().clone();
        let (_, _w2, b2) = gc.admit(&mut r).unwrap();
        assert_ne!(gc.group_key(), &key_before, "backward secrecy: join rekeys");
        m1.process(&b2).unwrap();
        assert_eq!(m1.group_key(), gc.group_key());
    }

    #[test]
    fn evicted_member_cannot_follow() {
        let mut r = rng();
        let (mut gc, mut members) = build(4, &mut r);
        let victim_id = members[1].id();
        let broadcast = gc.evict(victim_id, &mut r).unwrap();
        for (i, m) in members.iter_mut().enumerate() {
            if i == 1 {
                // The evicted member cannot decrypt the new root key.
                assert_eq!(m.process(&broadcast), Err(CgkdError::CannotDecrypt));
            } else {
                m.process(&broadcast).unwrap();
                assert_eq!(m.group_key(), gc.group_key());
            }
        }
    }

    #[test]
    fn eviction_changes_group_key() {
        let mut r = rng();
        let (mut gc, members) = build(3, &mut r);
        let before = gc.group_key().clone();
        gc.evict(members[0].id(), &mut r).unwrap();
        assert_ne!(gc.group_key(), &before, "forward secrecy: leave rekeys");
    }

    #[test]
    fn epoch_order_enforced() {
        let mut r = rng();
        let mut gc = LkhController::new(8, &mut r);
        let (_, w1, b1) = gc.admit(&mut r).unwrap();
        let mut m1 = gc.member_from_welcome(w1);
        m1.process(&b1).unwrap();
        let (_, _, b2) = gc.admit(&mut r).unwrap();
        let (_, _, b3) = gc.admit(&mut r).unwrap();
        // Skipping b2 fails.
        assert_eq!(m1.process(&b3), Err(CgkdError::EpochMismatch));
        m1.process(&b2).unwrap();
        m1.process(&b3).unwrap();
        assert_eq!(m1.group_key(), gc.group_key());
    }

    #[test]
    fn capacity_enforced() {
        let mut r = rng();
        let mut gc = LkhController::new(2, &mut r);
        gc.admit(&mut r).unwrap();
        gc.admit(&mut r).unwrap();
        assert!(matches!(gc.admit(&mut r), Err(CgkdError::Full)));
        // Eviction frees a slot.
        let id = gc.members()[0];
        gc.evict(id, &mut r).unwrap();
        gc.admit(&mut r).unwrap();
    }

    #[test]
    fn unknown_member_eviction() {
        let mut r = rng();
        let mut gc = LkhController::new(4, &mut r);
        assert_eq!(
            gc.evict(UserId(99), &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
    }

    #[test]
    fn rekey_cost_is_logarithmic() {
        let mut r = rng();
        let mut gc = LkhController::new(64, &mut r);
        let mut last = None;
        for _ in 0..64 {
            let (_, _, b) = gc.admit(&mut r).unwrap();
            last = Some(b);
        }
        // log2(64) levels, at most 2 items each.
        let stats = LkhController::stats(last.as_ref().unwrap());
        assert!(stats.items <= 2 * 7, "items = {}", stats.items);
        assert!(stats.items >= 6, "a full tree touches every level");
    }

    #[test]
    fn churn_sequence_stays_consistent() {
        let mut r = rng();
        let (mut gc, mut members) = build(8, &mut r);
        // Evict three members, then re-admit two, processing everywhere.
        for _ in 0..3 {
            let victim = members[0].id();
            let b = gc.evict(victim, &mut r).unwrap();
            members.remove(0);
            for m in members.iter_mut() {
                m.process(&b).unwrap();
            }
        }
        for _ in 0..2 {
            let (_, w, b) = gc.admit(&mut r).unwrap();
            let mut joiner = gc.member_from_welcome(w);
            for m in members.iter_mut() {
                m.process(&b).unwrap();
            }
            joiner.process(&b).unwrap();
            members.push(joiner);
        }
        for m in &members {
            assert_eq!(m.group_key(), gc.group_key());
        }
        assert_eq!(gc.members().len(), 7);
    }

    #[test]
    fn emptied_group_changes_key() {
        let mut r = rng();
        let (mut gc, members) = build(1, &mut r);
        let before = gc.group_key().clone();
        gc.evict(members[0].id(), &mut r).unwrap();
        assert_ne!(gc.group_key(), &before);
        assert!(gc.members().is_empty());
    }
}
