//! Logical Key Hierarchy (key graphs, Wong–Gouda–Lam \[33\]) with the
//! strong-security rekey discipline of \[34\]: every key on an affected path
//! is replaced by *fresh randomness* (never a one-way function of old
//! keys), and rekey items are AEAD-encrypted.
//!
//! Rekeying a join or leave touches one leaf-to-root path, so broadcasts
//! carry `O(log n)` items — the property measured in experiment E4. A
//! whole churn *epoch* of joins and leaves can be batched through
//! [`LkhController::apply_epoch`], which rekeys the **union** of the
//! affected paths exactly once (Wong–Gouda–Lam batched rekeying): a
//! window of `k` changes costs `O(k log n)` items total instead of `k`
//! separate broadcasts re-rekeying shared ancestors `k` times.
//!
//! Node keys live in a flat arena (`Vec<Option<Key>>`) indexed by heap
//! position, and every tree walk is iterative, so the controller scales
//! to million-leaf trees: no per-node hashing, no recursion, no pointer
//! chasing. Members store only their root path (indexed by depth) and
//! [`LkhMember::process`] decodes a batched broadcast in O(changes on
//! its path), not O(broadcast).

use crate::tree;
use crate::{BroadcastStats, CgkdError, Controller, MemberState, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::{aead, Key};
use std::collections::HashMap;

/// One encrypted rekey item: the new key of `node`, encrypted under the
/// key of `under` (a child of `node`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RekeyItem {
    /// Tree node whose key is being replaced.
    pub node: u32,
    /// Child node under whose key the new key is encrypted.
    pub under: u32,
    /// AEAD ciphertext of the new key.
    pub ct: Vec<u8>,
}

/// A rekey broadcast: all items for one membership change (or one whole
/// batched epoch).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LkhBroadcast {
    /// Epoch this broadcast moves the group *to*.
    pub epoch: u64,
    /// Encrypted rekey items, deepest node first: a key may be encrypted
    /// under a child key that is itself replaced in the same epoch, and
    /// the deepest-first order lets receivers decode in one pass.
    pub items: Vec<RekeyItem>,
}

/// The private welcome package for a joining member.
#[derive(Debug, Clone)]
pub struct LkhWelcome {
    /// Assigned identity.
    pub id: UserId,
    /// Assigned leaf node index.
    pub leaf: u32,
    /// The member's individual (leaf) key.
    pub leaf_key: Key,
    /// The epoch *before* the join rekey (the member then processes the
    /// join broadcast like everyone else).
    pub epoch: u64,
    /// Tree capacity (for path computation).
    pub capacity: u32,
}

/// The group controller's LKH state.
///
/// Node keys are stored in a flat arena indexed by heap position — node
/// `v`'s key is `keys[v]` — so a million-leaf tree is two contiguous
/// allocations, not a hash map per level.
pub struct LkhController {
    capacity: u32,
    /// Arena of node keys indexed by heap position (`1` is the root;
    /// index 0 is unused). `None` marks empty subtrees.
    keys: Vec<Option<Key>>,
    /// Number of members in each node's subtree.
    occupancy: Vec<u32>,
    leaf_of: HashMap<UserId, u32>,
    /// Leaves freed by evictions, reused LIFO before fresh ones.
    free: Vec<u32>,
    /// Next never-assigned leaf (`capacity..2*capacity` cursor).
    next_fresh: u32,
    group_key: Key,
    epoch: u64,
    next_id: u64,
}

impl std::fmt::Debug for LkhController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LkhController {{ capacity: {}, members: {}, epoch: {} }}",
            self.capacity,
            self.leaf_of.len(),
            self.epoch
        )
    }
}

/// Member-side LKH state: the keys along its leaf-to-root path, stored
/// as a depth-indexed arena (`path_keys[d]` is the key of the path node
/// at depth `d`; the last entry is the leaf key).
#[derive(Debug, Clone)]
pub struct LkhMember {
    id: UserId,
    leaf: u32,
    path_keys: Vec<Option<Key>>,
    group_key: Key,
    epoch: u64,
}

impl LkhController {
    /// Creates a controller for up to `capacity` members (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: u32, rng: &mut dyn RngCore) -> LkhController {
        let capacity = capacity.max(2).next_power_of_two();
        LkhController {
            capacity,
            keys: vec![None; (2 * capacity) as usize],
            occupancy: vec![0; (2 * capacity) as usize],
            leaf_of: HashMap::new(),
            free: Vec::new(),
            next_fresh: capacity,
            group_key: Key::random(rng),
            epoch: 0,
            next_id: 0,
        }
    }

    fn alloc_leaf(&mut self) -> Option<u32> {
        if let Some(leaf) = self.free.pop() {
            return Some(leaf);
        }
        if self.next_fresh < 2 * self.capacity {
            let leaf = self.next_fresh;
            self.next_fresh += 1;
            return Some(leaf);
        }
        None
    }

    /// Installs a member at `leaf` with a fresh leaf key; returns the key.
    fn occupy_leaf(&mut self, leaf: u32, rng: &mut dyn RngCore) -> Key {
        let leaf_key = Key::random(rng);
        self.keys[leaf as usize] = Some(leaf_key.clone());
        self.occupancy[leaf as usize] = 1;
        let mut v = tree::parent(leaf);
        while v >= 1 {
            self.occupancy[v as usize] += 1;
            v = tree::parent(v);
        }
        leaf_key
    }

    /// Clears `leaf` and decrements subtree occupancy along its path.
    fn vacate_leaf(&mut self, leaf: u32) {
        self.keys[leaf as usize] = None;
        self.occupancy[leaf as usize] = 0;
        let mut v = tree::parent(leaf);
        while v >= 1 {
            self.occupancy[v as usize] -= 1;
            v = tree::parent(v);
        }
        self.free.push(leaf);
    }

    /// Rekeys the union of the strict-ancestor paths of `affected`
    /// leaves, deepest node first, emitting one item per occupied child.
    /// Items for a node are encrypted under the *current* arena child
    /// keys — children deeper in the union have already been refreshed
    /// when their parent is processed, which is exactly the
    /// Wong–Gouda–Lam batched-rekey invariant.
    fn rekey_union(&mut self, affected: &[u32], rng: &mut dyn RngCore) -> Vec<RekeyItem> {
        // Union of strict ancestors, deepest first (heap index order is
        // monotone in depth).
        let mut nodes: Vec<u32> = Vec::new();
        for &leaf in affected {
            let mut v = tree::parent(leaf);
            while v >= 1 {
                nodes.push(v);
                v = tree::parent(v);
            }
        }
        nodes.sort_unstable_by(|a, b| b.cmp(a));
        nodes.dedup();

        let mut items = Vec::new();
        for v in nodes {
            if self.occupancy[v as usize] == 0 {
                self.keys[v as usize] = None;
                continue;
            }
            let new_key = if v == 1 {
                let k = Key::random(rng);
                self.group_key = k.clone();
                k
            } else {
                Key::random(rng)
            };
            let (l, r) = tree::children(v);
            for c in [l, r] {
                if self.occupancy[c as usize] > 0 {
                    if let Some(child_key) = &self.keys[c as usize] {
                        let aad = format!("lkh-rekey:{}:{}:{}", self.epoch + 1, v, c);
                        items.push(RekeyItem {
                            node: v,
                            under: c,
                            ct: aead::seal(child_key, new_key.as_bytes(), aad.as_bytes(), rng),
                        });
                    }
                }
            }
            self.keys[v as usize] = Some(new_key);
        }
        items
    }

    /// Batched epoch rekey: evicts `leaves`, admits `joins` members, and
    /// rekeys the union of all affected paths **once**, producing one
    /// broadcast and one epoch bump for the whole churn window.
    ///
    /// Freed leaves are reused by joins within the same epoch, so
    /// evict-then-rejoin in one window is well-defined. Welcomes carry
    /// the pre-epoch number: joiners process the returned broadcast like
    /// everyone else. An empty window (`joins == 0`, no leaves) is a
    /// no-op that returns an empty broadcast at the current epoch, which
    /// must not be distributed.
    ///
    /// The call validates up front and mutates nothing on error.
    ///
    /// # Errors
    ///
    /// [`CgkdError::UnknownMember`] for unknown or duplicated leaver
    /// ids; [`CgkdError::Full`] when the post-epoch membership would
    /// exceed capacity.
    pub fn apply_epoch(
        &mut self,
        joins: usize,
        leaves: &[UserId],
        rng: &mut dyn RngCore,
    ) -> Result<(Vec<(UserId, LkhWelcome)>, LkhBroadcast), CgkdError> {
        if joins == 0 && leaves.is_empty() {
            return Ok((
                Vec::new(),
                LkhBroadcast {
                    epoch: self.epoch,
                    items: Vec::new(),
                },
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for id in leaves {
            if !self.leaf_of.contains_key(id) || !seen.insert(*id) {
                return Err(CgkdError::UnknownMember);
            }
        }
        if self.leaf_of.len() - leaves.len() + joins > self.capacity as usize {
            return Err(CgkdError::Full);
        }

        let mut affected: Vec<u32> = Vec::with_capacity(leaves.len() + joins);
        for id in leaves {
            if let Some(leaf) = self.leaf_of.remove(id) {
                self.vacate_leaf(leaf);
                affected.push(leaf);
            }
        }
        let mut joined = Vec::with_capacity(joins);
        for _ in 0..joins {
            let Some(leaf) = self.alloc_leaf() else {
                return Err(CgkdError::Full); // unreachable after the check
            };
            let id = UserId(self.next_id);
            self.next_id += 1;
            self.leaf_of.insert(id, leaf);
            let leaf_key = self.occupy_leaf(leaf, rng);
            affected.push(leaf);
            joined.push((
                id,
                LkhWelcome {
                    id,
                    leaf,
                    leaf_key,
                    epoch: self.epoch,
                    capacity: self.capacity,
                },
            ));
        }
        affected.sort_unstable();
        affected.dedup();
        let items = self.rekey_union(&affected, rng);
        if self.leaf_of.is_empty() {
            // Group emptied: nobody left to key; refresh the stored key
            // so the old one is never reused.
            self.group_key = Key::random(rng);
        }
        self.epoch += 1;
        Ok((
            joined,
            LkhBroadcast {
                epoch: self.epoch,
                items,
            },
        ))
    }
}

impl Controller for LkhController {
    type Welcome = LkhWelcome;
    type Member = LkhMember;
    type Broadcast = LkhBroadcast;

    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, LkhWelcome, LkhBroadcast), CgkdError> {
        let leaf = self.alloc_leaf().ok_or(CgkdError::Full)?;
        let id = UserId(self.next_id);
        self.next_id += 1;
        self.leaf_of.insert(id, leaf);
        let leaf_key = self.occupy_leaf(leaf, rng);

        let welcome = LkhWelcome {
            id,
            leaf,
            leaf_key,
            epoch: self.epoch,
            capacity: self.capacity,
        };
        let items = self.rekey_union(&[leaf], rng);
        self.epoch += 1;
        Ok((
            id,
            welcome,
            LkhBroadcast {
                epoch: self.epoch,
                items,
            },
        ))
    }

    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<LkhBroadcast, CgkdError> {
        let leaf = self.leaf_of.remove(&id).ok_or(CgkdError::UnknownMember)?;
        self.vacate_leaf(leaf);
        let items = self.rekey_union(&[leaf], rng);
        if self.leaf_of.is_empty() {
            // Group emptied: nobody left to key; refresh the stored key so
            // the old one is never reused.
            self.group_key = Key::random(rng);
        }
        self.epoch += 1;
        Ok(LkhBroadcast {
            epoch: self.epoch,
            items,
        })
    }

    fn member_from_welcome(&self, welcome: LkhWelcome) -> LkhMember {
        let d = tree::depth(welcome.leaf) as usize;
        let mut path_keys = vec![None; d + 1];
        path_keys[d] = Some(welcome.leaf_key.clone());
        LkhMember {
            id: welcome.id,
            leaf: welcome.leaf,
            path_keys,
            // Placeholder until the join broadcast is processed.
            group_key: welcome.leaf_key,
            epoch: welcome.epoch,
        }
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn members(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.leaf_of.keys().copied().collect();
        ids.sort();
        ids
    }

    fn stats(broadcast: &LkhBroadcast) -> BroadcastStats {
        BroadcastStats {
            items: broadcast.items.len(),
            bytes: broadcast.items.iter().map(|i| i.ct.len() + 8).sum(),
        }
    }
}

impl MemberState for LkhMember {
    type Broadcast = LkhBroadcast;

    fn process(&mut self, broadcast: &LkhBroadcast) -> Result<(), CgkdError> {
        if broadcast.epoch != self.epoch + 1 {
            return Err(CgkdError::EpochMismatch);
        }
        // Of a batched broadcast's items, at most 2·depth sit on our
        // path (one per occupied child of each ancestor): collect those,
        // order deepest first, decode in a single pass. O(changes), not
        // O(items²) fixpointing.
        let mut mine: Vec<&RekeyItem> = broadcast
            .items
            .iter()
            .filter(|it| it.node != self.leaf && tree::is_ancestor_or_self(it.node, self.leaf))
            .collect();
        let touches_us = !mine.is_empty();
        mine.sort_unstable_by_key(|it| std::cmp::Reverse(it.node));

        let mut staged: Vec<Option<Key>> = vec![None; self.path_keys.len()];
        for item in mine {
            let nd = tree::depth(item.node) as usize;
            if staged[nd].is_some() {
                continue; // this node's new key is already decoded
            }
            if !tree::is_ancestor_or_self(item.under, self.leaf) {
                continue; // encrypted to the sibling subtree
            }
            let ud = tree::depth(item.under) as usize;
            let under_key = match staged[ud].as_ref().or(self.path_keys[ud].as_ref()) {
                Some(k) => k.clone(),
                None => continue,
            };
            let aad = format!("lkh-rekey:{}:{}:{}", broadcast.epoch, item.node, item.under);
            if let Ok(pt) = aead::open(&under_key, &item.ct, aad.as_bytes()) {
                if pt.len() != 32 {
                    continue;
                }
                let mut kb = [0u8; 32];
                kb.copy_from_slice(&pt);
                staged[nd] = Some(Key::from_bytes(kb));
            }
        }
        // A broadcast that touches our path must yield the new root key;
        // one that doesn't touch it at all leaves the epoch bump only.
        if touches_us {
            let Some(root) = staged[0].clone() else {
                return Err(CgkdError::CannotDecrypt);
            };
            self.group_key = root;
            for (d, learned) in staged.into_iter().enumerate() {
                if learned.is_some() {
                    self.path_keys[d] = learned;
                }
            }
        }
        self.epoch = broadcast.epoch;
        Ok(())
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn id(&self) -> UserId {
        self.id
    }

    fn force_group_key(&mut self, key: Key, epoch: u64) {
        self.group_key = key;
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(70)
    }

    /// Admits `n` members, processing every broadcast at every member.
    fn build(n: usize, rng: &mut dyn RngCore) -> (LkhController, Vec<LkhMember>) {
        let mut gc = LkhController::new(16, rng);
        let mut members: Vec<LkhMember> = Vec::new();
        for _ in 0..n {
            let (_, welcome, broadcast) = gc.admit(rng).unwrap();
            let mut joiner = gc.member_from_welcome(welcome);
            for m in members.iter_mut() {
                m.process(&broadcast).unwrap();
            }
            joiner.process(&broadcast).unwrap();
            members.push(joiner);
        }
        (gc, members)
    }

    #[test]
    fn all_members_agree_on_group_key() {
        let mut r = rng();
        let (gc, members) = build(7, &mut r);
        for m in &members {
            assert_eq!(m.group_key(), gc.group_key(), "{}", m.id());
            assert_eq!(m.epoch(), gc.epoch());
        }
    }

    #[test]
    fn join_changes_group_key() {
        let mut r = rng();
        let mut gc = LkhController::new(8, &mut r);
        let (_, w1, b1) = gc.admit(&mut r).unwrap();
        let mut m1 = gc.member_from_welcome(w1);
        m1.process(&b1).unwrap();
        let key_before = gc.group_key().clone();
        let (_, _w2, b2) = gc.admit(&mut r).unwrap();
        assert_ne!(gc.group_key(), &key_before, "backward secrecy: join rekeys");
        m1.process(&b2).unwrap();
        assert_eq!(m1.group_key(), gc.group_key());
    }

    #[test]
    fn evicted_member_cannot_follow() {
        let mut r = rng();
        let (mut gc, mut members) = build(4, &mut r);
        let victim_id = members[1].id();
        let broadcast = gc.evict(victim_id, &mut r).unwrap();
        for (i, m) in members.iter_mut().enumerate() {
            if i == 1 {
                // The evicted member cannot decrypt the new root key.
                assert_eq!(m.process(&broadcast), Err(CgkdError::CannotDecrypt));
            } else {
                m.process(&broadcast).unwrap();
                assert_eq!(m.group_key(), gc.group_key());
            }
        }
    }

    #[test]
    fn eviction_changes_group_key() {
        let mut r = rng();
        let (mut gc, members) = build(3, &mut r);
        let before = gc.group_key().clone();
        gc.evict(members[0].id(), &mut r).unwrap();
        assert_ne!(gc.group_key(), &before, "forward secrecy: leave rekeys");
    }

    #[test]
    fn epoch_order_enforced() {
        let mut r = rng();
        let mut gc = LkhController::new(8, &mut r);
        let (_, w1, b1) = gc.admit(&mut r).unwrap();
        let mut m1 = gc.member_from_welcome(w1);
        m1.process(&b1).unwrap();
        let (_, _, b2) = gc.admit(&mut r).unwrap();
        let (_, _, b3) = gc.admit(&mut r).unwrap();
        // Skipping b2 fails.
        assert_eq!(m1.process(&b3), Err(CgkdError::EpochMismatch));
        m1.process(&b2).unwrap();
        m1.process(&b3).unwrap();
        assert_eq!(m1.group_key(), gc.group_key());
    }

    #[test]
    fn capacity_enforced() {
        let mut r = rng();
        let mut gc = LkhController::new(2, &mut r);
        gc.admit(&mut r).unwrap();
        gc.admit(&mut r).unwrap();
        assert!(matches!(gc.admit(&mut r), Err(CgkdError::Full)));
        // Eviction frees a slot.
        let id = gc.members()[0];
        gc.evict(id, &mut r).unwrap();
        gc.admit(&mut r).unwrap();
    }

    #[test]
    fn unknown_member_eviction() {
        let mut r = rng();
        let mut gc = LkhController::new(4, &mut r);
        assert_eq!(
            gc.evict(UserId(99), &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
    }

    #[test]
    fn rekey_cost_is_logarithmic() {
        let mut r = rng();
        let mut gc = LkhController::new(64, &mut r);
        let mut last = None;
        for _ in 0..64 {
            let (_, _, b) = gc.admit(&mut r).unwrap();
            last = Some(b);
        }
        // log2(64) levels, at most 2 items each.
        let stats = LkhController::stats(last.as_ref().unwrap());
        assert!(stats.items <= 2 * 7, "items = {}", stats.items);
        assert!(stats.items >= 6, "a full tree touches every level");
    }

    #[test]
    fn churn_sequence_stays_consistent() {
        let mut r = rng();
        let (mut gc, mut members) = build(8, &mut r);
        // Evict three members, then re-admit two, processing everywhere.
        for _ in 0..3 {
            let victim = members[0].id();
            let b = gc.evict(victim, &mut r).unwrap();
            members.remove(0);
            for m in members.iter_mut() {
                m.process(&b).unwrap();
            }
        }
        for _ in 0..2 {
            let (_, w, b) = gc.admit(&mut r).unwrap();
            let mut joiner = gc.member_from_welcome(w);
            for m in members.iter_mut() {
                m.process(&b).unwrap();
            }
            joiner.process(&b).unwrap();
            members.push(joiner);
        }
        for m in &members {
            assert_eq!(m.group_key(), gc.group_key());
        }
        assert_eq!(gc.members().len(), 7);
    }

    #[test]
    fn emptied_group_changes_key() {
        let mut r = rng();
        let (mut gc, members) = build(1, &mut r);
        let before = gc.group_key().clone();
        gc.evict(members[0].id(), &mut r).unwrap();
        assert_ne!(gc.group_key(), &before);
        assert!(gc.members().is_empty());
    }

    #[test]
    fn batched_epoch_is_one_broadcast() {
        let mut r = rng();
        let (mut gc, mut members) = build(8, &mut r);
        let victims = [members[0].id(), members[3].id()];
        let (joined, b) = gc.apply_epoch(3, &victims, &mut r).unwrap();
        assert_eq!(joined.len(), 3);
        assert_eq!(b.epoch, gc.epoch());
        // Survivors follow with one process() call; victims cannot.
        let mut survivors = Vec::new();
        for m in members.drain(..) {
            let mut m = m;
            if victims.contains(&m.id()) {
                assert_eq!(m.process(&b), Err(CgkdError::CannotDecrypt));
            } else {
                m.process(&b).unwrap();
                assert_eq!(m.group_key(), gc.group_key());
                survivors.push(m);
            }
        }
        // Joiners bootstrap from welcome + the same broadcast.
        for (_, w) in joined {
            let mut j = gc.member_from_welcome(w);
            j.process(&b).unwrap();
            assert_eq!(j.group_key(), gc.group_key());
        }
        assert_eq!(gc.members().len(), 9);
    }

    #[test]
    fn batched_epoch_compresses_shared_paths() {
        let mut r = rng();
        let mut gc = LkhController::new(64, &mut r);
        let (joined, b) = gc.apply_epoch(64, &[], &mut r).unwrap();
        assert_eq!(joined.len(), 64);
        // A full 64-leaf build in one epoch: the union of all paths is
        // every internal node, 2 items each = 126 items, versus
        // 64 separate admits which emit ~64·log items.
        let stats = LkhController::stats(&b);
        assert_eq!(stats.items, 126);
    }

    #[test]
    fn batched_epoch_validates_atomically() {
        let mut r = rng();
        let (mut gc, members) = build(4, &mut r);
        let epoch_before = gc.epoch();
        // Unknown leaver: nothing changes.
        assert_eq!(
            gc.apply_epoch(1, &[UserId(999)], &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
        // Duplicate leaver: nothing changes.
        let dup = [members[0].id(), members[0].id()];
        assert_eq!(
            gc.apply_epoch(0, &dup, &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
        // Over capacity (16): nothing changes.
        assert_eq!(gc.apply_epoch(13, &[], &mut r).err(), Some(CgkdError::Full));
        assert_eq!(gc.epoch(), epoch_before);
        assert_eq!(gc.members().len(), 4);
        // Exactly at capacity works, and an eviction makes room in the
        // same window (evict one + join 13 = 16).
        let (_, _) = gc.apply_epoch(13, &[members[1].id()], &mut r).unwrap();
        assert_eq!(gc.members().len(), 16);
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let mut r = rng();
        let (mut gc, _members) = build(3, &mut r);
        let epoch = gc.epoch();
        let key = gc.group_key().clone();
        let (joined, b) = gc.apply_epoch(0, &[], &mut r).unwrap();
        assert!(joined.is_empty());
        assert!(b.items.is_empty());
        assert_eq!(b.epoch, epoch);
        assert_eq!(gc.group_key(), &key);
    }
}
