//! The Subset-Difference (SD) broadcast-encryption method for *stateless
//! receivers* (Naor–Naor–Lotspiech \[26\]).
//!
//! The controller maintains a complete binary tree over the ID space. The
//! subset `S_{i,j}` contains every leaf below node `i` except those below
//! its descendant `j`; its key is derived GGM-style from a per-node label,
//! so a member stores only `O(log² n)` labels at provisioning time and
//! never processes rekey state: each broadcast carries the session key
//! encrypted under a *cover* of the non-revoked set.
//!
//! The cover-finding algorithm is the one from the NNL paper: repeatedly
//! merge the two Steiner-tree leaves with the deepest least common
//! ancestor, emitting at most two subsets per merge; a cover of at most
//! `2r - 1` subsets for `r` revocations.

use crate::{BroadcastStats, CgkdError, Controller, MemberState, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::{aead, hmac, Key};
use std::collections::{BTreeSet, HashMap};

/// GGM derivations from a label.
fn ggm_left(label: &[u8; 32]) -> [u8; 32] {
    hmac::mac(label, b"sd-ggm-left")
}
fn ggm_right(label: &[u8; 32]) -> [u8; 32] {
    hmac::mac(label, b"sd-ggm-right")
}
fn ggm_key(label: &[u8; 32]) -> Key {
    Key::from_bytes(hmac::mac(label, b"sd-ggm-key"))
}

fn depth(node: u32) -> u32 {
    31 - node.leading_zeros()
}

/// The ancestor of `u` at depth `d` (requires `d <= depth(u)`).
fn ancestor_at(u: u32, d: u32) -> u32 {
    u >> (depth(u) - d)
}

fn is_ancestor_or_self(a: u32, u: u32) -> bool {
    depth(a) <= depth(u) && ancestor_at(u, depth(a)) == a
}

fn lca(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while depth(a) > depth(b) {
        a /= 2;
    }
    while depth(b) > depth(a) {
        b /= 2;
    }
    while a != b {
        a /= 2;
        b /= 2;
    }
    a
}

/// A subset in a broadcast cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subset {
    /// All leaves (used only when nobody is revoked).
    Full,
    /// `S_{i,j}`: leaves below `i` but not below `j`.
    Diff {
        /// Subtree root.
        i: u32,
        /// Excluded descendant.
        j: u32,
    },
}

/// One encrypted item of an SD broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdItem {
    /// Which subset's key encrypts this item.
    pub subset: Subset,
    /// AEAD ciphertext of the session key.
    pub ct: Vec<u8>,
}

/// An SD rekey broadcast: the session key under a cover of the non-revoked
/// set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdBroadcast {
    /// Epoch this broadcast establishes.
    pub epoch: u64,
    /// Cover items.
    pub items: Vec<SdItem>,
}

/// Provisioning package for a member: its leaf plus all `LABEL_i(s)` for
/// ancestors `i` and path-siblings `s`, and the full-tree key.
#[derive(Debug, Clone)]
pub struct SdWelcome {
    /// Assigned identity.
    pub id: UserId,
    /// Assigned leaf node.
    pub leaf: u32,
    /// `(i, s) → LABEL_i(s)` for each ancestor `i` of the leaf and each
    /// sibling `s` of the path below `i`.
    pub labels: HashMap<(u32, u32), [u8; 32]>,
    /// Key used when nobody is revoked.
    pub full_key: Key,
    /// Epoch before the join broadcast.
    pub epoch: u64,
}

/// The SD controller.
pub struct SdController {
    capacity: u32,
    master: [u8; 32],
    leaf_of: HashMap<UserId, u32>,
    revoked_leaves: BTreeSet<u32>,
    next_leaf: u32,
    group_key: Key,
    epoch: u64,
    next_id: u64,
}

impl std::fmt::Debug for SdController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SdController {{ capacity: {}, members: {}, revoked: {}, epoch: {} }}",
            self.capacity,
            self.leaf_of.len(),
            self.revoked_leaves.len(),
            self.epoch
        )
    }
}

/// Member state (stateless receiver: labels never change).
#[derive(Debug, Clone)]
pub struct SdMember {
    id: UserId,
    leaf: u32,
    labels: HashMap<(u32, u32), [u8; 32]>,
    full_key: Key,
    group_key: Key,
    epoch: u64,
}

impl SdController {
    /// Creates a controller over a tree with `capacity` leaves (rounded up
    /// to a power of two, minimum 2).
    pub fn new(capacity: u32, rng: &mut dyn RngCore) -> SdController {
        let capacity = capacity.max(2).next_power_of_two();
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        SdController {
            capacity,
            master,
            leaf_of: HashMap::new(),
            revoked_leaves: BTreeSet::new(),
            next_leaf: capacity,
            group_key: Key::random(rng),
            epoch: 0,
            next_id: 0,
        }
    }

    /// The initial label of subtree root `i`.
    fn node_label(&self, i: u32) -> [u8; 32] {
        let mut data = b"sd-node-label".to_vec();
        data.extend_from_slice(&i.to_be_bytes());
        hmac::mac(&self.master, &data)
    }

    fn full_key(&self) -> Key {
        Key::from_bytes(hmac::mac(&self.master, b"sd-full-key"))
    }

    /// Derives `LABEL_i(j)` by walking the GGM tree from `i` down to `j`.
    fn label(&self, i: u32, j: u32) -> [u8; 32] {
        debug_assert!(is_ancestor_or_self(i, j));
        let mut label = self.node_label(i);
        for d in depth(i)..depth(j) {
            let next = ancestor_at(j, d + 1);
            label = if next.is_multiple_of(2) {
                ggm_left(&label)
            } else {
                ggm_right(&label)
            };
        }
        label
    }

    fn subset_key(&self, subset: Subset) -> Key {
        match subset {
            Subset::Full => self.full_key(),
            Subset::Diff { i, j } => ggm_key(&self.label(i, j)),
        }
    }

    /// NNL cover of all leaves except `revoked`.
    fn cover(&self, revoked: &BTreeSet<u32>) -> Vec<Subset> {
        if revoked.is_empty() {
            return vec![Subset::Full];
        }
        // Working set: chains (top, excluded-leaf).
        let mut chains: Vec<(u32, u32)> = revoked.iter().map(|&l| (l, l)).collect();
        let mut cover = Vec::new();
        while chains.len() > 1 {
            // Find the pair with the deepest LCA.
            let mut best = (0usize, 1usize);
            let mut best_depth = 0;
            for x in 0..chains.len() {
                for y in x + 1..chains.len() {
                    let d = depth(lca(chains[x].0, chains[y].0));
                    if d >= best_depth {
                        best_depth = d;
                        best = (x, y);
                    }
                }
            }
            let (x, y) = best;
            let (v1, l1) = chains[x];
            let (v2, l2) = chains[y];
            let v = lca(v1, v2);
            let c1 = ancestor_at(v1, depth(v) + 1);
            let c2 = ancestor_at(v2, depth(v) + 1);
            if c1 != v1 {
                cover.push(Subset::Diff { i: c1, j: v1 });
            }
            if c2 != v2 {
                cover.push(Subset::Diff { i: c2, j: v2 });
            }
            // Merge into a single chain topped at v; the excluded leaf is
            // arbitrary (we use l1) because everything below v is now
            // handled.
            let keep = l1.min(l2);
            chains.remove(y);
            chains.remove(x);
            chains.push((v, keep));
        }
        let (v, _l) = chains[0];
        if v != 1 {
            cover.push(Subset::Diff { i: 1, j: v });
        }
        cover
    }

    fn rekey(&mut self, rng: &mut dyn RngCore) -> SdBroadcast {
        self.group_key = Key::random(rng);
        self.epoch += 1;
        let items = self
            .cover(&self.revoked_leaves)
            .into_iter()
            .map(|subset| {
                let key = self.subset_key(subset);
                let aad = format!("sd-rekey:{}", self.epoch);
                SdItem {
                    subset,
                    ct: aead::seal(&key, self.group_key.as_bytes(), aad.as_bytes(), rng),
                }
            })
            .collect();
        SdBroadcast {
            epoch: self.epoch,
            items,
        }
    }

    /// Number of subsets a rekey would currently need (cover size) — used
    /// by the E4 experiment without re-encrypting.
    pub fn cover_size(&self) -> usize {
        self.cover(&self.revoked_leaves).len()
    }
}

impl Controller for SdController {
    type Welcome = SdWelcome;
    type Member = SdMember;
    type Broadcast = SdBroadcast;

    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, SdWelcome, SdBroadcast), CgkdError> {
        if self.next_leaf >= 2 * self.capacity {
            return Err(CgkdError::Full);
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;
        let id = UserId(self.next_id);
        self.next_id += 1;
        self.leaf_of.insert(id, leaf);

        // Provision labels: for each ancestor i (strictly above the leaf),
        // the labels of every sibling along the path below i.
        let mut labels = HashMap::new();
        for di in 0..depth(leaf) {
            let i = ancestor_at(leaf, di);
            for dv in di + 1..=depth(leaf) {
                let on_path = ancestor_at(leaf, dv);
                let sibling = on_path ^ 1;
                labels.insert((i, sibling), self.label(i, sibling));
            }
        }
        let welcome = SdWelcome {
            id,
            leaf,
            labels,
            full_key: self.full_key(),
            epoch: self.epoch,
        };
        Ok((id, welcome, self.rekey(rng)))
    }

    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<SdBroadcast, CgkdError> {
        let leaf = self.leaf_of.remove(&id).ok_or(CgkdError::UnknownMember)?;
        self.revoked_leaves.insert(leaf);
        Ok(self.rekey(rng))
    }

    fn member_from_welcome(&self, welcome: SdWelcome) -> SdMember {
        SdMember {
            id: welcome.id,
            leaf: welcome.leaf,
            labels: welcome.labels,
            group_key: welcome.full_key.clone(),
            full_key: welcome.full_key,
            epoch: welcome.epoch,
        }
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn members(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.leaf_of.keys().copied().collect();
        ids.sort();
        ids
    }

    fn stats(broadcast: &SdBroadcast) -> BroadcastStats {
        BroadcastStats {
            items: broadcast.items.len(),
            bytes: broadcast.items.iter().map(|i| i.ct.len() + 8).sum(),
        }
    }
}

impl SdMember {
    /// Derives the key for `subset` if this member belongs to it.
    fn derive(&self, subset: Subset) -> Option<Key> {
        match subset {
            Subset::Full => Some(self.full_key.clone()),
            Subset::Diff { i, j } => {
                if !is_ancestor_or_self(i, self.leaf) || is_ancestor_or_self(j, self.leaf) {
                    return None; // not in this subset
                }
                // First node on the path i→j that is not an ancestor of us:
                // it is the sibling of our path at that depth.
                let mut s = None;
                for d in depth(i) + 1..=depth(j) {
                    let node = ancestor_at(j, d);
                    if !is_ancestor_or_self(node, self.leaf) {
                        s = Some(node);
                        break;
                    }
                }
                let s = s?;
                let mut label = *self.labels.get(&(i, s))?;
                for d in depth(s)..depth(j) {
                    let next = ancestor_at(j, d + 1);
                    label = if next.is_multiple_of(2) {
                        ggm_left(&label)
                    } else {
                        ggm_right(&label)
                    };
                }
                Some(ggm_key(&label))
            }
        }
    }
}

impl MemberState for SdMember {
    type Broadcast = SdBroadcast;

    fn process(&mut self, broadcast: &SdBroadcast) -> Result<(), CgkdError> {
        if broadcast.epoch <= self.epoch {
            return Err(CgkdError::EpochMismatch);
        }
        let aad = format!("sd-rekey:{}", broadcast.epoch);
        for item in &broadcast.items {
            let Some(key) = self.derive(item.subset) else {
                continue;
            };
            if let Ok(pt) = aead::open(&key, &item.ct, aad.as_bytes()) {
                if pt.len() == 32 {
                    let mut kb = [0u8; 32];
                    kb.copy_from_slice(&pt);
                    self.group_key = Key::from_bytes(kb);
                    // Stateless receivers may skip epochs freely.
                    self.epoch = broadcast.epoch;
                    return Ok(());
                }
            }
        }
        Err(CgkdError::CannotDecrypt)
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn id(&self) -> UserId {
        self.id
    }

    fn force_group_key(&mut self, key: Key, epoch: u64) {
        self.group_key = key;
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(72)
    }

    #[test]
    fn tree_helpers() {
        assert_eq!(depth(1), 0);
        assert_eq!(depth(2), 1);
        assert_eq!(depth(7), 2);
        assert_eq!(lca(4, 5), 2);
        assert_eq!(lca(4, 6), 1);
        assert_eq!(lca(4, 4), 4);
        assert!(is_ancestor_or_self(1, 13));
        assert!(is_ancestor_or_self(3, 13));
        assert!(!is_ancestor_or_self(2, 13));
        assert_eq!(ancestor_at(13, 1), 3);
    }

    #[test]
    fn everyone_decrypts_when_nobody_revoked() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        let mut members = Vec::new();
        let mut last = None;
        for _ in 0..6 {
            let (_, w, b) = gc.admit(&mut r).unwrap();
            members.push(gc.member_from_welcome(w));
            last = Some(b);
        }
        // Stateless receivers only need the LATEST broadcast.
        let b = last.unwrap();
        for m in members.iter_mut() {
            m.process(&b).unwrap();
            assert_eq!(m.group_key(), gc.group_key());
        }
        assert_eq!(b.items.len(), 1, "no revocations: single Full item");
    }

    #[test]
    fn revoked_member_excluded_others_covered() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        let mut members = Vec::new();
        for _ in 0..8 {
            let (_, w, _) = gc.admit(&mut r).unwrap();
            members.push(gc.member_from_welcome(w));
        }
        // Revoke members 2 and 5.
        let b1 = gc.evict(members[2].id(), &mut r).unwrap();
        let _ = b1;
        let b2 = gc.evict(members[5].id(), &mut r).unwrap();
        for (i, m) in members.iter_mut().enumerate() {
            if i == 2 || i == 5 {
                assert_eq!(m.process(&b2), Err(CgkdError::CannotDecrypt), "member {i}");
            } else {
                m.process(&b2).unwrap();
                assert_eq!(m.group_key(), gc.group_key(), "member {i}");
            }
        }
    }

    #[test]
    fn cover_sizes_bounded() {
        let mut r = rng();
        let mut gc = SdController::new(64, &mut r);
        let mut ids = Vec::new();
        for _ in 0..64 {
            let (id, _, _) = gc.admit(&mut r).unwrap();
            ids.push(id);
        }
        assert_eq!(gc.cover_size(), 1);
        // Revoke a scattered set; cover stays ≤ 2r - 1.
        for (count, &id) in [ids[0], ids[13], ids[27], ids[40], ids[63]]
            .iter()
            .enumerate()
        {
            gc.evict(id, &mut r).unwrap();
            let rlen = count + 1;
            assert!(
                gc.cover_size() <= 2 * rlen,
                "cover {} too big for {} revocations",
                gc.cover_size(),
                rlen
            );
        }
    }

    #[test]
    fn cover_partitions_correctly() {
        // Structural check: every non-revoked allocated leaf is in exactly
        // one subset; revoked leaves are in none.
        let mut r = rng();
        let mut gc = SdController::new(16, &mut r);
        let mut ids = Vec::new();
        for _ in 0..16 {
            let (id, _, _) = gc.admit(&mut r).unwrap();
            ids.push(id);
        }
        for &victim in &[ids[1], ids[6], ids[7], ids[12]] {
            gc.evict(victim, &mut r).unwrap();
        }
        let cover = gc.cover(&gc.revoked_leaves);
        for leaf in 16u32..32 {
            let covering = cover
                .iter()
                .filter(|s| match **s {
                    Subset::Full => true,
                    Subset::Diff { i, j } => {
                        is_ancestor_or_self(i, leaf) && !is_ancestor_or_self(j, leaf)
                    }
                })
                .count();
            if gc.revoked_leaves.contains(&leaf) {
                assert_eq!(covering, 0, "revoked leaf {leaf} must not be covered");
            } else {
                assert_eq!(covering, 1, "leaf {leaf} must be covered exactly once");
            }
        }
    }

    #[test]
    fn stateless_members_skip_epochs() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        let (_, w, _) = gc.admit(&mut r).unwrap();
        let mut m = gc.member_from_welcome(w);
        // Generate several epochs without delivering them.
        let (_, _, _) = gc.admit(&mut r).unwrap();
        let (_, _, _) = gc.admit(&mut r).unwrap();
        let (id3, _, b) = gc.admit(&mut r).unwrap();
        let _ = id3;
        // Old member decrypts the latest broadcast directly.
        m.process(&b).unwrap();
        assert_eq!(m.group_key(), gc.group_key());
        // Replays of older epochs are rejected.
        assert_eq!(m.process(&b), Err(CgkdError::EpochMismatch));
    }

    #[test]
    fn label_storage_is_polylog() {
        let mut r = rng();
        let mut gc = SdController::new(1024, &mut r);
        let (_, w, _) = gc.admit(&mut r).unwrap();
        // depth d = 10: expect d(d+1)/2 = 55 labels.
        assert_eq!(w.labels.len(), 55);
    }
}
