//! The Subset-Difference (SD) broadcast-encryption method for *stateless
//! receivers* (Naor–Naor–Lotspiech \[26\]).
//!
//! The controller maintains a complete binary tree over the ID space. The
//! subset `S_{i,j}` contains every leaf below node `i` except those below
//! its descendant `j`; its key is derived GGM-style from a per-node label,
//! so a member stores only `O(log² n)` labels at provisioning time and
//! never processes rekey state: each broadcast carries the session key
//! encrypted under a *cover* of the non-revoked set.
//!
//! The cover-finding algorithm is the one from the NNL paper: repeatedly
//! merge the two Steiner-tree leaves with the deepest least common
//! ancestor, emitting at most two subsets per merge; a cover of at most
//! `2r - 1` subsets for `r` revocations.

use crate::tree::{ancestor_at, depth, is_ancestor_or_self, lca};
use crate::{BroadcastStats, CgkdError, Controller, MemberState, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::{aead, hmac, Key};
use std::collections::{BTreeSet, HashMap, HashSet};

/// GGM derivations from a label.
fn ggm_left(label: &[u8; 32]) -> [u8; 32] {
    hmac::mac(label, b"sd-ggm-left")
}
fn ggm_right(label: &[u8; 32]) -> [u8; 32] {
    hmac::mac(label, b"sd-ggm-right")
}
fn ggm_key(label: &[u8; 32]) -> Key {
    Key::from_bytes(hmac::mac(label, b"sd-ggm-key"))
}

/// A member's provisioned labels, stored as a flat depth-pair arena.
///
/// For a member at leaf depth `D`, the label `LABEL_i(s)` it holds is
/// uniquely named by `(depth(i), depth(s))` — `i` is the path ancestor
/// at its depth and `s` is the sibling of the path node at *its* depth —
/// so the `D(D+1)/2` labels live in a `(D+1)²` slot array with no
/// hashing, and lookup during broadcast decryption is two subtractions
/// and an index.
#[derive(Clone)]
pub struct LabelArena {
    depth: u32,
    slots: Vec<Option<[u8; 32]>>,
}

impl LabelArena {
    fn new(depth: u32) -> LabelArena {
        let side = depth as usize + 1;
        LabelArena {
            depth,
            slots: vec![None; side * side],
        }
    }

    #[inline]
    fn idx(&self, di: u32, ds: u32) -> usize {
        di as usize * (self.depth as usize + 1) + ds as usize
    }

    fn set(&mut self, di: u32, ds: u32, label: [u8; 32]) {
        let idx = self.idx(di, ds);
        self.slots[idx] = Some(label);
    }

    /// The label `LABEL_i(s)` for the ancestor at depth `di` and the
    /// path-sibling at depth `ds`, if provisioned.
    pub fn get(&self, di: u32, ds: u32) -> Option<&[u8; 32]> {
        if di > self.depth || ds > self.depth {
            return None;
        }
        self.slots[self.idx(di, ds)].as_ref()
    }

    /// Number of provisioned labels.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no labels are provisioned.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }
}

impl std::fmt::Debug for LabelArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Labels are key material: print the shape, never the contents.
        write!(
            f,
            "LabelArena {{ depth: {}, labels: {} }}",
            self.depth,
            self.len()
        )
    }
}

/// A subset in a broadcast cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subset {
    /// All leaves (used only when nobody is revoked).
    Full,
    /// `S_{i,j}`: leaves below `i` but not below `j`.
    Diff {
        /// Subtree root.
        i: u32,
        /// Excluded descendant.
        j: u32,
    },
}

/// One encrypted item of an SD broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdItem {
    /// Which subset's key encrypts this item.
    pub subset: Subset,
    /// AEAD ciphertext of the session key.
    pub ct: Vec<u8>,
}

/// An SD rekey broadcast: the session key under a cover of the non-revoked
/// set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdBroadcast {
    /// Epoch this broadcast establishes.
    pub epoch: u64,
    /// Cover items.
    pub items: Vec<SdItem>,
}

/// Provisioning package for a member: its leaf plus all `LABEL_i(s)` for
/// ancestors `i` and path-siblings `s`, and the full-tree key.
#[derive(Debug, Clone)]
pub struct SdWelcome {
    /// Assigned identity.
    pub id: UserId,
    /// Assigned leaf node.
    pub leaf: u32,
    /// `LABEL_i(s)` for each ancestor `i` of the leaf and each sibling
    /// `s` of the path below `i`, keyed by depth pair.
    pub labels: LabelArena,
    /// Key used when nobody is revoked.
    pub full_key: Key,
    /// Epoch before the join broadcast.
    pub epoch: u64,
}

/// The SD controller.
pub struct SdController {
    capacity: u32,
    master: [u8; 32],
    leaf_of: HashMap<UserId, u32>,
    revoked_leaves: BTreeSet<u32>,
    next_leaf: u32,
    group_key: Key,
    epoch: u64,
    next_id: u64,
}

impl std::fmt::Debug for SdController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SdController {{ capacity: {}, members: {}, revoked: {}, epoch: {} }}",
            self.capacity,
            self.leaf_of.len(),
            self.revoked_leaves.len(),
            self.epoch
        )
    }
}

/// Member state (stateless receiver: labels never change).
#[derive(Debug, Clone)]
pub struct SdMember {
    id: UserId,
    leaf: u32,
    labels: LabelArena,
    full_key: Key,
    group_key: Key,
    epoch: u64,
}

impl SdController {
    /// Creates a controller over a tree with `capacity` leaves (rounded up
    /// to a power of two, minimum 2).
    pub fn new(capacity: u32, rng: &mut dyn RngCore) -> SdController {
        let capacity = capacity.max(2).next_power_of_two();
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        SdController {
            capacity,
            master,
            leaf_of: HashMap::new(),
            revoked_leaves: BTreeSet::new(),
            next_leaf: capacity,
            group_key: Key::random(rng),
            epoch: 0,
            next_id: 0,
        }
    }

    /// The initial label of subtree root `i`.
    fn node_label(&self, i: u32) -> [u8; 32] {
        let mut data = b"sd-node-label".to_vec();
        data.extend_from_slice(&i.to_be_bytes());
        hmac::mac(&self.master, &data)
    }

    fn full_key(&self) -> Key {
        Key::from_bytes(hmac::mac(&self.master, b"sd-full-key"))
    }

    /// Derives `LABEL_i(j)` by walking the GGM tree from `i` down to `j`.
    fn label(&self, i: u32, j: u32) -> [u8; 32] {
        debug_assert!(is_ancestor_or_self(i, j));
        let mut label = self.node_label(i);
        for d in depth(i)..depth(j) {
            let next = ancestor_at(j, d + 1);
            label = if next.is_multiple_of(2) {
                ggm_left(&label)
            } else {
                ggm_right(&label)
            };
        }
        label
    }

    fn subset_key(&self, subset: Subset) -> Key {
        match subset {
            Subset::Full => self.full_key(),
            Subset::Diff { i, j } => ggm_key(&self.label(i, j)),
        }
    }

    /// NNL cover of all leaves except `revoked`, built iteratively in
    /// `O(r log r)` for `r` revocations.
    ///
    /// In a binary tree the Steiner branching nodes of the revoked set
    /// are exactly the LCAs of *adjacent* revoked leaves in sorted
    /// order, each appearing exactly once. Processing those merges
    /// deepest-first (the NNL "deepest LCA" rule) with a union-find
    /// tracking each merged component's chain top reproduces the NNL
    /// cover without the quadratic pair search of the naive algorithm:
    /// at most two subsets per merge, `≤ 2r - 1` total.
    fn cover(&self, revoked: &BTreeSet<u32>) -> Vec<Subset> {
        if revoked.is_empty() {
            return vec![Subset::Full];
        }
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        let leaves: Vec<u32> = revoked.iter().copied().collect();
        let r = leaves.len();
        let mut cover = Vec::with_capacity(2 * r);
        // (branching node, index of the left neighbour), deepest first.
        let mut merges: Vec<(u32, u32)> = (0..r - 1)
            .map(|i| (lca(leaves[i], leaves[i + 1]), i as u32))
            .collect();
        merges.sort_unstable_by_key(|m| std::cmp::Reverse(depth(m.0)));
        let mut parent: Vec<u32> = (0..r as u32).collect();
        // Chain top of each component: everything below it is handled.
        let mut top: Vec<u32> = leaves;
        for (v, i) in merges {
            let a = find(&mut parent, i);
            let b = find(&mut parent, i + 1);
            for side in [a, b] {
                let t = top[side as usize];
                let c = ancestor_at(t, depth(v) + 1);
                if c != t {
                    cover.push(Subset::Diff { i: c, j: t });
                }
            }
            parent[a as usize] = b;
            top[b as usize] = v;
        }
        let t = top[find(&mut parent, 0) as usize];
        if t != 1 {
            cover.push(Subset::Diff { i: 1, j: t });
        }
        cover
    }

    /// Provisions the label arena for a member at `leaf` in `O(d²)` GGM
    /// steps: one descent per ancestor, emitting the off-path sibling
    /// label at every level instead of re-walking from the top for each
    /// `(i, s)` pair.
    fn provision(&self, leaf: u32) -> LabelArena {
        let d = depth(leaf);
        let mut arena = LabelArena::new(d);
        for di in 0..d {
            let i = ancestor_at(leaf, di);
            let mut cur = self.node_label(i);
            for dv in di + 1..=d {
                let on_path = ancestor_at(leaf, dv);
                // The descent follows the member's own path; the sibling
                // hanging off it at this depth gets its label emitted.
                let (lab_path, lab_sib) = if on_path.is_multiple_of(2) {
                    (ggm_left(&cur), ggm_right(&cur))
                } else {
                    (ggm_right(&cur), ggm_left(&cur))
                };
                arena.set(di, dv, lab_sib);
                cur = lab_path;
            }
        }
        arena
    }

    /// Batched epoch rekey: evicts `leaves`, assigns fresh leaves to
    /// `joins` members (SD never reuses leaf positions — evict-then-
    /// rejoin in one window lands the rejoiner on a new leaf), and emits
    /// **one** cover broadcast for the whole churn window.
    ///
    /// An empty window is a no-op returning an empty broadcast at the
    /// current epoch, which must not be distributed. The call validates
    /// up front and mutates nothing on error.
    ///
    /// # Errors
    ///
    /// [`CgkdError::UnknownMember`] for unknown or duplicated leaver
    /// ids; [`CgkdError::Full`] when the join count exceeds the
    /// remaining fresh leaves.
    pub fn apply_epoch(
        &mut self,
        joins: usize,
        leaves: &[UserId],
        rng: &mut dyn RngCore,
    ) -> Result<(Vec<(UserId, SdWelcome)>, SdBroadcast), CgkdError> {
        if joins == 0 && leaves.is_empty() {
            return Ok((
                Vec::new(),
                SdBroadcast {
                    epoch: self.epoch,
                    items: Vec::new(),
                },
            ));
        }
        let mut seen = HashSet::new();
        for id in leaves {
            if !self.leaf_of.contains_key(id) || !seen.insert(*id) {
                return Err(CgkdError::UnknownMember);
            }
        }
        if self.next_leaf as u64 + joins as u64 > 2 * self.capacity as u64 {
            return Err(CgkdError::Full);
        }
        for id in leaves {
            if let Some(leaf) = self.leaf_of.remove(id) {
                self.revoked_leaves.insert(leaf);
            }
        }
        let mut joined = Vec::with_capacity(joins);
        for _ in 0..joins {
            let leaf = self.next_leaf;
            self.next_leaf += 1;
            let id = UserId(self.next_id);
            self.next_id += 1;
            self.leaf_of.insert(id, leaf);
            joined.push((
                id,
                SdWelcome {
                    id,
                    leaf,
                    labels: self.provision(leaf),
                    full_key: self.full_key(),
                    epoch: self.epoch,
                },
            ));
        }
        let broadcast = self.rekey(rng);
        Ok((joined, broadcast))
    }

    fn rekey(&mut self, rng: &mut dyn RngCore) -> SdBroadcast {
        self.group_key = Key::random(rng);
        self.epoch += 1;
        let items = self
            .cover(&self.revoked_leaves)
            .into_iter()
            .map(|subset| {
                let key = self.subset_key(subset);
                let aad = format!("sd-rekey:{}", self.epoch);
                SdItem {
                    subset,
                    ct: aead::seal(&key, self.group_key.as_bytes(), aad.as_bytes(), rng),
                }
            })
            .collect();
        SdBroadcast {
            epoch: self.epoch,
            items,
        }
    }

    /// Number of subsets a rekey would currently need (cover size) — used
    /// by the E4 experiment without re-encrypting.
    pub fn cover_size(&self) -> usize {
        self.cover(&self.revoked_leaves).len()
    }
}

impl Controller for SdController {
    type Welcome = SdWelcome;
    type Member = SdMember;
    type Broadcast = SdBroadcast;

    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, SdWelcome, SdBroadcast), CgkdError> {
        if self.next_leaf >= 2 * self.capacity {
            return Err(CgkdError::Full);
        }
        let leaf = self.next_leaf;
        self.next_leaf += 1;
        let id = UserId(self.next_id);
        self.next_id += 1;
        self.leaf_of.insert(id, leaf);

        let welcome = SdWelcome {
            id,
            leaf,
            labels: self.provision(leaf),
            full_key: self.full_key(),
            epoch: self.epoch,
        };
        Ok((id, welcome, self.rekey(rng)))
    }

    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<SdBroadcast, CgkdError> {
        let leaf = self.leaf_of.remove(&id).ok_or(CgkdError::UnknownMember)?;
        self.revoked_leaves.insert(leaf);
        Ok(self.rekey(rng))
    }

    fn member_from_welcome(&self, welcome: SdWelcome) -> SdMember {
        SdMember {
            id: welcome.id,
            leaf: welcome.leaf,
            labels: welcome.labels,
            group_key: welcome.full_key.clone(),
            full_key: welcome.full_key,
            epoch: welcome.epoch,
        }
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn members(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.leaf_of.keys().copied().collect();
        ids.sort();
        ids
    }

    fn stats(broadcast: &SdBroadcast) -> BroadcastStats {
        BroadcastStats {
            items: broadcast.items.len(),
            bytes: broadcast.items.iter().map(|i| i.ct.len() + 8).sum(),
        }
    }
}

impl SdMember {
    /// Derives the key for `subset` if this member belongs to it.
    fn derive(&self, subset: Subset) -> Option<Key> {
        match subset {
            Subset::Full => Some(self.full_key.clone()),
            Subset::Diff { i, j } => {
                if !is_ancestor_or_self(i, self.leaf) || is_ancestor_or_self(j, self.leaf) {
                    return None; // not in this subset
                }
                // First node on the path i→j that is not an ancestor of us:
                // it is the sibling of our path at that depth.
                let mut s = None;
                for d in depth(i) + 1..=depth(j) {
                    let node = ancestor_at(j, d);
                    if !is_ancestor_or_self(node, self.leaf) {
                        s = Some(node);
                        break;
                    }
                }
                let s = s?;
                let mut label = *self.labels.get(depth(i), depth(s))?;
                for d in depth(s)..depth(j) {
                    let next = ancestor_at(j, d + 1);
                    label = if next.is_multiple_of(2) {
                        ggm_left(&label)
                    } else {
                        ggm_right(&label)
                    };
                }
                Some(ggm_key(&label))
            }
        }
    }
}

impl MemberState for SdMember {
    type Broadcast = SdBroadcast;

    fn process(&mut self, broadcast: &SdBroadcast) -> Result<(), CgkdError> {
        if broadcast.epoch <= self.epoch {
            return Err(CgkdError::EpochMismatch);
        }
        let aad = format!("sd-rekey:{}", broadcast.epoch);
        for item in &broadcast.items {
            let Some(key) = self.derive(item.subset) else {
                continue;
            };
            if let Ok(pt) = aead::open(&key, &item.ct, aad.as_bytes()) {
                if pt.len() == 32 {
                    let mut kb = [0u8; 32];
                    kb.copy_from_slice(&pt);
                    self.group_key = Key::from_bytes(kb);
                    // Stateless receivers may skip epochs freely.
                    self.epoch = broadcast.epoch;
                    return Ok(());
                }
            }
        }
        Err(CgkdError::CannotDecrypt)
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn id(&self) -> UserId {
        self.id
    }

    fn force_group_key(&mut self, key: Key, epoch: u64) {
        self.group_key = key;
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(72)
    }

    #[test]
    fn tree_helpers() {
        assert_eq!(depth(1), 0);
        assert_eq!(depth(2), 1);
        assert_eq!(depth(7), 2);
        assert_eq!(lca(4, 5), 2);
        assert_eq!(lca(4, 6), 1);
        assert_eq!(lca(4, 4), 4);
        assert!(is_ancestor_or_self(1, 13));
        assert!(is_ancestor_or_self(3, 13));
        assert!(!is_ancestor_or_self(2, 13));
        assert_eq!(ancestor_at(13, 1), 3);
    }

    #[test]
    fn everyone_decrypts_when_nobody_revoked() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        let mut members = Vec::new();
        let mut last = None;
        for _ in 0..6 {
            let (_, w, b) = gc.admit(&mut r).unwrap();
            members.push(gc.member_from_welcome(w));
            last = Some(b);
        }
        // Stateless receivers only need the LATEST broadcast.
        let b = last.unwrap();
        for m in members.iter_mut() {
            m.process(&b).unwrap();
            assert_eq!(m.group_key(), gc.group_key());
        }
        assert_eq!(b.items.len(), 1, "no revocations: single Full item");
    }

    #[test]
    fn revoked_member_excluded_others_covered() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        let mut members = Vec::new();
        for _ in 0..8 {
            let (_, w, _) = gc.admit(&mut r).unwrap();
            members.push(gc.member_from_welcome(w));
        }
        // Revoke members 2 and 5.
        let b1 = gc.evict(members[2].id(), &mut r).unwrap();
        let _ = b1;
        let b2 = gc.evict(members[5].id(), &mut r).unwrap();
        for (i, m) in members.iter_mut().enumerate() {
            if i == 2 || i == 5 {
                assert_eq!(m.process(&b2), Err(CgkdError::CannotDecrypt), "member {i}");
            } else {
                m.process(&b2).unwrap();
                assert_eq!(m.group_key(), gc.group_key(), "member {i}");
            }
        }
    }

    #[test]
    fn cover_sizes_bounded() {
        let mut r = rng();
        let mut gc = SdController::new(64, &mut r);
        let mut ids = Vec::new();
        for _ in 0..64 {
            let (id, _, _) = gc.admit(&mut r).unwrap();
            ids.push(id);
        }
        assert_eq!(gc.cover_size(), 1);
        // Revoke a scattered set; cover stays ≤ 2r - 1.
        for (count, &id) in [ids[0], ids[13], ids[27], ids[40], ids[63]]
            .iter()
            .enumerate()
        {
            gc.evict(id, &mut r).unwrap();
            let rlen = count + 1;
            assert!(
                gc.cover_size() <= 2 * rlen,
                "cover {} too big for {} revocations",
                gc.cover_size(),
                rlen
            );
        }
    }

    #[test]
    fn cover_partitions_correctly() {
        // Structural check: every non-revoked allocated leaf is in exactly
        // one subset; revoked leaves are in none.
        let mut r = rng();
        let mut gc = SdController::new(16, &mut r);
        let mut ids = Vec::new();
        for _ in 0..16 {
            let (id, _, _) = gc.admit(&mut r).unwrap();
            ids.push(id);
        }
        for &victim in &[ids[1], ids[6], ids[7], ids[12]] {
            gc.evict(victim, &mut r).unwrap();
        }
        let cover = gc.cover(&gc.revoked_leaves);
        for leaf in 16u32..32 {
            let covering = cover
                .iter()
                .filter(|s| match **s {
                    Subset::Full => true,
                    Subset::Diff { i, j } => {
                        is_ancestor_or_self(i, leaf) && !is_ancestor_or_self(j, leaf)
                    }
                })
                .count();
            if gc.revoked_leaves.contains(&leaf) {
                assert_eq!(covering, 0, "revoked leaf {leaf} must not be covered");
            } else {
                assert_eq!(covering, 1, "leaf {leaf} must be covered exactly once");
            }
        }
    }

    #[test]
    fn stateless_members_skip_epochs() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        let (_, w, _) = gc.admit(&mut r).unwrap();
        let mut m = gc.member_from_welcome(w);
        // Generate several epochs without delivering them.
        let (_, _, _) = gc.admit(&mut r).unwrap();
        let (_, _, _) = gc.admit(&mut r).unwrap();
        let (id3, _, b) = gc.admit(&mut r).unwrap();
        let _ = id3;
        // Old member decrypts the latest broadcast directly.
        m.process(&b).unwrap();
        assert_eq!(m.group_key(), gc.group_key());
        // Replays of older epochs are rejected.
        assert_eq!(m.process(&b), Err(CgkdError::EpochMismatch));
    }

    #[test]
    fn label_storage_is_polylog() {
        let mut r = rng();
        let mut gc = SdController::new(1024, &mut r);
        let (_, w, _) = gc.admit(&mut r).unwrap();
        // depth d = 10: expect d(d+1)/2 = 55 labels.
        assert_eq!(w.labels.len(), 55);
    }

    #[test]
    fn cover_matches_on_adversarial_patterns() {
        // The union-find cover must partition correctly on clustered,
        // alternating, and boundary revocation patterns.
        let mut r = rng();
        let mut gc = SdController::new(32, &mut r);
        let mut ids = Vec::new();
        for _ in 0..32 {
            let (id, _, _) = gc.admit(&mut r).unwrap();
            ids.push(id);
        }
        for pattern in [
            vec![0usize, 1, 2, 3],           // one cluster
            vec![0, 2, 4, 6, 8, 10],         // alternating
            vec![0, 31],                     // extremes
            vec![15, 16],                    // adjacent across the midline
            (0..31).collect::<Vec<usize>>(), // all but one
        ] {
            let revoked: BTreeSet<u32> = pattern.iter().map(|&i| 32 + i as u32).collect();
            let cover = gc.cover(&revoked);
            assert!(cover.len() <= 2 * revoked.len(), "cover bound violated");
            for leaf in 32u32..64 {
                let covering = cover
                    .iter()
                    .filter(|s| match **s {
                        Subset::Full => true,
                        Subset::Diff { i, j } => {
                            is_ancestor_or_self(i, leaf) && !is_ancestor_or_self(j, leaf)
                        }
                    })
                    .count();
                let expect = usize::from(!revoked.contains(&leaf));
                assert_eq!(covering, expect, "leaf {leaf} in pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn batched_epoch_is_one_broadcast() {
        let mut r = rng();
        let mut gc = SdController::new(16, &mut r);
        let mut members = Vec::new();
        for _ in 0..6 {
            let (_, w, _) = gc.admit(&mut r).unwrap();
            members.push(gc.member_from_welcome(w));
        }
        let victims = [members[1].id(), members[4].id()];
        let (joined, b) = gc.apply_epoch(2, &victims, &mut r).unwrap();
        assert_eq!(joined.len(), 2);
        for m in members.iter_mut() {
            if victims.contains(&m.id()) {
                assert_eq!(m.process(&b), Err(CgkdError::CannotDecrypt));
            } else {
                m.process(&b).unwrap();
                assert_eq!(m.group_key(), gc.group_key());
            }
        }
        for (_, w) in joined {
            let mut j = gc.member_from_welcome(w);
            j.process(&b).unwrap();
            assert_eq!(j.group_key(), gc.group_key());
        }
        assert_eq!(gc.members().len(), 6);
    }

    #[test]
    fn batched_epoch_validates_atomically() {
        let mut r = rng();
        let mut gc = SdController::new(4, &mut r);
        let (id0, _, _) = gc.admit(&mut r).unwrap();
        let epoch_before = gc.epoch();
        assert_eq!(
            gc.apply_epoch(0, &[UserId(77)], &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
        assert_eq!(
            gc.apply_epoch(0, &[id0, id0], &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
        // SD leaves are never reused: 1 allocated + 4 joins > 4 fresh.
        assert_eq!(gc.apply_epoch(4, &[], &mut r).err(), Some(CgkdError::Full));
        assert_eq!(gc.epoch(), epoch_before);
        assert_eq!(gc.members().len(), 1);
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let mut r = rng();
        let mut gc = SdController::new(8, &mut r);
        gc.admit(&mut r).unwrap();
        let epoch = gc.epoch();
        let key = gc.group_key().clone();
        let (joined, b) = gc.apply_epoch(0, &[], &mut r).unwrap();
        assert!(joined.is_empty());
        assert!(b.items.is_empty());
        assert_eq!(b.epoch, epoch);
        assert_eq!(gc.group_key(), &key);
    }
}
