//! The flat "star" key distribution baseline: the controller shares one
//! individual key with each member and rekeys by encrypting the new group
//! key to every member separately — `O(n)` per membership change.
//!
//! This is the naive scheme the tree-based methods improve on; experiment
//! E4 plots it against LKH and SD.

use crate::{BroadcastStats, CgkdError, Controller, MemberState, UserId};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::{aead, Key};
use std::collections::HashMap;

/// One item: the new group key encrypted under one member's individual
/// key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StarItem {
    /// Recipient.
    pub id: UserId,
    /// AEAD ciphertext of the group key.
    pub ct: Vec<u8>,
}

/// A star rekey broadcast.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StarBroadcast {
    /// Epoch this broadcast moves the group to.
    pub epoch: u64,
    /// Per-member encryptions of the new group key.
    pub items: Vec<StarItem>,
}

/// Welcome package: the member's individual key.
#[derive(Debug, Clone)]
pub struct StarWelcome {
    /// Assigned identity.
    pub id: UserId,
    /// Individual long-term key shared with the controller.
    pub individual: Key,
    /// Epoch before the join rekey.
    pub epoch: u64,
}

/// Controller state.
pub struct StarController {
    individual: HashMap<UserId, Key>,
    group_key: Key,
    epoch: u64,
    next_id: u64,
    capacity: usize,
}

impl std::fmt::Debug for StarController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StarController {{ members: {}, epoch: {} }}",
            self.individual.len(),
            self.epoch
        )
    }
}

/// Member state.
#[derive(Debug, Clone)]
pub struct StarMember {
    id: UserId,
    individual: Key,
    group_key: Key,
    epoch: u64,
}

impl StarController {
    /// Creates a controller for up to `capacity` members.
    pub fn new(capacity: u32, rng: &mut dyn RngCore) -> StarController {
        StarController {
            individual: HashMap::new(),
            group_key: Key::random(rng),
            epoch: 0,
            next_id: 0,
            capacity: capacity as usize,
        }
    }

    fn rekey(&mut self, rng: &mut dyn RngCore) -> StarBroadcast {
        self.group_key = Key::random(rng);
        self.epoch += 1;
        let mut items: Vec<StarItem> = self
            .individual
            .iter()
            .map(|(&id, key)| {
                let aad = format!("star-rekey:{}:{}", self.epoch, id.0);
                StarItem {
                    id,
                    ct: aead::seal(key, self.group_key.as_bytes(), aad.as_bytes(), rng),
                }
            })
            .collect();
        items.sort_by_key(|i| i.id);
        StarBroadcast {
            epoch: self.epoch,
            items,
        }
    }
}

impl Controller for StarController {
    type Welcome = StarWelcome;
    type Member = StarMember;
    type Broadcast = StarBroadcast;

    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, StarWelcome, StarBroadcast), CgkdError> {
        if self.individual.len() >= self.capacity {
            return Err(CgkdError::Full);
        }
        let id = UserId(self.next_id);
        self.next_id += 1;
        let individual = Key::random(rng);
        let welcome = StarWelcome {
            id,
            individual: individual.clone(),
            epoch: self.epoch,
        };
        self.individual.insert(id, individual);
        Ok((id, welcome, self.rekey(rng)))
    }

    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<StarBroadcast, CgkdError> {
        self.individual
            .remove(&id)
            .ok_or(CgkdError::UnknownMember)?;
        Ok(self.rekey(rng))
    }

    fn member_from_welcome(&self, welcome: StarWelcome) -> StarMember {
        StarMember {
            id: welcome.id,
            group_key: welcome.individual.clone(),
            individual: welcome.individual,
            epoch: welcome.epoch,
        }
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn members(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self.individual.keys().copied().collect();
        ids.sort();
        ids
    }

    fn stats(broadcast: &StarBroadcast) -> BroadcastStats {
        BroadcastStats {
            items: broadcast.items.len(),
            bytes: broadcast.items.iter().map(|i| i.ct.len() + 8).sum(),
        }
    }
}

impl MemberState for StarMember {
    type Broadcast = StarBroadcast;

    fn process(&mut self, broadcast: &StarBroadcast) -> Result<(), CgkdError> {
        if broadcast.epoch != self.epoch + 1 {
            return Err(CgkdError::EpochMismatch);
        }
        let aad = format!("star-rekey:{}:{}", broadcast.epoch, self.id.0);
        let item = broadcast
            .items
            .iter()
            .find(|i| i.id == self.id)
            .ok_or(CgkdError::CannotDecrypt)?;
        let pt = aead::open(&self.individual, &item.ct, aad.as_bytes())
            .map_err(|_| CgkdError::CannotDecrypt)?;
        if pt.len() != 32 {
            return Err(CgkdError::CannotDecrypt);
        }
        let mut kb = [0u8; 32];
        kb.copy_from_slice(&pt);
        self.group_key = Key::from_bytes(kb);
        self.epoch = broadcast.epoch;
        Ok(())
    }

    fn group_key(&self) -> &Key {
        &self.group_key
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn id(&self) -> UserId {
        self.id
    }

    fn force_group_key(&mut self, key: Key, epoch: u64) {
        self.group_key = key;
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(71)
    }

    #[test]
    fn members_track_group_key() {
        let mut r = rng();
        let mut gc = StarController::new(8, &mut r);
        let mut members = Vec::new();
        for _ in 0..5 {
            let (_, w, b) = gc.admit(&mut r).unwrap();
            let mut joiner = gc.member_from_welcome(w);
            for m in members.iter_mut() {
                let m: &mut StarMember = m;
                m.process(&b).unwrap();
            }
            joiner.process(&b).unwrap();
            members.push(joiner);
        }
        for m in &members {
            assert_eq!(m.group_key(), gc.group_key());
        }
    }

    #[test]
    fn evicted_member_excluded() {
        let mut r = rng();
        let mut gc = StarController::new(8, &mut r);
        let (_, w1, b1) = gc.admit(&mut r).unwrap();
        let mut m1 = gc.member_from_welcome(w1);
        m1.process(&b1).unwrap();
        let (_, w2, b2) = gc.admit(&mut r).unwrap();
        let mut m2 = gc.member_from_welcome(w2);
        m1.process(&b2).unwrap();
        m2.process(&b2).unwrap();
        let b3 = gc.evict(m1.id(), &mut r).unwrap();
        assert_eq!(m1.process(&b3), Err(CgkdError::CannotDecrypt));
        m2.process(&b3).unwrap();
        assert_eq!(m2.group_key(), gc.group_key());
    }

    #[test]
    fn rekey_cost_is_linear() {
        let mut r = rng();
        let mut gc = StarController::new(64, &mut r);
        let mut last = None;
        for _ in 0..64 {
            let (_, _, b) = gc.admit(&mut r).unwrap();
            last = Some(b);
        }
        let stats = StarController::stats(last.as_ref().unwrap());
        assert_eq!(stats.items, 64, "star rekey touches every member");
    }

    #[test]
    fn capacity_and_unknown_errors() {
        let mut r = rng();
        let mut gc = StarController::new(1, &mut r);
        gc.admit(&mut r).unwrap();
        assert!(matches!(gc.admit(&mut r), Err(CgkdError::Full)));
        assert_eq!(
            gc.evict(UserId(42), &mut r).err(),
            Some(CgkdError::UnknownMember)
        );
    }
}
