//! Heap-indexed complete-binary-tree helpers shared by the LKH and SD
//! backends.
//!
//! Nodes are numbered as in an implicit binary heap: the root is `1`,
//! node `v` has children `2v` and `2v + 1`, and a tree of capacity `c`
//! (a power of two) has its leaves at `c..2c`. Every walk below is
//! iterative — no recursion anywhere — so controllers can run on trees
//! with millions of leaves without stack concerns.

/// Depth of `node` (the root `1` has depth 0). Requires `node >= 1`.
#[inline]
pub fn depth(node: u32) -> u32 {
    31 - node.leading_zeros()
}

/// Parent of `node` (the root's parent is `0`, which is not a node).
#[inline]
pub fn parent(node: u32) -> u32 {
    node / 2
}

/// The two children of `node`.
#[inline]
pub fn children(node: u32) -> (u32, u32) {
    (2 * node, 2 * node + 1)
}

/// The ancestor of `u` at depth `d` (requires `d <= depth(u)`).
#[inline]
pub fn ancestor_at(u: u32, d: u32) -> u32 {
    u >> (depth(u) - d)
}

/// Is `a` an ancestor of `u` (or `u` itself)?
#[inline]
pub fn is_ancestor_or_self(a: u32, u: u32) -> bool {
    depth(a) <= depth(u) && ancestor_at(u, depth(a)) == a
}

/// Least common ancestor of `a` and `b`.
#[inline]
pub fn lca(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while depth(a) > depth(b) {
        a /= 2;
    }
    while depth(b) > depth(a) {
        b /= 2;
    }
    while a != b {
        a /= 2;
        b /= 2;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_relations() {
        assert_eq!(depth(1), 0);
        assert_eq!(depth(2), 1);
        assert_eq!(depth(7), 2);
        assert_eq!(parent(7), 3);
        assert_eq!(children(3), (6, 7));
        assert_eq!(lca(4, 5), 2);
        assert_eq!(lca(4, 6), 1);
        assert_eq!(lca(4, 4), 4);
        assert!(is_ancestor_or_self(1, 13));
        assert!(is_ancestor_or_self(3, 13));
        assert!(!is_ancestor_or_self(2, 13));
        assert_eq!(ancestor_at(13, 1), 3);
    }

    #[test]
    fn deep_tree_walks_stay_iterative() {
        // A 2^30-leaf tree: every helper handles the deepest nodes.
        let leaf = (1u32 << 30) + 12345;
        assert_eq!(depth(leaf), 30);
        assert_eq!(ancestor_at(leaf, 0), 1);
        assert!(is_ancestor_or_self(leaf >> 10, leaf));
        assert_eq!(lca(leaf, leaf ^ 1), leaf / 2);
    }
}
