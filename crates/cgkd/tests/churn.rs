//! Property-based churn tests: arbitrary join/leave scripts keep every
//! live member's view of the group key consistent with the controller's,
//! and excluded members locked out — for all three CGKD schemes.

use proptest::prelude::*;
use rand::SeedableRng;
use shs_cgkd::lkh::{LkhController, LkhMember};
use shs_cgkd::sd::{SdController, SdMember};
use shs_cgkd::star::{StarController, StarMember};
use shs_cgkd::{CgkdError, Controller, MemberState, UserId};

/// A churn script step.
#[derive(Debug, Clone, Copy)]
enum Op {
    Join,
    /// Leave the member at (index % live-count).
    Leave(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Join),
        2 => any::<usize>().prop_map(Op::Leave),
    ]
}

/// Runs a script against a controller, tracking all live member states and
/// checking the consistency invariant after every operation.
fn run_script<C>(mut gc: C, ops: &[Op], seed: u64) -> Result<(), TestCaseError>
where
    C: Controller,
    C::Broadcast: Clone,
{
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut live: Vec<(UserId, C::Member)> = Vec::new();
    for op in ops {
        match op {
            Op::Join => match gc.admit(&mut rng) {
                Ok((id, welcome, broadcast)) => {
                    for (_, m) in live.iter_mut() {
                        m.process(&broadcast).unwrap();
                    }
                    let mut joiner = gc.member_from_welcome(welcome);
                    joiner.process(&broadcast).unwrap();
                    live.push((id, joiner));
                }
                Err(CgkdError::Full) => continue,
                Err(e) => prop_assert!(false, "admit failed: {e}"),
            },
            Op::Leave(raw) => {
                if live.is_empty() {
                    continue;
                }
                let idx = raw % live.len();
                let (id, mut evicted) = live.swap_remove(idx);
                let broadcast = gc.evict(id, &mut rng).unwrap();
                for (_, m) in live.iter_mut() {
                    m.process(&broadcast).unwrap();
                }
                // The evicted member must NOT recover the new key.
                if !live.is_empty() {
                    let before = evicted.group_key().clone();
                    let _ = evicted.process(&broadcast);
                    prop_assert_ne!(
                        evicted.group_key(),
                        gc.group_key(),
                        "evicted member must not learn the new key"
                    );
                    let _ = before;
                }
            }
        }
        // Invariant: every live member agrees with the controller.
        for (id, m) in &live {
            prop_assert_eq!(
                m.group_key(),
                gc.group_key(),
                "member {} diverged after {:?}",
                id,
                op
            );
        }
        prop_assert_eq!(live.len(), gc.members().len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lkh_survives_arbitrary_churn(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gc: LkhController = LkhController::new(16, &mut rng);
        run_script::<LkhController>(gc, &ops, seed.wrapping_add(1))?;
        let _: Option<LkhMember> = None;
    }

    #[test]
    fn star_survives_arbitrary_churn(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let gc: StarController = StarController::new(16, &mut rng);
        run_script::<StarController>(gc, &ops, seed.wrapping_add(1))?;
        let _: Option<StarMember> = None;
    }

    #[test]
    fn sd_covers_exactly_the_live_set(
        joins in 2usize..32,
        leave_picks in prop::collection::vec(any::<usize>(), 0..12),
        seed in any::<u64>(),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gc = SdController::new(64, &mut rng);
        let mut live: Vec<(UserId, SdMember)> = Vec::new();
        for _ in 0..joins {
            let (id, w, _) = gc.admit(&mut rng).unwrap();
            live.push((id, gc.member_from_welcome(w)));
        }
        let mut excluded: Vec<SdMember> = Vec::new();
        for pick in &leave_picks {
            if live.len() <= 1 {
                break;
            }
            let idx = pick % live.len();
            let (id, m) = live.swap_remove(idx);
            gc.evict(id, &mut rng).unwrap();
            excluded.push(m);
        }
        // One fresh broadcast: every live member decrypts, every revoked
        // member fails. (Stateless receivers need only the latest.)
        let (id, w, broadcast) = gc.admit(&mut rng).unwrap();
        for (_, m) in live.iter_mut() {
            m.process(&broadcast).unwrap();
        }
        let mut joiner = gc.member_from_welcome(w);
        joiner.process(&broadcast).unwrap();
        live.push((id, joiner));
        for (_, m) in &live {
            prop_assert_eq!(m.group_key(), gc.group_key());
        }
        for m in excluded.iter_mut() {
            prop_assert_eq!(m.process(&broadcast), Err(CgkdError::CannotDecrypt));
        }
    }
}
