//! The group authority `GA`: group manager (GSIG) + group controller
//! (CGKD) + tracing keyholder, exactly the triple role `GCD.CreateGroup`
//! assigns it (§7).
//!
//! Both primitives are held behind the substrate trait layer
//! ([`crate::substrate`]) and instantiated through [`crate::factory`],
//! so this module is identical for every cell of the instantiation
//! matrix.

use crate::config::GroupConfig;
use crate::member::{encode_update_payload, EpochBroadcast, GroupUpdate, Member, UpdatePayload};
use crate::substrate::{Cgkd, Gsig};
use crate::transcript::{HandshakeTranscript, TraceError, TraceOutcome};
use crate::{codec, factory, CoreError};
use rand::RngCore;
use shs_cgkd::UserId;
use shs_crypto::{aead, Key};
use shs_groups::cs;
use shs_groups::rsa::{RsaGroup, RsaSecret};
use shs_groups::schnorr::SchnorrGroup;
use shs_gsig::crl::Crl;
use shs_gsig::ky::MemberId;
use shs_gsig::params::GsigParams;
use std::collections::{HashMap, HashSet};

/// The group authority of one group.
pub struct GroupAuthority {
    config: GroupConfig,
    gsig: Box<dyn Gsig>,
    cgkd: Box<dyn Cgkd>,
    crl: Crl,
    tracing_group: &'static SchnorrGroup,
    tracing_pk: cs::PublicKey,
    tracing_sk: cs::SecretKey,
    uid_of: HashMap<MemberId, UserId>,
}

impl std::fmt::Debug for GroupAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GroupAuthority {{ scheme: {:?}, members: {}, crl: v{} }}",
            self.config.scheme,
            self.uid_of.len(),
            self.crl.version
        )
    }
}

impl GroupAuthority {
    /// `GCD.CreateGroup`: sets up GSIG, CGKD and the IND-CCA2 tracing
    /// keypair. Generates a fresh safe-RSA modulus (slow for large
    /// presets; see [`GroupAuthority::create_with_rsa`]).
    pub fn create(config: GroupConfig, rng: &mut impl RngCore) -> GroupAuthority {
        let params = GsigParams::preset(config.gsig_preset);
        let (rsa, secret) = RsaGroup::generate(params.modulus_bits, rng);
        Self::create_with_rsa(config, rsa, secret, rng)
    }

    /// `GCD.CreateGroup` reusing a pre-generated RSA setting (tests,
    /// benchmarks, deterministic fixtures).
    pub fn create_with_rsa(
        config: GroupConfig,
        rsa: RsaGroup,
        rsa_secret: RsaSecret,
        rng: &mut impl RngCore,
    ) -> GroupAuthority {
        let rng: &mut dyn RngCore = rng;
        let params = GsigParams::preset(config.gsig_preset);
        let gsig = factory::gsig_authority(config.scheme, params, rsa, rsa_secret, rng);
        let tracing_group = SchnorrGroup::system_wide(config.schnorr_preset);
        let (tracing_pk, tracing_sk) = cs::keygen(tracing_group, rng);
        let cgkd = factory::cgkd_controller(config.cgkd, config.capacity, rng);
        GroupAuthority {
            config,
            gsig,
            cgkd,
            crl: Crl::new(),
            tracing_group,
            tracing_pk,
            tracing_sk,
            uid_of: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// The tracing public key `pk_T` (part of the public cryptographic
    /// context).
    pub fn tracing_public_key(&self) -> &cs::PublicKey {
        &self.tracing_pk
    }

    /// Current member count.
    pub fn member_count(&self) -> usize {
        self.uid_of.len()
    }

    /// Current CGKD group key (GC side).
    pub fn group_key(&self) -> &Key {
        self.cgkd.group_key()
    }

    /// Current CGKD epoch (bumped once per rekey or batched window).
    pub fn epoch(&self) -> u64 {
        self.cgkd.epoch()
    }

    /// Current CRL version (one per revocation token ever issued).
    pub fn crl_version(&self) -> u64 {
        self.crl.version
    }

    /// `GCD.AdmitMember`: runs the interactive `GSIG.Join` (both ends of
    /// the private authenticated channel are simulated here) and
    /// `CGKD.Join`, then wraps the GSIG state update in an encrypted
    /// bulletin-board update.
    ///
    /// Returns the new [`Member`] (already up to date) and the
    /// [`GroupUpdate`] every *existing* member must apply.
    ///
    /// # Errors
    ///
    /// [`CoreError::Cgkd`] when capacity is exhausted; [`CoreError::Gsig`]
    /// when the join protocol fails.
    pub fn admit(&mut self, rng: &mut impl RngCore) -> Result<(Member, GroupUpdate), CoreError> {
        let rng: &mut dyn RngCore = rng;
        let cred = self.gsig.admit(rng).map_err(CoreError::Gsig)?;
        let (uid, cgkd_slot, rekey) = self.cgkd.admit(rng).map_err(CoreError::Cgkd)?;
        self.uid_of.insert(cred.id(), uid);

        let payload = UpdatePayload { crl_delta: None };
        let update = self.seal_update(EpochBroadcast::single(rekey), &payload, rng);

        let mut member = Member {
            config: self.config,
            cred,
            cgkd: cgkd_slot,
            crl: self.crl.clone(),
            tracing_group: self.tracing_group,
            tracing_pk: self.tracing_pk.clone(),
        };
        // The joiner processes its own join update immediately.
        member.apply_update(&update)?;
        Ok((member, update))
    }

    /// `GCD.RemoveUser`: `CGKD.Leave` + `GSIG.Revoke`, with the CRL delta
    /// encrypted under the **new** group key so the revoked member cannot
    /// read it (§7).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownMember`] for ids never admitted or already
    /// removed.
    pub fn remove(
        &mut self,
        id: MemberId,
        rng: &mut impl RngCore,
    ) -> Result<GroupUpdate, CoreError> {
        let rng: &mut dyn RngCore = rng;
        let uid = self.uid_of.remove(&id).ok_or(CoreError::UnknownMember)?;
        let crl_delta = self
            .gsig
            .revoke(id)
            .map_err(CoreError::Gsig)?
            .map(|token| self.crl.push(token));
        let rekey = self.cgkd.evict(uid, rng).map_err(CoreError::Cgkd)?;
        let payload = UpdatePayload { crl_delta };
        Ok(self.seal_update(EpochBroadcast::single(rekey), &payload, rng))
    }

    /// `GCD.ApplyEpoch`: batches a whole churn window — revoking
    /// `leave_ids` and admitting `joins` new members — into **one**
    /// bulletin-board update carrying one CGKD epoch record and one
    /// merged CRL delta.
    ///
    /// Returns the admitted [`Member`]s (already synced past the window,
    /// CRL included) and the [`GroupUpdate`] every *existing* member
    /// must apply. An empty window produces an update with an empty
    /// rekey record that up-to-date members skip.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownMember`] for unknown or duplicated leaver ids
    /// (checked before any state changes); [`CoreError::Cgkd`] when the
    /// roster would exceed capacity (the CGKD window is atomic);
    /// [`CoreError::Gsig`] if a join or revocation fails mid-window,
    /// after which authority state may have partially advanced.
    pub fn apply_epoch(
        &mut self,
        joins: usize,
        leave_ids: &[MemberId],
        rng: &mut impl RngCore,
    ) -> Result<(Vec<Member>, GroupUpdate), CoreError> {
        let rng: &mut dyn RngCore = rng;
        let mut uids = Vec::with_capacity(leave_ids.len());
        let mut seen = HashSet::new();
        for id in leave_ids {
            let uid = *self.uid_of.get(id).ok_or(CoreError::UnknownMember)?;
            if !seen.insert(*id) {
                return Err(CoreError::UnknownMember);
            }
            uids.push(uid);
        }
        // The CGKD window first: it validates atomically, so a Full
        // error leaves the authority untouched.
        let outcome = self
            .cgkd
            .apply_epoch(joins, &uids, rng)
            .map_err(CoreError::Cgkd)?;
        let mut crl_delta: Option<shs_gsig::crl::CrlDelta> = None;
        for id in leave_ids {
            self.uid_of.remove(id);
            if let Some(token) = self.gsig.revoke(*id).map_err(CoreError::Gsig)? {
                let delta = self.crl.push(token);
                crl_delta = Some(match crl_delta {
                    None => delta,
                    // Consecutive pushes always merge cleanly.
                    Some(acc) => acc.merge(delta).map_err(|_| CoreError::UpdateRejected)?,
                });
            }
        }
        let mut members = Vec::with_capacity(outcome.joined.len());
        for (uid, slot) in outcome.joined {
            let cred = self.gsig.admit(rng).map_err(CoreError::Gsig)?;
            self.uid_of.insert(cred.id(), uid);
            // The slot is already synced past the window and the CRL
            // clone is post-revocation: no update left to apply.
            members.push(Member {
                config: self.config,
                cred,
                cgkd: slot,
                crl: self.crl.clone(),
                tracing_group: self.tracing_group,
                tracing_pk: self.tracing_pk.clone(),
            });
        }
        let payload = UpdatePayload { crl_delta };
        let update = self.seal_update(outcome.broadcast, &payload, rng);
        Ok((members, update))
    }

    fn seal_update(
        &self,
        rekey: EpochBroadcast,
        payload: &UpdatePayload,
        rng: &mut dyn RngCore,
    ) -> GroupUpdate {
        let params = self.params();
        let pt = encode_update_payload(&params, payload);
        let aad = crate::member::update_aad(rekey.epoch());
        let payload_ct = aead::seal(self.cgkd.group_key(), &pt, &aad, rng);
        GroupUpdate { rekey, payload_ct }
    }

    fn params(&self) -> GsigParams {
        self.gsig.params()
    }

    /// `GCD.TraceUser`: decrypts every `δ_i` of the transcript with
    /// `sk_T`, recovers `k'_i`, opens `θ_i`, and runs `GSIG.Open` on the
    /// recovered signature.
    ///
    /// Per-slot failures (decoy payloads from failed handshakes, or
    /// members of other groups) are reported as [`TraceError`]s, not
    /// hard errors — the paper's traceability is deliberately best-effort
    /// against dishonest last movers (§2 remark).
    pub fn trace(&self, transcript: &HandshakeTranscript) -> Vec<TraceOutcome> {
        transcript
            .entries
            .iter()
            .enumerate()
            .map(|(slot, entry)| {
                let result = self.trace_slot(transcript, &entry.theta, &entry.delta);
                TraceOutcome { slot, result }
            })
            .collect()
    }

    fn trace_slot(
        &self,
        transcript: &HandshakeTranscript,
        theta: &[u8],
        delta_bytes: &[u8],
    ) -> Result<MemberId, TraceError> {
        let delta = codec::decode_delta(self.tracing_group, delta_bytes)
            .map_err(|_| TraceError::MalformedDelta)?;
        let k_prime_bytes = cs::decrypt(self.tracing_group, &self.tracing_sk, &delta)
            .map_err(|_| TraceError::UndecryptableDelta)?;
        if k_prime_bytes.len() != 32 {
            return Err(TraceError::UndecryptableDelta);
        }
        let mut kb = [0u8; 32];
        kb.copy_from_slice(&k_prime_bytes);
        let k_prime = Key::from_bytes(kb);
        let sig_bytes = aead::open(&k_prime, theta, &transcript.sid)
            .map_err(|_| TraceError::UndecryptableTheta)?;
        // The signed message is δ ‖ sid (as in Phase III).
        let mut msg = delta_bytes.to_vec();
        msg.extend_from_slice(&transcript.sid);
        self.gsig.open(&msg, &sig_bytes)
    }
}
