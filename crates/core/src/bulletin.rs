//! The public bulletin board — the paper's *authenticated anonymous
//! channel* (§2, §7: updated state information is "encrypted under the new
//! CGKD group key and distributed to all group members through an
//! authenticated anonymous channel, e.g., posted on a public bulletin
//! board").
//!
//! The board is append-only and *public*: anyone (including adversaries)
//! can read every posted blob, but the blobs are AEAD-encrypted under
//! group keys the reader may not have. Members poll the board to catch up
//! on missed epochs; an LKH member replays updates in order, an SD member
//! can jump straight to the newest one.

use crate::member::{GroupUpdate, Member};
use crate::CoreError;

/// An append-only public board of group updates.
///
/// Posts are kept sorted by the epoch each update establishes, with a
/// parallel epoch index, so a member that is `k` epochs behind reads
/// exactly its `O(k)` missing records — `since` is a binary search plus
/// a suffix walk, not a scan of the whole group history.
#[derive(Debug, Default)]
pub struct BulletinBoard {
    posts: Vec<GroupUpdate>,
    /// `epochs[i]` is the epoch `posts[i]` establishes (nondecreasing).
    epochs: Vec<u64>,
}

impl BulletinBoard {
    /// An empty board.
    pub fn new() -> BulletinBoard {
        BulletinBoard::default()
    }

    /// Posts an update (done by the group authority after
    /// `AdmitMember`/`RemoveUser`/`ApplyEpoch`).
    ///
    /// The authority posts in epoch order, so this is an O(1) append;
    /// an out-of-order post is placed at its sorted position to keep
    /// the index valid.
    pub fn post(&mut self, update: GroupUpdate) {
        let epoch = update.rekey.epoch();
        if self.epochs.last().is_none_or(|&last| last <= epoch) {
            self.epochs.push(epoch);
            self.posts.push(update);
        } else {
            let at = self.epochs.partition_point(|&e| e <= epoch);
            self.epochs.insert(at, epoch);
            self.posts.insert(at, update);
        }
    }

    /// Number of posts.
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Is the board empty?
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// All posts with an epoch greater than `after_epoch`, in post order.
    /// This is the public read API — no authentication required (the
    /// privacy lives in the encryption, not in access control).
    pub fn since(&self, after_epoch: u64) -> impl Iterator<Item = &GroupUpdate> {
        let start = self.epochs.partition_point(|&e| e <= after_epoch);
        self.posts[start..].iter()
    }

    /// Brings a member up to date: applies every post newer than the
    /// member's epoch, in order.
    ///
    /// Returns the number of updates applied.
    ///
    /// # Errors
    ///
    /// Propagates the first failing update (a revoked member fails on the
    /// update that evicted it and learns nothing further).
    pub fn sync(&self, member: &mut Member) -> Result<usize, CoreError> {
        let mut applied = 0;
        for update in self.since(member.epoch()) {
            member.apply_update(update)?;
            applied += 1;
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeKind;
    use crate::fixtures;
    use shs_crypto::drbg::HmacDrbg;

    #[test]
    fn members_catch_up_from_the_board() {
        let mut rng = HmacDrbg::from_seed(b"bulletin-1");
        let mut ga = fixtures::test_authority(SchemeKind::Scheme1, &mut rng);
        let mut board = BulletinBoard::new();
        let (mut alice, _) = ga.admit(&mut rng).unwrap();
        // Three more members join; Alice does not watch the board.
        for _ in 0..3 {
            let (_m, update) = ga.admit(&mut rng).unwrap();
            board.post(update);
        }
        assert_ne!(alice.group_key(), ga.group_key(), "alice is stale");
        let applied = board.sync(&mut alice).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(alice.group_key(), ga.group_key());
        // A second sync is a no-op.
        assert_eq!(board.sync(&mut alice).unwrap(), 0);
    }

    #[test]
    fn revoked_member_stops_at_its_eviction() {
        let mut rng = HmacDrbg::from_seed(b"bulletin-2");
        let (mut ga, mut members) =
            fixtures::group_with_members(SchemeKind::Scheme1, 3, &mut rng).unwrap();
        let mut board = BulletinBoard::new();
        let mut victim = members.pop().unwrap();
        board.post(ga.remove(victim.id(), &mut rng).unwrap());
        // More churn after the eviction.
        let (_m, update) = ga.admit(&mut rng).unwrap();
        board.post(update);
        // The victim's sync fails at its own eviction and learns nothing.
        let before = victim.group_key().clone();
        assert!(board.sync(&mut victim).is_err());
        assert_eq!(victim.group_key(), &before);
        // Honest members sync through everything.
        for m in members.iter_mut() {
            board.sync(m).unwrap();
            assert_eq!(m.group_key(), ga.group_key());
        }
    }

    #[test]
    fn board_is_publicly_readable_but_opaque() {
        // An adversary can read every blob yet cannot decrypt any payload:
        // the AEAD under the (new) group key fails for any key it holds.
        let mut rng = HmacDrbg::from_seed(b"bulletin-3");
        let mut ga = fixtures::test_authority(SchemeKind::Scheme1, &mut rng);
        let mut board = BulletinBoard::new();
        let (_a, update) = ga.admit(&mut rng).unwrap();
        board.post(update);
        let adversary_key = shs_crypto::Key::random(&mut rng);
        for post in board.since(0) {
            let aad = format!("gcd-update:{}", post.rekey.epoch());
            assert!(
                shs_crypto::aead::open(&adversary_key, &post.payload_ct, aad.as_bytes()).is_err()
            );
        }
    }
}
