//! Fixed-width encodings of the cryptographic objects that travel during
//! a handshake: group signatures (`σ`), tracing ciphertexts (`δ`) and CRL
//! deltas. All widths are functions of the public parameters only, so
//! every real payload has the exact length of its decoy.
//!
//! These layouts are versioned by the transport's wire version
//! (`shs_net::tcp::frame::VERSION`): signatures transmit their PoK
//! commitment vectors `B` since v2, which changed every σ width, so
//! changing a layout here requires bumping that constant (v1 peers are
//! then refused at the framing handshake instead of mis-decoding).

use crate::wire::{Reader, WireError, Writer};
use shs_bigint::Ubig;
use shs_groups::cs;
use shs_groups::schnorr::SchnorrGroup;
use shs_gsig::crl::CrlDelta;
use shs_gsig::ky::{MemberId, RevocationToken, Tags};
use shs_gsig::params::GsigParams;
use shs_gsig::{acjt, ky};

/// Byte width of the RSA modulus.
pub fn n_width(params: &GsigParams) -> usize {
    (params.modulus_bits as usize).div_ceil(8)
}

/// Byte width of a Fiat–Shamir response with the given blind size.
fn s_width(blind_bits: u32) -> usize {
    ((blind_bits + 2) as usize).div_ceil(8)
}

/// Width of the challenge field.
const C_WIDTH: usize = 32;

/// Widths of the five KY responses.
fn ky_widths(p: &GsigParams) -> [usize; 5] {
    [
        s_width(p.blind_bits(p.lambda2)),  // s_x
        s_width(p.blind_bits(p.lambda2)),  // s_xp
        s_width(p.blind_bits(p.gamma2)),   // s_e
        s_width(p.blind_bits(p.r_bits())), // s_r
        s_width(p.blind_bits(p.h_bits())), // s_h
    ]
}

/// Serialized length of a KY signature under these parameters: seven
/// tags plus the six transmitted commitments `B1..B6`, challenge and
/// responses.
pub fn ky_sig_len(p: &GsigParams) -> usize {
    13 * n_width(p) + C_WIDTH + ky_widths(p).iter().map(|w| w + 1).sum::<usize>()
}

/// Encodes a KY signature at fixed width.
pub fn encode_ky_sig(p: &GsigParams, sig: &ky::Signature) -> Vec<u8> {
    let nw = n_width(p);
    let [w_sx, w_sxp, w_se, w_sr, w_sh] = ky_widths(p);
    let mut w = Writer::new();
    for tag in [
        &sig.tags.t1,
        &sig.tags.t2,
        &sig.tags.t3,
        &sig.tags.t4,
        &sig.tags.t5,
        &sig.tags.t6,
        &sig.tags.t7,
    ] {
        w.put_ubig_fixed(tag, nw);
    }
    for bi in &sig.b {
        w.put_ubig_fixed(bi, nw);
    }
    w.put_ubig_fixed(&sig.c, C_WIDTH);
    w.put_int_fixed(&sig.s_x, w_sx);
    w.put_int_fixed(&sig.s_xp, w_sxp);
    w.put_int_fixed(&sig.s_e, w_se);
    w.put_int_fixed(&sig.s_r, w_sr);
    w.put_int_fixed(&sig.s_h, w_sh);
    debug_assert_eq!(w.len(), ky_sig_len(p));
    w.into_bytes()
}

/// Decodes a KY signature.
///
/// # Errors
///
/// [`WireError`] on truncation or malformed fields.
pub fn decode_ky_sig(p: &GsigParams, bytes: &[u8]) -> Result<ky::Signature, WireError> {
    let nw = n_width(p);
    let [w_sx, w_sxp, w_se, w_sr, w_sh] = ky_widths(p);
    let mut r = Reader::new(bytes);
    let t1 = r.take_ubig_fixed(nw)?;
    let t2 = r.take_ubig_fixed(nw)?;
    let t3 = r.take_ubig_fixed(nw)?;
    let t4 = r.take_ubig_fixed(nw)?;
    let t5 = r.take_ubig_fixed(nw)?;
    let t6 = r.take_ubig_fixed(nw)?;
    let t7 = r.take_ubig_fixed(nw)?;
    let mut b: [Ubig; 6] = Default::default();
    for bi in &mut b {
        *bi = r.take_ubig_fixed(nw)?;
    }
    let c = r.take_ubig_fixed(C_WIDTH)?;
    let s_x = r.take_int_fixed(w_sx)?;
    let s_xp = r.take_int_fixed(w_sxp)?;
    let s_e = r.take_int_fixed(w_se)?;
    let s_r = r.take_int_fixed(w_sr)?;
    let s_h = r.take_int_fixed(w_sh)?;
    r.finish()?;
    Ok(ky::Signature {
        tags: Tags {
            t1,
            t2,
            t3,
            t4,
            t5,
            t6,
            t7,
        },
        b,
        c,
        s_x,
        s_xp,
        s_e,
        s_r,
        s_h,
    })
}

/// Widths of the four ACJT responses.
fn acjt_widths(p: &GsigParams) -> [usize; 4] {
    [
        s_width(p.blind_bits(p.lambda2)),
        s_width(p.blind_bits(p.gamma2)),
        s_width(p.blind_bits(p.r_bits())),
        s_width(p.blind_bits(p.h_bits())),
    ]
}

/// Serialized length of an ACJT signature: three tags plus the four
/// transmitted commitments `B1..B4`, challenge and responses.
pub fn acjt_sig_len(p: &GsigParams) -> usize {
    7 * n_width(p) + C_WIDTH + acjt_widths(p).iter().map(|w| w + 1).sum::<usize>()
}

/// Encodes an ACJT signature at fixed width.
pub fn encode_acjt_sig(p: &GsigParams, sig: &acjt::Signature) -> Vec<u8> {
    let nw = n_width(p);
    let [w_sx, w_se, w_sw, w_sh] = acjt_widths(p);
    let mut w = Writer::new();
    w.put_ubig_fixed(&sig.t1, nw);
    w.put_ubig_fixed(&sig.t2, nw);
    w.put_ubig_fixed(&sig.t3, nw);
    for bi in &sig.b {
        w.put_ubig_fixed(bi, nw);
    }
    w.put_ubig_fixed(&sig.c, C_WIDTH);
    w.put_int_fixed(&sig.s_x, w_sx);
    w.put_int_fixed(&sig.s_e, w_se);
    w.put_int_fixed(&sig.s_w, w_sw);
    w.put_int_fixed(&sig.s_h, w_sh);
    debug_assert_eq!(w.len(), acjt_sig_len(p));
    w.into_bytes()
}

/// Decodes an ACJT signature.
///
/// # Errors
///
/// [`WireError`] on truncation or malformed fields.
pub fn decode_acjt_sig(p: &GsigParams, bytes: &[u8]) -> Result<acjt::Signature, WireError> {
    let nw = n_width(p);
    let [w_sx, w_se, w_sw, w_sh] = acjt_widths(p);
    let mut r = Reader::new(bytes);
    let t1 = r.take_ubig_fixed(nw)?;
    let t2 = r.take_ubig_fixed(nw)?;
    let t3 = r.take_ubig_fixed(nw)?;
    let mut b: [Ubig; 4] = Default::default();
    for bi in &mut b {
        *bi = r.take_ubig_fixed(nw)?;
    }
    let c = r.take_ubig_fixed(C_WIDTH)?;
    let s_x = r.take_int_fixed(w_sx)?;
    let s_e = r.take_int_fixed(w_se)?;
    let s_w = r.take_int_fixed(w_sw)?;
    let s_h = r.take_int_fixed(w_sh)?;
    r.finish()?;
    Ok(acjt::Signature {
        t1,
        t2,
        t3,
        b,
        c,
        s_x,
        s_e,
        s_w,
        s_h,
    })
}

/// Byte width of a Schnorr-group element.
pub fn p_width(group: &SchnorrGroup) -> usize {
    (group.p().bits() as usize).div_ceil(8)
}

/// Byte width of a Schnorr-group exponent (mod `q`).
pub fn q_width(group: &SchnorrGroup) -> usize {
    (group.q().bits() as usize).div_ceil(8)
}

/// Serialized length of a tracing ciphertext `δ` for a `payload_len`-byte
/// plaintext.
pub fn delta_len(group: &SchnorrGroup, payload_len: usize) -> usize {
    3 * p_width(group) + 4 + payload_len + shs_crypto::aead::OVERHEAD
}

/// Encodes a Cramer–Shoup ciphertext at fixed width.
pub fn encode_delta(group: &SchnorrGroup, ct: &cs::Ciphertext) -> Vec<u8> {
    let pw = p_width(group);
    let mut w = Writer::new();
    w.put_ubig_fixed(&ct.u1, pw);
    w.put_ubig_fixed(&ct.u2, pw);
    w.put_ubig_fixed(&ct.v, pw);
    w.put_bytes(&ct.dem);
    w.into_bytes()
}

/// Decodes a Cramer–Shoup ciphertext.
///
/// # Errors
///
/// [`WireError`] on truncation.
pub fn decode_delta(group: &SchnorrGroup, bytes: &[u8]) -> Result<cs::Ciphertext, WireError> {
    let pw = p_width(group);
    let mut r = Reader::new(bytes);
    let u1 = r.take_ubig_fixed(pw)?;
    let u2 = r.take_ubig_fixed(pw)?;
    let v = r.take_ubig_fixed(pw)?;
    let dem = r.take_bytes()?;
    r.finish()?;
    Ok(cs::Ciphertext { u1, u2, dem, v })
}

/// Width used for CRL revocation-token trapdoors (`x < 2^{λ1+1}`).
fn token_width(p: &GsigParams) -> usize {
    ((p.lambda1 + 2) as usize).div_ceil(8)
}

/// Encodes a CRL delta for inclusion in an encrypted group update.
pub fn encode_crl_delta(p: &GsigParams, delta: &CrlDelta) -> Vec<u8> {
    let tw = token_width(p);
    let mut w = Writer::new();
    w.put_u64(delta.from_version);
    w.put_u64(delta.to_version);
    w.put_u32(delta.new_tokens.len() as u32);
    for t in &delta.new_tokens {
        w.put_u64(t.id.0);
        w.put_ubig_fixed(&t.x, tw);
    }
    w.into_bytes()
}

/// Decodes a CRL delta.
///
/// # Errors
///
/// [`WireError`] on truncation or absurd counts.
pub fn decode_crl_delta(p: &GsigParams, bytes: &[u8]) -> Result<CrlDelta, WireError> {
    let tw = token_width(p);
    let mut r = Reader::new(bytes);
    let from_version = r.take_u64()?;
    let to_version = r.take_u64()?;
    let count = r.take_u32()?;
    if count > 1 << 20 {
        return Err(WireError::BadLength);
    }
    let mut new_tokens = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = MemberId(r.take_u64()?);
        let x = r.take_ubig_fixed(tw)?;
        new_tokens.push(RevocationToken { id, x });
    }
    r.finish()?;
    Ok(CrlDelta {
        from_version,
        to_version,
        new_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_crypto::drbg::HmacDrbg;
    use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
    use shs_gsig::fixtures;
    use shs_gsig::ky::SignBasis;

    #[test]
    fn ky_signature_roundtrip_and_fixed_len() {
        let (gm, keys) = fixtures::group_with_members(2);
        let pk = gm.public_key();
        let mut rng = HmacDrbg::from_seed(b"codec-ky");
        let s1 = ky::sign(pk, &keys[0], b"m1", SignBasis::Random, &mut rng);
        let s2 = ky::sign(pk, &keys[1], b"m2", SignBasis::Random, &mut rng);
        let b1 = encode_ky_sig(&pk.params, &s1);
        let b2 = encode_ky_sig(&pk.params, &s2);
        assert_eq!(b1.len(), ky_sig_len(&pk.params));
        assert_eq!(b1.len(), b2.len(), "all signatures serialize to one length");
        assert_eq!(decode_ky_sig(&pk.params, &b1).unwrap(), s1);
        assert!(decode_ky_sig(&pk.params, &b1[..b1.len() - 1]).is_err());
    }

    #[test]
    fn acjt_signature_roundtrip() {
        let (rsa, rsa_secret) = fixtures::test_rsa_setting().clone();
        let params = shs_gsig::params::GsigParams::preset(shs_gsig::params::GsigPreset::Test);
        let mut rng = HmacDrbg::from_seed(b"codec-acjt");
        let mut gm = acjt::GroupManager::setup_with_rsa(params, rsa, rsa_secret, &mut rng);
        let (sec, req) = acjt::start_join(gm.public_key(), &mut rng);
        let resp = gm.admit(&req, &mut rng).unwrap();
        let key = acjt::finish_join(gm.public_key(), sec, &resp).unwrap();
        let sig = acjt::sign(gm.public_key(), &key, b"m", &mut rng);
        let bytes = encode_acjt_sig(&params, &sig);
        assert_eq!(bytes.len(), acjt_sig_len(&params));
        assert_eq!(decode_acjt_sig(&params, &bytes).unwrap(), sig);
    }

    #[test]
    fn delta_roundtrip_and_decoy_shape() {
        let g = SchnorrGroup::system_wide(SchnorrPreset::Test);
        let mut rng = HmacDrbg::from_seed(b"codec-delta");
        let (pk, _sk) = cs::keygen(g, &mut rng);
        let real = cs::encrypt(g, &pk, &[9u8; 32], &mut rng);
        let fake = cs::random_ciphertext(g, 32, &mut rng);
        let rb = encode_delta(g, &real);
        let fb = encode_delta(g, &fake);
        assert_eq!(rb.len(), delta_len(g, 32));
        assert_eq!(rb.len(), fb.len(), "decoy δ matches real δ length");
        assert_eq!(decode_delta(g, &rb).unwrap(), real);
    }

    #[test]
    fn crl_delta_roundtrip() {
        let params = shs_gsig::params::GsigParams::preset(shs_gsig::params::GsigPreset::Test);
        let delta = CrlDelta {
            from_version: 3,
            to_version: 4,
            new_tokens: vec![RevocationToken {
                id: MemberId(17),
                x: params.lambda_lo().add_u64(12345),
            }],
        };
        let bytes = encode_crl_delta(&params, &delta);
        assert_eq!(decode_crl_delta(&params, &bytes).unwrap(), delta);
        // Empty delta works too.
        let empty = CrlDelta {
            from_version: 0,
            to_version: 1,
            new_tokens: vec![],
        };
        let bytes = encode_crl_delta(&params, &empty);
        assert_eq!(decode_crl_delta(&params, &bytes).unwrap(), empty);
    }
}
