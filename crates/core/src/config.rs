//! Group configuration: which GSIG instantiation, which parameter sizes,
//! which policy knobs.
//!
//! The three substrate selectors ([`SchemeKind`], [`CgkdChoice`],
//! [`DgkaChoice`]) are *data*, not dispatch: the only module allowed to
//! `match` on them is [`crate::factory`]. Everything else — including the
//! wire codecs in this module — goes through their `ALL` arrays or the
//! boolean capability accessors.

use crate::wire::{Reader, WireError, Writer};
use serde::{Deserialize, Serialize};
use shs_groups::schnorr::SchnorrPreset;
use shs_gsig::params::GsigPreset;
use shs_net::DeliveryPolicy;

/// Parameter presets in wire-tag order (shared by both preset enums,
/// which have the same three sizes).
const GSIG_PRESETS: [GsigPreset; 3] = [GsigPreset::Test, GsigPreset::Small, GsigPreset::Paper];
const SCHNORR_PRESETS: [SchnorrPreset; 3] = [
    SchnorrPreset::Test,
    SchnorrPreset::Small,
    SchnorrPreset::Paper,
];

/// Position of `value` in `all`, as a wire tag. The arrays are
/// exhaustive, so the lookup always succeeds (asserted by round-trip
/// tests over every variant).
fn tag_of<T: PartialEq>(all: &[T], value: &T) -> u8 {
    all.iter().position(|v| v == value).unwrap_or(0) as u8
}

/// Variant of `all` at wire tag `tag`.
fn from_tag<T: Copy>(all: &[T], tag: u8) -> Result<T, WireError> {
    all.get(tag as usize).copied().ok_or(WireError::BadTag)
}

/// Which group-signature scheme instantiates the framework's GSIG slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// §8.1 as shipped: Kiayias–Yung signatures with per-signature random
    /// `T7`, verifier-local revocation via the member CRL. Unlinkability,
    /// traceability, revocation; no self-distinction.
    Scheme1,
    /// §8.2: Kiayias–Yung with the **common hashed `T7`** — adds
    /// self-distinction (Theorem 3).
    Scheme2SelfDistinct,
    /// §8.1 strictly by the letter: classic ACJT with full-anonymity
    /// (Theorem 1's full-unlinkability) but **no signature-level
    /// revocation** — the configuration the §3 revocation attack (E7b)
    /// targets.
    Scheme1Classic,
}

impl SchemeKind {
    /// Every GSIG instantiation, in wire-tag order. Iterate this (rather
    /// than matching) to enumerate the instantiation matrix.
    pub const ALL: [SchemeKind; 3] = [
        SchemeKind::Scheme1,
        SchemeKind::Scheme2SelfDistinct,
        SchemeKind::Scheme1Classic,
    ];

    /// Does this scheme enforce self-distinction?
    pub fn self_distinct(self) -> bool {
        self == SchemeKind::Scheme2SelfDistinct
    }

    /// Does this scheme support signature-level (VLR) revocation?
    pub fn supports_vlr(self) -> bool {
        self != SchemeKind::Scheme1Classic
    }
}

/// Which CGKD scheme backs the group (the **C** of GCD is pluggable,
/// §5: "any centralized group key distribution scheme satisfying the
/// functionality and security requirements ... can be integrated").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CgkdChoice {
    /// Logical Key Hierarchy (Wong–Gouda–Lam): stateful members,
    /// `O(log n)` rekeying. The default.
    Lkh,
    /// Subset-Difference (Naor–Naor–Lotspiech): stateless receivers that
    /// may skip epochs; broadcasts sized by the revoked set.
    SubsetDifference,
    /// The flat star baseline: one individual key per member, `O(n)`
    /// rekeying. The naive scheme the tree methods improve on (E4).
    Star,
}

impl CgkdChoice {
    /// Every CGKD backend, in wire-tag order.
    pub const ALL: [CgkdChoice; 3] = [
        CgkdChoice::Lkh,
        CgkdChoice::SubsetDifference,
        CgkdChoice::Star,
    ];
}

/// Configuration of one group (one `GA`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// GSIG parameter preset.
    pub gsig_preset: GsigPreset,
    /// System-wide Schnorr parameters (DGKA + tracing encryption).
    pub schnorr_preset: SchnorrPreset,
    /// GSIG instantiation.
    pub scheme: SchemeKind,
    /// CGKD backend.
    pub cgkd: CgkdChoice,
    /// CGKD capacity (members).
    pub capacity: u32,
}

impl GroupConfig {
    /// Fast test-sized configuration for a scheme.
    pub fn test(scheme: SchemeKind) -> GroupConfig {
        GroupConfig {
            gsig_preset: GsigPreset::Test,
            schnorr_preset: SchnorrPreset::Test,
            scheme,
            cgkd: CgkdChoice::Lkh,
            capacity: 64,
        }
    }

    /// Test configuration on the stateless Subset-Difference backend.
    pub fn test_sd(scheme: SchemeKind) -> GroupConfig {
        GroupConfig {
            cgkd: CgkdChoice::SubsetDifference,
            ..GroupConfig::test(scheme)
        }
    }

    /// Test configuration on the flat star backend.
    pub fn test_star(scheme: SchemeKind) -> GroupConfig {
        GroupConfig {
            cgkd: CgkdChoice::Star,
            ..GroupConfig::test(scheme)
        }
    }

    /// Test configuration on an explicit CGKD backend.
    pub fn test_with_cgkd(scheme: SchemeKind, cgkd: CgkdChoice) -> GroupConfig {
        GroupConfig {
            cgkd,
            ..GroupConfig::test(scheme)
        }
    }

    /// Serializes the configuration for storage or transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(tag_of(&GSIG_PRESETS, &self.gsig_preset));
        w.put_u8(tag_of(&SCHNORR_PRESETS, &self.schnorr_preset));
        w.put_u8(tag_of(&SchemeKind::ALL, &self.scheme));
        w.put_u8(tag_of(&CgkdChoice::ALL, &self.cgkd));
        w.put_u32(self.capacity);
        w.into_bytes()
    }

    /// Deserializes a configuration written by [`GroupConfig::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or unknown tags.
    pub fn from_bytes(bytes: &[u8]) -> Result<GroupConfig, WireError> {
        let mut r = Reader::new(bytes);
        let gsig_preset = from_tag(&GSIG_PRESETS, r.take_u8()?)?;
        let schnorr_preset = from_tag(&SCHNORR_PRESETS, r.take_u8()?)?;
        let scheme = from_tag(&SchemeKind::ALL, r.take_u8()?)?;
        let cgkd = from_tag(&CgkdChoice::ALL, r.take_u8()?)?;
        let capacity = r.take_u32()?;
        r.finish()?;
        Ok(GroupConfig {
            gsig_preset,
            schnorr_preset,
            scheme,
            cgkd,
            capacity,
        })
    }
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig::test(SchemeKind::Scheme2SelfDistinct)
    }
}

/// Which phases of `GCD.Handshake` run (§7 remark: the protocol is
/// tailorable; traceability can be dropped by stopping after Phase II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePolicy {
    /// All three phases (traceable).
    Full,
    /// Phases I + II only (no `(θ, δ)` published; untraceable by choice).
    PreliminaryOnly,
}

/// Which DGKA protocol runs Phase I (the framework is a compiler: any
/// secure group key agreement slots in, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DgkaChoice {
    /// Burmester–Desmedt \[11\]: two broadcast rounds, constant
    /// exponentiations per party. The default.
    BurmesterDesmedt,
    /// GDH.2 (Steiner–Tsudik–Waidner \[30\]): an `m`-round upflow chain.
    /// Non-active slots transmit cover traffic each round so the wire
    /// shape stays independent of the participant set.
    Gdh2,
    /// Katz–Yung compiled Burmester–Desmedt \[21\]: a nonce round plus the
    /// two BD rounds, every message signed over the session context.
    /// Rejects Phase-I MITM immediately (signature failure) instead of at
    /// the Phase-II MACs.
    AuthenticatedBd,
}

impl DgkaChoice {
    /// Every DGKA protocol, in wire-tag order.
    pub const ALL: [DgkaChoice; 3] = [
        DgkaChoice::BurmesterDesmedt,
        DgkaChoice::Gdh2,
        DgkaChoice::AuthenticatedBd,
    ];
}

impl TracePolicy {
    /// Both phase policies, in wire-tag order.
    pub const ALL: [TracePolicy; 2] = [TracePolicy::Full, TracePolicy::PreliminaryOnly];
}

/// Round budget of a session on a possibly-lossy medium.
///
/// The simulated media are clocked by broadcast exchanges, so the budget
/// is denominated in exchanges rather than wall time: it is the timeout.
/// The protocol's *base* exchanges always run (they also carry every
/// slot's cover traffic, so skipping one would change the wire shape);
/// the budget bounds the **extra** retransmission exchanges the driver
/// may spend recovering lost or mangled messages. A session therefore
/// always terminates within `base + min(max_exchanges, labels ×
/// retries_per_round)` exchanges, with slots that could not recover
/// reporting a structured abort instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionBudget {
    /// Hard cap on total exchanges (base + retransmissions); once
    /// reached, no further retransmissions are attempted.
    pub max_exchanges: u32,
    /// Retransmissions allowed per round label before the driver gives
    /// up on the still-missing messages and degrades (smaller `Δ`,
    /// partial success, or a per-slot abort). The retry schedule is
    /// linear — one re-exchange per attempt — because the medium's clock
    /// is the exchange counter, which is also exactly what a
    /// `Delay { rounds }` fault counts.
    pub retries_per_round: u32,
}

impl Default for SessionBudget {
    fn default() -> Self {
        SessionBudget {
            max_exchanges: 32,
            retries_per_round: 2,
        }
    }
}

/// Options of one handshake session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandshakeOptions {
    /// Phase policy.
    pub policy: TracePolicy,
    /// Allow partially-successful handshakes (§7 extension): sub-groups of
    /// co-members complete even in mixed sessions.
    pub partial_success: bool,
    /// Delivery model of the anonymous medium.
    pub delivery: DeliveryPolicy,
    /// Which key-agreement protocol runs Phase I.
    pub dgka: DgkaChoice,
    /// Retry/timeout budget on lossy media.
    pub budget: SessionBudget,
    /// Verify co-members' Phase-III signatures on a scoped worker pool
    /// (one job per slot). Results are merged in slot order, so the
    /// transcript and per-slot costs are byte-identical either way; this
    /// only trades wall-clock time. Disable to pin the engine to one
    /// thread (e.g. under a deterministic profiler).
    pub parallel_verify: bool,
}

impl Default for HandshakeOptions {
    fn default() -> Self {
        HandshakeOptions {
            policy: TracePolicy::Full,
            partial_success: true,
            delivery: DeliveryPolicy::Synchronous,
            dgka: DgkaChoice::BurmesterDesmedt,
            budget: SessionBudget::default(),
            parallel_verify: true,
        }
    }
}

impl HandshakeOptions {
    /// Default options with a specific DGKA protocol.
    pub fn with_dgka(dgka: DgkaChoice) -> HandshakeOptions {
        HandshakeOptions {
            dgka,
            ..HandshakeOptions::default()
        }
    }

    /// Serializes the options for storage or transport.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(tag_of(&TracePolicy::ALL, &self.policy));
        w.put_u8(u8::from(self.partial_success));
        // DeliveryPolicy is encoded at fixed width: a tag byte plus the
        // seed (zero for the synchronous model, which has none).
        match self.delivery {
            DeliveryPolicy::Synchronous => {
                w.put_u8(0);
                w.put_u64(0);
            }
            DeliveryPolicy::AdversarialReorder { seed } => {
                w.put_u8(1);
                w.put_u64(seed);
            }
        }
        w.put_u8(tag_of(&DgkaChoice::ALL, &self.dgka));
        w.put_u32(self.budget.max_exchanges);
        w.put_u32(self.budget.retries_per_round);
        w.put_u8(u8::from(self.parallel_verify));
        w.into_bytes()
    }

    /// Deserializes options written by [`HandshakeOptions::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or unknown tags.
    pub fn from_bytes(bytes: &[u8]) -> Result<HandshakeOptions, WireError> {
        let mut r = Reader::new(bytes);
        let policy = from_tag(&TracePolicy::ALL, r.take_u8()?)?;
        let partial_success = match r.take_u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::BadTag),
        };
        let delivery_tag = r.take_u8()?;
        let seed = r.take_u64()?;
        let delivery = match delivery_tag {
            0 => DeliveryPolicy::Synchronous,
            1 => DeliveryPolicy::AdversarialReorder { seed },
            _ => return Err(WireError::BadTag),
        };
        let dgka = from_tag(&DgkaChoice::ALL, r.take_u8()?)?;
        let budget = SessionBudget {
            max_exchanges: r.take_u32()?,
            retries_per_round: r.take_u32()?,
        };
        let parallel_verify = match r.take_u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::BadTag),
        };
        r.finish()?;
        Ok(HandshakeOptions {
            policy,
            partial_success,
            delivery,
            dgka,
            budget,
            parallel_verify,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_flags() {
        assert!(SchemeKind::Scheme2SelfDistinct.self_distinct());
        assert!(!SchemeKind::Scheme1.self_distinct());
        assert!(SchemeKind::Scheme1.supports_vlr());
        assert!(!SchemeKind::Scheme1Classic.supports_vlr());
    }

    #[test]
    fn defaults() {
        let c = GroupConfig::default();
        assert_eq!(c.scheme, SchemeKind::Scheme2SelfDistinct);
        let o = HandshakeOptions::default();
        assert_eq!(o.policy, TracePolicy::Full);
        assert!(o.partial_success);
    }

    #[test]
    fn group_config_roundtrips_over_the_full_matrix() {
        for scheme in SchemeKind::ALL {
            for cgkd in CgkdChoice::ALL {
                let c = GroupConfig {
                    cgkd,
                    capacity: 17,
                    ..GroupConfig::test(scheme)
                };
                let bytes = c.to_bytes();
                assert_eq!(GroupConfig::from_bytes(&bytes), Ok(c));
            }
        }
    }

    #[test]
    fn handshake_options_roundtrip_over_all_variants() {
        for policy in TracePolicy::ALL {
            for dgka in DgkaChoice::ALL {
                for delivery in [
                    DeliveryPolicy::Synchronous,
                    DeliveryPolicy::AdversarialReorder { seed: 99 },
                ] {
                    let o = HandshakeOptions {
                        policy,
                        partial_success: false,
                        delivery,
                        dgka,
                        budget: SessionBudget {
                            max_exchanges: 5,
                            retries_per_round: 1,
                        },
                        parallel_verify: false,
                    };
                    let bytes = o.to_bytes();
                    assert_eq!(HandshakeOptions::from_bytes(&bytes), Ok(o));
                }
            }
        }
    }

    #[test]
    fn config_decoding_rejects_malformed_input() {
        let c = GroupConfig::default().to_bytes();
        assert!(GroupConfig::from_bytes(&c[..c.len() - 1]).is_err());
        let mut bad_tag = c.clone();
        bad_tag[2] = 9;
        assert_eq!(GroupConfig::from_bytes(&bad_tag), Err(WireError::BadTag));
        let o = HandshakeOptions::default().to_bytes();
        assert!(HandshakeOptions::from_bytes(&o[..o.len() - 1]).is_err());
        let mut trailing = o.clone();
        trailing.push(0);
        assert!(HandshakeOptions::from_bytes(&trailing).is_err());
    }
}
