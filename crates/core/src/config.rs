//! Group configuration: which GSIG instantiation, which parameter sizes,
//! which policy knobs.

use serde::{Deserialize, Serialize};
use shs_groups::schnorr::SchnorrPreset;
use shs_gsig::params::GsigPreset;
use shs_net::DeliveryPolicy;

/// Which group-signature scheme instantiates the framework's GSIG slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// §8.1 as shipped: Kiayias–Yung signatures with per-signature random
    /// `T7`, verifier-local revocation via the member CRL. Unlinkability,
    /// traceability, revocation; no self-distinction.
    Scheme1,
    /// §8.2: Kiayias–Yung with the **common hashed `T7`** — adds
    /// self-distinction (Theorem 3).
    Scheme2SelfDistinct,
    /// §8.1 strictly by the letter: classic ACJT with full-anonymity
    /// (Theorem 1's full-unlinkability) but **no signature-level
    /// revocation** — the configuration the §3 revocation attack (E7b)
    /// targets.
    Scheme1Classic,
}

impl SchemeKind {
    /// Does this scheme enforce self-distinction?
    pub fn self_distinct(self) -> bool {
        matches!(self, SchemeKind::Scheme2SelfDistinct)
    }

    /// Does this scheme support signature-level (VLR) revocation?
    pub fn supports_vlr(self) -> bool {
        !matches!(self, SchemeKind::Scheme1Classic)
    }
}

/// Which CGKD scheme backs the group (the **C** of GCD is pluggable,
/// §5: "any centralized group key distribution scheme satisfying the
/// functionality and security requirements ... can be integrated").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CgkdChoice {
    /// Logical Key Hierarchy (Wong–Gouda–Lam): stateful members,
    /// `O(log n)` rekeying. The default.
    Lkh,
    /// Subset-Difference (Naor–Naor–Lotspiech): stateless receivers that
    /// may skip epochs; broadcasts sized by the revoked set.
    SubsetDifference,
}

/// Configuration of one group (one `GA`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupConfig {
    /// GSIG parameter preset.
    pub gsig_preset: GsigPreset,
    /// System-wide Schnorr parameters (DGKA + tracing encryption).
    pub schnorr_preset: SchnorrPreset,
    /// GSIG instantiation.
    pub scheme: SchemeKind,
    /// CGKD backend.
    pub cgkd: CgkdChoice,
    /// CGKD capacity (members).
    pub capacity: u32,
}

impl GroupConfig {
    /// Fast test-sized configuration for a scheme.
    pub fn test(scheme: SchemeKind) -> GroupConfig {
        GroupConfig {
            gsig_preset: GsigPreset::Test,
            schnorr_preset: SchnorrPreset::Test,
            scheme,
            cgkd: CgkdChoice::Lkh,
            capacity: 64,
        }
    }

    /// Test configuration on the stateless Subset-Difference backend.
    pub fn test_sd(scheme: SchemeKind) -> GroupConfig {
        GroupConfig {
            cgkd: CgkdChoice::SubsetDifference,
            ..GroupConfig::test(scheme)
        }
    }
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig::test(SchemeKind::Scheme2SelfDistinct)
    }
}

/// Which phases of `GCD.Handshake` run (§7 remark: the protocol is
/// tailorable; traceability can be dropped by stopping after Phase II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePolicy {
    /// All three phases (traceable).
    Full,
    /// Phases I + II only (no `(θ, δ)` published; untraceable by choice).
    PreliminaryOnly,
}

/// Which DGKA protocol runs Phase I (the framework is a compiler: any
/// secure group key agreement slots in, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DgkaChoice {
    /// Burmester–Desmedt \[11\]: two broadcast rounds, constant
    /// exponentiations per party. The default.
    BurmesterDesmedt,
    /// GDH.2 (Steiner–Tsudik–Waidner \[30\]): an `m`-round upflow chain.
    /// Non-active slots transmit cover traffic each round so the wire
    /// shape stays independent of the participant set.
    Gdh2,
}

/// Round budget of a session on a possibly-lossy medium.
///
/// The simulated media are clocked by broadcast exchanges, so the budget
/// is denominated in exchanges rather than wall time: it is the timeout.
/// The protocol's *base* exchanges always run (they also carry every
/// slot's cover traffic, so skipping one would change the wire shape);
/// the budget bounds the **extra** retransmission exchanges the driver
/// may spend recovering lost or mangled messages. A session therefore
/// always terminates within `base + min(max_exchanges, labels ×
/// retries_per_round)` exchanges, with slots that could not recover
/// reporting a structured abort instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionBudget {
    /// Hard cap on total exchanges (base + retransmissions); once
    /// reached, no further retransmissions are attempted.
    pub max_exchanges: u32,
    /// Retransmissions allowed per round label before the driver gives
    /// up on the still-missing messages and degrades (smaller `Δ`,
    /// partial success, or a per-slot abort). The retry schedule is
    /// linear — one re-exchange per attempt — because the medium's clock
    /// is the exchange counter, which is also exactly what a
    /// `Delay { rounds }` fault counts.
    pub retries_per_round: u32,
}

impl Default for SessionBudget {
    fn default() -> Self {
        SessionBudget {
            max_exchanges: 32,
            retries_per_round: 2,
        }
    }
}

/// Options of one handshake session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeOptions {
    /// Phase policy.
    pub policy: TracePolicy,
    /// Allow partially-successful handshakes (§7 extension): sub-groups of
    /// co-members complete even in mixed sessions.
    pub partial_success: bool,
    /// Delivery model of the anonymous medium.
    pub delivery: DeliveryPolicy,
    /// Which key-agreement protocol runs Phase I.
    pub dgka: DgkaChoice,
    /// Retry/timeout budget on lossy media.
    pub budget: SessionBudget,
}

impl Default for HandshakeOptions {
    fn default() -> Self {
        HandshakeOptions {
            policy: TracePolicy::Full,
            partial_success: true,
            delivery: DeliveryPolicy::Synchronous,
            dgka: DgkaChoice::BurmesterDesmedt,
            budget: SessionBudget::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_flags() {
        assert!(SchemeKind::Scheme2SelfDistinct.self_distinct());
        assert!(!SchemeKind::Scheme1.self_distinct());
        assert!(SchemeKind::Scheme1.supports_vlr());
        assert!(!SchemeKind::Scheme1Classic.supports_vlr());
    }

    #[test]
    fn defaults() {
        let c = GroupConfig::default();
        assert_eq!(c.scheme, SchemeKind::Scheme2SelfDistinct);
        let o = HandshakeOptions::default();
        assert_eq!(o.policy, TracePolicy::Full);
        assert!(o.partial_success);
    }
}
