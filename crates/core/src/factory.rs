//! The instantiation factory: the **only** module that turns the three
//! configuration enums ([`SchemeKind`], [`CgkdChoice`], [`DgkaChoice`])
//! into concrete substrate implementations.
//!
//! Everything else in the workspace programs against the trait layer in
//! [`crate::substrate`]; the `shs-lint` `factory-dispatch` rule fails
//! the build if a `match` on any of the three enums appears outside
//! this file. Adding a new GSIG/CGKD/DGKA backend therefore means: add
//! the enum variant (and its `ALL` entry) in [`crate::config`],
//! implement the substrate trait, and extend exactly one function here
//! — the compiler and the lint together point at every site that needs
//! attention.

use crate::config::{CgkdChoice, DgkaChoice, SchemeKind};
use crate::substrate::cgkd::{Cgkd, LkhCgkd, SdCgkd, StarCgkd};
use crate::substrate::dgka::{AkeSlot, BdSlot, DgkaSlot, GdhSlot};
use crate::substrate::gsig::{AcjtAuthority, Gsig, KyAuthority};
use crate::{codec, CoreError};
use rand::RngCore;
use shs_cgkd::lkh::LkhController;
use shs_cgkd::sd::SdController;
use shs_cgkd::star::StarController;
use shs_groups::rsa::{RsaGroup, RsaSecret};
use shs_groups::schnorr::SchnorrGroup;
use shs_gsig::params::GsigParams;

/// `GSIG.Setup` for the configured scheme, over a pre-generated
/// safe-RSA setting.
pub fn gsig_authority(
    scheme: SchemeKind,
    params: GsigParams,
    rsa: RsaGroup,
    rsa_secret: RsaSecret,
    rng: &mut dyn RngCore,
) -> Box<dyn Gsig> {
    match scheme {
        SchemeKind::Scheme1 | SchemeKind::Scheme2SelfDistinct => {
            Box::new(KyAuthority::setup(params, rsa, rsa_secret, rng))
        }
        SchemeKind::Scheme1Classic => Box::new(AcjtAuthority::setup(params, rsa, rsa_secret, rng)),
    }
}

/// Serialized signature length for the configured scheme — a public
/// constant of the group; Phase-III decoys must match it.
pub fn sig_len(scheme: SchemeKind, params: &GsigParams) -> usize {
    match scheme {
        SchemeKind::Scheme1 | SchemeKind::Scheme2SelfDistinct => codec::ky_sig_len(params),
        SchemeKind::Scheme1Classic => codec::acjt_sig_len(params),
    }
}

/// `CGKD.Create` for the configured backend.
pub fn cgkd_controller(choice: CgkdChoice, capacity: u32, rng: &mut dyn RngCore) -> Box<dyn Cgkd> {
    match choice {
        CgkdChoice::Lkh => Box::new(LkhCgkd(LkhController::new(capacity, rng))),
        CgkdChoice::SubsetDifference => Box::new(SdCgkd(SdController::new(capacity, rng))),
        CgkdChoice::Star => Box::new(StarCgkd(StarController::new(capacity, rng))),
    }
}

/// One [`DgkaSlot`] per session slot for the configured protocol.
///
/// # Errors
///
/// [`CoreError::Dgka`] when the protocol rejects the parameters
/// (`m < 2`).
pub fn dgka_slots(
    choice: DgkaChoice,
    group: &'static SchnorrGroup,
    m: usize,
    rng: &mut dyn RngCore,
) -> Result<Vec<Box<dyn DgkaSlot>>, CoreError> {
    let mut slots: Vec<Box<dyn DgkaSlot>> = Vec::with_capacity(m);
    for i in 0..m {
        slots.push(dgka_slot(choice, group, m, i, rng)?);
    }
    Ok(slots)
}

/// A single [`DgkaSlot`] for slot `i` of an `m`-party session — the
/// distributed counterpart of [`dgka_slots`], for drivers where each
/// party constructs only its own state machine.
///
/// # Errors
///
/// [`CoreError::Dgka`] when the protocol rejects the parameters
/// (`m < 2`).
pub fn dgka_slot(
    choice: DgkaChoice,
    group: &'static SchnorrGroup,
    m: usize,
    i: usize,
    rng: &mut dyn RngCore,
) -> Result<Box<dyn DgkaSlot>, CoreError> {
    Ok(match choice {
        DgkaChoice::BurmesterDesmedt => Box::new(BdSlot::new(group, m, i)),
        DgkaChoice::Gdh2 => Box::new(GdhSlot::new(group, m, i, rng)?),
        DgkaChoice::AuthenticatedBd => Box::new(AkeSlot::new(group, m, i)),
    })
}
