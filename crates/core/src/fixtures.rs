//! Deterministic fixtures: test-sized group authorities built on the
//! cached RSA setting, so tests and benchmarks skip safe-prime search.

use crate::authority::GroupAuthority;
use crate::config::{GroupConfig, SchemeKind};
use crate::member::Member;
use crate::CoreError;
use rand::RngCore;

/// Builds a test-sized [`GroupAuthority`] for `scheme`, reusing the
/// workspace-wide cached RSA setting.
pub fn test_authority(scheme: SchemeKind, rng: &mut impl RngCore) -> GroupAuthority {
    test_authority_with(GroupConfig::test(scheme), rng)
}

/// Builds a [`GroupAuthority`] for an arbitrary configuration (any cell
/// of the instantiation matrix), reusing the cached RSA setting.
pub fn test_authority_with(config: GroupConfig, rng: &mut impl RngCore) -> GroupAuthority {
    let (rsa, secret) = shs_gsig::fixtures::test_rsa_setting().clone();
    GroupAuthority::create_with_rsa(config, rsa, secret, rng)
}

/// Builds a test authority plus `n` members, every member fully updated.
///
/// # Errors
///
/// Propagates admission errors (none occur for valid `n` within
/// capacity).
pub fn group_with_members(
    scheme: SchemeKind,
    n: usize,
    rng: &mut impl RngCore,
) -> Result<(GroupAuthority, Vec<Member>), CoreError> {
    group_with_config(GroupConfig::test(scheme), n, rng)
}

/// Builds an authority for `config` plus `n` fully-updated members.
///
/// # Errors
///
/// Propagates admission errors (none occur for valid `n` within
/// capacity).
pub fn group_with_config(
    config: GroupConfig,
    n: usize,
    rng: &mut impl RngCore,
) -> Result<(GroupAuthority, Vec<Member>), CoreError> {
    let mut ga = test_authority_with(config, rng);
    let mut members: Vec<Member> = Vec::with_capacity(n);
    for _ in 0..n {
        let (joiner, update) = ga.admit(rng)?;
        for m in members.iter_mut() {
            m.apply_update(&update)?;
        }
        members.push(joiner);
    }
    Ok((ga, members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_crypto::drbg::HmacDrbg;

    #[test]
    fn members_share_group_key() {
        let mut rng = HmacDrbg::from_seed(b"fixture-core");
        let (ga, members) = group_with_members(SchemeKind::Scheme1, 3, &mut rng).unwrap();
        for m in &members {
            assert_eq!(m.group_key(), ga.group_key());
        }
        assert_eq!(ga.member_count(), 3);
    }
}
