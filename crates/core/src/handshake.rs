//! `GCD.Handshake` — the three-phase multi-party secret handshake of §7,
//! executed over the anonymous broadcast medium of `shs-net`.
//!
//! * **Phase I (Preparation)** — distributed group key agreement
//!   (Burmester–Desmedt by default, GDH.2 selectable) yields `k*`; each
//!   party blinds it with its CGKD group key: `k'_i = k* ⊕ k_i`.
//! * **Phase II (Preliminary handshake)** — each party publishes
//!   `MAC(k'_i, s_i ‖ i)`; a tag verifies under `k'_j` iff the two parties
//!   hold the same group key. Each party thereby learns its co-member set
//!   `Δ` (the partially-successful-handshake extension).
//! * **Phase III (Full handshake)** — parties in a big-enough `Δ` publish
//!   `(θ_i, δ_i)` where `δ_i = ENC(pk_T, k'_i)` and
//!   `θ_i = SENC(k'_i, GSIG.Sign(δ_i ‖ sid))`; everyone else publishes
//!   decoys drawn uniformly from the same ciphertext spaces, so failures
//!   are indistinguishable from successes on the wire. Scheme 2
//!   additionally forces the common `T7 = H→QR(transcript)` and flags
//!   duplicate `T6` values (self-distinction).
//!
//! # Hardened runtime
//!
//! The driver tolerates a lossy, malicious medium (see `shs-net`'s
//! fault injection): every broadcast exchange is retried within the
//! session's [`crate::config::SessionBudget`] when expected messages are
//! missing or undecodable, and a slot that still cannot proceed
//! **aborts structurally** — [`Outcome::abort`] carries an
//! [`AbortReason`] instead of the session hanging or returning a global
//! error. Crucially for unobservability, an aborting slot keeps
//! participating as a *decoy sender*: it transmits chaff and decoy
//! payloads of exactly the shapes an ordinary failed handshake would
//! produce, so an eavesdropper cannot tell a fault-induced abort from a
//! run-of-the-mill membership mismatch.

use crate::config::{DgkaChoice, HandshakeOptions, SchemeKind, SessionBudget, TracePolicy};
use crate::member::{Credential, Member};
use crate::transcript::{HandshakeTranscript, TranscriptEntry};
use crate::{codec, CoreError};
use rand::RngCore;
use shs_bigint::counters;
use shs_bigint::Ubig;
use shs_crypto::{aead, hmac, Key};
use shs_dgka::{bd, gdh};
use shs_groups::cs;
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
use shs_gsig::params::{GsigParams, GsigPreset};
use shs_gsig::{acjt, ky};
use shs_net::observe::TrafficLog;
use shs_net::sync::BroadcastNet;

/// A participant slot in a handshake session.
pub enum Actor<'a> {
    /// A group member with real credentials.
    Member(&'a Member),
    /// An adversary without credentials for any relevant group: it runs
    /// the public DGKA protocol honestly but holds a random "group key"
    /// and publishes decoys in Phase III. Passing several `Outsider`
    /// slots models an adversary playing multiple roles
    /// (the "A plays the roles of multiple participants" clauses of
    /// Fig. 2).
    Outsider,
}

impl std::fmt::Debug for Actor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Actor::Member(m) => write!(f, "Actor::Member({})", m.id()),
            Actor::Outsider => write!(f, "Actor::Outsider"),
        }
    }
}

/// Why a slot abandoned a session instead of completing it.
///
/// Aborting is *quiet*: the slot keeps transmitting decoy traffic of the
/// ordinary failed-handshake shape, so the reason is visible only in its
/// local [`Outcome`], never on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Phase I key agreement never completed: contributions stayed
    /// missing or undecodable after the retry budget.
    KeyAgreement,
    /// The session's exchange budget ran out while messages were still
    /// missing.
    BudgetExhausted,
    /// The slot itself crash-stopped (fault injection): the medium
    /// suppressed its sends mid-session.
    Crashed,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::KeyAgreement => write!(f, "phase I key agreement incomplete"),
            AbortReason::BudgetExhausted => write!(f, "session exchange budget exhausted"),
            AbortReason::Crashed => write!(f, "slot crash-stopped"),
        }
    }
}

/// Per-slot result of a handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// This party's slot.
    pub slot: usize,
    /// Did the *full* handshake succeed (all parties same group, all
    /// signatures valid, no duplicate participants)? This is the paper's
    /// binary `Handshake(∆) = 1`.
    pub accepted: bool,
    /// The co-member set `Δ` this party observed (slots whose Phase-II
    /// tags verified, including itself).
    pub same_group_slots: Vec<usize>,
    /// Slots of `Δ` whose Phase-III group signature verified.
    pub verified_slots: Vec<usize>,
    /// Slots flagged by self-distinction (duplicate `T6`), scheme 2 only.
    pub duplicate_slots: Vec<usize>,
    /// Session key established with the accepted partners (present when
    /// this party completed a full or partial handshake).
    pub session_key: Option<Key>,
    /// Why this slot abandoned the session, if it did. `None` for every
    /// slot that ran the protocol to completion — including ordinary
    /// failed handshakes (wrong group, bad signatures), which are
    /// *completions*, not aborts.
    pub abort: Option<AbortReason>,
}

impl Outcome {
    /// Did this party complete at least a *partial* handshake
    /// (`|Δ| ≥ 2` with all of `Δ` verified)?
    pub fn partial_accepted(&self) -> bool {
        self.session_key.is_some()
    }
}

/// Per-slot cost accounting for the complexity experiments (E1/E2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotCosts {
    /// Modular exponentiations performed by this slot.
    pub modexp: u64,
    /// Messages this slot broadcast.
    pub messages_sent: u64,
    /// Bytes this slot broadcast.
    pub bytes_sent: u64,
}

/// Session-level accounting of the hardened runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Broadcast exchanges performed (base rounds + retransmissions).
    pub exchanges: u32,
    /// Retransmission exchanges among those.
    pub retries: u32,
    /// Did the session hit [`SessionBudget::max_exchanges`] with
    /// messages still missing?
    pub budget_exhausted: bool,
}

/// Everything a handshake session produced.
#[derive(Debug)]
pub struct SessionResult {
    /// Per-slot outcomes.
    pub outcomes: Vec<Outcome>,
    /// The `{(θ_i, δ_i)}` transcript for `GCD.TraceUser` (empty under
    /// [`TracePolicy::PreliminaryOnly`]).
    pub transcript: HandshakeTranscript,
    /// The eavesdropper's traffic log.
    pub traffic: TrafficLog,
    /// Per-slot cost accounting.
    pub costs: Vec<SlotCosts>,
    /// Exchange/retry accounting (the cost of surviving a lossy medium).
    pub stats: SessionStats,
}

/// Per-slot output of Phase I, protocol-independent.
struct Phase1Slot {
    /// Session id (transcript hash of the key agreement).
    sid: Vec<u8>,
    /// The agreed session key `k*` as this slot computed it.
    k_star: Key,
    /// Each sender's key-agreement contribution as *this slot* received
    /// it (own entry = as sent). This is the `s` of Phase II's MAC.
    contributions: Vec<Vec<u8>>,
}

struct SlotState<'a> {
    actor: &'a Actor<'a>,
    sid: Vec<u8>,
    k_prime: Key,
    contributions: Vec<Vec<u8>>,
    /// Phase-II payloads as received, per sender.
    seen_tags: Vec<Vec<u8>>,
    delta_set: Vec<usize>,
    /// Own Phase-III signature's T6 (scheme 2).
    own_t6: Option<Ubig>,
}

/// Effective parameter view for one slot (outsiders mimic the session's
/// dominant configuration).
#[derive(Clone, Copy)]
struct SlotParams {
    scheme: SchemeKind,
    params: GsigParams,
}

fn meter<T>(costs: &mut SlotCosts, f: impl FnOnce() -> T) -> T {
    let (c, out) = counters::measure(f);
    costs.modexp += c.modexp;
    out
}

fn note_send(costs: &mut SlotCosts, payload: &[u8]) {
    costs.messages_sent += 1;
    costs.bytes_sent += payload.len() as u64;
}

/// Uniform random bytes of a protocol-determined length: what an aborted
/// slot transmits so the wire shape never reveals the abort.
fn chaff(len: usize, rng: &mut (impl RngCore + ?Sized)) -> Vec<u8> {
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    bytes
}

/// The budgeted exchange engine: performs one logical round, retrying
/// (all slots retransmitting together, which keeps the per-slot wire
/// shape uniform) while some receiver still lacks a *valid* copy of some
/// sender's message and budget remains.
struct Exchanger<'n, 'a> {
    net: &'n mut BroadcastNet<'a>,
    budget: SessionBudget,
    exchanges: u32,
    retries: u32,
    exhausted: bool,
}

impl<'n, 'a> Exchanger<'n, 'a> {
    fn new(net: &'n mut BroadcastNet<'a>, budget: SessionBudget) -> Exchanger<'n, 'a> {
        Exchanger {
            net,
            budget,
            exchanges: 0,
            retries: 0,
            exhausted: false,
        }
    }

    /// Broadcasts `outgoing` under `label`, returning each receiver's
    /// best copy per sender (`None` where nothing valid ever arrived).
    /// `valid` decides whether a payload counts as received — the first
    /// valid copy wins, which also discards injected duplicates.
    fn round(
        &mut self,
        label: &str,
        outgoing: &[Vec<u8>],
        valid: &mut dyn FnMut(usize, usize, &[u8]) -> bool,
    ) -> Result<Vec<Vec<Option<Vec<u8>>>>, CoreError> {
        let m = outgoing.len();
        let mut views: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; m]; m];
        let mut attempt = 0u32;
        loop {
            self.exchanges += 1;
            if attempt > 0 {
                self.retries += 1;
            }
            let inboxes = self.net.exchange(label, outgoing.to_vec())?;
            for (to, inbox) in inboxes.iter().enumerate() {
                for rcv in inbox {
                    if rcv.from_slot < m
                        && views[to][rcv.from_slot].is_none()
                        && valid(to, rcv.from_slot, &rcv.payload)
                    {
                        views[to][rcv.from_slot] = Some(rcv.payload.clone());
                    }
                }
            }
            let complete = views.iter().all(|row| row.iter().all(Option::is_some));
            if complete || attempt >= self.budget.retries_per_round {
                break;
            }
            if self.exchanges >= self.budget.max_exchanges {
                self.exhausted = true;
                break;
            }
            attempt += 1;
        }
        Ok(views)
    }

    /// The abort reason matching how the last incomplete round ended.
    fn abort_reason(&self) -> AbortReason {
        if self.exhausted {
            AbortReason::BudgetExhausted
        } else {
            AbortReason::KeyAgreement
        }
    }
}

/// Runs a handshake session among `actors` on a fresh anonymous broadcast
/// medium configured per `opts`.
///
/// # Errors
///
/// [`CoreError::BadSession`] for fewer than two actors; network and codec
/// errors are propagated.
pub fn run_handshake(
    actors: &[Actor<'_>],
    opts: &HandshakeOptions,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<SessionResult, CoreError> {
    let mut net = BroadcastNet::new(actors.len(), opts.delivery);
    run_handshake_with_net(actors, opts, &mut net, rng)
}

/// [`run_handshake`] over a caller-provided medium (so tests can install
/// man-in-the-middle interceptors or inspect traffic mid-run).
///
/// # Errors
///
/// See [`run_handshake`].
pub fn run_handshake_with_net(
    actors: &[Actor<'_>],
    opts: &HandshakeOptions,
    net: &mut BroadcastNet<'_>,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<SessionResult, CoreError> {
    let m = actors.len();
    if m < 2 || net.slots() != m {
        return Err(CoreError::BadSession);
    }
    let group = session_group(actors);
    let mimic = mimic_params(actors);
    let mut costs = vec![SlotCosts::default(); m];
    let mut ex = Exchanger::new(net, opts.budget);

    // ---- Phase I: distributed group key agreement -----------------------
    let phase1 = match opts.dgka {
        DgkaChoice::BurmesterDesmedt => phase1_bd(group, m, &mut ex, &mut costs, rng)?,
        DgkaChoice::Gdh2 => phase1_gdh(group, m, &mut ex, &mut costs, rng)?,
    };
    let mut aborts: Vec<Option<AbortReason>> = phase1.iter().map(|(_, a)| *a).collect();

    // k'_i = k* ⊕ k_i. A slot that aborted in Phase I holds a random
    // `k*`, so its `k'` is uniform — exactly an outsider's distribution.
    let mut slots: Vec<SlotState<'_>> = Vec::with_capacity(m);
    for (actor, (p1, _)) in actors.iter().zip(phase1) {
        let k_i = match actor {
            Actor::Member(member) => member.group_key().clone(),
            Actor::Outsider => Key::random(rng),
        };
        let k_prime = p1.k_star.xor(&k_i);
        slots.push(SlotState {
            actor,
            sid: p1.sid,
            k_prime,
            contributions: p1.contributions,
            seen_tags: Vec::new(),
            delta_set: Vec::new(),
            own_t6: None,
        });
    }

    // ---- Phase II: MAC tags ----------------------------------------------
    let mut out_tags = Vec::with_capacity(m);
    let mut tag_len = 0;
    for (i, slot) in slots.iter().enumerate() {
        let tag = phase2_tag(&slot.k_prime, &slot.sid, &slot.contributions[i], i);
        note_send(&mut costs[i], &tag);
        tag_len = tag.len();
        out_tags.push(tag.to_vec());
    }
    // A tag of the wrong size was tampered in transit and worth a
    // retransmission; a right-sized tag that fails to verify is
    // indistinguishable from a non-member's and must NOT be retried.
    let views = ex.round("phase2-mac", &out_tags, &mut |_, _, p| p.len() == tag_len)?;
    for (i, slot) in slots.iter_mut().enumerate() {
        let seen: Vec<Vec<u8>> = views[i]
            .iter()
            .map(|v| v.clone().unwrap_or_default())
            .collect();
        let mut delta = Vec::new();
        #[allow(clippy::needless_range_loop)] // j is a slot id, not just an index
        for j in 0..m {
            if j == i {
                delta.push(j);
                continue;
            }
            let expected = phase2_tag(&slot.k_prime, &slot.sid, &slot.contributions[j], j);
            if shs_crypto::ct::eq(&expected, &seen[j]) {
                delta.push(j);
            }
        }
        slot.seen_tags = seen;
        slot.delta_set = delta;
    }

    // ---- Phase III (unless preliminary-only) ------------------------------
    let mut transcript = HandshakeTranscript::default();
    let mut verified: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut duplicates: Vec<Vec<usize>> = vec![Vec::new(); m];
    if opts.policy == TracePolicy::Full {
        let mut out_p3 = Vec::with_capacity(m);
        for (i, slot) in slots.iter_mut().enumerate() {
            // Aborted slots publish decoys: on the wire they look exactly
            // like a member whose handshake merely failed.
            let publish_real = aborts[i].is_none()
                && match slot.actor {
                    Actor::Member(_) => {
                        slot.delta_set.len() == m
                            || (opts.partial_success && slot.delta_set.len() >= 2)
                    }
                    Actor::Outsider => false,
                };
            let payload = meter(&mut costs[i], || {
                phase3_payload(slot, group, &mimic, publish_real, rng)
            })?;
            note_send(&mut costs[i], &payload);
            out_p3.push(payload);
        }
        // An undecodable (θ, δ) frame was tampered in transit: retry. A
        // decodable frame that fails to decrypt/verify is an ordinary
        // non-member signal and is not retried.
        let views = ex.round("phase3-full", &out_p3, &mut |_, _, p| decode_p3(p).is_ok())?;

        // Build the public transcript (slot order) from the broadcast.
        transcript.sid = slots[0].sid.clone();
        for payload in &out_p3 {
            let (theta, delta) = decode_p3(payload)?;
            transcript.entries.push(TranscriptEntry { theta, delta });
        }

        // Verification (aborted slots are decoy senders; they verify
        // nothing).
        for (i, slot) in slots.iter().enumerate() {
            let Actor::Member(member) = slot.actor else {
                continue;
            };
            if aborts[i].is_some() {
                continue;
            }
            let expected_t7 = if member.scheme().self_distinct() {
                meter(&mut costs[i], || common_t7(member, slot))
            } else {
                None
            };
            let mut t6_seen: Vec<(usize, Ubig)> = Vec::new();
            if let Some(t6) = &slot.own_t6 {
                t6_seen.push((i, t6.clone()));
            }
            for (j, payload) in views[i].iter().enumerate() {
                if j == i || !slot.delta_set.contains(&j) {
                    continue;
                }
                let Some(payload) = payload else {
                    continue;
                };
                let Ok((theta, delta_bytes)) = decode_p3(payload) else {
                    continue;
                };
                let Ok(sig_bytes) = aead::open(&slot.k_prime, &theta, &slot.sid) else {
                    continue;
                };
                let mut msg = delta_bytes.clone();
                msg.extend_from_slice(&slot.sid);
                let ok = meter(&mut costs[i], || {
                    verify_sig(member, &msg, &sig_bytes, expected_t7.as_ref())
                });
                if let Some(t6) = ok {
                    verified[i].push(j);
                    if let Some(t6) = t6 {
                        t6_seen.push((j, t6));
                    }
                }
            }
            // Self-distinction: flag every slot whose T6 collides.
            for (a_idx, (slot_a, t6_a)) in t6_seen.iter().enumerate() {
                for (slot_b, t6_b) in t6_seen.iter().skip(a_idx + 1) {
                    if t6_a == t6_b {
                        if !duplicates[i].contains(slot_a) {
                            duplicates[i].push(*slot_a);
                        }
                        if !duplicates[i].contains(slot_b) {
                            duplicates[i].push(*slot_b);
                        }
                    }
                }
            }
            duplicates[i].sort_unstable();
        }
    }

    // ---- Outcomes ----------------------------------------------------------
    let stats = SessionStats {
        exchanges: ex.exchanges,
        retries: ex.retries,
        budget_exhausted: ex.exhausted,
    };
    // A crash-stopped slot never finished the session regardless of what
    // the local simulation computed for it: mark it aborted.
    if let Some(plan) = net.fault_plan() {
        for crashed in plan.crashed_slots(m) {
            aborts[crashed] = Some(AbortReason::Crashed);
        }
    }
    let mut outcomes = Vec::with_capacity(m);
    for (i, slot) in slots.iter().enumerate() {
        let ok = aborts[i].is_none();
        let is_member = ok && matches!(slot.actor, Actor::Member(_));
        let delta = slot.delta_set.clone();
        let mut verified_i = verified[i].clone();
        if is_member {
            verified_i.push(i); // own signature trivially verified
        }
        verified_i.sort_unstable();
        let all_delta_verified = opts.policy == TracePolicy::PreliminaryOnly
            || delta.iter().all(|j| verified_i.contains(j));
        let clean = duplicates[i].is_empty();
        let accepted = is_member && delta.len() == m && all_delta_verified && clean;
        let partial_ok =
            is_member && opts.partial_success && delta.len() >= 2 && all_delta_verified && clean;
        let session_key = if accepted || partial_ok {
            Some(derive_session_key(&slot.k_prime, &slot.sid, &delta))
        } else {
            None
        };
        outcomes.push(Outcome {
            slot: i,
            accepted,
            same_group_slots: delta,
            verified_slots: verified_i,
            duplicate_slots: duplicates[i].clone(),
            session_key,
            abort: aborts[i],
        });
    }

    Ok(SessionResult {
        outcomes,
        transcript,
        traffic: net.traffic().clone(),
        costs,
        stats,
    })
}

// ---------------------------------------------------------------------------
// Phase I drivers
// ---------------------------------------------------------------------------

/// Burmester–Desmedt over the broadcast medium: two rounds, everyone
/// active in both. A slot's "contribution" is its framed `(z_i, X_i)`
/// pair.
///
/// Returns one `(state, abort)` pair per slot. A slot that cannot
/// complete (missing or invalid contributions after the retry budget)
/// gets decoy state — random `sid`/`k*`, so everything it derives later
/// is distributed like an outsider's — and keeps transmitting chaff of
/// the correct element size, preserving the wire shape.
fn phase1_bd(
    group: &'static SchnorrGroup,
    m: usize,
    ex: &mut Exchanger<'_, '_>,
    costs: &mut [SlotCosts],
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Vec<(Phase1Slot, Option<AbortReason>)>, CoreError> {
    let mut parties = Vec::with_capacity(m);
    let mut out_r1 = Vec::with_capacity(m);
    #[allow(clippy::needless_range_loop)] // i is the party's slot id
    for i in 0..m {
        let (party, r1) =
            meter(&mut costs[i], || bd::Party::start(group, m, i, rng)).map_err(CoreError::Dgka)?;
        let payload = encode_elem(group, i, &r1.z);
        note_send(&mut costs[i], &payload);
        out_r1.push(payload);
        parties.push(party);
    }
    let elem_len = out_r1[0].len();
    let views_r1 = ex.round("dgka-r1", &out_r1, &mut |_, from, p| {
        decode_elem(group, from, p).is_ok()
    })?;

    let mut aborts: Vec<Option<AbortReason>> = vec![None; m];
    let mut out_r2 = Vec::with_capacity(m);
    for (i, party) in parties.iter_mut().enumerate() {
        // A missing or undecodable view (the exchange validates payloads,
        // but decode defensively anyway) degrades to an abort, never a
        // panic.
        let msgs: Vec<bd::Round1> = views_r1[i]
            .iter()
            .enumerate()
            .filter_map(|(j, p)| {
                let (sender, z) = decode_elem(group, j, p.as_deref()?).ok()?;
                Some(bd::Round1 { sender, z })
            })
            .collect();
        let payload = if msgs.len() == m {
            match meter(&mut costs[i], || party.round2(&msgs)) {
                Ok(r2) => encode_elem(group, i, &r2.x),
                Err(_) => {
                    aborts[i] = Some(AbortReason::KeyAgreement);
                    chaff(elem_len, rng)
                }
            }
        } else {
            aborts[i] = Some(ex.abort_reason());
            chaff(elem_len, rng)
        };
        note_send(&mut costs[i], &payload);
        out_r2.push(payload);
    }
    let views_r2 = ex.round("dgka-r2", &out_r2, &mut |_, from, p| {
        decode_elem(group, from, p).is_ok()
    })?;

    let mut out = Vec::with_capacity(m);
    for (i, party) in parties.iter().enumerate() {
        // Contribution of sender j = framed r1 ‖ r2 as this slot saw
        // them (empty where nothing valid ever arrived).
        let mut contributions = vec![Vec::new(); m];
        for j in 0..m {
            if let (Some(r1), Some(r2)) = (&views_r1[i][j], &views_r2[i][j]) {
                let mut w = crate::wire::Writer::new();
                w.put_bytes(r1);
                w.put_bytes(r2);
                contributions[j] = w.into_bytes();
            }
        }
        if aborts[i].is_none() {
            let msgs: Vec<bd::Round2> = views_r2[i]
                .iter()
                .enumerate()
                .filter_map(|(j, p)| {
                    let (sender, x) = decode_elem(group, j, p.as_deref()?).ok()?;
                    Some(bd::Round2 { sender, x })
                })
                .collect();
            if msgs.len() == m {
                match meter(&mut costs[i], || party.finish(&msgs)) {
                    Ok(session) => {
                        out.push((
                            Phase1Slot {
                                sid: session.sid.to_vec(),
                                k_star: session.key,
                                contributions,
                            },
                            None,
                        ));
                        continue;
                    }
                    Err(_) => aborts[i] = Some(AbortReason::KeyAgreement),
                }
            } else {
                aborts[i] = Some(ex.abort_reason());
            }
        }
        out.push((decoy_phase1(contributions, rng), aborts[i]));
    }
    Ok(out)
}

/// Decoy Phase-I state for an aborted slot: random `sid` and `k*` of the
/// genuine sizes, so every quantity derived from them downstream (MAC
/// key, tags, Phase-III decoys) has an outsider's distribution.
fn decoy_phase1(contributions: Vec<Vec<u8>>, rng: &mut (impl RngCore + ?Sized)) -> Phase1Slot {
    let mut sid = vec![0u8; 32];
    rng.fill_bytes(&mut sid);
    Phase1Slot {
        sid,
        k_star: Key::random(rng),
        contributions,
    }
}

/// GDH.2 over the broadcast medium: an `m`-round chain in which round `t`
/// belongs to slot `t`. To keep the wire shape independent of who is
/// doing what, **every** non-active slot transmits cover traffic of
/// exactly the active message's length each round (a standard cover-
/// traffic discipline on anonymous broadcast media).
fn phase1_gdh(
    group: &'static SchnorrGroup,
    m: usize,
    ex: &mut Exchanger<'_, '_>,
    costs: &mut [SlotCosts],
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Vec<(Phase1Slot, Option<AbortReason>)>, CoreError> {
    let pw = codec::p_width(group);
    let mut parties = Vec::with_capacity(m);
    for i in 0..m {
        parties.push(gdh::Party::new(group, m, i, rng).map_err(CoreError::Dgka)?);
    }
    // Each slot's view of every sender's real contribution (chaff is cover
    // traffic and never enters the MACs).
    let mut views: Vec<Vec<Vec<u8>>> = vec![vec![Vec::new(); m]; m];
    let mut upflow: Option<gdh::Upflow> = None;
    let mut final_broadcasts: Vec<Option<gdh::Broadcast>> = vec![None; m];
    // Once the upflow chain breaks (a hop stayed undecodable after the
    // retry budget), every later active slot can only transmit chaff —
    // of the correct, protocol-determined length, so the wire shape
    // never reveals where (or whether) the chain broke.
    let mut chain_ok = true;

    for t in 0..m {
        // The active message's wire length is protocol-determined: an
        // upflow after active slot t carries t+2 group elements plus two
        // counters; the final broadcast carries m elements plus one.
        let expected_len = if t + 1 < m {
            8 + (t + 2) * pw
        } else {
            4 + m * pw
        };
        // Active slot t computes its message; everyone else sends chaff of
        // the same (publicly known) length.
        let active_payload = if !chain_ok {
            chaff(expected_len, rng)
        } else if t == 0 {
            match meter(&mut costs[0], || parties[0].initiate()) {
                Ok(up) => {
                    let payload = encode_upflow(group, &up);
                    upflow = Some(up);
                    payload
                }
                Err(_) => {
                    chain_ok = false;
                    chaff(expected_len, rng)
                }
            }
        } else {
            match upflow.take() {
                Some(prev) => match meter(&mut costs[t], || parties[t].advance(&prev)) {
                    Ok(gdh::Step::Upflow(up)) => {
                        let payload = encode_upflow(group, &up);
                        upflow = Some(up);
                        payload
                    }
                    Ok(gdh::Step::Broadcast(b)) => encode_gdh_broadcast(group, &b),
                    Err(_) => {
                        chain_ok = false;
                        chaff(expected_len, rng)
                    }
                },
                None => {
                    chain_ok = false;
                    chaff(expected_len, rng)
                }
            }
        };
        let mut round_out = Vec::with_capacity(m);
        for (i, cost) in costs.iter_mut().enumerate().take(m) {
            let payload = if i == t {
                active_payload.clone()
            } else {
                chaff(expected_len, rng)
            };
            note_send(cost, &payload);
            round_out.push(payload);
        }
        // Only slot t's message is protocol-critical this round: the
        // successor must decode the upflow, everyone must decode the
        // final broadcast. Chaff from the other slots is valid as-is.
        let label = format!("dgka-gdh-{t}");
        let broken = !chain_ok;
        let views_t = ex.round(&label, &round_out, &mut |to, from, p| {
            if from != t || broken {
                return true;
            }
            if t + 1 < m {
                to != t + 1 || decode_upflow(group, p).is_ok()
            } else {
                decode_gdh_broadcast(group, p).is_ok()
            }
        })?;
        // Every slot records slot t's real message as that sender's
        // contribution (from its own, possibly tampered, view).
        for (i, row) in views_t.iter().enumerate() {
            if let Some(p) = &row[t] {
                views[i][t] = p.clone();
            }
        }
        if t + 1 < m {
            // The successor re-decodes the upflow from ITS view so MITM
            // tampering on that link is honored.
            if chain_ok {
                match views_t[t + 1][t].as_ref().map(|p| decode_upflow(group, p)) {
                    Some(Ok(up)) => upflow = Some(up),
                    _ => {
                        upflow = None;
                        chain_ok = false;
                    }
                }
            }
        } else if chain_ok {
            // Final round: every slot decodes the broadcast from its own
            // view (slots whose copy never arrived will abort below).
            for (i, row) in views_t.iter().enumerate() {
                if let Some(Ok(b)) = row[t].as_ref().map(|p| decode_gdh_broadcast(group, p)) {
                    final_broadcasts[i] = Some(b);
                }
            }
        }
    }

    let mut out = Vec::with_capacity(m);
    for (i, party) in parties.iter().enumerate() {
        let contributions = std::mem::take(&mut views[i]);
        if let Some(broadcast) = final_broadcasts[i].take() {
            if let Ok(session) = meter(&mut costs[i], || party.finish(&broadcast)) {
                out.push((
                    Phase1Slot {
                        sid: session.sid.to_vec(),
                        k_star: session.key,
                        contributions,
                    },
                    None,
                ));
                continue;
            }
        }
        out.push((decoy_phase1(contributions, rng), Some(ex.abort_reason())));
    }
    Ok(out)
}

fn session_group(actors: &[Actor<'_>]) -> &'static SchnorrGroup {
    for a in actors {
        if let Actor::Member(member) = a {
            return member.tracing_group;
        }
    }
    SchnorrGroup::system_wide(SchnorrPreset::Test)
}

fn mimic_params(actors: &[Actor<'_>]) -> SlotParams {
    for a in actors {
        if let Actor::Member(member) = a {
            return SlotParams {
                scheme: member.scheme(),
                params: *member.cred.params(),
            };
        }
    }
    SlotParams {
        scheme: SchemeKind::Scheme1,
        params: GsigParams::preset(GsigPreset::Test),
    }
}

fn encode_elem(group: &SchnorrGroup, sender: usize, v: &Ubig) -> Vec<u8> {
    let mut w = crate::wire::Writer::new();
    w.put_u32(sender as u32);
    w.put_ubig_fixed(v, codec::p_width(group));
    w.into_bytes()
}

fn decode_elem(
    group: &SchnorrGroup,
    from: usize,
    bytes: &[u8],
) -> Result<(usize, Ubig), CoreError> {
    let mut r = crate::wire::Reader::new(bytes);
    let sender = r.take_u32()? as usize;
    let v = r.take_ubig_fixed(codec::p_width(group))?;
    r.finish()?;
    if sender != from {
        return Err(CoreError::BadSession);
    }
    Ok((sender, v))
}

fn encode_upflow(group: &SchnorrGroup, up: &gdh::Upflow) -> Vec<u8> {
    let pw = codec::p_width(group);
    let mut w = crate::wire::Writer::new();
    w.put_u32(up.contributors as u32);
    w.put_u32(up.partials.len() as u32);
    for p in &up.partials {
        w.put_ubig_fixed(p, pw);
    }
    w.put_ubig_fixed(&up.cumulative, pw);
    w.into_bytes()
}

fn decode_upflow(group: &SchnorrGroup, bytes: &[u8]) -> Result<gdh::Upflow, CoreError> {
    let pw = codec::p_width(group);
    let mut r = crate::wire::Reader::new(bytes);
    let contributors = r.take_u32()? as usize;
    let count = r.take_u32()? as usize;
    if count > 4096 {
        return Err(CoreError::Wire(crate::wire::WireError::BadLength));
    }
    let mut partials = Vec::with_capacity(count);
    for _ in 0..count {
        partials.push(r.take_ubig_fixed(pw)?);
    }
    let cumulative = r.take_ubig_fixed(pw)?;
    r.finish()?;
    Ok(gdh::Upflow {
        contributors,
        partials,
        cumulative,
    })
}

fn encode_gdh_broadcast(group: &SchnorrGroup, b: &gdh::Broadcast) -> Vec<u8> {
    let pw = codec::p_width(group);
    let mut w = crate::wire::Writer::new();
    w.put_u32(b.values.len() as u32);
    for v in &b.values {
        w.put_ubig_fixed(v, pw);
    }
    w.into_bytes()
}

fn decode_gdh_broadcast(group: &SchnorrGroup, bytes: &[u8]) -> Result<gdh::Broadcast, CoreError> {
    let pw = codec::p_width(group);
    let mut r = crate::wire::Reader::new(bytes);
    let count = r.take_u32()? as usize;
    if count > 4096 {
        return Err(CoreError::Wire(crate::wire::WireError::BadLength));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.take_ubig_fixed(pw)?);
    }
    r.finish()?;
    Ok(gdh::Broadcast { values })
}

/// `MAC(k'_i, sid ‖ s_i ‖ i)` where `s_i` is the party's Phase-I
/// contribution.
fn phase2_tag(k_prime: &Key, sid: &[u8], contribution: &[u8], slot: usize) -> Vec<u8> {
    hmac::HmacSha256::new(k_prime.as_bytes())
        .chain(b"gcd-phase2")
        .chain(sid)
        .chain(&(contribution.len() as u64).to_be_bytes())
        .chain(contribution)
        .chain(&(slot as u64).to_be_bytes())
        .finalize()
        .to_vec()
}

/// Self-distinction basis: the concatenation of everything sent in Phases
/// I and II, as this slot saw it (§8.2: "the concatenation of all messages
/// sent by the handshake participants").
fn sd_basis(slot: &SlotState<'_>) -> Vec<u8> {
    let mut basis = b"gcd-sd-basis".to_vec();
    basis.extend_from_slice(&slot.sid);
    for part in slot.contributions.iter().chain(&slot.seen_tags) {
        basis.extend_from_slice(&(part.len() as u64).to_be_bytes());
        basis.extend_from_slice(part);
    }
    basis
}

/// The self-distinction anchor `T7`; `None` under ACJT, which has no
/// self-distinction tag (callers gate on `scheme().self_distinct()`).
fn common_t7(member: &Member, slot: &SlotState<'_>) -> Option<Ubig> {
    match &member.cred {
        Credential::Ky { pk, .. } => Some(pk.common_t7(&sd_basis(slot))),
        Credential::Acjt { .. } => None,
    }
}

fn phase3_payload(
    slot: &mut SlotState<'_>,
    group: &'static SchnorrGroup,
    mimic: &SlotParams,
    publish_real: bool,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Vec<u8>, CoreError> {
    // `publish_real` is only ever set for members (outsiders have nothing
    // to publish); an outsider slot falls through to the decoy arm rather
    // than panicking.
    let (theta, delta_bytes) = if let (true, Actor::Member(member)) = (publish_real, slot.actor) {
        let delta = cs::encrypt(group, &member.tracing_pk, slot.k_prime.as_bytes(), rng);
        let delta_bytes = codec::encode_delta(group, &delta);
        let mut msg = delta_bytes.clone();
        msg.extend_from_slice(&slot.sid);
        let sig_bytes = match &member.cred {
            Credential::Ky { pk, key } => {
                let basis;
                let sign_basis = if member.scheme().self_distinct() {
                    basis = sd_basis(slot);
                    ky::SignBasis::Common(&basis)
                } else {
                    ky::SignBasis::Random
                };
                let sig = ky::sign(pk, key, &msg, sign_basis, rng);
                slot.own_t6 = Some(sig.tags.t6.clone());
                codec::encode_ky_sig(&pk.params, &sig)
            }
            Credential::Acjt { pk, key } => {
                let sig = acjt::sign(pk, key, &msg, rng);
                codec::encode_acjt_sig(&pk.params, &sig)
            }
        };
        let theta = aead::seal(&slot.k_prime, &sig_bytes, &slot.sid, rng);
        (theta, delta_bytes)
    } else {
        // CASE 2: decoys drawn from the same ciphertext spaces (§7).
        let (scheme, params) = match slot.actor {
            Actor::Member(member) => (member.scheme(), *member.cred.params()),
            Actor::Outsider => (mimic.scheme, mimic.params),
        };
        let sig_len = match scheme {
            SchemeKind::Scheme1 | SchemeKind::Scheme2SelfDistinct => codec::ky_sig_len(&params),
            SchemeKind::Scheme1Classic => codec::acjt_sig_len(&params),
        };
        let theta = aead::random_ciphertext(sig_len, rng);
        let delta = cs::random_ciphertext(group, Key::LEN, rng);
        (theta, codec::encode_delta(group, &delta))
    };
    let mut w = crate::wire::Writer::new();
    w.put_bytes(&theta);
    w.put_bytes(&delta_bytes);
    Ok(w.into_bytes())
}

fn decode_p3(bytes: &[u8]) -> Result<(Vec<u8>, Vec<u8>), CoreError> {
    let mut r = crate::wire::Reader::new(bytes);
    let theta = r.take_bytes()?;
    let delta = r.take_bytes()?;
    r.finish()?;
    Ok((theta, delta))
}

/// Verifies a co-member's Phase-III signature; returns its `T6` (KY) on
/// success, `None`-payload for ACJT.
fn verify_sig(
    member: &Member,
    msg: &[u8],
    sig_bytes: &[u8],
    expected_t7: Option<&Ubig>,
) -> Option<Option<Ubig>> {
    match &member.cred {
        Credential::Ky { pk, .. } => {
            let sig = codec::decode_ky_sig(&pk.params, sig_bytes).ok()?;
            ky::verify_with_tokens(pk, msg, &sig, expected_t7, &member.crl.tokens).ok()?;
            Some(Some(sig.tags.t6))
        }
        Credential::Acjt { pk, .. } => {
            let sig = codec::decode_acjt_sig(&pk.params, sig_bytes).ok()?;
            acjt::verify(pk, msg, &sig).ok()?;
            Some(None)
        }
    }
}

fn derive_session_key(k_prime: &Key, sid: &[u8], delta: &[usize]) -> Key {
    let mut ikm = k_prime.as_bytes().to_vec();
    ikm.extend_from_slice(sid);
    for &s in delta {
        ikm.extend_from_slice(&(s as u64).to_be_bytes());
    }
    Key::derive(&ikm, "gcd-session-key")
}
