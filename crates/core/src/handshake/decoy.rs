//! Every decoy and chaff construction in one place.
//!
//! Abort indistinguishability rests on these shapes: an aborted or
//! outsider slot must put bytes on the wire that are distributed
//! exactly like a real participant's, at every phase. Keeping the
//! constructions together makes the invariant auditable — if a new
//! protocol message is added, its decoy belongs here.

use crate::handshake::{Actor, SlotParams};
use crate::substrate::dgka::Phase1Slot;
use crate::{codec, factory};
use rand::RngCore;
use shs_crypto::{aead, Key};
use shs_groups::cs;
use shs_groups::schnorr::SchnorrGroup;

/// Uniform random bytes of a protocol-determined length: what an aborted
/// slot transmits so the wire shape never reveals the abort.
pub(crate) fn chaff(len: usize, rng: &mut (impl RngCore + ?Sized)) -> Vec<u8> {
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    bytes
}

/// Decoy Phase-I state for an aborted slot: random `sid` and `k*` of the
/// genuine sizes, so every quantity derived from them downstream (MAC
/// key, tags, Phase-III decoys) has an outsider's distribution.
pub(crate) fn decoy_phase1(
    contributions: Vec<Vec<u8>>,
    rng: &mut (impl RngCore + ?Sized),
) -> Phase1Slot {
    let mut sid = vec![0u8; 32];
    rng.fill_bytes(&mut sid);
    Phase1Slot {
        sid,
        k_star: Key::random(rng),
        contributions,
    }
}

/// Decoy Phase-III `(θ, δ)` drawn uniformly from the same ciphertext
/// spaces as a real frame (§7): `θ` mimics an AEAD ciphertext of a
/// signature of the slot's effective scheme, `δ` an IND-CCA2 ciphertext
/// of a key. Outsiders mimic the session's dominant configuration.
pub(crate) fn phase3_decoy(
    actor: &Actor<'_>,
    group: &'static SchnorrGroup,
    mimic: &SlotParams,
    rng: &mut dyn RngCore,
) -> (Vec<u8>, Vec<u8>) {
    let (scheme, params) = match actor {
        Actor::Member(member) => (member.scheme(), *member.credential().params()),
        Actor::Outsider => (mimic.scheme, mimic.params),
    };
    let sig_len = factory::sig_len(scheme, &params);
    let theta = aead::random_ciphertext(sig_len, rng);
    let delta = cs::random_ciphertext(group, Key::LEN, rng);
    (theta, codec::encode_delta(group, &delta))
}
