//! The budgeted exchange engine and the generic Phase-I scheduler.
//!
//! [`Exchanger`] owns the session's retry budget: it performs logical
//! broadcast rounds, retransmitting (all slots together, which keeps the
//! per-slot wire shape uniform) while some receiver still lacks a valid
//! copy of some sender's message. [`run_phase1`] drives any set of
//! [`DgkaSlot`] state machines through their rounds on top of it,
//! metering every slot's `emit`/`absorb`/`finish` work uniformly — the
//! protocol-specific logic lives entirely in the slots.

use crate::config::SessionBudget;
use crate::handshake::{AbortReason, SlotCosts};
use crate::substrate::dgka::{DgkaSlot, Phase1Slot};
use crate::CoreError;
use rand::RngCore;
use shs_bigint::counters;
use shs_net::Medium;

/// Meters `f`'s modular-exponentiation count into `costs`.
pub(crate) fn meter<T>(costs: &mut SlotCosts, f: impl FnOnce() -> T) -> T {
    let (c, out) = counters::measure(f);
    costs.modexp += c.modexp;
    out
}

/// Accounts one broadcast send of `payload`.
pub(crate) fn note_send(costs: &mut SlotCosts, payload: &[u8]) {
    costs.messages_sent += 1;
    costs.bytes_sent += payload.len() as u64;
}

/// The budgeted exchange engine: performs one logical round, retrying
/// (all slots retransmitting together, which keeps the per-slot wire
/// shape uniform) while some receiver still lacks a *valid* copy of some
/// sender's message and budget remains.
pub(crate) struct Exchanger<'n> {
    pub(crate) net: &'n mut dyn Medium,
    budget: SessionBudget,
    pub(crate) exchanges: u32,
    pub(crate) retries: u32,
    pub(crate) exhausted: bool,
}

impl<'n> Exchanger<'n> {
    pub(crate) fn new(net: &'n mut dyn Medium, budget: SessionBudget) -> Exchanger<'n> {
        Exchanger {
            net,
            budget,
            exchanges: 0,
            retries: 0,
            exhausted: false,
        }
    }

    /// Broadcasts `outgoing` under `label`, returning each receiver's
    /// best copy per sender (`None` where nothing valid ever arrived).
    /// `valid` decides whether a payload counts as received — the first
    /// valid copy wins, which also discards injected duplicates.
    pub(crate) fn round(
        &mut self,
        label: &str,
        outgoing: &[Vec<u8>],
        valid: &mut dyn FnMut(usize, usize, &[u8]) -> bool,
    ) -> Result<Vec<Vec<Option<Vec<u8>>>>, CoreError> {
        let m = outgoing.len();
        let mut views: Vec<Vec<Option<Vec<u8>>>> = vec![vec![None; m]; m];
        let mut attempt = 0u32;
        loop {
            self.exchanges += 1;
            if attempt > 0 {
                self.retries += 1;
            }
            let inboxes = self.net.exchange(label, outgoing.to_vec())?;
            for (to, inbox) in inboxes.iter().enumerate() {
                for rcv in inbox {
                    if rcv.from_slot < m
                        && views[to][rcv.from_slot].is_none()
                        && valid(to, rcv.from_slot, &rcv.payload)
                    {
                        views[to][rcv.from_slot] = Some(rcv.payload.clone());
                    }
                }
            }
            let complete = views.iter().all(|row| row.iter().all(Option::is_some));
            if complete || attempt >= self.budget.retries_per_round {
                break;
            }
            if self.exchanges >= self.budget.max_exchanges {
                self.exhausted = true;
                break;
            }
            attempt += 1;
        }
        Ok(views)
    }

    /// The abort reason matching how the last incomplete round ended.
    pub(crate) fn abort_reason(&self) -> AbortReason {
        if self.exhausted {
            AbortReason::BudgetExhausted
        } else {
            AbortReason::KeyAgreement
        }
    }
}

/// Drives a set of [`DgkaSlot`] state machines through their broadcast
/// rounds: each round, every slot emits (metered, send-accounted), one
/// budgeted exchange runs with the slots' own `validate` as the
/// acceptance test, and every slot absorbs its view (metered; an
/// incomplete view carries the engine's abort reason). Finally every
/// slot derives its Phase-I output (metered).
///
/// # Errors
///
/// Network errors from the underlying exchange are propagated.
pub(crate) fn run_phase1(
    slots: &mut [Box<dyn DgkaSlot>],
    ex: &mut Exchanger<'_>,
    costs: &mut [SlotCosts],
    rng: &mut dyn RngCore,
) -> Result<Vec<(Phase1Slot, Option<AbortReason>)>, CoreError> {
    let m = slots.len();
    let rounds = slots.first().map_or(0, |s| s.rounds());
    for t in 0..rounds {
        let mut outgoing = Vec::with_capacity(m);
        for (slot, cost) in slots.iter_mut().zip(costs.iter_mut()) {
            let payload = meter(cost, || slot.emit(t, rng));
            note_send(cost, &payload);
            outgoing.push(payload);
        }
        let label = slots.first().map_or(String::new(), |s| s.round_label(t));
        let views = ex.round(&label, &outgoing, &mut |to, from, p| {
            slots.get(to).is_some_and(|s| s.validate(t, from, p))
        })?;
        for (i, (slot, cost)) in slots.iter_mut().zip(costs.iter_mut()).enumerate() {
            let incomplete = views
                .get(i)
                .is_some_and(|row| row.iter().any(Option::is_none))
                .then(|| ex.abort_reason());
            if let Some(view) = views.get(i) {
                meter(cost, || slot.absorb(t, view, incomplete, rng));
            }
        }
    }
    let mut out = Vec::with_capacity(m);
    for (slot, cost) in slots.iter_mut().zip(costs.iter_mut()) {
        out.push(meter(cost, || slot.finish(rng)));
    }
    Ok(out)
}
