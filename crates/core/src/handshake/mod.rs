//! `GCD.Handshake` — the three-phase multi-party secret handshake of §7,
//! executed over the anonymous broadcast medium of `shs-net`.
//!
//! * **Phase I (Preparation)** — distributed group key agreement
//!   (Burmester–Desmedt by default; GDH.2 and the Katz–Yung
//!   authenticated variant selectable) yields `k*`; each party blinds it
//!   with its CGKD group key: `k'_i = k* ⊕ k_i`.
//! * **Phase II (Preliminary handshake)** — each party publishes
//!   `MAC(k'_i, s_i ‖ i)`; a tag verifies under `k'_j` iff the two parties
//!   hold the same group key. Each party thereby learns its co-member set
//!   `Δ` (the partially-successful-handshake extension).
//! * **Phase III (Full handshake)** — parties in a big-enough `Δ` publish
//!   `(θ_i, δ_i)` where `δ_i = ENC(pk_T, k'_i)` and
//!   `θ_i = SENC(k'_i, GSIG.Sign(δ_i ‖ sid))`; everyone else publishes
//!   decoys drawn uniformly from the same ciphertext spaces, so failures
//!   are indistinguishable from successes on the wire. Scheme 2
//!   additionally forces the common `T7 = H→QR(transcript)` and flags
//!   duplicate `T6` values (self-distinction).
//!
//! # Module structure
//!
//! This module is the orchestrator: it owns the public session types and
//! the phase sequencing. The moving parts live in focused submodules —
//! `engine` (the budgeted exchange engine and the generic Phase-I
//! scheduler driving [`crate::substrate::DgkaSlot`] state machines),
//! `phase1`/`phase2`/`phase3` (one file per protocol phase), and
//! `decoy` (every decoy/chaff construction in one place, since abort
//! indistinguishability depends on their shapes).
//!
//! # Hardened runtime
//!
//! The driver tolerates a lossy, malicious medium (see `shs-net`'s
//! fault injection): every broadcast exchange is retried within the
//! session's [`crate::config::SessionBudget`] when expected messages are
//! missing or undecodable, and a slot that still cannot proceed
//! **aborts structurally** — [`Outcome::abort`] carries an
//! [`AbortReason`] instead of the session hanging or returning a global
//! error. Crucially for unobservability, an aborting slot keeps
//! participating as a *decoy sender*: it transmits chaff and decoy
//! payloads of exactly the shapes an ordinary failed handshake would
//! produce, so an eavesdropper cannot tell a fault-induced abort from a
//! run-of-the-mill membership mismatch.

pub(crate) mod decoy;
pub(crate) mod engine;
pub mod party;
mod phase1;
mod phase2;
mod phase3;

use crate::config::{HandshakeOptions, SchemeKind, TracePolicy};
use crate::member::Member;
use crate::transcript::HandshakeTranscript;
use crate::CoreError;
use rand::RngCore;
use shs_bigint::Ubig;
use shs_crypto::Key;
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
use shs_gsig::params::{GsigParams, GsigPreset};
use shs_net::observe::TrafficLog;
use shs_net::sync::BroadcastNet;
use shs_net::Medium;

/// A participant slot in a handshake session.
pub enum Actor<'a> {
    /// A group member with real credentials.
    Member(&'a Member),
    /// An adversary without credentials for any relevant group: it runs
    /// the public DGKA protocol honestly but holds a random "group key"
    /// and publishes decoys in Phase III. Passing several `Outsider`
    /// slots models an adversary playing multiple roles
    /// (the "A plays the roles of multiple participants" clauses of
    /// Fig. 2).
    Outsider,
}

impl std::fmt::Debug for Actor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Actor::Member(m) => write!(f, "Actor::Member({})", m.id()),
            Actor::Outsider => write!(f, "Actor::Outsider"),
        }
    }
}

/// Why a slot abandoned a session instead of completing it.
///
/// Aborting is *quiet*: the slot keeps transmitting decoy traffic of the
/// ordinary failed-handshake shape, so the reason is visible only in its
/// local [`Outcome`], never on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Phase I key agreement never completed: contributions stayed
    /// missing or undecodable after the retry budget.
    KeyAgreement,
    /// The session's exchange budget ran out while messages were still
    /// missing.
    BudgetExhausted,
    /// The slot itself crash-stopped (fault injection): the medium
    /// suppressed its sends mid-session.
    Crashed,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::KeyAgreement => write!(f, "phase I key agreement incomplete"),
            AbortReason::BudgetExhausted => write!(f, "session exchange budget exhausted"),
            AbortReason::Crashed => write!(f, "slot crash-stopped"),
        }
    }
}

/// Per-slot result of a handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// This party's slot.
    pub slot: usize,
    /// Did the *full* handshake succeed (all parties same group, all
    /// signatures valid, no duplicate participants)? This is the paper's
    /// binary `Handshake(∆) = 1`.
    pub accepted: bool,
    /// The co-member set `Δ` this party observed (slots whose Phase-II
    /// tags verified, including itself).
    pub same_group_slots: Vec<usize>,
    /// Slots of `Δ` whose Phase-III group signature verified.
    pub verified_slots: Vec<usize>,
    /// Slots flagged by self-distinction (duplicate `T6`), scheme 2 only.
    pub duplicate_slots: Vec<usize>,
    /// Session key established with the accepted partners (present when
    /// this party completed a full or partial handshake).
    pub session_key: Option<Key>,
    /// Why this slot abandoned the session, if it did. `None` for every
    /// slot that ran the protocol to completion — including ordinary
    /// failed handshakes (wrong group, bad signatures), which are
    /// *completions*, not aborts.
    pub abort: Option<AbortReason>,
}

impl Outcome {
    /// Did this party complete at least a *partial* handshake
    /// (`|Δ| ≥ 2` with all of `Δ` verified)?
    pub fn partial_accepted(&self) -> bool {
        self.session_key.is_some()
    }
}

/// Per-slot cost accounting for the complexity experiments (E1/E2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotCosts {
    /// Modular exponentiations performed by this slot.
    pub modexp: u64,
    /// Messages this slot broadcast.
    pub messages_sent: u64,
    /// Bytes this slot broadcast.
    pub bytes_sent: u64,
}

/// Session-level accounting of the hardened runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Broadcast exchanges performed (base rounds + retransmissions).
    pub exchanges: u32,
    /// Retransmission exchanges among those.
    pub retries: u32,
    /// Did the session hit
    /// [`crate::config::SessionBudget::max_exchanges`] with messages
    /// still missing?
    pub budget_exhausted: bool,
    /// Frames the medium shed because a receiver stopped draining
    /// (previously absorbed silently by the transport; surfaced here so
    /// operators can see backpressure loss per session).
    pub backpressure_dropped: u64,
    /// Successful transport re-attachments after lost connections
    /// (always zero on in-process media).
    pub reconnects: u64,
    /// Read/write deadlines that expired on live transport connections.
    pub deadline_timeouts: u64,
}

/// Everything a handshake session produced.
#[derive(Debug)]
pub struct SessionResult {
    /// Per-slot outcomes.
    pub outcomes: Vec<Outcome>,
    /// The `{(θ_i, δ_i)}` transcript for `GCD.TraceUser` (empty under
    /// [`TracePolicy::PreliminaryOnly`]).
    pub transcript: HandshakeTranscript,
    /// The eavesdropper's traffic log.
    pub traffic: TrafficLog,
    /// Per-slot cost accounting.
    pub costs: Vec<SlotCosts>,
    /// Exchange/retry accounting (the cost of surviving a lossy medium).
    pub stats: SessionStats,
}

/// Per-slot session state threaded through Phases II and III.
pub(crate) struct SlotState<'a> {
    pub(crate) actor: &'a Actor<'a>,
    pub(crate) sid: Vec<u8>,
    pub(crate) k_prime: Key,
    pub(crate) contributions: Vec<Vec<u8>>,
    /// Phase-II payloads as received, per sender.
    pub(crate) seen_tags: Vec<Vec<u8>>,
    pub(crate) delta_set: Vec<usize>,
    /// Own Phase-III signature's T6 (scheme 2).
    pub(crate) own_t6: Option<Ubig>,
}

/// Effective parameter view for one slot (outsiders mimic the session's
/// dominant configuration).
#[derive(Clone, Copy)]
pub(crate) struct SlotParams {
    pub(crate) scheme: SchemeKind,
    pub(crate) params: GsigParams,
}

/// Runs a handshake session among `actors` on a fresh anonymous broadcast
/// medium configured per `opts`.
///
/// # Errors
///
/// [`CoreError::BadSession`] for fewer than two actors; network and codec
/// errors are propagated.
pub fn run_handshake(
    actors: &[Actor<'_>],
    opts: &HandshakeOptions,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<SessionResult, CoreError> {
    let mut net = BroadcastNet::new(actors.len(), opts.delivery);
    run_handshake_with_net(actors, opts, &mut net, rng)
}

/// [`run_handshake`] over a caller-provided medium (so tests can install
/// man-in-the-middle interceptors or inspect traffic mid-run).
///
/// # Errors
///
/// See [`run_handshake`].
pub fn run_handshake_with_net(
    actors: &[Actor<'_>],
    opts: &HandshakeOptions,
    net: &mut dyn Medium,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<SessionResult, CoreError> {
    let mut rng = rng;
    let rng: &mut dyn RngCore = &mut rng;
    let m = actors.len();
    if m < 2 || net.slots() != m {
        return Err(CoreError::BadSession);
    }
    let group = session_group(actors);
    let mimic = mimic_params(actors);
    let mut costs = vec![SlotCosts::default(); m];
    let mut ex = engine::Exchanger::new(net, opts.budget);

    // ---- Phase I: distributed group key agreement -----------------------
    let phase1 = phase1::run(opts.dgka, group, m, &mut ex, &mut costs, rng)?;
    let mut aborts: Vec<Option<AbortReason>> = phase1.iter().map(|(_, a)| *a).collect();
    let mut slots = phase1::bind_group_keys(actors, phase1, rng);

    // ---- Phase II: MAC tags ---------------------------------------------
    phase2::run(&mut slots, &mut ex, &mut costs)?;

    // ---- Phase III (unless preliminary-only) ----------------------------
    let mut transcript = HandshakeTranscript::default();
    let mut verified: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut duplicates: Vec<Vec<usize>> = vec![Vec::new(); m];
    if opts.policy == TracePolicy::Full {
        (transcript, verified, duplicates) = phase3::run(
            &mut slots, &aborts, group, &mimic, opts, &mut ex, &mut costs, rng,
        )?;
    }

    // ---- Outcomes -------------------------------------------------------
    // A crash-stopped slot never finished the session regardless of what
    // the local simulation computed for it: mark it aborted. The medium
    // reports both injected crash-stops and real dead connections.
    for crashed in ex.net.crashed_slots() {
        if crashed < m {
            aborts[crashed] = Some(AbortReason::Crashed);
        }
    }
    let traffic = ex.net.traffic_snapshot();
    let transport = ex.net.transport_counters();
    let stats = SessionStats {
        exchanges: ex.exchanges,
        retries: ex.retries,
        budget_exhausted: ex.exhausted,
        backpressure_dropped: traffic.faults().backpressure_dropped,
        reconnects: transport.reconnects,
        deadline_timeouts: transport.deadline_timeouts,
    };
    let mut outcomes = Vec::with_capacity(m);
    for (i, slot) in slots.iter().enumerate() {
        outcomes.push(resolve_outcome(
            i,
            slot,
            aborts[i],
            &verified[i],
            &duplicates[i],
            opts,
            m,
        ));
    }

    Ok(SessionResult {
        outcomes,
        transcript,
        traffic,
        costs,
        stats,
    })
}

/// Folds one slot's phase results into its [`Outcome`] — the acceptance
/// logic of `Handshake(∆)` plus the partial-success extension, shared by
/// the lockstep driver above and the per-party driver
/// ([`crate::handshake::party`]), which must agree byte-for-byte on what
/// "accepted" means.
pub(crate) fn resolve_outcome(
    i: usize,
    slot: &SlotState<'_>,
    abort: Option<AbortReason>,
    verified_base: &[usize],
    duplicates_i: &[usize],
    opts: &HandshakeOptions,
    m: usize,
) -> Outcome {
    let ok = abort.is_none();
    let is_member = ok && matches!(slot.actor, Actor::Member(_));
    let delta = slot.delta_set.clone();
    let mut verified_i = verified_base.to_vec();
    if is_member {
        verified_i.push(i); // own signature trivially verified
    }
    verified_i.sort_unstable();
    let all_delta_verified =
        opts.policy == TracePolicy::PreliminaryOnly || delta.iter().all(|j| verified_i.contains(j));
    let clean = duplicates_i.is_empty();
    let accepted = is_member && delta.len() == m && all_delta_verified && clean;
    let partial_ok =
        is_member && opts.partial_success && delta.len() >= 2 && all_delta_verified && clean;
    let session_key = if accepted || partial_ok {
        Some(phase3::derive_session_key(&slot.k_prime, &slot.sid, &delta))
    } else {
        None
    };
    Outcome {
        slot: i,
        accepted,
        same_group_slots: delta,
        verified_slots: verified_i,
        duplicate_slots: duplicates_i.to_vec(),
        session_key,
        abort,
    }
}

fn session_group(actors: &[Actor<'_>]) -> &'static SchnorrGroup {
    for a in actors {
        if let Actor::Member(member) = a {
            return member.tracing_group;
        }
    }
    SchnorrGroup::system_wide(SchnorrPreset::Test)
}

fn mimic_params(actors: &[Actor<'_>]) -> SlotParams {
    for a in actors {
        if let Actor::Member(member) = a {
            return SlotParams {
                scheme: member.scheme(),
                params: *member.credential().params(),
            };
        }
    }
    SlotParams {
        scheme: SchemeKind::Scheme1,
        params: GsigParams::preset(GsigPreset::Test),
    }
}
