//! The per-party handshake driver: one slot of the GCD handshake run
//! from its own thread or OS process over a [`PartyLink`].
//!
//! [`super::run_handshake_with_net`] is the *lockstep* driver — it owns
//! every slot and performs whole exchanges on a [`shs_net::Medium`].
//! This module is its distributed counterpart: [`run_party`] drives
//! exactly one slot, broadcasting through a [`PartyLink`] (the threaded
//! hub in tests, a framed TCP connection to a relay in the `shs-node`
//! daemon) and collecting its co-parties' payloads with a deadline.
//!
//! The phase logic is the *same code* the lockstep driver uses —
//! `phase2::phase2_tag`, `phase3::phase3_payload`,
//! `phase3::verify_slot`, `resolve_outcome` — so the
//! two drivers cannot drift apart on what a handshake accepts. Only the
//! exchange loop differs: a `PartyExchanger` retries a round (within
//! the same [`crate::config::SessionBudget`]) while this party's *own*
//! view is missing valid payloads, re-broadcasting its unchanged
//! payload each attempt — which, over the TCP relay's cached
//! retransmission, keeps per-slot wire shape uniform exactly like the
//! lockstep engine's all-slots-retransmit rule.
//!
//! Quiet-abort cover is preserved: an aborting party keeps emitting
//! chaff and decoys of ordinary-failure shape through every remaining
//! round (the `DgkaSlot` chaff arms and the Phase-III decoy arm), so on
//! the wire an abort is indistinguishable from a failed handshake.

use crate::config::{HandshakeOptions, SessionBudget, TracePolicy};
use crate::handshake::engine::{meter, note_send};
use crate::handshake::{
    phase2, phase3, resolve_outcome, AbortReason, Actor, Outcome, SessionStats, SlotCosts,
    SlotState,
};
use crate::CoreError;
use rand::RngCore;
use shs_crypto::Key;
use shs_net::PartyLink;
use std::time::Duration;

/// Everything one party's handshake run produced.
#[derive(Debug)]
pub struct PartyOutcome {
    /// This party's outcome (same acceptance logic as the lockstep
    /// driver, including partial success and quiet aborts).
    pub outcome: Outcome,
    /// This party's cost accounting.
    pub costs: SlotCosts,
    /// Exchange/retry accounting plus transport robustness counters
    /// (reconnects, deadline timeouts) from the link.
    pub stats: SessionStats,
}

/// The distributed analogue of the exchange engine: one broadcast plus
/// one deadline-bounded collect per attempt, retrying while this
/// party's view is incomplete and budget remains.
struct PartyExchanger<'l> {
    link: &'l mut dyn PartyLink,
    budget: SessionBudget,
    collect_timeout: Duration,
    exchanges: u32,
    retries: u32,
    exhausted: bool,
}

impl PartyExchanger<'_> {
    /// Broadcasts `payload` under `label` and gathers one view,
    /// retransmitting (the identical payload — shape uniformity) while
    /// valid copies are missing. Returns the best view per sender.
    fn round(
        &mut self,
        label: &str,
        payload: &[u8],
        valid: &mut dyn FnMut(usize, &[u8]) -> bool,
    ) -> Result<Vec<Option<Vec<u8>>>, CoreError> {
        let m = self.link.slots();
        let mut view: Vec<Option<Vec<u8>>> = vec![None; m];
        let mut attempt = 0u32;
        loop {
            self.exchanges += 1;
            if attempt > 0 {
                self.retries += 1;
            }
            self.link.broadcast(label, payload.to_vec())?;
            let got = self
                .link
                .collect(label, self.collect_timeout, &mut |from, p| valid(from, p))?;
            for (cell, incoming) in view.iter_mut().zip(got) {
                if cell.is_none() {
                    *cell = incoming;
                }
            }
            let complete = view.iter().all(Option::is_some);
            if complete || attempt >= self.budget.retries_per_round {
                break;
            }
            if self.exchanges >= self.budget.max_exchanges {
                self.exhausted = true;
                break;
            }
            attempt += 1;
        }
        Ok(view)
    }

    fn abort_reason(&self) -> AbortReason {
        if self.exhausted {
            AbortReason::BudgetExhausted
        } else {
            AbortReason::KeyAgreement
        }
    }
}

/// Runs one party of a handshake session over `link`, as the slot the
/// link was attached to. `collect_timeout` bounds how long each round
/// waits for the co-parties before spending a retransmission.
///
/// # Errors
///
/// [`CoreError::BadSession`] for sessions of fewer than two slots;
/// transport errors ([`CoreError::Net`]) when the link dies beyond its
/// reconnect budget.
pub fn run_party(
    actor: &Actor<'_>,
    opts: &HandshakeOptions,
    link: &mut dyn PartyLink,
    collect_timeout: Duration,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<PartyOutcome, CoreError> {
    let mut rng = rng;
    let rng: &mut dyn RngCore = &mut rng;
    let m = link.slots();
    let i = link.slot();
    if m < 2 || i >= m {
        return Err(CoreError::BadSession);
    }
    let single = std::slice::from_ref(actor);
    let group = super::session_group(single);
    let mimic = super::mimic_params(single);
    let mut costs = SlotCosts::default();
    let mut ex = PartyExchanger {
        link,
        budget: opts.budget,
        collect_timeout,
        exchanges: 0,
        retries: 0,
        exhausted: false,
    };

    // ---- Phase I: this slot's side of the key agreement -----------------
    let mut dgka = crate::factory::dgka_slot(opts.dgka, group, m, i, rng)?;
    let rounds = dgka.rounds();
    for t in 0..rounds {
        let payload = meter(&mut costs, || dgka.emit(t, rng));
        note_send(&mut costs, &payload);
        let label = dgka.round_label(t);
        let view = ex.round(&label, &payload, &mut |from, p| dgka.validate(t, from, p))?;
        let incomplete = view.iter().any(Option::is_none).then(|| ex.abort_reason());
        meter(&mut costs, || dgka.absorb(t, &view, incomplete, rng));
    }
    let (p1, abort) = meter(&mut costs, || dgka.finish(rng));

    // ---- Blinding: k' = k* ⊕ k ------------------------------------------
    let k_i = match actor {
        Actor::Member(member) => member.group_key().clone(),
        Actor::Outsider => Key::random(rng),
    };
    let mut slot = SlotState {
        actor,
        sid: p1.sid,
        k_prime: p1.k_star.xor(&k_i),
        contributions: p1.contributions,
        seen_tags: Vec::new(),
        delta_set: Vec::new(),
        own_t6: None,
    };

    // ---- Phase II: MAC tag, Δ -------------------------------------------
    let own_contribution = slot.contributions.get(i).cloned().unwrap_or_default();
    let tag = phase2::phase2_tag(&slot.k_prime, &slot.sid, &own_contribution, i);
    note_send(&mut costs, &tag);
    let tag_len = tag.len();
    let tag_view = ex.round("phase2-mac", &tag, &mut |_, p| p.len() == tag_len)?;
    let seen: Vec<Vec<u8>> = tag_view
        .iter()
        .map(|v| v.clone().unwrap_or_default())
        .collect();
    let mut delta = Vec::new();
    for j in 0..m {
        if j == i {
            delta.push(j);
            continue;
        }
        let contribution_j = slot.contributions.get(j).map_or(&[][..], Vec::as_slice);
        let expected = phase2::phase2_tag(&slot.k_prime, &slot.sid, contribution_j, j);
        let seen_j = seen.get(j).map_or(&[][..], Vec::as_slice);
        if shs_crypto::ct::eq(&expected, seen_j) {
            delta.push(j);
        }
    }
    slot.seen_tags = seen;
    slot.delta_set = delta;

    // ---- Phase III (unless preliminary-only) ----------------------------
    let mut verified: Vec<usize> = Vec::new();
    let mut duplicates: Vec<usize> = Vec::new();
    if opts.policy == TracePolicy::Full {
        let publish_real = abort.is_none()
            && match slot.actor {
                Actor::Member(_) => {
                    slot.delta_set.len() == m || (opts.partial_success && slot.delta_set.len() >= 2)
                }
                Actor::Outsider => false,
            };
        let payload = meter(&mut costs, || {
            phase3::phase3_payload(&mut slot, group, &mimic, publish_real, rng)
        })?;
        note_send(&mut costs, &payload);
        let p3_view = ex.round("phase3-full", &payload, &mut |_, p| {
            phase3::decode_p3(p).is_ok()
        })?;
        if abort.is_none() {
            if let Actor::Member(member) = slot.actor {
                (verified, duplicates) = meter(&mut costs, || {
                    phase3::verify_slot(&slot, member, i, &p3_view)
                });
            }
        }
    }

    // ---- Outcome --------------------------------------------------------
    let transport = ex.link.transport_counters();
    let stats = SessionStats {
        exchanges: ex.exchanges,
        retries: ex.retries,
        budget_exhausted: ex.exhausted,
        backpressure_dropped: 0, // relay-side; invisible to one party
        reconnects: transport.reconnects,
        deadline_timeouts: transport.deadline_timeouts,
    };
    let outcome = resolve_outcome(i, &slot, abort, &verified, &duplicates, opts, m);
    Ok(PartyOutcome {
        outcome,
        costs,
        stats,
    })
}
