//! Phase I (Preparation): distributed group key agreement, then the
//! CGKD blinding `k'_i = k* ⊕ k_i`.

use crate::config::DgkaChoice;
use crate::handshake::engine::{run_phase1, Exchanger};
use crate::handshake::{AbortReason, Actor, SlotCosts, SlotState};
use crate::substrate::dgka::Phase1Slot;
use crate::CoreError;
use rand::RngCore;
use shs_crypto::Key;
use shs_groups::schnorr::SchnorrGroup;

/// Runs the configured key agreement: builds one [`crate::substrate::DgkaSlot`]
/// per session slot through the factory and drives them with the
/// generic scheduler.
///
/// # Errors
///
/// Parameter rejections surface as [`CoreError::Dgka`]; network errors
/// are propagated.
pub(crate) fn run(
    dgka: DgkaChoice,
    group: &'static SchnorrGroup,
    m: usize,
    ex: &mut Exchanger<'_>,
    costs: &mut [SlotCosts],
    rng: &mut dyn RngCore,
) -> Result<Vec<(Phase1Slot, Option<AbortReason>)>, CoreError> {
    let mut slots = crate::factory::dgka_slots(dgka, group, m, rng)?;
    run_phase1(&mut slots, ex, costs, rng)
}

/// `k'_i = k* ⊕ k_i`. A slot that aborted in Phase I holds a random
/// `k*`, so its `k'` is uniform — exactly an outsider's distribution
/// (outsiders hold a random "group key" for the same reason).
pub(crate) fn bind_group_keys<'a>(
    actors: &'a [Actor<'a>],
    phase1: Vec<(Phase1Slot, Option<AbortReason>)>,
    rng: &mut dyn RngCore,
) -> Vec<SlotState<'a>> {
    let mut slots = Vec::with_capacity(actors.len());
    for (actor, (p1, _)) in actors.iter().zip(phase1) {
        let k_i = match actor {
            Actor::Member(member) => member.group_key().clone(),
            Actor::Outsider => Key::random(rng),
        };
        let k_prime = p1.k_star.xor(&k_i);
        slots.push(SlotState {
            actor,
            sid: p1.sid,
            k_prime,
            contributions: p1.contributions,
            seen_tags: Vec::new(),
            delta_set: Vec::new(),
            own_t6: None,
        });
    }
    slots
}
