//! Phase II (Preliminary handshake): CGKD-keyed MAC tags and the
//! co-member set `Δ`.

use crate::handshake::engine::{note_send, Exchanger};
use crate::handshake::{SlotCosts, SlotState};
use crate::CoreError;
use shs_crypto::{hmac, Key};

/// `MAC(k'_i, sid ‖ s_i ‖ i)` where `s_i` is the party's Phase-I
/// contribution.
pub(crate) fn phase2_tag(k_prime: &Key, sid: &[u8], contribution: &[u8], slot: usize) -> Vec<u8> {
    hmac::HmacSha256::new(k_prime.as_bytes())
        .chain(b"gcd-phase2")
        .chain(sid)
        .chain(&(contribution.len() as u64).to_be_bytes())
        .chain(contribution)
        .chain(&(slot as u64).to_be_bytes())
        .finalize()
        .to_vec()
}

/// Broadcasts every slot's tag and computes its `Δ` — the set of slots
/// whose tags verify under this slot's `k'` (membership in the same
/// group, via the same CGKD epoch key).
///
/// # Errors
///
/// Network errors from the exchange are propagated.
pub(crate) fn run(
    slots: &mut [SlotState<'_>],
    ex: &mut Exchanger<'_>,
    costs: &mut [SlotCosts],
) -> Result<(), CoreError> {
    let m = slots.len();
    let mut out_tags = Vec::with_capacity(m);
    let mut tag_len = 0;
    for (i, (slot, cost)) in slots.iter().zip(costs.iter_mut()).enumerate() {
        let tag = phase2_tag(&slot.k_prime, &slot.sid, &slot.contributions[i], i);
        note_send(cost, &tag);
        tag_len = tag.len();
        out_tags.push(tag.to_vec());
    }
    // A tag of the wrong size was tampered in transit and worth a
    // retransmission; a right-sized tag that fails to verify is
    // indistinguishable from a non-member's and must NOT be retried.
    let views = ex.round("phase2-mac", &out_tags, &mut |_, _, p| p.len() == tag_len)?;
    for (i, slot) in slots.iter_mut().enumerate() {
        let seen: Vec<Vec<u8>> = views[i]
            .iter()
            .map(|v| v.clone().unwrap_or_default())
            .collect();
        let mut delta = Vec::new();
        #[allow(clippy::needless_range_loop)] // j is a slot id, not just an index
        for j in 0..m {
            if j == i {
                delta.push(j);
                continue;
            }
            let expected = phase2_tag(&slot.k_prime, &slot.sid, &slot.contributions[j], j);
            if shs_crypto::ct::eq(&expected, &seen[j]) {
                delta.push(j);
            }
        }
        slot.seen_tags = seen;
        slot.delta_set = delta;
    }
    Ok(())
}
