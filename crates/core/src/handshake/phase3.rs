//! Phase III (Full handshake): the `(θ, δ)` broadcast, signature
//! verification against the CRL, self-distinction, and session-key
//! derivation.

use crate::config::HandshakeOptions;
use crate::handshake::decoy::phase3_decoy;
use crate::handshake::engine::{meter, note_send, Exchanger};
use crate::handshake::{AbortReason, Actor, SlotCosts, SlotParams, SlotState};
use crate::transcript::{HandshakeTranscript, TranscriptEntry};
use crate::{codec, CoreError};
use rand::RngCore;
use shs_bigint::Ubig;
use shs_crypto::{aead, Key};
use shs_groups::cs;
use shs_groups::schnorr::SchnorrGroup;

/// Runs Phase III: every slot broadcasts a real or decoy `(θ, δ)`
/// frame, members verify their co-members' signatures, and scheme 2
/// flags duplicate `T6` values. Returns the public transcript plus the
/// per-slot `verified` and `duplicate` sets.
///
/// # Errors
///
/// Network and codec errors are propagated.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub(crate) fn run(
    slots: &mut [SlotState<'_>],
    aborts: &[Option<AbortReason>],
    group: &'static SchnorrGroup,
    mimic: &SlotParams,
    opts: &HandshakeOptions,
    ex: &mut Exchanger<'_>,
    costs: &mut [SlotCosts],
    rng: &mut dyn RngCore,
) -> Result<(HandshakeTranscript, Vec<Vec<usize>>, Vec<Vec<usize>>), CoreError> {
    let m = slots.len();
    let mut transcript = HandshakeTranscript::default();
    let mut verified: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut duplicates: Vec<Vec<usize>> = vec![Vec::new(); m];

    let mut out_p3 = Vec::with_capacity(m);
    for (i, (slot, cost)) in slots.iter_mut().zip(costs.iter_mut()).enumerate() {
        // Aborted slots publish decoys: on the wire they look exactly
        // like a member whose handshake merely failed.
        let publish_real = aborts[i].is_none()
            && match slot.actor {
                Actor::Member(_) => {
                    slot.delta_set.len() == m || (opts.partial_success && slot.delta_set.len() >= 2)
                }
                Actor::Outsider => false,
            };
        let payload = meter(cost, || {
            phase3_payload(slot, group, mimic, publish_real, rng)
        })?;
        note_send(cost, &payload);
        out_p3.push(payload);
    }
    // An undecodable (θ, δ) frame was tampered in transit: retry. A
    // decodable frame that fails to decrypt/verify is an ordinary
    // non-member signal and is not retried.
    let views = ex.round("phase3-full", &out_p3, &mut |_, _, p| decode_p3(p).is_ok())?;

    // Build the public transcript (slot order) from the broadcast.
    transcript.sid = slots[0].sid.clone();
    for payload in &out_p3 {
        let (theta, delta) = decode_p3(payload)?;
        transcript.entries.push(TranscriptEntry { theta, delta });
    }

    // Verification (aborted slots are decoy senders; they verify
    // nothing). Each active member slot verifies its m−1 peer frames
    // independently of every other slot, so the slots fan out onto the
    // worker pool; results and modexp counts come back in slot order and
    // the outcome is byte-identical to a sequential run.
    let slots = &*slots;
    let workers = crate::pool::verify_workers(m, opts.parallel_verify);
    let per_slot = crate::pool::run_indexed(m, workers, |i| {
        let slot = &slots[i];
        let Actor::Member(member) = slot.actor else {
            return None;
        };
        if aborts[i].is_some() {
            return None;
        }
        // The op counters are thread-local: measure on the worker and
        // carry the delta home in the result.
        let (counts, outcome) =
            shs_bigint::counters::measure(|| verify_slot(slot, member, i, &views[i]));
        Some((outcome, counts.modexp))
    });
    for (i, result) in per_slot.into_iter().enumerate() {
        let Some(((v, d), modexp)) = result else {
            continue;
        };
        verified[i] = v;
        duplicates[i] = d;
        costs[i].modexp += modexp;
    }
    Ok((transcript, verified, duplicates))
}

/// One slot's Phase-III verification: checks every co-member frame in
/// this slot's view and flags duplicate `T6` values (self-distinction).
/// Returns `(verified, duplicates)` for the slot.
pub(crate) fn verify_slot(
    slot: &SlotState<'_>,
    member: &crate::member::Member,
    i: usize,
    view: &[Option<Vec<u8>>],
) -> (Vec<usize>, Vec<usize>) {
    let mut verified = Vec::new();
    let mut duplicates = Vec::new();
    let expected_t7 = member
        .scheme()
        .self_distinct()
        .then(|| member.credential().common_t7(&sd_basis(slot)))
        .flatten();
    let mut t6_seen: Vec<(usize, Ubig)> = Vec::new();
    if let Some(t6) = &slot.own_t6 {
        t6_seen.push((i, t6.clone()));
    }
    // Gather every decryptable peer frame first, then verify the whole
    // set in one batch call: the scheme combines the m−1 public-data
    // verify equations into a single multi-exp pass (outcome-identical
    // to per-frame verification; frames that fail to decode or decrypt
    // never reach the batch, exactly as they never reached `verify`).
    let mut pending: Vec<(usize, Vec<u8>, Vec<u8>)> = Vec::new();
    for (j, payload) in view.iter().enumerate() {
        if j == i || !slot.delta_set.contains(&j) {
            continue;
        }
        let Some(payload) = payload else {
            continue;
        };
        let Ok((theta, delta_bytes)) = decode_p3(payload) else {
            continue;
        };
        let Ok(sig_bytes) = aead::open(&slot.k_prime, &theta, &slot.sid) else {
            continue;
        };
        let mut msg = delta_bytes;
        msg.extend_from_slice(&slot.sid);
        pending.push((j, msg, sig_bytes));
    }
    let items: Vec<(&[u8], &[u8])> = pending
        .iter()
        .map(|(_, msg, sig)| (msg.as_slice(), sig.as_slice()))
        .collect();
    let outcomes = member
        .credential()
        .verify_batch(&items, expected_t7.as_ref(), &member.crl);
    for ((j, _, _), ok) in pending.iter().zip(outcomes) {
        if let Some(t6) = ok {
            verified.push(*j);
            if let Some(t6) = t6 {
                t6_seen.push((*j, t6));
            }
        }
    }
    // Self-distinction: flag every slot whose T6 collides.
    for (a_idx, (slot_a, t6_a)) in t6_seen.iter().enumerate() {
        for (slot_b, t6_b) in t6_seen.iter().skip(a_idx + 1) {
            if t6_a == t6_b {
                if !duplicates.contains(slot_a) {
                    duplicates.push(*slot_a);
                }
                if !duplicates.contains(slot_b) {
                    duplicates.push(*slot_b);
                }
            }
        }
    }
    duplicates.sort_unstable();
    (verified, duplicates)
}

/// Self-distinction basis: the concatenation of everything sent in Phases
/// I and II, as this slot saw it (§8.2: "the concatenation of all messages
/// sent by the handshake participants").
pub(crate) fn sd_basis(slot: &SlotState<'_>) -> Vec<u8> {
    let mut basis = b"gcd-sd-basis".to_vec();
    basis.extend_from_slice(&slot.sid);
    for part in slot.contributions.iter().chain(&slot.seen_tags) {
        basis.extend_from_slice(&(part.len() as u64).to_be_bytes());
        basis.extend_from_slice(part);
    }
    basis
}

pub(crate) fn phase3_payload(
    slot: &mut SlotState<'_>,
    group: &'static SchnorrGroup,
    mimic: &SlotParams,
    publish_real: bool,
    rng: &mut dyn RngCore,
) -> Result<Vec<u8>, CoreError> {
    // `publish_real` is only ever set for members (outsiders have nothing
    // to publish); an outsider slot falls through to the decoy arm rather
    // than panicking.
    let (theta, delta_bytes) = if let (true, Actor::Member(member)) = (publish_real, slot.actor) {
        let delta = cs::encrypt(group, &member.tracing_pk, slot.k_prime.as_bytes(), rng);
        let delta_bytes = codec::encode_delta(group, &delta);
        let mut msg = delta_bytes.clone();
        msg.extend_from_slice(&slot.sid);
        let basis = member.scheme().self_distinct().then(|| sd_basis(slot));
        let (sig_bytes, t6) = member.credential().sign(&msg, basis.as_deref(), rng);
        slot.own_t6 = t6;
        let theta = aead::seal(&slot.k_prime, &sig_bytes, &slot.sid, rng);
        (theta, delta_bytes)
    } else {
        // CASE 2: decoys drawn from the same ciphertext spaces (§7).
        phase3_decoy(slot.actor, group, mimic, rng)
    };
    let mut w = crate::wire::Writer::new();
    w.put_bytes(&theta);
    w.put_bytes(&delta_bytes);
    Ok(w.into_bytes())
}

pub(crate) fn decode_p3(bytes: &[u8]) -> Result<(Vec<u8>, Vec<u8>), CoreError> {
    let mut r = crate::wire::Reader::new(bytes);
    let theta = r.take_bytes()?;
    let delta = r.take_bytes()?;
    r.finish()?;
    Ok((theta, delta))
}

/// The established session key: derived from `k'`, the session id and
/// the accepted co-member set.
pub(crate) fn derive_session_key(k_prime: &Key, sid: &[u8], delta: &[usize]) -> Key {
    let mut ikm = k_prime.as_bytes().to_vec();
    ikm.extend_from_slice(sid);
    for &s in delta {
        ikm.extend_from_slice(&(s as u64).to_be_bytes());
    }
    Key::derive(&ikm, "gcd-session-key")
}
