//! **`shs-core`** — the GCD secret-handshake framework of Tsudik & Xu
//! (PODC 2005 / full version): multi-party anonymous and unobservable
//! authentication with reusable credentials.
//!
//! GCD is a *compiler* that turns three building blocks — a **G**roup
//! signature scheme (`shs-gsig`), a **C**entralized group key distribution
//! scheme (`shs-cgkd`) and a **D**istributed group key agreement scheme
//! (`shs-dgka`) — into a secret handshake scheme: `m ≥ 2` parties learn
//! that they all belong to the same group *iff* they all do, and learn
//! nothing otherwise.
//!
//! # Quickstart
//!
//! ```rust
//! use shs_core::{Actor, GroupAuthority, GroupConfig, HandshakeOptions, SchemeKind};
//! use shs_core::handshake::run_handshake;
//!
//! # fn main() -> Result<(), shs_core::CoreError> {
//! let mut rng = shs_crypto::drbg::HmacDrbg::from_seed(b"quickstart-doc");
//! // Build a deterministic test-sized group with three members. Every
//! // existing member processes each join's bulletin-board update.
//! let mut ga = shs_core::fixtures::test_authority(SchemeKind::Scheme1, &mut rng);
//! let (mut alice, _) = ga.admit(&mut rng)?;
//! let (mut bob, update) = ga.admit(&mut rng)?;
//! alice.apply_update(&update)?;
//! let (carol, update) = ga.admit(&mut rng)?;
//! alice.apply_update(&update)?;
//! bob.apply_update(&update)?;
//!
//! let result = run_handshake(
//!     &[Actor::Member(&alice), Actor::Member(&bob), Actor::Member(&carol)],
//!     &HandshakeOptions::default(),
//!     &mut rng,
//! )?;
//! assert!(result.outcomes.iter().all(|o| o.accepted));
//! # Ok(())
//! # }
//! ```
//!
//! # Module map
//!
//! The crate is organised around the compiler metaphor:
//!
//! * [`substrate`] — the three building-block **contracts**
//!   ([`substrate::Gsig`]/[`substrate::GsigCredential`],
//!   [`substrate::Cgkd`]/[`substrate::CgkdSlot`],
//!   [`substrate::DgkaSlot`]) plus their concrete backends (KY, ACJT;
//!   LKH, Subset-Difference, Star; BD, GDH.2, authenticated BD).
//! * [`factory`] — the **only** module that dispatches on
//!   [`SchemeKind`], [`config::CgkdChoice`] and [`config::DgkaChoice`]
//!   to construct backends (enforced by the `shs-lint`
//!   `factory-dispatch` rule).
//! * [`config`] — the instantiation matrix itself: the three enums,
//!   their `ALL` arrays, [`GroupConfig`] and [`HandshakeOptions`].
//! * [`authority`] / [`member`] / [`bulletin`] — the group lifecycle:
//!   `CreateGroup`, `AdmitMember`, `RemoveUser`, `Update`, `TraceUser`.
//! * [`handshake`] — the phase-structured session engine: one submodule
//!   per protocol phase (`phase1`–`phase3`), the generic
//!   retry/metering scheduler (`engine`), and every decoy construction
//!   (`decoy`).
//! * [`codec`] / [`wire`] — fixed-width serialization; [`transcript`] —
//!   the public handshake transcript and tracing outcomes; [`roles`] /
//!   [`fixtures`] — test and experiment scaffolding.
//!
//! See `DESIGN.md` at the repository root for the full system inventory
//! (§10 specifies the substrate contracts) and the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod bulletin;
pub mod codec;
pub mod config;
pub mod factory;
pub mod fixtures;
pub mod handshake;
pub mod member;
mod pool;
pub mod roles;
pub mod service;
pub mod substrate;
pub mod transcript;
pub mod wire;

pub use authority::GroupAuthority;
pub use bulletin::BulletinBoard;
pub use config::{GroupConfig, HandshakeOptions, SchemeKind, SessionBudget, TracePolicy};
pub use handshake::party::{run_party, PartyOutcome};
pub use handshake::{AbortReason, Actor, Outcome, SessionResult, SessionStats, SlotCosts};
pub use member::{EpochBroadcast, GroupUpdate, Member};
pub use transcript::{HandshakeTranscript, TraceError, TraceOutcome};

/// Errors produced by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// A CGKD operation failed.
    Cgkd(shs_cgkd::CgkdError),
    /// A GSIG operation failed.
    Gsig(shs_gsig::GsigError),
    /// A DGKA operation failed.
    Dgka(shs_dgka::DgkaError),
    /// A network operation failed.
    Net(shs_net::NetError),
    /// A wire encoding failed to parse.
    Wire(wire::WireError),
    /// A bulletin-board update failed authentication or ordering.
    UpdateRejected,
    /// The member id is unknown to this authority.
    UnknownMember,
    /// The handshake session was malformed (fewer than two actors,
    /// mismatched medium, inconsistent sender slots).
    BadSession,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Cgkd(e) => write!(f, "key distribution: {e}"),
            CoreError::Gsig(e) => write!(f, "group signature: {e}"),
            CoreError::Dgka(e) => write!(f, "key agreement: {e}"),
            CoreError::Net(e) => write!(f, "network: {e}"),
            CoreError::Wire(e) => write!(f, "wire format: {e}"),
            CoreError::UpdateRejected => write!(f, "group update rejected"),
            CoreError::UnknownMember => write!(f, "unknown member"),
            CoreError::BadSession => write!(f, "malformed handshake session"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cgkd(e) => Some(e),
            CoreError::Gsig(e) => Some(e),
            CoreError::Dgka(e) => Some(e),
            CoreError::Net(e) => Some(e),
            CoreError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for CoreError {
    fn from(e: wire::WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<shs_net::NetError> for CoreError {
    fn from(e: shs_net::NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<shs_cgkd::CgkdError> for CoreError {
    fn from(e: shs_cgkd::CgkdError) -> Self {
        CoreError::Cgkd(e)
    }
}

impl From<shs_gsig::GsigError> for CoreError {
    fn from(e: shs_gsig::GsigError) -> Self {
        CoreError::Gsig(e)
    }
}

impl From<shs_dgka::DgkaError> for CoreError {
    fn from(e: shs_dgka::DgkaError) -> Self {
        CoreError::Dgka(e)
    }
}
