//! The member side of a group: credentials, CGKD state, CRL copy, and the
//! `SHS.Update` operation.

use crate::config::{GroupConfig, SchemeKind};
use crate::{codec, CoreError};
use shs_cgkd::lkh::LkhMember;
use shs_cgkd::sd::SdMember;
use shs_cgkd::MemberState;
use shs_crypto::{aead, Key};
use shs_groups::cs;
use shs_groups::schnorr::SchnorrGroup;
use shs_gsig::crl::Crl;
use shs_gsig::ky::MemberId;
use shs_gsig::params::GsigParams;
use shs_gsig::{acjt, ky};
use std::sync::Arc;

/// A member's group-signature credential (one variant per instantiation).
#[derive(Clone)]
pub enum Credential {
    /// Kiayias–Yung credential (schemes 1 and 2).
    Ky {
        /// Shared group public key.
        pk: Arc<ky::GroupPublicKey>,
        /// This member's signing key.
        key: ky::MemberKey,
    },
    /// Classic ACJT credential (scheme 1-classic).
    Acjt {
        /// Shared group public key.
        pk: Arc<acjt::GroupPublicKey>,
        /// This member's signing key.
        key: acjt::MemberKey,
    },
}

impl std::fmt::Debug for Credential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Credential::Ky { key, .. } => write!(f, "Credential::Ky({})", key.id),
            Credential::Acjt { key, .. } => write!(f, "Credential::Acjt({})", key.id),
        }
    }
}

impl Credential {
    /// The member's pseudonymous identity.
    pub fn id(&self) -> MemberId {
        match self {
            Credential::Ky { key, .. } => key.id,
            Credential::Acjt { key, .. } => key.id,
        }
    }

    /// The interval parameters of the credential's group.
    pub fn params(&self) -> &GsigParams {
        match self {
            Credential::Ky { pk, .. } => &pk.params,
            Credential::Acjt { pk, .. } => &pk.params,
        }
    }
}

/// A rekey broadcast from whichever CGKD backend the group runs.
#[derive(Debug, Clone)]
pub enum RekeyBroadcast {
    /// LKH rekey items.
    Lkh(shs_cgkd::lkh::LkhBroadcast),
    /// Subset-Difference cover broadcast.
    Sd(shs_cgkd::sd::SdBroadcast),
}

impl RekeyBroadcast {
    /// The epoch this broadcast establishes.
    pub fn epoch(&self) -> u64 {
        match self {
            RekeyBroadcast::Lkh(b) => b.epoch,
            RekeyBroadcast::Sd(b) => b.epoch,
        }
    }
}

/// An encrypted group-state update posted on the bulletin board
/// (`GCD.AdmitMember` / `GCD.RemoveUser` output; consumed by
/// `GCD.Update`).
#[derive(Debug, Clone)]
pub struct GroupUpdate {
    /// The CGKD rekey broadcast.
    pub rekey: RekeyBroadcast,
    /// GSIG state update (CRL delta), AEAD-encrypted under the **new**
    /// group key so revoked members cannot read it.
    pub payload_ct: Vec<u8>,
}

/// Member-side CGKD state, by backend.
#[derive(Debug, Clone)]
pub(crate) enum CgkdMember {
    /// LKH path keys.
    Lkh(LkhMember),
    /// SD labels (stateless).
    Sd(SdMember),
}

impl CgkdMember {
    pub(crate) fn group_key(&self) -> &Key {
        match self {
            CgkdMember::Lkh(m) => m.group_key(),
            CgkdMember::Sd(m) => m.group_key(),
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        match self {
            CgkdMember::Lkh(m) => m.epoch(),
            CgkdMember::Sd(m) => m.epoch(),
        }
    }

    pub(crate) fn process(&mut self, rekey: &RekeyBroadcast) -> Result<(), shs_cgkd::CgkdError> {
        match (self, rekey) {
            (CgkdMember::Lkh(m), RekeyBroadcast::Lkh(b)) => m.process(b),
            (CgkdMember::Sd(m), RekeyBroadcast::Sd(b)) => m.process(b),
            _ => Err(shs_cgkd::CgkdError::CannotDecrypt),
        }
    }
}

/// Content of the encrypted update payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct UpdatePayload {
    pub crl_delta: Option<shs_gsig::crl::CrlDelta>,
}

pub(crate) fn encode_update_payload(params: &GsigParams, p: &UpdatePayload) -> Vec<u8> {
    let mut w = crate::wire::Writer::new();
    match &p.crl_delta {
        None => w.put_u8(0),
        Some(d) => {
            w.put_u8(1);
            w.put_bytes(&codec::encode_crl_delta(params, d));
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_update_payload(
    params: &GsigParams,
    bytes: &[u8],
) -> Result<UpdatePayload, CoreError> {
    let mut r = crate::wire::Reader::new(bytes);
    let tag = r.take_u8()?;
    let payload = match tag {
        0 => UpdatePayload { crl_delta: None },
        1 => {
            let inner = r.take_bytes()?;
            UpdatePayload {
                crl_delta: Some(codec::decode_crl_delta(params, &inner)?),
            }
        }
        _ => return Err(CoreError::Wire(crate::wire::WireError::BadTag)),
    };
    r.finish()?;
    Ok(payload)
}

pub(crate) fn update_aad(epoch: u64) -> Vec<u8> {
    format!("gcd-update:{epoch}").into_bytes()
}

/// A group member: everything `U_i` holds (Fig. 1 of the paper).
pub struct Member {
    pub(crate) config: GroupConfig,
    pub(crate) cred: Credential,
    pub(crate) cgkd: CgkdMember,
    pub(crate) crl: Crl,
    pub(crate) tracing_group: &'static SchnorrGroup,
    pub(crate) tracing_pk: cs::PublicKey,
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Member {{ id: {}, scheme: {:?}, epoch: {} }}",
            self.cred.id(),
            self.config.scheme,
            self.cgkd.epoch()
        )
    }
}

impl Member {
    /// The member's pseudonymous identity (known to the GA; never revealed
    /// during handshakes).
    pub fn id(&self) -> MemberId {
        self.cred.id()
    }

    /// The scheme this member's group runs.
    pub fn scheme(&self) -> SchemeKind {
        self.config.scheme
    }

    /// The member's current CGKD group key `k_i`.
    pub fn group_key(&self) -> &Key {
        self.cgkd.group_key()
    }

    /// The member's current CRL version.
    pub fn crl_version(&self) -> u64 {
        self.crl.version
    }

    /// The member's view of the CGKD epoch.
    pub fn epoch(&self) -> u64 {
        self.cgkd.epoch()
    }

    /// The credential (used by the handshake driver).
    pub fn credential(&self) -> &Credential {
        &self.cred
    }

    /// `SHS.Update`: processes a bulletin-board update — runs
    /// `CGKD.Rekey`, then decrypts the GSIG state update with the *new*
    /// group key and applies the CRL delta.
    ///
    /// # Errors
    ///
    /// [`CoreError::Cgkd`] when the rekey cannot be processed (revoked
    /// members land here), [`CoreError::UpdateRejected`] when the payload
    /// fails authentication or ordering.
    pub fn apply_update(&mut self, update: &GroupUpdate) -> Result<(), CoreError> {
        self.cgkd.process(&update.rekey).map_err(CoreError::Cgkd)?;
        let aad = update_aad(update.rekey.epoch());
        let pt = aead::open(self.cgkd.group_key(), &update.payload_ct, &aad)
            .map_err(|_| CoreError::UpdateRejected)?;
        let payload = decode_update_payload(self.cred.params(), &pt)?;
        if let Some(delta) = payload.crl_delta {
            self.crl
                .apply(&delta)
                .map_err(|_| CoreError::UpdateRejected)?;
        }
        Ok(())
    }

    /// Leaks this member's current group key — **test/experiment API**
    /// modelling the §3 attack where an unrevoked member hands the CGKD
    /// key to a revoked one (experiment E7b).
    pub fn leak_group_key(&self) -> Key {
        self.cgkd.group_key().clone()
    }

    /// Overwrites this member's group key with a leaked one —
    /// the receiving side of the E7b attack.
    pub fn adopt_leaked_key(&mut self, key: Key, epoch: u64) {
        match &mut self.cgkd {
            CgkdMember::Lkh(m) => m.force_group_key(key, epoch),
            CgkdMember::Sd(m) => m.force_group_key(key, epoch),
        }
    }
}
