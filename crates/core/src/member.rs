//! The member side of a group: credential, CGKD state, CRL copy, and the
//! `SHS.Update` operation — all held behind the substrate trait layer,
//! so a `Member` is backend-agnostic.

use crate::config::{GroupConfig, SchemeKind};
use crate::substrate::{CgkdSlot, GsigCredential};
use crate::{codec, CoreError};
use shs_crypto::{aead, Key};
use shs_groups::cs;
use shs_groups::schnorr::SchnorrGroup;
use shs_gsig::crl::Crl;
use shs_gsig::ky::MemberId;
use shs_gsig::params::GsigParams;

pub use crate::substrate::{EpochBroadcast, RekeyBroadcast};

/// An encrypted group-state update posted on the bulletin board
/// (`GCD.AdmitMember` / `GCD.RemoveUser` / `GCD.ApplyEpoch` output;
/// consumed by `GCD.Update`). One update covers one churn window — a
/// single join or leave, or a whole batched epoch.
#[derive(Debug, Clone)]
pub struct GroupUpdate {
    /// The CGKD rekey record for the window.
    pub rekey: EpochBroadcast,
    /// GSIG state update (CRL delta), AEAD-encrypted under the **new**
    /// group key so revoked members cannot read it.
    pub payload_ct: Vec<u8>,
}

/// Content of the encrypted update payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct UpdatePayload {
    pub crl_delta: Option<shs_gsig::crl::CrlDelta>,
}

pub(crate) fn encode_update_payload(params: &GsigParams, p: &UpdatePayload) -> Vec<u8> {
    let mut w = crate::wire::Writer::new();
    match &p.crl_delta {
        None => w.put_u8(0),
        Some(d) => {
            w.put_u8(1);
            w.put_bytes(&codec::encode_crl_delta(params, d));
        }
    }
    w.into_bytes()
}

pub(crate) fn decode_update_payload(
    params: &GsigParams,
    bytes: &[u8],
) -> Result<UpdatePayload, CoreError> {
    let mut r = crate::wire::Reader::new(bytes);
    let tag = r.take_u8()?;
    let payload = match tag {
        0 => UpdatePayload { crl_delta: None },
        1 => {
            let inner = r.take_bytes()?;
            UpdatePayload {
                crl_delta: Some(codec::decode_crl_delta(params, &inner)?),
            }
        }
        _ => return Err(CoreError::Wire(crate::wire::WireError::BadTag)),
    };
    r.finish()?;
    Ok(payload)
}

pub(crate) fn update_aad(epoch: u64) -> Vec<u8> {
    format!("gcd-update:{epoch}").into_bytes()
}

/// A group member: everything `U_i` holds (Fig. 1 of the paper).
pub struct Member {
    pub(crate) config: GroupConfig,
    pub(crate) cred: Box<dyn GsigCredential>,
    pub(crate) cgkd: Box<dyn CgkdSlot>,
    pub(crate) crl: Crl,
    pub(crate) tracing_group: &'static SchnorrGroup,
    pub(crate) tracing_pk: cs::PublicKey,
}

impl std::fmt::Debug for Member {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Member {{ id: {}, scheme: {:?}, epoch: {} }}",
            self.cred.id(),
            self.config.scheme,
            self.cgkd.epoch()
        )
    }
}

impl Member {
    /// The member's pseudonymous identity (known to the GA; never revealed
    /// during handshakes).
    pub fn id(&self) -> MemberId {
        self.cred.id()
    }

    /// The scheme this member's group runs.
    pub fn scheme(&self) -> SchemeKind {
        self.config.scheme
    }

    /// The member's current CGKD group key `k_i`.
    pub fn group_key(&self) -> &Key {
        self.cgkd.group_key()
    }

    /// The member's current CRL version.
    pub fn crl_version(&self) -> u64 {
        self.crl.version
    }

    /// The member's view of the CGKD epoch.
    pub fn epoch(&self) -> u64 {
        self.cgkd.epoch()
    }

    /// The credential (used by the handshake driver).
    pub fn credential(&self) -> &dyn GsigCredential {
        self.cred.as_ref()
    }

    /// `SHS.Update`: processes a bulletin-board update — runs
    /// `CGKD.Rekey`, then decrypts the GSIG state update with the *new*
    /// group key and applies the CRL delta.
    ///
    /// # Errors
    ///
    /// [`CoreError::Cgkd`] when the rekey cannot be processed (revoked
    /// members land here), [`CoreError::UpdateRejected`] when the payload
    /// fails authentication or ordering.
    pub fn apply_update(&mut self, update: &GroupUpdate) -> Result<(), CoreError> {
        if !update.rekey.is_empty() {
            self.cgkd
                .process_epoch(&update.rekey)
                .map_err(CoreError::Cgkd)?;
        }
        let aad = update_aad(update.rekey.epoch());
        let pt = aead::open(self.cgkd.group_key(), &update.payload_ct, &aad)
            .map_err(|_| CoreError::UpdateRejected)?;
        let payload = decode_update_payload(self.cred.params(), &pt)?;
        if let Some(delta) = payload.crl_delta {
            self.crl
                .apply(&delta)
                .map_err(|_| CoreError::UpdateRejected)?;
        }
        Ok(())
    }

    /// Leaks this member's current group key — **test/experiment API**
    /// modelling the §3 attack where an unrevoked member hands the CGKD
    /// key to a revoked one (experiment E7b).
    pub fn leak_group_key(&self) -> Key {
        self.cgkd.group_key().clone()
    }

    /// Overwrites this member's group key with a leaked one —
    /// the receiving side of the E7b attack.
    pub fn adopt_leaked_key(&mut self, key: Key, epoch: u64) {
        self.cgkd.force_group_key(key, epoch);
    }
}
