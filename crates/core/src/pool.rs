//! A minimal scoped worker pool for the handshake engine's
//! embarrassingly-parallel steps (Phase III signature verification).
//!
//! The pool is deliberately tiny: `std::thread::scope` plus an atomic
//! work index. Jobs are identified by index, pulled greedily by whichever
//! worker is free, and the results are re-sorted by index before
//! returning — so the output (and therefore every transcript derived
//! from it) is byte-identical to a sequential run regardless of
//! scheduling. Side-effect totals (operation counters) must travel in
//! each job's return value: the counters in [`shs_bigint::counters`] are
//! thread-local, so work done on a worker thread is invisible to the
//! caller's counters until merged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(0..jobs)` on up to `workers` scoped threads and returns the
/// results in job-index order. With fewer than two workers or jobs the
/// pool degenerates to a plain sequential loop on the calling thread —
/// the parallel and sequential paths run the exact same closure.
pub(crate) fn run_indexed<T, F>(jobs: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|s| {
        for _ in 0..workers.min(jobs) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = job(i);
                done.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push((i, out));
            });
        }
    });
    let mut done = done.into_inner().unwrap_or_else(|e| e.into_inner());
    done.sort_unstable_by_key(|(i, _)| *i);
    done.into_iter().map(|(_, t)| t).collect()
}

/// The worker count to use for `jobs` parallel verifications: the
/// machine's available parallelism, capped by the job count. Returns 1
/// (sequential) when parallelism is unavailable or disabled.
pub(crate) fn verify_workers(jobs: usize, enabled: bool) -> usize {
    if !enabled {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(17, 4, |i| {
            // Stagger completion so late indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros(((17 - i) * 50) as u64));
            i * i
        });
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i, i.wrapping_mul(0x9e37_79b9));
        assert_eq!(run_indexed(9, 1, f), run_indexed(9, 4, f));
    }

    #[test]
    fn zero_jobs_is_empty() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_count_caps_at_jobs_and_respects_disable() {
        assert_eq!(verify_workers(8, false), 1);
        assert_eq!(verify_workers(1, true), 1);
        assert!(verify_workers(64, true) >= 1);
    }
}
