//! Role / clearance-level handshakes.
//!
//! The paper's introduction motivates handshakes scoped to roles: *"Alice
//! might want to authenticate herself as an agent with a certain clearance
//! level only if Bob is also an agent with at least the same clearance
//! level."* Because the paper notes that group-scoped handshakes extend
//! naturally to roles ("this property can be further extended to ensure
//! that group members' affiliations are revealed only to members who hold
//! specific roles in the group"), this module realizes the extension the
//! canonical way: one GCD sub-group per clearance level, where a member
//! with clearance `c` holds credentials for **every level `≤ c`**.
//!
//! A handshake "at level L" is then an ordinary GCD handshake in the
//! level-`L` sub-group: it succeeds exactly among parties whose clearance
//! is **at least** `L`, and reveals nothing to (or about) anyone below.

use crate::authority::GroupAuthority;
use crate::config::GroupConfig;
use crate::member::{GroupUpdate, Member};
use crate::CoreError;
use rand::RngCore;
use shs_groups::rsa::{RsaGroup, RsaSecret};

/// A clearance level (0 = base membership; higher = more privileged).
pub type Level = usize;

/// An authority managing one sub-group per clearance level.
pub struct RoleAuthority {
    levels: Vec<GroupAuthority>,
}

impl std::fmt::Debug for RoleAuthority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RoleAuthority {{ levels: {} }}", self.levels.len())
    }
}

/// A member holding credentials for levels `0..=clearance`.
pub struct RoleMember {
    clearance: Level,
    per_level: Vec<Member>,
}

impl std::fmt::Debug for RoleMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RoleMember {{ clearance: {}, base id: {} }}",
            self.clearance,
            self.per_level[0].id()
        )
    }
}

/// A bulletin-board update scoped to one level's sub-group.
#[derive(Debug)]
pub struct LevelUpdate {
    /// Which level's sub-group changed.
    pub level: Level,
    /// The sub-group update itself.
    pub update: GroupUpdate,
}

impl RoleAuthority {
    /// Creates an authority with `levels` clearance levels, reusing one
    /// RSA setting across the per-level sub-groups (each level still gets
    /// independent generators, tracing keys and group keys).
    pub fn create_with_rsa(
        config: GroupConfig,
        levels: usize,
        rsa: RsaGroup,
        rsa_secret: RsaSecret,
        rng: &mut impl RngCore,
    ) -> RoleAuthority {
        // lint:allow(panic-path) reason="constructor precondition on operator-supplied config at setup time, not attacker-reachable protocol data"
        assert!(levels >= 1, "need at least one level");
        let levels = (0..levels)
            .map(|_| GroupAuthority::create_with_rsa(config, rsa.clone(), rsa_secret.clone(), rng))
            .collect();
        RoleAuthority { levels }
    }

    /// Number of clearance levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The per-level authority (e.g. for tracing a level-scoped
    /// transcript).
    pub fn authority_at(&self, level: Level) -> Option<&GroupAuthority> {
        self.levels.get(level)
    }

    /// Admits a member with the given clearance: it joins the sub-groups
    /// of every level `0..=clearance`. Returns the member plus one update
    /// per affected level (to broadcast to existing members).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadSession`] when `clearance` exceeds the configured
    /// levels; admission errors are propagated.
    pub fn admit(
        &mut self,
        clearance: Level,
        rng: &mut impl RngCore,
    ) -> Result<(RoleMember, Vec<LevelUpdate>), CoreError> {
        if clearance >= self.levels.len() {
            return Err(CoreError::BadSession);
        }
        let mut per_level = Vec::with_capacity(clearance + 1);
        let mut updates = Vec::with_capacity(clearance + 1);
        for level in 0..=clearance {
            let (member, update) = self.levels[level].admit(rng)?;
            per_level.push(member);
            updates.push(LevelUpdate { level, update });
        }
        Ok((
            RoleMember {
                clearance,
                per_level,
            },
            updates,
        ))
    }

    /// Revokes a member from every level it holds (demotion to a specific
    /// level can be done by revoking only the upper levels).
    ///
    /// # Errors
    ///
    /// Propagates removal errors.
    pub fn revoke_above(
        &mut self,
        member: &RoleMember,
        keep_levels_below: Level,
        rng: &mut impl RngCore,
    ) -> Result<Vec<LevelUpdate>, CoreError> {
        let mut updates = Vec::new();
        for level in keep_levels_below..=member.clearance {
            let id = member.per_level[level].id();
            let update = self.levels[level].remove(id, rng)?;
            updates.push(LevelUpdate { level, update });
        }
        Ok(updates)
    }
}

impl RoleMember {
    /// This member's clearance.
    pub fn clearance(&self) -> Level {
        self.clearance
    }

    /// The credential for handshakes at `level`, if this member is
    /// cleared for it. Handshaking "at level L" means passing
    /// `member.at_level(L)` into the ordinary handshake driver.
    pub fn at_level(&self, level: Level) -> Option<&Member> {
        self.per_level.get(level)
    }

    /// Applies a level-scoped update; updates for levels above this
    /// member's clearance are (and must be) invisible to it.
    ///
    /// # Errors
    ///
    /// Propagates `Member::apply_update` errors for levels this member
    /// holds.
    pub fn apply_update(&mut self, update: &LevelUpdate) -> Result<(), CoreError> {
        match self.per_level.get_mut(update.level) {
            Some(member) => member.apply_update(&update.update),
            None => Ok(()), // not cleared for that level: nothing to see
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HandshakeOptions, SchemeKind};
    use crate::handshake::{run_handshake, Actor};
    use shs_crypto::drbg::HmacDrbg;

    fn setup() -> (RoleAuthority, Vec<RoleMember>) {
        let mut rng = HmacDrbg::from_seed(b"roles-test");
        let (rsa, secret) = shs_gsig::fixtures::test_rsa_setting().clone();
        let mut ra = RoleAuthority::create_with_rsa(
            GroupConfig::test(SchemeKind::Scheme1),
            3,
            rsa,
            secret,
            &mut rng,
        );
        // Clearances: alice 2 (top), bob 2, carol 1, dave 0.
        let mut members: Vec<RoleMember> = Vec::new();
        for clearance in [2usize, 2, 1, 0] {
            let (m, updates) = ra.admit(clearance, &mut rng).unwrap();
            for u in &updates {
                for existing in members.iter_mut() {
                    existing.apply_update(u).unwrap();
                }
            }
            members.push(m);
        }
        (ra, members)
    }

    #[test]
    fn handshake_at_top_level_only_for_top_clearance() {
        let (_ra, members) = setup();
        let mut rng = HmacDrbg::from_seed(b"roles-hs");
        // Alice and Bob (both clearance 2) handshake at level 2.
        let session = [
            Actor::Member(members[0].at_level(2).unwrap()),
            Actor::Member(members[1].at_level(2).unwrap()),
        ];
        let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng).unwrap();
        assert!(r.outcomes.iter().all(|o| o.accepted));
        // Carol (clearance 1) simply has no level-2 credential.
        assert!(members[2].at_level(2).is_none());
    }

    #[test]
    fn lower_clearance_member_fails_upward_handshake() {
        let (_ra, members) = setup();
        let mut rng = HmacDrbg::from_seed(b"roles-up");
        // Carol tries to pass her level-1 credential in a level-2 session:
        // different sub-group, so the MACs expose nothing and fail.
        let session = [
            Actor::Member(members[0].at_level(2).unwrap()),
            Actor::Member(members[1].at_level(2).unwrap()),
            Actor::Member(members[2].at_level(1).unwrap()),
        ];
        let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng).unwrap();
        assert_eq!(r.outcomes[0].same_group_slots, vec![0, 1]);
        assert!(!r.outcomes[0].accepted);
        assert_eq!(r.outcomes[2].same_group_slots, vec![2]);
    }

    #[test]
    fn everyone_meets_at_level_zero() {
        let (_ra, members) = setup();
        let mut rng = HmacDrbg::from_seed(b"roles-base");
        let session: Vec<Actor<'_>> = members
            .iter()
            .map(|m| Actor::Member(m.at_level(0).unwrap()))
            .collect();
        let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng).unwrap();
        assert!(r.outcomes.iter().all(|o| o.accepted));
    }

    #[test]
    fn demotion_revokes_upper_levels_only() {
        let (mut ra, mut members) = setup();
        let mut rng = HmacDrbg::from_seed(b"roles-demote");
        // Demote Bob to clearance 0: revoke levels 1..=2.
        let bob = members.remove(1);
        let updates = ra.revoke_above(&bob, 1, &mut rng).unwrap();
        assert_eq!(updates.len(), 2);
        for u in &updates {
            for m in members.iter_mut() {
                m.apply_update(u).unwrap();
            }
        }
        // Level-2 handshake between Alice and (stale) Bob now fails...
        let session = [
            Actor::Member(members[0].at_level(2).unwrap()),
            Actor::Member(bob.at_level(2).unwrap()),
        ];
        let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng).unwrap();
        assert!(!r.outcomes[0].accepted);
        // ...but Bob still participates at level 0.
        let session = [
            Actor::Member(members[0].at_level(0).unwrap()),
            Actor::Member(bob.at_level(0).unwrap()),
        ];
        let r = run_handshake(&session, &HandshakeOptions::default(), &mut rng).unwrap();
        assert!(r.outcomes.iter().all(|o| o.accepted));
    }

    #[test]
    fn clearance_bounds_checked() {
        let (mut ra, _members) = setup();
        let mut rng = HmacDrbg::from_seed(b"roles-bounds");
        assert!(matches!(ra.admit(3, &mut rng), Err(CoreError::BadSession)));
        assert!(ra.authority_at(2).is_some());
        assert!(ra.authority_at(3).is_none());
    }
}
