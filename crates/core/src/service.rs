//! Running real GCD handshakes as [`shs_net::serve`] session jobs.
//!
//! `shs-net`'s [`Service`](shs_net::serve::Service) is protocol-agnostic:
//! it schedules [`SessionJob`]s, watches their traffic for liveness, and
//! re-forms aborted sessions among the survivors. [`HandshakeJob`] is
//! the adapter that makes a full GCD handshake such a job:
//!
//! * every attempt runs [`run_handshake_with_net`] over a **fresh**
//!   [`BroadcastNet`] with a **fresh** attempt-scoped DRBG, so a retried
//!   or re-formed session never reuses nonces, blinding values or DGKA
//!   exponents — each attempt is a cryptographically new session whose
//!   transcript shares nothing with the aborted one;
//! * the per-attempt retry behaviour *inside* an attempt stays governed
//!   by [`HandshakeOptions::budget`] (the PR-1 hardened runtime); the
//!   service adds the *between*-attempt layer on top: liveness-driven
//!   roster re-formation, jittered backoff, attempt budget, deadline;
//! * fault injection plugs in per attempt through a [`PlanFactory`], so
//!   chaos tests can hand each attempt a different [`FaultPlan`] (e.g.
//!   crash-stop the first attempt, run the re-formed one clean).
//!
//! Verdict mapping: any slot with [`Outcome::abort`](crate::handshake::Outcome) set — or a session
//! that errors out entirely — is an **abort** (retryable); otherwise the
//! job's [`SuccessPolicy`] decides between success and ordinary failure
//! (terminal: a membership mismatch does not improve with retries).

use crate::handshake::{run_handshake_with_net, Actor};
use crate::{HandshakeOptions, Member, SessionResult};
use shs_crypto::drbg::HmacDrbg;
use shs_net::fault::FaultPlan;
use shs_net::serve::{AttemptContext, AttemptOutcome, AttemptVerdict, SessionJob};
use shs_net::sync::BroadcastNet;
use shs_net::Medium;
use std::sync::Arc;

/// Per-attempt fault-plan source. Returning `None` leaves the attempt's
/// medium fault-free; the context carries the attempt number and roster,
/// so a factory can fault the first attempt and spare the re-formed one.
pub type PlanFactory = Box<dyn FnMut(&AttemptContext) -> Option<FaultPlan> + Send>;

/// When does a completed (non-aborted) handshake count as a success?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuccessPolicy {
    /// Every slot must accept the *full* handshake (`Handshake(Δ) = 1`
    /// for the whole roster).
    FullOnly,
    /// Every member slot must complete at least a partial handshake
    /// (§7: its co-member subgroup verified and keyed). Mixed sessions
    /// where each sub-group succeeds among itself count as success.
    AllowPartial,
}

/// One slot of a job's roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Participant {
    /// Index into the job's member pool.
    Member(usize),
    /// A credential-less adversary slot.
    Outsider,
}

/// A GCD handshake session, packaged as a service job. Build with
/// [`HandshakeJob::new`], customize with the `with_*` methods, submit
/// via [`shs_net::serve::SessionSpec::new`].
pub struct HandshakeJob {
    pool: Arc<Vec<Member>>,
    slots: Vec<Participant>,
    opts: HandshakeOptions,
    label: String,
    policy: SuccessPolicy,
    plans: Option<PlanFactory>,
}

impl HandshakeJob {
    /// A job whose roster is the first `m` members of `pool`, judged
    /// under [`SuccessPolicy::AllowPartial`]. `label` seeds the
    /// attempt-scoped randomness (vary it per session for distinct
    /// transcripts).
    pub fn new(
        pool: Arc<Vec<Member>>,
        m: usize,
        opts: HandshakeOptions,
        label: &str,
    ) -> HandshakeJob {
        let m = m.min(pool.len());
        HandshakeJob {
            pool,
            slots: (0..m).map(Participant::Member).collect(),
            opts,
            label: label.to_string(),
            policy: SuccessPolicy::AllowPartial,
            plans: None,
        }
    }

    /// Overrides the roster with an explicit slot list (mixed groups,
    /// outsiders, duplicates — any composition the session model allows).
    pub fn with_slots(mut self, slots: Vec<Participant>) -> HandshakeJob {
        self.slots = slots;
        self
    }

    /// Overrides the success policy.
    pub fn with_policy(mut self, policy: SuccessPolicy) -> HandshakeJob {
        self.policy = policy;
        self
    }

    /// Installs a per-attempt fault-plan factory.
    pub fn with_plans(
        mut self,
        f: impl FnMut(&AttemptContext) -> Option<FaultPlan> + Send + 'static,
    ) -> HandshakeJob {
        self.plans = Some(Box::new(f));
        self
    }

    /// Fresh deterministic randomness for one attempt: keyed by the job
    /// label, the session id, the attempt number and the service seed,
    /// so no two attempts (or sessions) share a DRBG stream.
    fn attempt_rng(&self, ctx: &AttemptContext) -> HmacDrbg {
        let tag = format!(
            "svc/{}/s{}/a{}/{:016x}",
            self.label, ctx.session_id, ctx.attempt, ctx.seed
        );
        HmacDrbg::from_seed(tag.as_bytes())
    }

    /// Runs one attempt over a caller-supplied [`Medium`] — the seam the
    /// discrete-event simulator uses: the caller owns the medium (and
    /// therefore fault installation and virtual-time accounting), while
    /// the job still derives the fresh attempt-scoped randomness, builds
    /// the roster's actors, and judges the outcome exactly like
    /// [`SessionJob::run_attempt`]. Note the installed [`PlanFactory`]
    /// is **not** consulted here; the caller composes its own plans.
    pub fn run_attempt_on(&mut self, ctx: &AttemptContext, net: &mut dyn Medium) -> AttemptOutcome {
        let actors: Vec<Actor<'_>> = ctx
            .roster
            .iter()
            .map(|orig| match self.slots.get(*orig) {
                Some(Participant::Member(i)) if *i < self.pool.len() => {
                    Actor::Member(&self.pool[*i])
                }
                _ => Actor::Outsider,
            })
            .collect();
        let mut rng = self.attempt_rng(ctx);
        match run_handshake_with_net(&actors, &self.opts, net, &mut rng) {
            Ok(result) => AttemptOutcome {
                verdict: self.judge(&ctx.roster, &result),
                traffic: result.traffic,
            },
            Err(_) => AttemptOutcome {
                // A session-level error is an abort: whatever traffic the
                // medium saw before the failure still feeds liveness.
                verdict: AttemptVerdict::Abort,
                traffic: net.traffic_snapshot(),
            },
        }
    }

    fn judge(&self, roster: &[usize], result: &SessionResult) -> AttemptVerdict {
        if result.outcomes.iter().any(|o| o.abort.is_some()) {
            return AttemptVerdict::Abort;
        }
        let ok = match self.policy {
            SuccessPolicy::FullOnly => result.outcomes.iter().all(|o| o.accepted),
            SuccessPolicy::AllowPartial => result
                .outcomes
                .iter()
                .zip(roster)
                .filter(|(_, orig)| matches!(self.slots[**orig], Participant::Member(_)))
                .all(|(o, _)| o.partial_accepted()),
        };
        if ok {
            AttemptVerdict::Success
        } else {
            AttemptVerdict::Failure
        }
    }
}

impl SessionJob for HandshakeJob {
    fn roster_len(&self) -> usize {
        self.slots.len()
    }

    fn run_attempt(&mut self, ctx: &AttemptContext) -> AttemptOutcome {
        let mut net = BroadcastNet::new(ctx.roster.len(), self.opts.delivery);
        if let Some(factory) = &mut self.plans {
            if let Some(plan) = factory(ctx) {
                net.set_fault_plan(plan);
            }
        }
        self.run_attempt_on(ctx, &mut net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::SchemeKind;
    use shs_net::serve::live_slots;

    fn member_pool(n: usize, seed: &str) -> Arc<Vec<Member>> {
        let mut rng = HmacDrbg::from_seed(seed.as_bytes());
        let mut ga = fixtures::test_authority(SchemeKind::Scheme1, &mut rng);
        let mut members: Vec<Member> = Vec::new();
        for _ in 0..n {
            let (m, update) = ga.admit(&mut rng).unwrap();
            for existing in &mut members {
                existing.apply_update(&update).unwrap();
            }
            members.push(m);
        }
        Arc::new(members)
    }

    fn ctx(attempt: u32, roster: Vec<usize>) -> AttemptContext {
        AttemptContext {
            session_id: 1,
            attempt,
            roster,
            seed: 42,
        }
    }

    #[test]
    fn clean_attempt_succeeds_with_uniform_liveness() {
        let pool = member_pool(3, "svc-clean");
        let mut job = HandshakeJob::new(pool, 3, HandshakeOptions::default(), "t1");
        let out = job.run_attempt(&ctx(0, vec![0, 1, 2]));
        assert_eq!(out.verdict, AttemptVerdict::Success);
        assert_eq!(live_slots(&[0, 1, 2], &out.traffic), vec![0, 1, 2]);
    }

    #[test]
    fn crash_stop_aborts_and_marks_the_crashed_slot_dead() {
        let pool = member_pool(3, "svc-crash");
        let mut job =
            HandshakeJob::new(pool, 3, HandshakeOptions::default(), "t2").with_plans(|ctx| {
                (ctx.attempt == 0)
                    .then(|| FaultPlan::new(7).with(shs_net::fault::FaultRule::crash_stop(2, 1)))
            });
        let out = job.run_attempt(&ctx(0, vec![0, 1, 2]));
        assert_eq!(out.verdict, AttemptVerdict::Abort);
        assert_eq!(live_slots(&[0, 1, 2], &out.traffic), vec![0, 1]);
        // The re-formed attempt among survivors is clean and succeeds.
        let out = job.run_attempt(&ctx(1, vec![0, 1]));
        assert_eq!(out.verdict, AttemptVerdict::Success);
    }

    #[test]
    fn outsider_session_is_a_failure_not_an_abort() {
        let pool = member_pool(1, "svc-outsider");
        let mut job = HandshakeJob::new(pool, 1, HandshakeOptions::default(), "t3")
            .with_slots(vec![Participant::Member(0), Participant::Outsider]);
        let out = job.run_attempt(&ctx(0, vec![0, 1]));
        assert_eq!(out.verdict, AttemptVerdict::Failure);
    }

    #[test]
    fn retried_attempts_never_share_a_transcript() {
        let pool = member_pool(2, "svc-fresh");
        let mut job = HandshakeJob::new(pool, 2, HandshakeOptions::default(), "t4");
        let a = job.run_attempt(&ctx(0, vec![0, 1]));
        let b = job.run_attempt(&ctx(1, vec![0, 1]));
        assert_eq!(a.verdict, AttemptVerdict::Success);
        assert_eq!(b.verdict, AttemptVerdict::Success);
        assert_eq!(a.traffic.shape(), b.traffic.shape(), "same wire shape");
        assert_ne!(a.traffic, b.traffic, "fresh payload bits every attempt");
    }
}
