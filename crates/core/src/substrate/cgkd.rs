//! CGKD substrate: the centralized key-distribution contract.
//!
//! [`Cgkd`] is the group controller's end (`CGKD.{Create, Join,
//! Leave}`, held by the [`crate::GroupAuthority`]) and [`CgkdSlot`] is
//! one member's key state (`CGKD.Rekey`, carried inside
//! [`crate::Member`]). The [`RekeyBroadcast`] that links them is an
//! opaque envelope: members hand it back to their own backend and only
//! the epoch number is public, so the bulletin-board and update-sealing
//! logic stays backend-agnostic.
//!
//! Backends are constructed exclusively by
//! [`crate::factory::cgkd_controller`].

use rand::RngCore;
use shs_cgkd::lkh::{LkhBroadcast, LkhController, LkhMember};
use shs_cgkd::sd::{SdBroadcast, SdController, SdMember};
use shs_cgkd::star::{StarBroadcast, StarController, StarMember};
use shs_cgkd::{CgkdError, Controller, MemberState, UserId};
use shs_crypto::Key;

/// A rekey broadcast from whichever CGKD backend the group runs.
///
/// Opaque outside the substrate layer: protocols treat it as a sealed
/// envelope whose only public attribute is the epoch it establishes.
#[derive(Debug, Clone)]
pub struct RekeyBroadcast {
    pub(crate) body: RekeyBody,
}

/// Backend-specific broadcast payload.
#[derive(Debug, Clone)]
pub(crate) enum RekeyBody {
    /// LKH rekey items.
    Lkh(LkhBroadcast),
    /// Subset-Difference cover broadcast.
    Sd(SdBroadcast),
    /// Star (pairwise-key) rekey items.
    Star(StarBroadcast),
}

impl RekeyBroadcast {
    /// The epoch this broadcast establishes.
    pub fn epoch(&self) -> u64 {
        match &self.body {
            RekeyBody::Lkh(b) => b.epoch,
            RekeyBody::Sd(b) => b.epoch,
            RekeyBody::Star(b) => b.epoch,
        }
    }
}

/// The controller end of a centralized group key distribution scheme
/// (`CGKD.{Join, Leave}` plus state queries).
pub trait Cgkd: Send + Sync {
    /// `CGKD.Join`: admits a user, returning their id, their member-side
    /// key state, and the rekey broadcast existing members must process.
    ///
    /// # Errors
    ///
    /// [`CgkdError::Full`] when the tree/star is at capacity.
    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, Box<dyn CgkdSlot>, RekeyBroadcast), CgkdError>;

    /// `CGKD.Leave`: evicts a user and rekeys the remaining members.
    ///
    /// # Errors
    ///
    /// [`CgkdError::UnknownMember`] for ids not currently in the group.
    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<RekeyBroadcast, CgkdError>;

    /// Current group key (controller side).
    fn group_key(&self) -> &Key;

    /// Current epoch.
    fn epoch(&self) -> u64;

    /// Ids of current members.
    fn members(&self) -> Vec<UserId>;
}

/// One member's key state (`CGKD.Rekey` and key queries).
pub trait CgkdSlot: Send + Sync {
    /// `CGKD.Rekey`: processes a rekey broadcast.
    ///
    /// # Errors
    ///
    /// [`CgkdError::CannotDecrypt`] when this member is excluded from
    /// the broadcast (evicted members land here) or the envelope comes
    /// from a different backend.
    fn process(&mut self, rekey: &RekeyBroadcast) -> Result<(), CgkdError>;

    /// This member's current group key `k_i`.
    fn group_key(&self) -> &Key;

    /// This member's view of the epoch.
    fn epoch(&self) -> u64;

    /// This member's CGKD user id.
    fn id(&self) -> UserId;

    /// Overwrites the group key without any rekey processing — the §3
    /// attack model of experiment E7b (see
    /// [`shs_cgkd::MemberState::force_group_key`]).
    fn force_group_key(&mut self, key: Key, epoch: u64);

    /// Clones the slot behind the trait object.
    fn clone_slot(&self) -> Box<dyn CgkdSlot>;
}

impl Clone for Box<dyn CgkdSlot> {
    fn clone(&self) -> Self {
        self.clone_slot()
    }
}

/// Generates the [`Cgkd`]/[`CgkdSlot`] wrapper pair for one backend.
macro_rules! cgkd_backend {
    ($(#[$cdoc:meta])* $ctrl_wrap:ident($ctrl:ty),
     $(#[$mdoc:meta])* $slot_wrap:ident($member:ty),
     $variant:ident) => {
        $(#[$cdoc])*
        pub(crate) struct $ctrl_wrap(pub(crate) $ctrl);

        $(#[$mdoc])*
        #[derive(Debug, Clone)]
        pub(crate) struct $slot_wrap(pub(crate) $member);

        impl Cgkd for $ctrl_wrap {
            fn admit(
                &mut self,
                rng: &mut dyn RngCore,
            ) -> Result<(UserId, Box<dyn CgkdSlot>, RekeyBroadcast), CgkdError> {
                let (uid, welcome, rekey) = self.0.admit(rng)?;
                let slot = Box::new($slot_wrap(self.0.member_from_welcome(welcome)));
                let broadcast = RekeyBroadcast {
                    body: RekeyBody::$variant(rekey),
                };
                Ok((uid, slot, broadcast))
            }

            fn evict(
                &mut self,
                id: UserId,
                rng: &mut dyn RngCore,
            ) -> Result<RekeyBroadcast, CgkdError> {
                Ok(RekeyBroadcast {
                    body: RekeyBody::$variant(self.0.evict(id, rng)?),
                })
            }

            fn group_key(&self) -> &Key {
                self.0.group_key()
            }

            fn epoch(&self) -> u64 {
                self.0.epoch()
            }

            fn members(&self) -> Vec<UserId> {
                self.0.members()
            }
        }

        impl CgkdSlot for $slot_wrap {
            fn process(&mut self, rekey: &RekeyBroadcast) -> Result<(), CgkdError> {
                if let RekeyBody::$variant(b) = &rekey.body {
                    self.0.process(b)
                } else {
                    Err(CgkdError::CannotDecrypt)
                }
            }

            fn group_key(&self) -> &Key {
                self.0.group_key()
            }

            fn epoch(&self) -> u64 {
                self.0.epoch()
            }

            fn id(&self) -> UserId {
                self.0.id()
            }

            fn force_group_key(&mut self, key: Key, epoch: u64) {
                self.0.force_group_key(key, epoch);
            }

            fn clone_slot(&self) -> Box<dyn CgkdSlot> {
                Box::new(self.clone())
            }
        }
    };
}

cgkd_backend!(
    /// Logical-key-hierarchy backend.
    LkhCgkd(LkhController),
    /// LKH member state (path keys).
    LkhSlot(LkhMember),
    Lkh
);

cgkd_backend!(
    /// Subset-Difference backend.
    SdCgkd(SdController),
    /// SD member state (labels; stateless receiver).
    SdSlot(SdMember),
    Sd
);

cgkd_backend!(
    /// Star (pairwise-key) backend — the paper's minimal `O(n)`-rekey
    /// baseline.
    StarCgkd(StarController),
    /// Star member state (individual key + current group key).
    StarSlot(StarMember),
    Star
);
