//! CGKD substrate: the centralized key-distribution contract.
//!
//! [`Cgkd`] is the group controller's end (`CGKD.{Create, Join,
//! Leave}`, held by the [`crate::GroupAuthority`]) and [`CgkdSlot`] is
//! one member's key state (`CGKD.Rekey`, carried inside
//! [`crate::Member`]). The [`RekeyBroadcast`] that links them is an
//! opaque envelope: members hand it back to their own backend and only
//! the epoch number is public, so the bulletin-board and update-sealing
//! logic stays backend-agnostic.
//!
//! Backends are constructed exclusively by
//! [`crate::factory::cgkd_controller`].

use rand::RngCore;
use shs_cgkd::lkh::{LkhBroadcast, LkhController, LkhMember};
use shs_cgkd::sd::{SdBroadcast, SdController, SdMember};
use shs_cgkd::star::{StarBroadcast, StarController, StarMember};
use shs_cgkd::{BroadcastStats, CgkdError, Controller, MemberState, UserId};
use shs_crypto::Key;
use std::collections::HashSet;

/// A rekey broadcast from whichever CGKD backend the group runs.
///
/// Opaque outside the substrate layer: protocols treat it as a sealed
/// envelope whose only public attribute is the epoch it establishes.
#[derive(Debug, Clone)]
pub struct RekeyBroadcast {
    pub(crate) body: RekeyBody,
}

/// Backend-specific broadcast payload.
#[derive(Debug, Clone)]
pub(crate) enum RekeyBody {
    /// LKH rekey items.
    Lkh(LkhBroadcast),
    /// Subset-Difference cover broadcast.
    Sd(SdBroadcast),
    /// Star (pairwise-key) rekey items.
    Star(StarBroadcast),
}

impl RekeyBroadcast {
    /// The epoch this broadcast establishes.
    pub fn epoch(&self) -> u64 {
        match &self.body {
            RekeyBody::Lkh(b) => b.epoch,
            RekeyBody::Sd(b) => b.epoch,
            RekeyBody::Star(b) => b.epoch,
        }
    }

    /// Size statistics of this broadcast (bench instrumentation).
    pub fn stats(&self) -> BroadcastStats {
        match &self.body {
            RekeyBody::Lkh(b) => LkhController::stats(b),
            RekeyBody::Sd(b) => SdController::stats(b),
            RekeyBody::Star(b) => StarController::stats(b),
        }
    }
}

/// The aggregate rekey record of one churn *epoch window*: every join
/// and leave the authority batched together, as the ordered sequence of
/// backend broadcasts a member must process to cross the window.
///
/// Backends with native batching (LKH, SD) emit a single step covering
/// the union of affected paths once; backends without it (Star) fall
/// back to one step per membership change. Either way the bulletin board
/// stores one [`EpochBroadcast`] per window and a member syncs in
/// O(changes since its own epoch).
#[derive(Debug, Clone)]
pub struct EpochBroadcast {
    pub(crate) epoch: u64,
    pub(crate) steps: Vec<RekeyBroadcast>,
}

impl EpochBroadcast {
    /// Wraps a single-operation rekey as its own epoch window.
    pub fn single(rekey: RekeyBroadcast) -> EpochBroadcast {
        EpochBroadcast {
            epoch: rekey.epoch(),
            steps: vec![rekey],
        }
    }

    /// The epoch a member lands on after processing the whole window.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ordered backend broadcasts of the window.
    pub fn steps(&self) -> &[RekeyBroadcast] {
        &self.steps
    }

    /// Whether the window contained no membership change (such a record
    /// must not be distributed).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Aggregate size statistics across all steps.
    pub fn stats(&self) -> BroadcastStats {
        let mut total = BroadcastStats::default();
        for step in &self.steps {
            let s = step.stats();
            total.items += s.items;
            total.bytes += s.bytes;
        }
        total
    }
}

/// Result of a batched [`Cgkd::apply_epoch`] window.
pub struct EpochOutcome {
    /// Member slots for the users admitted in this window, already
    /// synced to the post-window epoch.
    pub joined: Vec<(UserId, Box<dyn CgkdSlot>)>,
    /// The rekey record existing members must process.
    pub broadcast: EpochBroadcast,
}

/// The controller end of a centralized group key distribution scheme
/// (`CGKD.{Join, Leave}` plus state queries).
pub trait Cgkd: Send + Sync {
    /// `CGKD.Join`: admits a user, returning their id, their member-side
    /// key state, and the rekey broadcast existing members must process.
    ///
    /// # Errors
    ///
    /// [`CgkdError::Full`] when the tree/star is at capacity.
    fn admit(
        &mut self,
        rng: &mut dyn RngCore,
    ) -> Result<(UserId, Box<dyn CgkdSlot>, RekeyBroadcast), CgkdError>;

    /// `CGKD.Leave`: evicts a user and rekeys the remaining members.
    ///
    /// # Errors
    ///
    /// [`CgkdError::UnknownMember`] for ids not currently in the group.
    fn evict(&mut self, id: UserId, rng: &mut dyn RngCore) -> Result<RekeyBroadcast, CgkdError>;

    /// Batched epoch rekey: applies a whole churn window — evicting
    /// `leaves`, then admitting `joins` users — and returns the admitted
    /// slots (already synced past the window) plus one
    /// [`EpochBroadcast`] for everyone else.
    ///
    /// The default implementation loops [`Cgkd::evict`] and
    /// [`Cgkd::admit`], producing one step per change; backends with
    /// native batching override it to rekey the union of affected paths
    /// once. An empty window is a no-op yielding an empty broadcast at
    /// the current epoch.
    ///
    /// # Errors
    ///
    /// [`CgkdError::UnknownMember`] for unknown or duplicated leaver ids
    /// (checked up front); [`CgkdError::Full`] when capacity runs out.
    /// The default implementation may have applied part of the window
    /// when `Full` is reported mid-loop.
    fn apply_epoch(
        &mut self,
        joins: usize,
        leaves: &[UserId],
        rng: &mut dyn RngCore,
    ) -> Result<EpochOutcome, CgkdError> {
        if joins == 0 && leaves.is_empty() {
            return Ok(EpochOutcome {
                joined: Vec::new(),
                broadcast: EpochBroadcast {
                    epoch: self.epoch(),
                    steps: Vec::new(),
                },
            });
        }
        let roster: HashSet<UserId> = self.members().into_iter().collect();
        let mut seen = HashSet::new();
        for id in leaves {
            if !roster.contains(id) || !seen.insert(*id) {
                return Err(CgkdError::UnknownMember);
            }
        }
        let mut steps = Vec::with_capacity(leaves.len() + joins);
        let mut joined: Vec<(UserId, Box<dyn CgkdSlot>)> = Vec::with_capacity(joins);
        for id in leaves {
            steps.push(self.evict(*id, rng)?);
        }
        for _ in 0..joins {
            let (uid, slot, rekey) = self.admit(rng)?;
            // Every joiner of the window — including the fresh one, whose
            // slot starts at the pre-join epoch — follows each step, so
            // all returned slots end at the post-window epoch.
            joined.push((uid, slot));
            for (_, s) in joined.iter_mut() {
                s.process(&rekey)?;
            }
            steps.push(rekey);
        }
        Ok(EpochOutcome {
            joined,
            broadcast: EpochBroadcast {
                epoch: self.epoch(),
                steps,
            },
        })
    }

    /// Current group key (controller side).
    fn group_key(&self) -> &Key;

    /// Current epoch.
    fn epoch(&self) -> u64;

    /// Ids of current members.
    fn members(&self) -> Vec<UserId>;
}

/// One member's key state (`CGKD.Rekey` and key queries).
pub trait CgkdSlot: Send + Sync {
    /// `CGKD.Rekey`: processes a rekey broadcast.
    ///
    /// # Errors
    ///
    /// [`CgkdError::CannotDecrypt`] when this member is excluded from
    /// the broadcast (evicted members land here) or the envelope comes
    /// from a different backend.
    fn process(&mut self, rekey: &RekeyBroadcast) -> Result<(), CgkdError>;

    /// Processes one whole epoch window in order. Costs O(changes in the
    /// window); an empty window is rejected as out-of-order (it should
    /// never have been distributed).
    ///
    /// # Errors
    ///
    /// As [`CgkdSlot::process`], from the first failing step;
    /// [`CgkdError::EpochMismatch`] for an empty window.
    fn process_epoch(&mut self, window: &EpochBroadcast) -> Result<(), CgkdError> {
        if window.steps.is_empty() {
            return Err(CgkdError::EpochMismatch);
        }
        for step in &window.steps {
            self.process(step)?;
        }
        Ok(())
    }

    /// This member's current group key `k_i`.
    fn group_key(&self) -> &Key;

    /// This member's view of the epoch.
    fn epoch(&self) -> u64;

    /// This member's CGKD user id.
    fn id(&self) -> UserId;

    /// Overwrites the group key without any rekey processing — the §3
    /// attack model of experiment E7b (see
    /// [`shs_cgkd::MemberState::force_group_key`]).
    fn force_group_key(&mut self, key: Key, epoch: u64);

    /// Clones the slot behind the trait object.
    fn clone_slot(&self) -> Box<dyn CgkdSlot>;
}

impl Clone for Box<dyn CgkdSlot> {
    fn clone(&self) -> Self {
        self.clone_slot()
    }
}

/// Generates the [`Cgkd`]/[`CgkdSlot`] wrapper pair for one backend.
///
/// The trailing `native` marker routes [`Cgkd::apply_epoch`] to the
/// backend's own batched implementation (one union rekey per window)
/// instead of the default evict/admit loop.
macro_rules! cgkd_backend {
    ($(#[$cdoc:meta])* $ctrl_wrap:ident($ctrl:ty),
     $(#[$mdoc:meta])* $slot_wrap:ident($member:ty),
     $variant:ident, native) => {
        cgkd_backend!(@emit $(#[$cdoc])* $ctrl_wrap($ctrl),
                      $(#[$mdoc])* $slot_wrap($member),
                      $variant, {
            // Native batched window: one union rekey, one step.
            fn apply_epoch(
                &mut self,
                joins: usize,
                leaves: &[UserId],
                rng: &mut dyn RngCore,
            ) -> Result<EpochOutcome, CgkdError> {
                if joins == 0 && leaves.is_empty() {
                    return Ok(EpochOutcome {
                        joined: Vec::new(),
                        broadcast: EpochBroadcast {
                            epoch: self.0.epoch(),
                            steps: Vec::new(),
                        },
                    });
                }
                let (welcomes, rekey) = self.0.apply_epoch(joins, leaves, rng)?;
                let mut joined: Vec<(UserId, Box<dyn CgkdSlot>)> =
                    Vec::with_capacity(welcomes.len());
                for (uid, welcome) in welcomes {
                    // Joiners bootstrap from their welcome plus the same
                    // window broadcast everyone else processes.
                    let mut member = self.0.member_from_welcome(welcome);
                    member.process(&rekey)?;
                    joined.push((uid, Box::new($slot_wrap(member))));
                }
                Ok(EpochOutcome {
                    joined,
                    broadcast: EpochBroadcast {
                        epoch: rekey.epoch,
                        steps: vec![RekeyBroadcast {
                            body: RekeyBody::$variant(rekey),
                        }],
                    },
                })
            }
        });
    };
    ($(#[$cdoc:meta])* $ctrl_wrap:ident($ctrl:ty),
     $(#[$mdoc:meta])* $slot_wrap:ident($member:ty),
     $variant:ident) => {
        cgkd_backend!(@emit $(#[$cdoc])* $ctrl_wrap($ctrl),
                      $(#[$mdoc])* $slot_wrap($member),
                      $variant, {});
    };
    (@emit $(#[$cdoc:meta])* $ctrl_wrap:ident($ctrl:ty),
     $(#[$mdoc:meta])* $slot_wrap:ident($member:ty),
     $variant:ident, {$($override:tt)*}) => {
        $(#[$cdoc])*
        pub(crate) struct $ctrl_wrap(pub(crate) $ctrl);

        $(#[$mdoc])*
        #[derive(Debug, Clone)]
        pub(crate) struct $slot_wrap(pub(crate) $member);

        impl Cgkd for $ctrl_wrap {
            fn admit(
                &mut self,
                rng: &mut dyn RngCore,
            ) -> Result<(UserId, Box<dyn CgkdSlot>, RekeyBroadcast), CgkdError> {
                let (uid, welcome, rekey) = self.0.admit(rng)?;
                let slot = Box::new($slot_wrap(self.0.member_from_welcome(welcome)));
                let broadcast = RekeyBroadcast {
                    body: RekeyBody::$variant(rekey),
                };
                Ok((uid, slot, broadcast))
            }

            fn evict(
                &mut self,
                id: UserId,
                rng: &mut dyn RngCore,
            ) -> Result<RekeyBroadcast, CgkdError> {
                Ok(RekeyBroadcast {
                    body: RekeyBody::$variant(self.0.evict(id, rng)?),
                })
            }

            fn group_key(&self) -> &Key {
                self.0.group_key()
            }

            fn epoch(&self) -> u64 {
                self.0.epoch()
            }

            fn members(&self) -> Vec<UserId> {
                self.0.members()
            }

            $($override)*
        }

        impl CgkdSlot for $slot_wrap {
            fn process(&mut self, rekey: &RekeyBroadcast) -> Result<(), CgkdError> {
                if let RekeyBody::$variant(b) = &rekey.body {
                    self.0.process(b)
                } else {
                    Err(CgkdError::CannotDecrypt)
                }
            }

            fn group_key(&self) -> &Key {
                self.0.group_key()
            }

            fn epoch(&self) -> u64 {
                self.0.epoch()
            }

            fn id(&self) -> UserId {
                self.0.id()
            }

            fn force_group_key(&mut self, key: Key, epoch: u64) {
                self.0.force_group_key(key, epoch);
            }

            fn clone_slot(&self) -> Box<dyn CgkdSlot> {
                Box::new(self.clone())
            }
        }
    };
}

cgkd_backend!(
    /// Logical-key-hierarchy backend.
    LkhCgkd(LkhController),
    /// LKH member state (path keys).
    LkhSlot(LkhMember),
    Lkh,
    native
);

cgkd_backend!(
    /// Subset-Difference backend.
    SdCgkd(SdController),
    /// SD member state (labels; stateless receiver).
    SdSlot(SdMember),
    Sd,
    native
);

cgkd_backend!(
    /// Star (pairwise-key) backend — the paper's minimal `O(n)`-rekey
    /// baseline.
    StarCgkd(StarController),
    /// Star member state (individual key + current group key).
    StarSlot(StarMember),
    Star
);
