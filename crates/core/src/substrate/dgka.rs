//! DGKA substrate: phase-structured slot state machines for Phase I.
//!
//! A [`DgkaSlot`] is one party of the distributed group key agreement,
//! decomposed into the uniform per-round cycle the
//! `crate::handshake::engine` scheduler drives:
//!
//! 1. `emit(t)` — produce this slot's round-`t` wire payload (chaff of
//!    the protocol-determined length when the slot has aborted or is
//!    inactive this round, so the wire shape never reveals either),
//! 2. `validate(t, from, payload)` — receiver-side acceptance test the
//!    exchange engine uses to decide whether a delivery counts (and so
//!    whether to spend retransmission budget),
//! 3. `absorb(t, view, …)` — consume the round's view,
//! 4. `finish()` — output [`Phase1Slot`] state, real or decoy.
//!
//! The scheduler meters `emit`/`absorb`/`finish` into the slot's
//! [`crate::handshake::SlotCosts`]; work done inside `validate` is
//! *not* metered (it models the receiver's cheap wire filtering —
//! decode checks for BD/GDH; for the authenticated variant it also
//! re-checks signatures, whose metered counterpart runs in `absorb`).
//!
//! Implementations are constructed exclusively by
//! [`crate::factory::dgka_slots`]. Wire formats and round labels are
//! part of each implementation's contract (fault-injection plans match
//! on them) and must stay stable.

use crate::handshake::decoy::{chaff, decoy_phase1};
use crate::handshake::AbortReason;
use crate::{codec, CoreError};
use rand::RngCore;
use shs_bigint::Ubig;
use shs_crypto::Key;
use shs_dgka::{ake, bd, gdh, sig};
use shs_groups::schnorr::SchnorrGroup;

/// The per-slot output of Phase I: session id, agreed key `k*`, and the
/// raw per-sender contributions (exactly the bytes this slot saw on the
/// wire), which feed the Phase-II MACs and the self-distinction basis.
pub struct Phase1Slot {
    /// Session id `sid`.
    pub sid: Vec<u8>,
    /// The agreed group-session key `k*` (random for aborted slots).
    pub k_star: Key,
    /// Per-sender framed protocol messages as this slot saw them
    /// (empty where nothing valid ever arrived).
    pub contributions: Vec<Vec<u8>>,
}

/// One party of a distributed group key agreement, as a round-driven
/// state machine (`DGKA.{Contribute, Derive}` of the paper's §4
/// interface, unrolled into broadcast rounds).
///
/// The driving scheduler guarantees: `emit`, then `validate` (as other
/// slots' payloads arrive), then `absorb`, for `t = 0 .. rounds()`, then
/// one `finish`. A slot must stay silent about its own failures —
/// aborting means emitting chaff of the correct length from then on and
/// reporting the abort only through `finish`.
pub trait DgkaSlot: Send {
    /// Number of broadcast rounds.
    fn rounds(&self) -> usize;

    /// Wire label of round `t` (fault plans and traffic logs key on it).
    fn round_label(&self, t: usize) -> String;

    /// Produces this slot's round-`t` payload (chaff when aborted or
    /// inactive — never nothing: uniform shape is the abort cover).
    fn emit(&mut self, t: usize, rng: &mut dyn RngCore) -> Vec<u8>;

    /// Receiver-side acceptance test for a round-`t` delivery from slot
    /// `from`. Rejected payloads are treated as never received, which
    /// is what triggers retransmission spending.
    fn validate(&self, t: usize, from: usize, payload: &[u8]) -> bool;

    /// Consumes the round-`t` view (`view[j]` = best valid copy of slot
    /// `j`'s payload). `incomplete` carries the exchange engine's abort
    /// reason when some sender's payload never validly arrived.
    fn absorb(
        &mut self,
        t: usize,
        view: &[Option<Vec<u8>>],
        incomplete: Option<AbortReason>,
        rng: &mut dyn RngCore,
    );

    /// Derives the slot's Phase-I output. Aborted slots return decoy
    /// state (random `sid`/`k*`) plus their abort reason.
    fn finish(&mut self, rng: &mut dyn RngCore) -> (Phase1Slot, Option<AbortReason>);
}

// ---------------------------------------------------------------------------
// Shared wire codecs
// ---------------------------------------------------------------------------

pub(crate) fn encode_elem(group: &SchnorrGroup, sender: usize, v: &Ubig) -> Vec<u8> {
    let mut w = crate::wire::Writer::new();
    w.put_u32(sender as u32);
    w.put_ubig_fixed(v, codec::p_width(group));
    w.into_bytes()
}

pub(crate) fn decode_elem(
    group: &SchnorrGroup,
    from: usize,
    bytes: &[u8],
) -> Result<(usize, Ubig), CoreError> {
    let mut r = crate::wire::Reader::new(bytes);
    let sender = r.take_u32()? as usize;
    let v = r.take_ubig_fixed(codec::p_width(group))?;
    r.finish()?;
    if sender != from {
        return Err(CoreError::BadSession);
    }
    Ok((sender, v))
}

fn elem_len(group: &SchnorrGroup) -> usize {
    4 + codec::p_width(group)
}

// ---------------------------------------------------------------------------
// Burmester–Desmedt
// ---------------------------------------------------------------------------

/// One Burmester–Desmedt party: two broadcast rounds, everyone active
/// in both. A slot's "contribution" is its framed `(z_i, X_i)` pair.
pub(crate) struct BdSlot {
    group: &'static SchnorrGroup,
    m: usize,
    index: usize,
    party: Option<bd::Party<'static>>,
    r1_view: Vec<Option<Vec<u8>>>,
    r2_view: Vec<Option<Vec<u8>>>,
    abort: Option<AbortReason>,
}

impl BdSlot {
    pub(crate) fn new(group: &'static SchnorrGroup, m: usize, index: usize) -> BdSlot {
        BdSlot {
            group,
            m,
            index,
            party: None,
            r1_view: Vec::new(),
            r2_view: Vec::new(),
            abort: None,
        }
    }
}

/// Decodes every present element of a round view, dropping entries that
/// fail (the exchange already validated them; decode defensively
/// anyway).
fn decode_elem_round(group: &SchnorrGroup, view: &[Option<Vec<u8>>]) -> Vec<(usize, Ubig)> {
    view.iter()
        .enumerate()
        .filter_map(|(j, p)| decode_elem(group, j, p.as_deref()?).ok())
        .collect()
}

impl DgkaSlot for BdSlot {
    fn rounds(&self) -> usize {
        2
    }

    fn round_label(&self, t: usize) -> String {
        if t == 0 { "dgka-r1" } else { "dgka-r2" }.to_string()
    }

    fn emit(&mut self, t: usize, rng: &mut dyn RngCore) -> Vec<u8> {
        if t == 0 {
            return match bd::Party::start(self.group, self.m, self.index, rng) {
                Ok((party, r1)) => {
                    let payload = encode_elem(self.group, self.index, &r1.z);
                    self.party = Some(party);
                    payload
                }
                Err(_) => {
                    self.abort = Some(AbortReason::KeyAgreement);
                    chaff(elem_len(self.group), rng)
                }
            };
        }
        // Round 2 (any later round is unreachable; chaff keeps it safe).
        if t == 1 && self.abort.is_none() {
            let msgs: Vec<bd::Round1> = decode_elem_round(self.group, &self.r1_view)
                .into_iter()
                .map(|(sender, z)| bd::Round1 { sender, z })
                .collect();
            if msgs.len() == self.m {
                if let Some(party) = self.party.as_mut() {
                    match party.round2(&msgs) {
                        Ok(r2) => return encode_elem(self.group, self.index, &r2.x),
                        Err(_) => self.abort = Some(AbortReason::KeyAgreement),
                    }
                }
            } else {
                self.abort.get_or_insert(AbortReason::KeyAgreement);
            }
        }
        chaff(elem_len(self.group), rng)
    }

    fn validate(&self, _t: usize, from: usize, payload: &[u8]) -> bool {
        decode_elem(self.group, from, payload).is_ok()
    }

    fn absorb(
        &mut self,
        t: usize,
        view: &[Option<Vec<u8>>],
        incomplete: Option<AbortReason>,
        _rng: &mut dyn RngCore,
    ) {
        if let Some(reason) = incomplete {
            self.abort.get_or_insert(reason);
        }
        if t == 0 {
            self.r1_view = view.to_vec();
        } else {
            self.r2_view = view.to_vec();
        }
    }

    fn finish(&mut self, rng: &mut dyn RngCore) -> (Phase1Slot, Option<AbortReason>) {
        // Contribution of sender j = framed r1 ‖ r2 as this slot saw
        // them (empty where nothing valid ever arrived).
        let mut contributions = vec![Vec::new(); self.m];
        for (j, slot_contrib) in contributions.iter_mut().enumerate() {
            if let (Some(Some(r1)), Some(Some(r2))) = (self.r1_view.get(j), self.r2_view.get(j)) {
                let mut w = crate::wire::Writer::new();
                w.put_bytes(r1);
                w.put_bytes(r2);
                *slot_contrib = w.into_bytes();
            }
        }
        if self.abort.is_none() {
            let msgs: Vec<bd::Round2> = decode_elem_round(self.group, &self.r2_view)
                .into_iter()
                .map(|(sender, x)| bd::Round2 { sender, x })
                .collect();
            if msgs.len() == self.m {
                if let Some(session) = self
                    .party
                    .as_ref()
                    .and_then(|party| party.finish(&msgs).ok())
                {
                    return (
                        Phase1Slot {
                            sid: session.sid.to_vec(),
                            k_star: session.key,
                            contributions,
                        },
                        None,
                    );
                }
            }
            self.abort = Some(AbortReason::KeyAgreement);
        }
        (decoy_phase1(contributions, rng), self.abort)
    }
}

// ---------------------------------------------------------------------------
// GDH.2
// ---------------------------------------------------------------------------

/// One GDH.2 party: an `m`-round chain in which round `t` belongs to
/// slot `t`. To keep the wire shape independent of who is doing what,
/// **every** inactive slot transmits cover traffic of exactly the
/// active message's length each round (a standard cover-traffic
/// discipline on anonymous broadcast media). A slot only observes its
/// own link of the chain: when an upstream hop broke, it learns so by
/// failing to decode its predecessor's (chaff) message, which costs
/// retransmission budget but keeps every slot's knowledge strictly
/// local.
pub(crate) struct GdhSlot {
    group: &'static SchnorrGroup,
    m: usize,
    index: usize,
    party: gdh::Party<'static>,
    /// The upflow this slot must extend when its round comes.
    pending: Option<gdh::Upflow>,
    /// This slot's own link is still intact.
    ok: bool,
    contributions: Vec<Vec<u8>>,
    final_broadcast: Option<gdh::Broadcast>,
    last_reason: Option<AbortReason>,
}

impl GdhSlot {
    pub(crate) fn new(
        group: &'static SchnorrGroup,
        m: usize,
        index: usize,
        rng: &mut dyn RngCore,
    ) -> Result<GdhSlot, CoreError> {
        let party = gdh::Party::new(group, m, index, rng).map_err(CoreError::Dgka)?;
        Ok(GdhSlot {
            group,
            m,
            index,
            party,
            pending: None,
            ok: true,
            contributions: vec![Vec::new(); m],
            final_broadcast: None,
            last_reason: None,
        })
    }

    /// The active message's wire length is protocol-determined: an
    /// upflow after active slot `t` carries `t + 2` group elements plus
    /// two counters; the final broadcast carries `m` elements plus one.
    fn expected_len(&self, t: usize) -> usize {
        let pw = codec::p_width(self.group);
        if t + 1 < self.m {
            8 + (t + 2) * pw
        } else {
            4 + self.m * pw
        }
    }
}

impl DgkaSlot for GdhSlot {
    fn rounds(&self) -> usize {
        self.m
    }

    fn round_label(&self, t: usize) -> String {
        format!("dgka-gdh-{t}")
    }

    fn emit(&mut self, t: usize, rng: &mut dyn RngCore) -> Vec<u8> {
        let len = self.expected_len(t);
        if self.index != t {
            return chaff(len, rng);
        }
        if t == 0 {
            return match self.party.initiate() {
                Ok(up) => {
                    let payload = encode_upflow(self.group, &up);
                    self.pending = Some(up);
                    payload
                }
                Err(_) => {
                    self.ok = false;
                    chaff(len, rng)
                }
            };
        }
        let Some(prev) = self.pending.take().filter(|_| self.ok) else {
            self.ok = false;
            return chaff(len, rng);
        };
        match self.party.advance(&prev) {
            Ok(gdh::Step::Upflow(up)) => {
                let payload = encode_upflow(self.group, &up);
                self.pending = Some(up);
                payload
            }
            Ok(gdh::Step::Broadcast(b)) => encode_gdh_broadcast(self.group, &b),
            Err(_) => {
                self.ok = false;
                chaff(len, rng)
            }
        }
    }

    fn validate(&self, t: usize, from: usize, payload: &[u8]) -> bool {
        // Only slot t's message is protocol-critical in round t: the
        // successor must decode the upflow, everyone must decode the
        // final broadcast. Cover traffic from the other slots is valid
        // as-is.
        if from != t {
            return true;
        }
        if t + 1 < self.m {
            self.index != t + 1 || decode_upflow(self.group, payload).is_ok()
        } else {
            decode_gdh_broadcast(self.group, payload).is_ok()
        }
    }

    fn absorb(
        &mut self,
        t: usize,
        view: &[Option<Vec<u8>>],
        incomplete: Option<AbortReason>,
        _rng: &mut dyn RngCore,
    ) {
        if let Some(reason) = incomplete {
            self.last_reason = Some(reason);
        }
        // Record slot t's real message as that sender's contribution
        // (from this slot's own, possibly tampered, view).
        let seen = view.get(t).cloned().flatten();
        if let Some(p) = &seen {
            if let Some(c) = self.contributions.get_mut(t) {
                *c = p.clone();
            }
        }
        if t + 1 < self.m {
            // The successor decodes the upflow from ITS view so
            // man-in-the-middle tampering on that link is honored.
            if self.index == t + 1 {
                match seen.as_deref().map(|p| decode_upflow(self.group, p)) {
                    Some(Ok(up)) => self.pending = Some(up),
                    _ => self.ok = false,
                }
            }
        } else {
            // Final round: decode the broadcast from this slot's own
            // view (slots whose copy never arrived abort in `finish`).
            if let Some(Ok(b)) = seen.as_deref().map(|p| decode_gdh_broadcast(self.group, p)) {
                self.final_broadcast = Some(b);
            }
        }
    }

    fn finish(&mut self, rng: &mut dyn RngCore) -> (Phase1Slot, Option<AbortReason>) {
        let contributions = std::mem::take(&mut self.contributions);
        if let Some(broadcast) = self.final_broadcast.take() {
            if let Ok(session) = self.party.finish(&broadcast) {
                return (
                    Phase1Slot {
                        sid: session.sid.to_vec(),
                        k_star: session.key,
                        contributions,
                    },
                    None,
                );
            }
        }
        let reason = self.last_reason.unwrap_or(AbortReason::KeyAgreement);
        (decoy_phase1(contributions, rng), Some(reason))
    }
}

fn encode_upflow(group: &SchnorrGroup, up: &gdh::Upflow) -> Vec<u8> {
    let pw = codec::p_width(group);
    let mut w = crate::wire::Writer::new();
    w.put_u32(up.contributors as u32);
    w.put_u32(up.partials.len() as u32);
    for p in &up.partials {
        w.put_ubig_fixed(p, pw);
    }
    w.put_ubig_fixed(&up.cumulative, pw);
    w.into_bytes()
}

fn decode_upflow(group: &SchnorrGroup, bytes: &[u8]) -> Result<gdh::Upflow, CoreError> {
    let pw = codec::p_width(group);
    let mut r = crate::wire::Reader::new(bytes);
    let contributors = r.take_u32()? as usize;
    let count = r.take_u32()? as usize;
    if count > 4096 {
        return Err(CoreError::Wire(crate::wire::WireError::BadLength));
    }
    let mut partials = Vec::with_capacity(count);
    for _ in 0..count {
        partials.push(r.take_ubig_fixed(pw)?);
    }
    let cumulative = r.take_ubig_fixed(pw)?;
    r.finish()?;
    Ok(gdh::Upflow {
        contributors,
        partials,
        cumulative,
    })
}

fn encode_gdh_broadcast(group: &SchnorrGroup, b: &gdh::Broadcast) -> Vec<u8> {
    let pw = codec::p_width(group);
    let mut w = crate::wire::Writer::new();
    w.put_u32(b.values.len() as u32);
    for v in &b.values {
        w.put_ubig_fixed(v, pw);
    }
    w.into_bytes()
}

fn decode_gdh_broadcast(group: &SchnorrGroup, bytes: &[u8]) -> Result<gdh::Broadcast, CoreError> {
    let pw = codec::p_width(group);
    let mut r = crate::wire::Reader::new(bytes);
    let count = r.take_u32()? as usize;
    if count > 4096 {
        return Err(CoreError::Wire(crate::wire::WireError::BadLength));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(r.take_ubig_fixed(pw)?);
    }
    r.finish()?;
    Ok(gdh::Broadcast { values })
}

// ---------------------------------------------------------------------------
// Katz–Yung authenticated Burmester–Desmedt
// ---------------------------------------------------------------------------

/// One party of the Katz–Yung-compiled Burmester–Desmedt protocol
/// ([`shs_dgka::ake`]): an ephemeral-roster broadcast, then the three
/// signed rounds of the compiler (nonces, BD round 1, BD round 2).
///
/// Round 0 distributes fresh ephemeral verification keys and is
/// inherently unauthenticated — exactly the trust gap the paper's
/// Phase-II CGKD-keyed MACs close (DESIGN.md §10 discusses why this is
/// sound inside GCD). From round 1 on, every message is signed over the
/// session context, so Phase-I man-in-the-middle substitution is
/// rejected immediately instead of surfacing at Phase II.
pub(crate) struct AkeSlot {
    group: &'static SchnorrGroup,
    m: usize,
    index: usize,
    sk: Option<sig::SigningKey>,
    vk: Option<sig::VerifyKey>,
    party: Option<ake::Party<'static>>,
    /// Own signed message queued for the next round.
    queued: Option<ake::SignedMsg>,
    /// Raw wire payloads per round per sender (contribution framing).
    raw_views: Vec<Vec<Option<Vec<u8>>>>,
    /// Decoded round-2 messages awaiting `finish`.
    r2_msgs: Option<Vec<ake::SignedMsg>>,
    abort: Option<AbortReason>,
}

impl AkeSlot {
    pub(crate) fn new(group: &'static SchnorrGroup, m: usize, index: usize) -> AkeSlot {
        AkeSlot {
            group,
            m,
            index,
            sk: None,
            vk: None,
            party: None,
            queued: None,
            raw_views: vec![Vec::new(); 4],
            r2_msgs: None,
            abort: None,
        }
    }

    /// Wire length of round `t` (fixed per round; the signed frames pad
    /// their bodies to full width so cover traffic is exact).
    fn frame_len(&self, t: usize) -> usize {
        let pw = codec::p_width(self.group);
        let qw = codec::q_width(self.group);
        match t {
            0 => elem_len(self.group),
            1 => 4 + 1 + 32 + pw + qw,
            _ => 4 + 1 + pw + pw + qw,
        }
    }

    fn decode_signed_round(&self, t: usize) -> Option<Vec<ake::SignedMsg>> {
        let view = self.raw_views.get(t)?;
        let mut msgs = Vec::with_capacity(self.m);
        for (j, p) in view.iter().enumerate() {
            msgs.push(decode_signed(self.group, (t - 1) as u8, j, p.as_deref()?).ok()?);
        }
        Some(msgs)
    }
}

impl DgkaSlot for AkeSlot {
    fn rounds(&self) -> usize {
        4
    }

    fn round_label(&self, t: usize) -> String {
        match t {
            0 => "dgka-ake-roster",
            1 => "dgka-ake-nonce",
            2 => "dgka-ake-r1",
            _ => "dgka-ake-r2",
        }
        .to_string()
    }

    fn emit(&mut self, t: usize, rng: &mut dyn RngCore) -> Vec<u8> {
        if t == 0 {
            let (sk, vk) = sig::keygen(self.group, rng);
            let payload = encode_elem(self.group, self.index, &vk.y);
            self.sk = Some(sk);
            self.vk = Some(vk);
            return payload;
        }
        match self.queued.take() {
            Some(msg) => encode_signed(self.group, &msg),
            None => chaff(self.frame_len(t), rng),
        }
    }

    fn validate(&self, t: usize, from: usize, payload: &[u8]) -> bool {
        if t == 0 {
            return decode_elem(self.group, from, payload).is_ok();
        }
        let Ok(msg) = decode_signed(self.group, (t - 1) as u8, from, payload) else {
            return false;
        };
        // An aborted receiver judges nothing; and pre-nonce rounds
        // cannot be fully checked yet (`verify_msg` returns `None`) —
        // both count as received so retransmission budget is saved for
        // decidable failures.
        match &self.party {
            Some(party) => party.verify_msg(&msg).unwrap_or(true),
            None => true,
        }
    }

    fn absorb(
        &mut self,
        t: usize,
        view: &[Option<Vec<u8>>],
        incomplete: Option<AbortReason>,
        rng: &mut dyn RngCore,
    ) {
        if let Some(slot_view) = self.raw_views.get_mut(t) {
            *slot_view = view.to_vec();
        }
        if let Some(reason) = incomplete {
            self.abort.get_or_insert(reason);
            return;
        }
        if self.abort.is_some() {
            return;
        }
        match t {
            0 => {
                // Build the ephemeral roster and start the signed
                // protocol (emits our nonce message next round).
                let mut roster = Vec::with_capacity(self.m);
                for (j, p) in view.iter().enumerate() {
                    match p.as_deref().map(|p| decode_elem(self.group, j, p)) {
                        Some(Ok((_, y))) => roster.push(sig::VerifyKey { y }),
                        _ => {
                            self.abort = Some(AbortReason::KeyAgreement);
                            return;
                        }
                    }
                }
                let Some(sk) = self.sk.take() else {
                    self.abort = Some(AbortReason::KeyAgreement);
                    return;
                };
                match ake::Party::start(self.group, self.index, sk, roster, rng) {
                    Ok((party, msg)) => {
                        self.party = Some(party);
                        self.queued = Some(msg);
                    }
                    Err(_) => self.abort = Some(AbortReason::KeyAgreement),
                }
            }
            1 | 2 => {
                let (Some(msgs), Some(party)) = (self.decode_signed_round(t), &mut self.party)
                else {
                    self.abort = Some(AbortReason::KeyAgreement);
                    return;
                };
                let next = if t == 1 {
                    party.on_nonces(&msgs, rng)
                } else {
                    party.on_round1(&msgs, rng)
                };
                match next {
                    Ok(msg) => self.queued = Some(msg),
                    Err(_) => self.abort = Some(AbortReason::KeyAgreement),
                }
            }
            _ => match self.decode_signed_round(t) {
                Some(msgs) => self.r2_msgs = Some(msgs),
                None => self.abort = Some(AbortReason::KeyAgreement),
            },
        }
    }

    fn finish(&mut self, rng: &mut dyn RngCore) -> (Phase1Slot, Option<AbortReason>) {
        // Contribution of sender j = its four framed protocol messages
        // as this slot saw them (complete quads only).
        let mut contributions = vec![Vec::new(); self.m];
        for (j, slot_contrib) in contributions.iter_mut().enumerate() {
            let quad: Option<Vec<&Vec<u8>>> = self
                .raw_views
                .iter()
                .map(|round| round.get(j).and_then(Option::as_ref))
                .collect();
            if let Some(parts) = quad {
                let mut w = crate::wire::Writer::new();
                for part in parts {
                    w.put_bytes(part);
                }
                *slot_contrib = w.into_bytes();
            }
        }
        if self.abort.is_none() {
            if let (Some(party), Some(msgs)) = (&self.party, &self.r2_msgs) {
                if let Ok(session) = party.finish(msgs) {
                    return (
                        Phase1Slot {
                            sid: session.sid.to_vec(),
                            k_star: session.key,
                            contributions,
                        },
                        None,
                    );
                }
            }
            self.abort = Some(AbortReason::KeyAgreement);
        }
        (decoy_phase1(contributions, rng), self.abort)
    }
}

/// Encodes a signed compiler message with its body padded to full
/// width: nonces are exactly 32 bytes; BD bodies pad to the modulus
/// width, so every slot's round-`t` frame has identical length.
fn encode_signed(group: &SchnorrGroup, msg: &ake::SignedMsg) -> Vec<u8> {
    let pw = codec::p_width(group);
    let qw = codec::q_width(group);
    let mut w = crate::wire::Writer::new();
    w.put_u32(msg.sender as u32);
    w.put_u8(msg.round);
    if msg.round == 0 {
        w.put_raw(&msg.body);
    } else {
        w.put_ubig_fixed(&Ubig::from_bytes_be(&msg.body), pw);
    }
    w.put_ubig_fixed(&msg.sig.big_r, pw);
    w.put_ubig_fixed(&msg.sig.s, qw);
    w.into_bytes()
}

/// Decodes a signed compiler message, re-minimalizing padded BD bodies
/// (the signature binds the minimal big-endian encoding).
fn decode_signed(
    group: &SchnorrGroup,
    round: u8,
    from: usize,
    bytes: &[u8],
) -> Result<ake::SignedMsg, CoreError> {
    let pw = codec::p_width(group);
    let qw = codec::q_width(group);
    let mut r = crate::wire::Reader::new(bytes);
    let sender = r.take_u32()? as usize;
    let got_round = r.take_u8()?;
    let body = if round == 0 {
        r.take_raw(32)?.to_vec()
    } else {
        r.take_ubig_fixed(pw)?.to_bytes_be()
    };
    let big_r = r.take_ubig_fixed(pw)?;
    let s = r.take_ubig_fixed(qw)?;
    r.finish()?;
    if sender != from || got_round != round {
        return Err(CoreError::BadSession);
    }
    Ok(ake::SignedMsg {
        sender,
        round,
        body,
        sig: sig::Signature { big_r, s },
    })
}
