//! GSIG substrate: the group-signature contract the compiler consumes.
//!
//! Two traits split the primitive along the trust boundary of the
//! paper's §4 interface: [`Gsig`] is the group manager's end
//! (`Setup`/`Join`/`Open`/`Revoke`, held by the [`crate::GroupAuthority`])
//! and [`GsigCredential`] is the member's end (`Sign`/`Verify`, carried
//! inside [`crate::Member`] and exercised during Phase III).
//!
//! The serialized-signature byte format is part of the contract: `sign`
//! produces and `verify`/`open` consume the fixed-width encodings of
//! [`crate::codec`], so a credential's [`GsigCredential::sig_len`] is a
//! public constant of the group — decoy traffic depends on it.

use crate::codec;
use crate::transcript::TraceError;
use rand::RngCore;
use shs_bigint::Ubig;
use shs_groups::rsa::{RsaGroup, RsaSecret};
use shs_gsig::crl::Crl;
use shs_gsig::ky::{MemberId, RevocationToken};
use shs_gsig::params::GsigParams;
use shs_gsig::{acjt, ky, GsigError};
use std::sync::Arc;

/// The authority end of a group-signature scheme
/// (`GSIG.{Setup, Join, Open, Revoke}`).
///
/// Implementations are constructed exclusively by
/// [`crate::factory::gsig_authority`].
pub trait Gsig: Send + Sync {
    /// The interval parameters of the group.
    fn params(&self) -> GsigParams;

    /// `GSIG.Join`: runs both ends of the interactive join over the
    /// (simulated) private authenticated channel and returns the new
    /// member's credential.
    ///
    /// # Errors
    ///
    /// [`GsigError`] when the join protocol rejects.
    fn admit(&mut self, rng: &mut dyn RngCore) -> Result<Box<dyn GsigCredential>, GsigError>;

    /// `GSIG.Revoke`: revokes a member, returning the VLR revocation
    /// token when the scheme has one (`None` for registry-only
    /// revocation à la classic ACJT — the §3 trade-off).
    ///
    /// # Errors
    ///
    /// [`GsigError`] for unknown or already-revoked members.
    fn revoke(&mut self, id: MemberId) -> Result<Option<RevocationToken>, GsigError>;

    /// `GSIG.Open`: decodes a serialized signature and traces it to the
    /// signing member.
    ///
    /// # Errors
    ///
    /// [`TraceError::MalformedSignature`] when the bytes do not decode,
    /// [`TraceError::OpenFailed`] when opening rejects.
    fn open(&self, message: &[u8], sig_bytes: &[u8]) -> Result<MemberId, TraceError>;
}

/// The member end of a group-signature scheme (`GSIG.{Sign, Verify}`),
/// plus the self-distinction hooks of the paper's scheme 2.
pub trait GsigCredential: Send + Sync {
    /// The member's pseudonymous identity.
    fn id(&self) -> MemberId;

    /// The interval parameters of the credential's group.
    fn params(&self) -> &GsigParams;

    /// Serialized length of a signature in this group (a public
    /// constant; decoy payloads must match it).
    fn sig_len(&self) -> usize;

    /// `GSIG.Sign`: signs `message`, serialized with [`crate::codec`].
    ///
    /// When `basis` is `Some`, schemes supporting self-distinction
    /// derive the linkability base from it (KY `SignBasis::Common`);
    /// otherwise a random base is used. The second component is the
    /// scheme's linkability tag for the produced signature (`T6` for
    /// KY; `None` for schemes without one).
    fn sign(
        &self,
        message: &[u8],
        basis: Option<&[u8]>,
        rng: &mut dyn RngCore,
    ) -> (Vec<u8>, Option<Ubig>);

    /// `GSIG.Verify`: decodes and verifies a serialized signature
    /// against the member's `crl` (memoized revocation check);
    /// `expected_t7` pins the linkability base (self-distinction
    /// check).
    ///
    /// Returns `None` on any failure (malformed, invalid, revoked,
    /// wrong base); on success, the signature's linkability tag as in
    /// [`GsigCredential::sign`].
    fn verify(
        &self,
        message: &[u8],
        sig_bytes: &[u8],
        expected_t7: Option<&Ubig>,
        crl: &Crl,
    ) -> Option<Option<Ubig>>;

    /// Batch `GSIG.Verify`: verifies many serialized `(message,
    /// signature)` pairs in one call. Outcome-equivalent to calling
    /// [`GsigCredential::verify`] on every pair, but schemes with a
    /// random-linear-combination batch equation amortize the group
    /// exponentiations across the whole batch. The default
    /// implementation is the per-pair fallback.
    fn verify_batch(
        &self,
        items: &[(&[u8], &[u8])],
        expected_t7: Option<&Ubig>,
        crl: &Crl,
    ) -> Vec<Option<Option<Ubig>>> {
        items
            .iter()
            .map(|(message, sig)| self.verify(message, sig, expected_t7, crl))
            .collect()
    }

    /// The common linkability base `T7 = g^{H(basis)}` for
    /// self-distinction, when the scheme supports it.
    fn common_t7(&self, basis: &[u8]) -> Option<Ubig>;

    /// Clones the credential behind the trait object.
    fn clone_box(&self) -> Box<dyn GsigCredential>;
}

impl Clone for Box<dyn GsigCredential> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Kiayias–Yung authority (schemes 1 and 2).
pub(crate) struct KyAuthority {
    gm: ky::GroupManager,
    pk: Arc<ky::GroupPublicKey>,
}

impl KyAuthority {
    /// `GSIG.Setup` with a pre-generated safe-RSA setting.
    pub(crate) fn setup(
        params: GsigParams,
        rsa: RsaGroup,
        rsa_secret: RsaSecret,
        rng: &mut dyn RngCore,
    ) -> KyAuthority {
        let gm = ky::GroupManager::setup_with_rsa(params, rsa, rsa_secret, rng);
        let pk = Arc::new(gm.public_key().clone());
        KyAuthority { gm, pk }
    }
}

impl Gsig for KyAuthority {
    fn params(&self) -> GsigParams {
        self.pk.params
    }

    fn admit(&mut self, rng: &mut dyn RngCore) -> Result<Box<dyn GsigCredential>, GsigError> {
        let (secret, req) = ky::start_join(&self.pk, rng);
        let resp = self.gm.admit(&req, rng)?;
        let key = ky::finish_join(&self.pk, secret, &resp)?;
        Ok(Box::new(KyCredential {
            pk: Arc::clone(&self.pk),
            key,
        }))
    }

    fn revoke(&mut self, id: MemberId) -> Result<Option<RevocationToken>, GsigError> {
        Ok(Some(self.gm.revoke(id)?))
    }

    fn open(&self, message: &[u8], sig_bytes: &[u8]) -> Result<MemberId, TraceError> {
        let sig = codec::decode_ky_sig(&self.pk.params, sig_bytes)
            .map_err(|_| TraceError::MalformedSignature)?;
        let opening = self
            .gm
            .open(message, &sig)
            .map_err(|_| TraceError::OpenFailed)?;
        Ok(opening.id)
    }
}

/// Kiayias–Yung member credential (schemes 1 and 2).
pub(crate) struct KyCredential {
    pk: Arc<ky::GroupPublicKey>,
    key: ky::MemberKey,
}

impl std::fmt::Debug for KyCredential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KyCredential({})", self.key.id)
    }
}

impl GsigCredential for KyCredential {
    fn id(&self) -> MemberId {
        self.key.id
    }

    fn params(&self) -> &GsigParams {
        &self.pk.params
    }

    fn sig_len(&self) -> usize {
        codec::ky_sig_len(&self.pk.params)
    }

    fn sign(
        &self,
        message: &[u8],
        basis: Option<&[u8]>,
        rng: &mut dyn RngCore,
    ) -> (Vec<u8>, Option<Ubig>) {
        let sign_basis = match basis {
            Some(b) => ky::SignBasis::Common(b),
            None => ky::SignBasis::Random,
        };
        let sig = ky::sign(&self.pk, &self.key, message, sign_basis, rng);
        let t6 = sig.tags.t6.clone();
        (codec::encode_ky_sig(&self.pk.params, &sig), Some(t6))
    }

    fn verify(
        &self,
        message: &[u8],
        sig_bytes: &[u8],
        expected_t7: Option<&Ubig>,
        crl: &Crl,
    ) -> Option<Option<Ubig>> {
        let sig = codec::decode_ky_sig(&self.pk.params, sig_bytes).ok()?;
        ky::verify_with_crl(&self.pk, message, &sig, expected_t7, crl).ok()?;
        Some(Some(sig.tags.t6))
    }

    fn verify_batch(
        &self,
        items: &[(&[u8], &[u8])],
        expected_t7: Option<&Ubig>,
        crl: &Crl,
    ) -> Vec<Option<Option<Ubig>>> {
        // Decode individually (failures stay per-item), combine the
        // group equations across the batch, then run the memoized CRL
        // check per surviving signature — revocation is signature-local
        // and does not batch.
        let decoded: Vec<Option<ky::Signature>> = items
            .iter()
            .map(|(_, sig_bytes)| codec::decode_ky_sig(&self.pk.params, sig_bytes).ok())
            .collect();
        let batch: Vec<(&[u8], &ky::Signature)> = items
            .iter()
            .zip(&decoded)
            .filter_map(|((message, _), sig)| sig.as_ref().map(|s| (*message, s)))
            .collect();
        let outcome = ky::verify_batch(&self.pk, &batch, expected_t7);
        let mut pos = 0usize;
        decoded
            .into_iter()
            .map(|sig| {
                let sig = sig?;
                let valid = outcome.is_valid(pos);
                pos += 1;
                if !valid || crl.is_revoked(&self.pk, &sig) {
                    return None;
                }
                Some(Some(sig.tags.t6))
            })
            .collect()
    }

    fn common_t7(&self, basis: &[u8]) -> Option<Ubig> {
        Some(self.pk.common_t7(basis))
    }

    fn clone_box(&self) -> Box<dyn GsigCredential> {
        Box::new(KyCredential {
            pk: Arc::clone(&self.pk),
            key: self.key.clone(),
        })
    }
}

/// Classic ACJT authority (scheme 1-classic; registry-only revocation).
pub(crate) struct AcjtAuthority {
    gm: acjt::GroupManager,
    pk: Arc<acjt::GroupPublicKey>,
}

impl AcjtAuthority {
    /// `GSIG.Setup` with a pre-generated safe-RSA setting.
    pub(crate) fn setup(
        params: GsigParams,
        rsa: RsaGroup,
        rsa_secret: RsaSecret,
        rng: &mut dyn RngCore,
    ) -> AcjtAuthority {
        let gm = acjt::GroupManager::setup_with_rsa(params, rsa, rsa_secret, rng);
        let pk = Arc::new(gm.public_key().clone());
        AcjtAuthority { gm, pk }
    }
}

impl Gsig for AcjtAuthority {
    fn params(&self) -> GsigParams {
        self.pk.params
    }

    fn admit(&mut self, rng: &mut dyn RngCore) -> Result<Box<dyn GsigCredential>, GsigError> {
        let (secret, req) = acjt::start_join(&self.pk, rng);
        let resp = self.gm.admit(&req, rng)?;
        let key = acjt::finish_join(&self.pk, secret, &resp)?;
        Ok(Box::new(AcjtCredential {
            pk: Arc::clone(&self.pk),
            key,
        }))
    }

    fn revoke(&mut self, id: MemberId) -> Result<Option<RevocationToken>, GsigError> {
        // ACJT has no VLR token: revocation is registry-only and the
        // framework depends entirely on the CGKD rekey — the §3
        // trade-off experiment E7b demonstrates.
        self.gm.revoke(id)?;
        Ok(None)
    }

    fn open(&self, message: &[u8], sig_bytes: &[u8]) -> Result<MemberId, TraceError> {
        let sig = codec::decode_acjt_sig(&self.pk.params, sig_bytes)
            .map_err(|_| TraceError::MalformedSignature)?;
        self.gm
            .open(message, &sig)
            .map_err(|_| TraceError::OpenFailed)
    }
}

/// Classic ACJT member credential (scheme 1-classic).
pub(crate) struct AcjtCredential {
    pk: Arc<acjt::GroupPublicKey>,
    key: acjt::MemberKey,
}

impl std::fmt::Debug for AcjtCredential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AcjtCredential({})", self.key.id)
    }
}

impl GsigCredential for AcjtCredential {
    fn id(&self) -> MemberId {
        self.key.id
    }

    fn params(&self) -> &GsigParams {
        &self.pk.params
    }

    fn sig_len(&self) -> usize {
        codec::acjt_sig_len(&self.pk.params)
    }

    fn sign(
        &self,
        message: &[u8],
        _basis: Option<&[u8]>,
        rng: &mut dyn RngCore,
    ) -> (Vec<u8>, Option<Ubig>) {
        let sig = acjt::sign(&self.pk, &self.key, message, rng);
        (codec::encode_acjt_sig(&self.pk.params, &sig), None)
    }

    fn verify(
        &self,
        message: &[u8],
        sig_bytes: &[u8],
        expected_t7: Option<&Ubig>,
        _crl: &Crl,
    ) -> Option<Option<Ubig>> {
        // ACJT signatures carry no linkability base to pin.
        if expected_t7.is_some() {
            return None;
        }
        let sig = codec::decode_acjt_sig(&self.pk.params, sig_bytes).ok()?;
        acjt::verify(&self.pk, message, &sig).ok()?;
        Some(None)
    }

    fn verify_batch(
        &self,
        items: &[(&[u8], &[u8])],
        expected_t7: Option<&Ubig>,
        _crl: &Crl,
    ) -> Vec<Option<Option<Ubig>>> {
        // ACJT signatures carry no linkability base to pin.
        if expected_t7.is_some() {
            return vec![None; items.len()];
        }
        let decoded: Vec<Option<acjt::Signature>> = items
            .iter()
            .map(|(_, sig_bytes)| codec::decode_acjt_sig(&self.pk.params, sig_bytes).ok())
            .collect();
        let batch: Vec<(&[u8], &acjt::Signature)> = items
            .iter()
            .zip(&decoded)
            .filter_map(|((message, _), sig)| sig.as_ref().map(|s| (*message, s)))
            .collect();
        let outcome = acjt::verify_batch(&self.pk, &batch);
        let mut pos = 0usize;
        decoded
            .into_iter()
            .map(|sig| {
                sig?;
                let valid = outcome.is_valid(pos);
                pos += 1;
                valid.then_some(None)
            })
            .collect()
    }

    fn common_t7(&self, _basis: &[u8]) -> Option<Ubig> {
        None
    }

    fn clone_box(&self) -> Box<dyn GsigCredential> {
        Box::new(AcjtCredential {
            pk: Arc::clone(&self.pk),
            key: self.key.clone(),
        })
    }
}
