//! The substrate contract layer: trait definitions the GCD compiler
//! plugs its three building blocks into (DESIGN.md §10).
//!
//! The paper's §5 flexibility claim — "any centralized group key
//! distribution scheme satisfying the functionality and security
//! requirements … can be integrated", with matching language for GSIG
//! and DGKA — is enforced structurally here: the framework only ever
//! talks to
//!
//! * [`Gsig`] / [`GsigCredential`] — group-signature authority and
//!   member credential (`GSIG.{Setup, Join, Sign, Verify, Open,
//!   Revoke}`),
//! * [`Cgkd`] / [`CgkdSlot`] — centralized key-distribution controller
//!   and member state (`CGKD.{Create, Join, Leave, Rekey}`),
//! * [`DgkaSlot`] — one party of the distributed key agreement that
//!   runs Phase I of the handshake (`DGKA.{Contribute, Derive}`),
//!
//! and every concrete implementation is constructed in exactly one
//! place, [`crate::factory`]. No other module matches on
//! [`crate::config::SchemeKind`], [`crate::config::CgkdChoice`] or
//! [`crate::config::DgkaChoice`] — a rule the `shs-lint`
//! `factory-dispatch` rule enforces in CI.

pub mod cgkd;
pub mod dgka;
pub mod gsig;

pub use cgkd::{Cgkd, CgkdSlot, EpochBroadcast, EpochOutcome, RekeyBroadcast};
pub use dgka::{DgkaSlot, Phase1Slot};
pub use gsig::{Gsig, GsigCredential};
