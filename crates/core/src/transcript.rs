//! Handshake transcripts and tracing outcomes.

use serde::{Deserialize, Serialize};

/// The `{(θ_i, δ_i)}` record of one handshake's Phase III, as observable
/// on the anonymous channel (this is exactly what `GCD.TraceUser` takes as
/// input).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandshakeTranscript {
    /// The DGKA session id binding the transcript.
    pub sid: Vec<u8>,
    /// One entry per anonymous slot, in slot order.
    pub entries: Vec<TranscriptEntry>,
}

/// One slot's Phase III publication.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscriptEntry {
    /// `θ_i = SENC(k'_i, σ_i)` — or decoy bytes.
    pub theta: Vec<u8>,
    /// `δ_i = ENC(pk_T, k'_i)` serialized — or decoy bytes.
    pub delta: Vec<u8>,
}

/// Result of tracing one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOutcome {
    /// The anonymous slot in the session.
    pub slot: usize,
    /// The identified member, or why identification failed.
    pub result: Result<shs_gsig::ky::MemberId, TraceError>,
}

/// Why a slot could not be traced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// `δ` did not parse as a ciphertext.
    MalformedDelta,
    /// `δ` failed Cramer–Shoup decryption (decoy, other group, or
    /// tampered).
    UndecryptableDelta,
    /// `θ` failed authenticated decryption under the recovered `k'`.
    UndecryptableTheta,
    /// The recovered signature bytes did not parse.
    MalformedSignature,
    /// `GSIG.Open` failed (invalid signature or unknown certificate).
    OpenFailed,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::MalformedDelta => write!(f, "delta does not parse"),
            TraceError::UndecryptableDelta => write!(f, "delta does not decrypt under sk_T"),
            TraceError::UndecryptableTheta => {
                write!(f, "theta does not decrypt under recovered k'")
            }
            TraceError::MalformedSignature => write!(f, "recovered signature bytes malformed"),
            TraceError::OpenFailed => write!(f, "GSIG.Open failed on recovered signature"),
        }
    }
}

impl std::error::Error for TraceError {}
