//! A small deterministic wire codec for handshake messages.
//!
//! Indistinguishability to eavesdroppers requires that real and decoy
//! Phase-III payloads have *identical* lengths, so all big integers are
//! encoded at **fixed widths** (padded to the modulus / parameter size)
//! rather than at their natural length. Everything is length- or
//! width-deterministic; no self-describing container format is used.

use shs_bigint::{Int, Sign, Ubig};

/// Errors from decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Input ended early.
    Truncated,
    /// A tag/discriminant byte was invalid.
    BadTag,
    /// A length prefix exceeded sanity bounds.
    BadLength,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag => write!(f, "invalid discriminant byte"),
            WireError::BadLength => write!(f, "length prefix out of bounds"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Finishes and returns the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a fixed-width big-endian integer (padded with zeros).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit (caller controls widths).
    pub fn put_ubig_fixed(&mut self, v: &Ubig, width: usize) {
        self.buf.extend_from_slice(&v.to_bytes_be_padded(width));
    }

    /// Appends a signed integer at fixed magnitude width plus a sign byte.
    pub fn put_int_fixed(&mut self, v: &Int, width: usize) {
        self.buf.push(if v.is_negative() { 1 } else { 0 });
        self.put_ubig_fixed(v.magnitude(), width);
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.buf
            .extend_from_slice(&(data.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(data);
    }

    /// Appends raw bytes with no prefix (fixed-size fields).
    pub fn put_raw(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a slice.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let out = self.data.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// Reads a fixed-width unsigned integer.
    pub fn take_ubig_fixed(&mut self, width: usize) -> Result<Ubig, WireError> {
        Ok(Ubig::from_bytes_be(self.take(width)?))
    }

    /// Reads a sign byte plus fixed-width magnitude.
    pub fn take_int_fixed(&mut self, width: usize) -> Result<Int, WireError> {
        let sign = match self.take_u8()? {
            0 => Sign::Plus,
            1 => Sign::Minus,
            _ => return Err(WireError::BadTag),
        };
        Ok(Int::new(sign, self.take_ubig_fixed(width)?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.take_u32()? as usize;
        if len > 1 << 28 {
            return Err(WireError::BadLength);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4)?;
        Ok(bytes.iter().fold(0u32, |acc, &b| (acc << 8) | u32::from(b)))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        Ok(bytes.iter().fold(0u64, |acc, &b| (acc << 8) | u64::from(b)))
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        self.take(1)?.first().copied().ok_or(WireError::Truncated)
    }

    /// Requires that all input was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::BadLength)
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::new();
        w.put_ubig_fixed(&Ubig::from_u64(0xdead), 8);
        w.put_int_fixed(&Int::from_i64(-42), 4);
        w.put_bytes(b"hello");
        w.put_u32(7);
        w.put_u64(1 << 40);
        w.put_u8(3);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_ubig_fixed(8).unwrap(), Ubig::from_u64(0xdead));
        assert_eq!(r.take_int_fixed(4).unwrap(), Int::from_i64(-42));
        assert_eq!(r.take_bytes().unwrap(), b"hello");
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), 1 << 40);
        assert_eq!(r.take_u8().unwrap(), 3);
        r.finish().unwrap();
    }

    #[test]
    fn fixed_width_is_deterministic() {
        // Same width regardless of magnitude — the property decoys rely
        // on.
        let mut w1 = Writer::new();
        w1.put_ubig_fixed(&Ubig::one(), 32);
        let mut w2 = Writer::new();
        w2.put_ubig_fixed(&Ubig::one().shl(200), 32);
        assert_eq!(w1.len(), w2.len());
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.put_bytes(b"abc");
        let mut bytes = w.into_bytes();
        bytes.pop();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_bytes().err(), Some(WireError::Truncated));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut w = Writer::new();
        w.put_u8(1);
        let mut bytes = w.into_bytes();
        bytes.push(9);
        let mut r = Reader::new(&bytes);
        r.take_u8().unwrap();
        assert_eq!(r.finish().err(), Some(WireError::BadLength));
    }

    #[test]
    fn bad_sign_byte_rejected() {
        let bytes = [7u8, 0, 0, 0, 0];
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_int_fixed(4).err(), Some(WireError::BadTag));
    }

    #[test]
    fn zero_roundtrips_at_width() {
        let mut w = Writer::new();
        w.put_ubig_fixed(&Ubig::zero(), 16);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 16);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_ubig_fixed(16).unwrap(), Ubig::zero());
    }
}
