//! Property-based tests of the wire codec and the fixed-width signature
//! encodings the decoy machinery depends on.

use proptest::prelude::*;
use shs_bigint::{Int, Sign, Ubig};
use shs_core::wire::{Reader, Writer};

fn ubig(limbs: usize) -> impl Strategy<Value = Ubig> {
    prop::collection::vec(any::<u64>(), 0..=limbs).prop_map(Ubig::from_limbs)
}

fn int(limbs: usize) -> impl Strategy<Value = Int> {
    (ubig(limbs), any::<bool>())
        .prop_map(|(mag, neg)| Int::new(if neg { Sign::Minus } else { Sign::Plus }, mag))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mixed_field_roundtrip(
        a in ubig(4),
        b in int(3),
        bytes in prop::collection::vec(any::<u8>(), 0..100),
        x in any::<u32>(),
        y in any::<u64>(),
        z in any::<u8>(),
    ) {
        let a_width = (a.bits() as usize).div_ceil(8).max(1);
        let b_width = (b.magnitude().bits() as usize).div_ceil(8).max(1);
        let mut w = Writer::new();
        w.put_ubig_fixed(&a, a_width);
        w.put_int_fixed(&b, b_width);
        w.put_bytes(&bytes);
        w.put_u32(x);
        w.put_u64(y);
        w.put_u8(z);
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.take_ubig_fixed(a_width).unwrap(), a);
        let b2 = r.take_int_fixed(b_width).unwrap();
        // -0 normalizes to +0.
        prop_assert_eq!(b2.magnitude(), b.magnitude());
        if !b.is_zero() {
            prop_assert_eq!(b2.is_negative(), b.is_negative());
        }
        prop_assert_eq!(r.take_bytes().unwrap(), bytes);
        prop_assert_eq!(r.take_u32().unwrap(), x);
        prop_assert_eq!(r.take_u64().unwrap(), y);
        prop_assert_eq!(r.take_u8().unwrap(), z);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..60),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut w = Writer::new();
        w.put_bytes(&bytes);
        w.put_u64(7);
        let buf = w.into_bytes();
        let cut = cut.index(buf.len() + 1).min(buf.len());
        let mut r = Reader::new(&buf[..cut]);
        // Decoding may fail but must never panic.
        let _ = r.take_bytes().and_then(|_| r.take_u64());
    }

    #[test]
    fn arbitrary_bytes_never_panic_decoders(
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        use shs_core::codec;
        use shs_gsig::params::{GsigParams, GsigPreset};
        use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
        let params = GsigParams::preset(GsigPreset::Test);
        let group = SchnorrGroup::system_wide(SchnorrPreset::Test);
        // All decoders must be total on arbitrary input.
        let _ = codec::decode_ky_sig(&params, &garbage);
        let _ = codec::decode_acjt_sig(&params, &garbage);
        let _ = codec::decode_delta(group, &garbage);
        let _ = codec::decode_crl_delta(&params, &garbage);
    }
}
