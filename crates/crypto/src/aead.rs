//! Authenticated encryption with associated data, built as
//! ChaCha20 + HMAC-SHA-256 in the encrypt-then-MAC composition.
//!
//! This is the `SENC`/`SDEC` of §7 Phase III (encrypting group signatures
//! under `k'_i`), the transport protection for CGKD rekey messages, and the
//! DEM half of the hybrid Cramer–Shoup encryption used for the tracing key.
//!
//! Wire format: `nonce (12) ‖ ciphertext ‖ tag (32)`.
//! The MAC covers `aad_len_be64 ‖ aad ‖ nonce ‖ ciphertext` under a MAC key
//! derived (HKDF) from the same 256-bit master key as the cipher key, so a
//! single [`Key`] drives the whole AEAD.

use crate::{chacha20, ct, hkdf, hmac, Key};
use rand::RngCore;

/// Ciphertext expansion: nonce plus tag.
pub const OVERHEAD: usize = chacha20::NONCE_LEN + hmac::TAG_LEN;

/// Error returned when decryption fails authentication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ciphertext failed authentication")
    }
}

impl std::error::Error for AuthError {}

fn subkeys(key: &Key) -> ([u8; 32], [u8; 32]) {
    let okm = hkdf::hkdf(&[], key.as_bytes(), b"shs-aead-v1", 64);
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    enc.copy_from_slice(&okm[..32]);
    mac.copy_from_slice(&okm[32..]);
    (enc, mac)
}

fn compute_tag(mac_key: &[u8; 32], aad: &[u8], nonce: &[u8], ct: &[u8]) -> [u8; hmac::TAG_LEN] {
    hmac::HmacSha256::new(mac_key)
        .chain(&(aad.len() as u64).to_be_bytes())
        .chain(aad)
        .chain(nonce)
        .chain(ct)
        .finalize()
}

/// Encrypts `plaintext` with associated data `aad` under `key`, using a
/// random nonce drawn from `rng`.
pub fn seal(key: &Key, plaintext: &[u8], aad: &[u8], rng: &mut (impl RngCore + ?Sized)) -> Vec<u8> {
    let mut nonce = [0u8; chacha20::NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    seal_with_nonce(key, plaintext, aad, &nonce)
}

/// Deterministic variant of [`seal`] with a caller-provided nonce.
///
/// The caller is responsible for nonce uniqueness per key.
pub fn seal_with_nonce(
    key: &Key,
    plaintext: &[u8],
    aad: &[u8],
    nonce: &[u8; chacha20::NONCE_LEN],
) -> Vec<u8> {
    let (enc_key, mac_key) = subkeys(key);
    let ct = chacha20::encrypt(&enc_key, nonce, plaintext);
    let tag = compute_tag(&mac_key, aad, nonce, &ct);
    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.extend_from_slice(nonce);
    out.extend_from_slice(&ct);
    out.extend_from_slice(&tag);
    out
}

/// Decrypts and authenticates a ciphertext produced by [`seal`].
///
/// # Errors
///
/// Returns [`AuthError`] if the ciphertext is malformed, the tag does not
/// verify, or the associated data differs.
pub fn open(key: &Key, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>, AuthError> {
    if sealed.len() < OVERHEAD {
        return Err(AuthError);
    }
    let (nonce_bytes, rest) = sealed.split_at(chacha20::NONCE_LEN);
    let (ct, tag) = rest.split_at(rest.len() - hmac::TAG_LEN);
    let nonce: [u8; chacha20::NONCE_LEN] = nonce_bytes.try_into().expect("split length");
    let (enc_key, mac_key) = subkeys(key);
    let expected = compute_tag(&mac_key, aad, &nonce, ct);
    if !ct::eq(&expected, tag) {
        return Err(AuthError);
    }
    let mut pt = ct.to_vec();
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut pt);
    Ok(pt)
}

/// Returns a uniformly random byte string with the exact length of a sealed
/// ciphertext for a plaintext of `plaintext_len` bytes.
///
/// Used by the handshake to publish *fake* `θ_i` values after a failed
/// Phase II (§7 CASE 2) so that failures are indistinguishable from
/// successes to eavesdroppers.
pub fn random_ciphertext(plaintext_len: usize, rng: &mut (impl RngCore + ?Sized)) -> Vec<u8> {
    let mut out = vec![0u8; plaintext_len + OVERHEAD];
    rng.fill_bytes(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn roundtrip() {
        let key = Key::from_bytes([42; 32]);
        let mut r = rng();
        for len in [0usize, 1, 63, 64, 65, 1000] {
            let pt = vec![0x5Au8; len];
            let ct = seal(&key, &pt, b"aad", &mut r);
            assert_eq!(ct.len(), len + OVERHEAD);
            assert_eq!(open(&key, &ct, b"aad").unwrap(), pt);
        }
    }

    #[test]
    fn wrong_key_fails() {
        let mut r = rng();
        let ct = seal(&Key::from_bytes([1; 32]), b"msg", b"", &mut r);
        assert_eq!(open(&Key::from_bytes([2; 32]), &ct, b""), Err(AuthError));
    }

    #[test]
    fn wrong_aad_fails() {
        let mut r = rng();
        let key = Key::from_bytes([1; 32]);
        let ct = seal(&key, b"msg", b"aad-1", &mut r);
        assert_eq!(open(&key, &ct, b"aad-2"), Err(AuthError));
    }

    #[test]
    fn tampering_fails() {
        let mut r = rng();
        let key = Key::from_bytes([1; 32]);
        let ct = seal(&key, b"a fairly long message body", b"", &mut r);
        for idx in [0usize, 12, 20, ct.len() - 1] {
            let mut bad = ct.clone();
            bad[idx] ^= 0x80;
            assert_eq!(open(&key, &bad, b""), Err(AuthError), "byte {idx}");
        }
        // Truncation fails too.
        assert_eq!(open(&key, &ct[..ct.len() - 1], b""), Err(AuthError));
        assert_eq!(open(&key, &[], b""), Err(AuthError));
    }

    #[test]
    fn random_ciphertext_has_right_length() {
        let mut r = rng();
        let fake = random_ciphertext(17, &mut r);
        let real = seal(&Key::from_bytes([0; 32]), &[0u8; 17], b"", &mut r);
        assert_eq!(fake.len(), real.len());
    }

    #[test]
    fn nonces_differ_between_seals() {
        let mut r = rng();
        let key = Key::from_bytes([3; 32]);
        let a = seal(&key, b"same", b"", &mut r);
        let b = seal(&key, b"same", b"", &mut r);
        assert_ne!(a, b);
    }
}
