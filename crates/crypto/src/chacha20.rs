//! The ChaCha20 stream cipher (RFC 8439).

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes.
pub const NONCE_LEN: usize = 12;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block for (key, counter, nonce).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream starting at
/// `initial_counter`.
///
/// Encryption and decryption are the same operation.
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(block_idx as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: returns the encryption of `data` (counter starts at 1 as in
/// RFC 8439's AEAD construction, reserving block 0 for key derivation).
pub fn encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_stream(key, nonce, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        assert_eq!(hex(&out[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&out[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        assert_eq!(hex(&ct[ct.len() - 10..]), "b40b8eedf2785e42874d");
    }

    #[test]
    fn roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let msg = b"the quick brown fox jumps over the lazy dog, twice over";
        let mut buf = msg.to_vec();
        xor_stream(&key, &nonce, 1, &mut buf);
        assert_ne!(&buf[..], &msg[..]);
        xor_stream(&key, &nonce, 1, &mut buf);
        assert_eq!(&buf[..], &msg[..]);
    }

    #[test]
    fn counter_continuity() {
        // Encrypting in one go equals encrypting block-by-block with
        // advancing counters.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let data = vec![0xABu8; 200];
        let mut whole = data.clone();
        xor_stream(&key, &nonce, 5, &mut whole);
        let mut parts = data.clone();
        let (a, b) = parts.split_at_mut(64);
        xor_stream(&key, &nonce, 5, a);
        let (b1, b2) = b.split_at_mut(64);
        xor_stream(&key, &nonce, 6, b1);
        xor_stream(&key, &nonce, 7, b2);
        assert_eq!(whole, parts);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [9u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_stream(&key, &[0u8; 12], 1, &mut a);
        xor_stream(&key, &[1u8; 12], 1, &mut b);
        assert_ne!(a, b);
    }
}
