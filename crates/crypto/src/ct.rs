//! Constant-time byte comparison.

/// Constant-time equality of two byte slices.
///
/// Returns `false` immediately (and unavoidably non-constant-time) when the
/// lengths differ — lengths are public in every use in this workspace.
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_and_unequal() {
        assert!(eq(b"", b""));
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(b"abc", b"abcd"));
        // Difference only in the first byte.
        assert!(!eq(b"xbc", b"abc"));
    }
}
