//! HMAC-DRBG (NIST SP 800-90A) on HMAC-SHA-256.
//!
//! Provides deterministic, seedable randomness implementing
//! [`rand::RngCore`], so protocol runs and experiments are exactly
//! reproducible while flowing through the same RNG interfaces as OS
//! entropy.

use crate::hmac;
use rand::{CryptoRng, RngCore};

/// An HMAC-SHA-256 deterministic random bit generator.
///
/// ```rust
/// use shs_crypto::drbg::HmacDrbg;
/// use rand::RngCore;
///
/// let mut a = HmacDrbg::from_seed(b"seed");
/// let mut b = HmacDrbg::from_seed(b"seed");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    /// Buffered output not yet consumed.
    buf: Vec<u8>,
}

impl HmacDrbg {
    /// Instantiates from seed material (entropy ‖ nonce ‖ personalization).
    pub fn from_seed(seed: &[u8]) -> HmacDrbg {
        let mut d = HmacDrbg {
            k: [0u8; 32],
            v: [1u8; 32],
            buf: Vec::new(),
        };
        d.update(Some(seed));
        d
    }

    /// Mixes additional entropy into the state.
    pub fn reseed(&mut self, data: &[u8]) {
        self.update(Some(data));
        self.buf.clear();
    }

    fn update(&mut self, data: Option<&[u8]>) {
        let mut h = hmac::HmacSha256::new(&self.k);
        h.update(&self.v);
        h.update(&[0x00]);
        if let Some(d) = data {
            h.update(d);
        }
        self.k = h.finalize();
        self.v = hmac::mac(&self.k, &self.v);
        if let Some(d) = data {
            let mut h = hmac::HmacSha256::new(&self.k);
            h.update(&self.v);
            h.update(&[0x01]);
            h.update(d);
            self.k = h.finalize();
            self.v = hmac::mac(&self.k, &self.v);
        }
    }

    /// Zeroizes the DRBG state (HMAC key, chaining value, buffered output)
    /// in place. Called automatically on drop.
    fn wipe_in_place(&mut self) {
        crate::wipe::wipe(&mut self.k);
        crate::wipe::wipe(&mut self.v);
        crate::wipe::wipe(&mut self.buf);
        self.buf.clear();
    }

    /// Generates `out.len()` bytes.
    pub fn generate(&mut self, out: &mut [u8]) {
        let mut filled = 0;
        while filled < out.len() {
            if self.buf.is_empty() {
                self.v = hmac::mac(&self.k, &self.v);
                self.buf.extend_from_slice(&self.v);
            }
            let take = (out.len() - filled).min(self.buf.len());
            out[filled..filled + take].copy_from_slice(&self.buf[..take]);
            self.buf.drain(..take);
            filled += take;
        }
    }
}

impl RngCore for HmacDrbg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.generate(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.generate(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.generate(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.generate(dest);
        Ok(())
    }
}

impl CryptoRng for HmacDrbg {}

impl Drop for HmacDrbg {
    fn drop(&mut self) {
        self.wipe_in_place();
    }
}

impl std::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HmacDrbg {{ state: **** }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = HmacDrbg::from_seed(b"hello");
        let mut b = HmacDrbg::from_seed(b"hello");
        let mut xa = [0u8; 100];
        let mut xb = [0u8; 100];
        a.generate(&mut xa);
        b.generate(&mut xb);
        assert_eq!(xa, xb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_seed(b"hello");
        let mut b = HmacDrbg::from_seed(b"world");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_seed(b"hello");
        let mut b = HmacDrbg::from_seed(b"hello");
        b.reseed(b"extra entropy");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_reads_match_bulk_read() {
        let mut a = HmacDrbg::from_seed(b"x");
        let mut b = HmacDrbg::from_seed(b"x");
        let mut bulk = [0u8; 80];
        a.generate(&mut bulk);
        let mut parts = Vec::new();
        for chunk_len in [1usize, 7, 24, 48] {
            let mut c = vec![0u8; chunk_len];
            b.generate(&mut c);
            parts.extend_from_slice(&c);
        }
        assert_eq!(&bulk[..], &parts[..]);
    }

    #[test]
    fn drop_path_clears_state() {
        // Exercises the exact routine `drop` runs; post-drop memory cannot
        // be inspected from safe code.
        let mut d = HmacDrbg::from_seed(b"seed");
        let _ = d.next_u64(); // leave residue in `buf`
        assert!(d.k != [0u8; 32] && d.v != [0u8; 32]);
        d.wipe_in_place();
        assert_eq!(d.k, [0u8; 32]);
        assert_eq!(d.v, [0u8; 32]);
        assert!(d.buf.is_empty());
    }

    #[test]
    fn usable_as_rngcore() {
        fn takes_rng(r: &mut impl RngCore) -> u64 {
            r.next_u64()
        }
        let mut d = HmacDrbg::from_seed(b"rng");
        let _ = takes_rng(&mut d);
    }
}
