//! HKDF (RFC 5869) on HMAC-SHA-256.
//!
//! Used throughout the workspace to derive symmetric keys from group
//! elements (DGKA session keys), from CGKD key material, and to expand hash
//! outputs for hash-to-group constructions.

use crate::hmac;

/// HKDF-Extract: compresses input keying material into a pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac::mac(salt, ikm)
}

/// HKDF-Expand: stretches a pseudorandom key to `len` output bytes.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF-Expand output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut h = hmac::HmacSha256::new(prk);
        h.update(&t);
        h.update(info);
        h.update(&[counter]);
        let block = h.finalize();
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&block[..take]);
        t = block.to_vec();
        counter = counter.saturating_add(1);
    }
    out
}

/// One-shot HKDF (extract then expand).
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn long_output() {
        let okm = hkdf(b"salt", b"ikm", b"info", 100);
        assert_eq!(okm.len(), 100);
        // First 32 bytes match a single-block expansion.
        let prk = extract(b"salt", b"ikm");
        assert_eq!(&okm[..32], &expand(&prk, b"info", 32)[..]);
    }

    #[test]
    fn different_info_different_output() {
        assert_ne!(hkdf(b"s", b"k", b"a", 32), hkdf(b"s", b"k", b"b", 32));
    }
}
