//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! This is the MAC used in Phase II of the handshake protocol (§7: each
//! party publishes `MAC(k'_i, s‖i)`), and the PRF inside HKDF and
//! HMAC-DRBG.

use crate::sha256::{self, Sha256};

/// Output length of HMAC-SHA-256 in bytes.
pub const TAG_LEN: usize = 32;

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    okey: [u8; 64],
}

impl HmacSha256 {
    /// Starts a MAC computation under `key` (any length).
    pub fn new(key: &[u8]) -> HmacSha256 {
        let mut k = [0u8; 64];
        if key.len() > 64 {
            k[..32].copy_from_slice(&sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ikey = [0u8; 64];
        let mut okey = [0u8; 64];
        for i in 0..64 {
            ikey[i] = k[i] ^ 0x36;
            okey[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ikey);
        HmacSha256 { inner, okey }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Builder-style update.
    pub fn chain(mut self, data: &[u8]) -> HmacSha256 {
        self.update(data);
        self
    }

    /// Finishes and returns the tag.
    pub fn finalize(self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        Sha256::new()
            .chain(&self.okey)
            .chain(&inner_digest)
            .finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn mac(key: &[u8], data: &[u8]) -> [u8; TAG_LEN] {
    HmacSha256::new(key).chain(data).finalize()
}

/// Constant-time tag verification.
pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
    crate::ct::eq(&mac(key, data), tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = mac(b"key", b"message");
        assert!(verify(b"key", b"message", &tag));
        assert!(!verify(b"key", b"massage", &tag));
        assert!(!verify(b"kay", b"message", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify(b"key", b"message", &bad));
        // Truncated tags are rejected.
        assert!(!verify(b"key", b"message", &tag[..16]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = HmacSha256::new(b"secret");
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), mac(b"secret", b"part one part two"));
    }
}
