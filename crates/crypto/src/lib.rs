//! From-scratch symmetric cryptography for the `secret-handshakes`
//! workspace.
//!
//! The GCD framework needs, besides public-key machinery, a small symmetric
//! toolbox: a hash for Fiat–Shamir challenges, a MAC for Phase II of the
//! handshake, a symmetric cipher for `SENC`/`SDEC` of Phase III and for
//! CGKD rekey messages, a KDF to turn group elements into keys, and a
//! deterministic DRBG for reproducible tests. All of it is implemented here
//! with no external crypto dependencies:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4).
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104).
//! * [`hkdf`] — HKDF (RFC 5869).
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439).
//! * [`aead`] — encrypt-then-MAC authenticated encryption built from
//!   ChaCha20 + HMAC-SHA-256.
//! * [`drbg`] — HMAC-DRBG (NIST SP 800-90A) implementing
//!   [`rand::RngCore`].
//! * [`ct`] — constant-time comparison.
//! * [`wipe`] — best-effort zeroization of secret buffers.
//!
//! # Example
//!
//! ```rust
//! use shs_crypto::{aead, Key};
//!
//! let key = Key::from_bytes([7u8; 32]);
//! let mut rng = rand::thread_rng();
//! let ct = aead::seal(&key, b"attack at dawn", b"header", &mut rng);
//! let pt = aead::open(&key, &ct, b"header").expect("authentic");
//! assert_eq!(pt, b"attack at dawn");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod drbg;
pub mod hkdf;
pub mod hmac;
pub mod sha256;
pub mod wipe;

use serde::{Deserialize, Serialize};

/// A 256-bit symmetric key.
///
/// Used for group keys (CGKD), session keys (DGKA), the blinded keys
/// `k' = k* ⊕ k` of the handshake, and all MAC/cipher keys derived from
/// them.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Key([u8; 32]);

impl Key {
    /// Byte length of a key.
    pub const LEN: usize = 32;

    /// Wraps raw bytes as a key.
    pub fn from_bytes(bytes: [u8; 32]) -> Key {
        Key(bytes)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// A fresh uniformly random key.
    pub fn random(rng: &mut (impl rand::RngCore + ?Sized)) -> Key {
        let mut b = [0u8; 32];
        rng.fill_bytes(&mut b);
        Key(b)
    }

    /// Bitwise XOR of two keys — used to blind the DGKA session key with
    /// the CGKD group key (`k' = k* ⊕ k`, §7 Phase I).
    pub fn xor(&self, other: &Key) -> Key {
        let mut out = [0u8; 32];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        Key(out)
    }

    /// Derives a key from arbitrary input keying material with a labelled
    /// HKDF invocation.
    pub fn derive(ikm: &[u8], label: &str) -> Key {
        let okm = hkdf::hkdf(&[], ikm, label.as_bytes(), 32);
        let mut b = [0u8; 32];
        b.copy_from_slice(&okm);
        Key(b)
    }

    /// Constant-time equality check.
    pub fn ct_eq(&self, other: &Key) -> bool {
        ct::eq(&self.0, &other.0)
    }

    /// Zeroizes the key material in place. Called automatically on drop.
    fn wipe_in_place(&mut self) {
        wipe::wipe(&mut self.0);
    }
}

impl Drop for Key {
    fn drop(&mut self) {
        self.wipe_in_place();
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "Key(****)")
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Key {
    fn from(b: [u8; 32]) -> Key {
        Key(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_is_involutive() {
        let a = Key::from_bytes([0xAA; 32]);
        let b = Key::from_bytes([0x55; 32]);
        assert_eq!(a.xor(&b).xor(&b), a);
        assert_eq!(a.xor(&b).as_bytes(), &[0xFF; 32]);
    }

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let k1 = Key::derive(b"material", "label-a");
        let k2 = Key::derive(b"material", "label-a");
        let k3 = Key::derive(b"material", "label-b");
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn debug_hides_contents() {
        let k = Key::from_bytes([1; 32]);
        assert_eq!(format!("{k:?}"), "Key(****)");
    }

    #[test]
    fn drop_path_clears_key_bytes() {
        // `Drop` cannot be observed after the fact in safe code, so the
        // test exercises the exact routine `drop` runs.
        let mut k = Key::from_bytes([0xAB; 32]);
        k.wipe_in_place();
        assert_eq!(k.as_bytes(), &[0u8; 32]);
    }
}
