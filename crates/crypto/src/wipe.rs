//! Best-effort zeroization of secret byte buffers.
//!
//! The workspace forbids `unsafe`, so a true volatile write
//! (`ptr::write_volatile`) is off the table. Instead the buffer is zeroed
//! and then routed through [`std::hint::black_box`], which tells the
//! optimizer the zeroed bytes are observed — the stores cannot be removed
//! as dead writes. This is the strongest erasure guarantee available in
//! safe stable Rust; it does not defend against copies the compiler or OS
//! already made (moves, swaps, pages written out), hence "best effort".

/// Overwrites `buf` with zeros and forces the stores to survive
/// optimization.
pub fn wipe(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    std::hint::black_box(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wipe_zeroes_every_byte() {
        let mut buf = *b"top secret keying material!";
        wipe(&mut buf);
        assert_eq!(buf, [0u8; 27]);
    }

    #[test]
    fn wipe_handles_empty_slices() {
        wipe(&mut []);
    }
}
