//! Property-based tests of the symmetric toolbox.

use proptest::prelude::*;
use rand::SeedableRng;
use shs_crypto::{aead, chacha20, ct, drbg::HmacDrbg, hkdf, hmac, sha256, Key};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_split_invariance(data in prop::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256::digest(&data));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(
        key in prop::collection::vec(any::<u8>(), 0..80),
        data in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let t1 = hmac::mac(&key, &data);
        let t2 = hmac::mac(&key, &data);
        prop_assert_eq!(t1, t2);
        prop_assert!(hmac::verify(&key, &data, &t1));
        let mut key2 = key.clone();
        key2.push(1);
        prop_assert_ne!(hmac::mac(&key2, &data), t1);
    }

    #[test]
    fn hkdf_prefix_consistency(
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info in prop::collection::vec(any::<u8>(), 0..32),
        len in 1usize..200,
    ) {
        // Longer outputs extend shorter ones (same prk/info).
        let long = hkdf::hkdf(b"salt", &ikm, &info, len);
        let short = hkdf::hkdf(b"salt", &ikm, &info, len / 2 + 1);
        prop_assert_eq!(&long[..short.len()], &short[..]);
        prop_assert_eq!(long.len(), len);
    }

    #[test]
    fn chacha_xor_is_involutive(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut buf = data.clone();
        chacha20::xor_stream(&key, &nonce, counter, &mut buf);
        chacha20::xor_stream(&key, &nonce, counter, &mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn aead_roundtrip(
        key in any::<[u8; 32]>(),
        pt in prop::collection::vec(any::<u8>(), 0..300),
        aad in prop::collection::vec(any::<u8>(), 0..50),
        seed in any::<u64>(),
    ) {
        let key = Key::from_bytes(key);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ctxt = aead::seal(&key, &pt, &aad, &mut rng);
        prop_assert_eq!(ctxt.len(), pt.len() + aead::OVERHEAD);
        prop_assert_eq!(aead::open(&key, &ctxt, &aad).unwrap(), pt);
    }

    #[test]
    fn aead_tamper_any_byte_fails(
        key in any::<[u8; 32]>(),
        pt in prop::collection::vec(any::<u8>(), 1..100),
        idx in any::<prop::sample::Index>(),
        flip in 1u8..,
    ) {
        let key = Key::from_bytes(key);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut ctxt = aead::seal(&key, &pt, b"aad", &mut rng);
        let i = idx.index(ctxt.len());
        ctxt[i] ^= flip;
        prop_assert!(aead::open(&key, &ctxt, b"aad").is_err());
    }

    #[test]
    fn ct_eq_matches_slice_eq(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct::eq(&a, &b), a == b);
    }

    #[test]
    fn drbg_streams_are_seed_determined(seed in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut a = HmacDrbg::from_seed(&seed);
        let mut b = HmacDrbg::from_seed(&seed);
        let mut xa = [0u8; 48];
        let mut xb = [0u8; 48];
        a.generate(&mut xa);
        b.generate(&mut xb);
        prop_assert_eq!(xa, xb);
    }

    #[test]
    fn key_xor_group_laws(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let ka = Key::from_bytes(a);
        let kb = Key::from_bytes(b);
        prop_assert_eq!(ka.xor(&kb), kb.xor(&ka));
        prop_assert_eq!(ka.xor(&kb).xor(&kb), ka.clone());
        let zero = ka.xor(&ka);
        prop_assert_eq!(zero.as_bytes(), &[0u8; 32]);
    }
}
