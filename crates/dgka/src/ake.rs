//! The Katz–Yung compiler \[21\]: turns the unauthenticated
//! Burmester–Desmedt protocol into an *authenticated* group key agreement
//! by (1) prepending a nonce round and (2) signing every protocol message
//! over the session context (roster, nonces, round, sender).
//!
//! The GCD framework deliberately uses the **raw** protocol (Fig. 5 of the
//! paper defines DGKA as unauthenticated, with man-in-the-middle handled
//! by the CGKD-keyed MACs of Phase II) — this module exists because the
//! paper names Katz–Yung as the efficient BD variant of choice \[21\], and
//! the E3 ablation compares the two: authentication costs two signatures
//! and `2(m-1)` verifications per party, in exchange for rejecting MITM
//! *inside* Phase I instead of at Phase II.

use crate::{bd, sig, DgkaError, SessionOutput};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_crypto::sha256::Sha256;
use shs_groups::schnorr::SchnorrGroup;

/// A signed protocol message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedMsg {
    /// Sender position.
    pub sender: usize,
    /// Round number (0 = nonces, 1/2 = BD rounds).
    pub round: u8,
    /// Serialized round body.
    pub body: Vec<u8>,
    /// Schnorr signature over the session context and body.
    pub sig: sig::Signature,
}

/// An authenticated-BD party.
pub struct Party<'g> {
    group: &'g SchnorrGroup,
    m: usize,
    index: usize,
    sk: sig::SigningKey,
    roster: Vec<sig::VerifyKey>,
    nonce: [u8; 32],
    nonces: Option<Vec<[u8; 32]>>,
    inner: Option<bd::Party<'g>>,
}

impl std::fmt::Debug for Party<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ake::Party {{ index: {}/{}, secrets: **** }}",
            self.index, self.m
        )
    }
}

fn roster_hash(group: &SchnorrGroup, roster: &[sig::VerifyKey]) -> [u8; 32] {
    let pw = (group.p().bits() as usize).div_ceil(8);
    let mut h = Sha256::new();
    h.update(b"ake-roster");
    for vk in roster {
        h.update(&vk.y.to_bytes_be_padded(pw));
    }
    h.finalize()
}

fn context(
    group: &SchnorrGroup,
    roster: &[sig::VerifyKey],
    nonces: Option<&[[u8; 32]]>,
    round: u8,
    sender: usize,
    body: &[u8],
) -> Vec<u8> {
    let mut ctx = b"shs-ake-v1".to_vec();
    ctx.extend_from_slice(&roster_hash(group, roster));
    if let Some(nonces) = nonces {
        for n in nonces {
            ctx.extend_from_slice(n);
        }
    }
    ctx.push(round);
    ctx.extend_from_slice(&(sender as u64).to_be_bytes());
    ctx.extend_from_slice(&(body.len() as u64).to_be_bytes());
    ctx.extend_from_slice(body);
    ctx
}

impl<'g> Party<'g> {
    /// Starts an authenticated instance: returns the signed nonce
    /// broadcast (round 0).
    ///
    /// # Errors
    ///
    /// [`DgkaError::BadParameters`] when the roster size or index is
    /// inconsistent.
    pub fn start(
        group: &'g SchnorrGroup,
        index: usize,
        sk: sig::SigningKey,
        roster: Vec<sig::VerifyKey>,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<(Party<'g>, SignedMsg), DgkaError> {
        let m = roster.len();
        if m < 2 || index >= m {
            return Err(DgkaError::BadParameters);
        }
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        let party = Party {
            group,
            m,
            index,
            sk,
            roster,
            nonce,
            nonces: None,
            inner: None,
        };
        let body = nonce.to_vec();
        let ctx = context(group, &party.roster, None, 0, index, &body);
        let sig = sig::sign(group, &party.sk, &party.roster[index], &ctx, rng);
        Ok((
            party,
            SignedMsg {
                sender: index,
                round: 0,
                body,
                sig,
            },
        ))
    }

    fn check(&self, msg: &SignedMsg, round: u8) -> Result<(), DgkaError> {
        if msg.round != round || msg.sender >= self.m {
            return Err(DgkaError::ProtocolViolation);
        }
        let nonces = if round == 0 {
            None
        } else {
            self.nonces.as_deref()
        };
        let ctx = context(
            self.group,
            &self.roster,
            nonces,
            round,
            msg.sender,
            &msg.body,
        );
        if !sig::verify(self.group, &self.roster[msg.sender], &ctx, &msg.sig) {
            return Err(DgkaError::BadElement);
        }
        Ok(())
    }

    fn collect<'a>(
        &self,
        msgs: &'a [SignedMsg],
        round: u8,
    ) -> Result<Vec<&'a SignedMsg>, DgkaError> {
        let mut by_sender: Vec<Option<&SignedMsg>> = vec![None; self.m];
        for msg in msgs {
            self.check(msg, round)?;
            if by_sender[msg.sender].is_some() {
                return Err(DgkaError::ProtocolViolation);
            }
            by_sender[msg.sender] = Some(msg);
        }
        by_sender
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or(DgkaError::MissingMessage)
    }

    /// Consumes the nonce round and emits the signed BD round-1 message.
    ///
    /// # Errors
    ///
    /// Signature failures surface as [`DgkaError::BadElement`]; ordering
    /// violations as [`DgkaError::ProtocolViolation`].
    pub fn on_nonces(
        &mut self,
        msgs: &[SignedMsg],
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<SignedMsg, DgkaError> {
        if self.nonces.is_some() {
            return Err(DgkaError::ProtocolViolation);
        }
        let collected = self.collect(msgs, 0)?;
        let mut nonces = Vec::with_capacity(self.m);
        for msg in collected {
            let n: [u8; 32] = msg
                .body
                .as_slice()
                .try_into()
                .map_err(|_| DgkaError::BadElement)?;
            nonces.push(n);
        }
        if nonces[self.index] != self.nonce {
            return Err(DgkaError::BadElement); // our own nonce was replaced
        }
        self.nonces = Some(nonces);
        let (inner, r1) = bd::Party::start(self.group, self.m, self.index, rng)?;
        self.inner = Some(inner);
        let body = r1.z.to_bytes_be();
        let ctx = context(
            self.group,
            &self.roster,
            self.nonces.as_deref(),
            1,
            self.index,
            &body,
        );
        let sig = sig::sign(self.group, &self.sk, &self.roster[self.index], &ctx, rng);
        Ok(SignedMsg {
            sender: self.index,
            round: 1,
            body,
            sig,
        })
    }

    /// Consumes round 1 and emits the signed round-2 message.
    ///
    /// # Errors
    ///
    /// As [`Party::on_nonces`].
    pub fn on_round1(
        &mut self,
        msgs: &[SignedMsg],
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<SignedMsg, DgkaError> {
        let collected = self.collect(msgs, 1)?;
        let round1: Vec<bd::Round1> = collected
            .iter()
            .map(|m| bd::Round1 {
                sender: m.sender,
                z: shs_bigint::Ubig::from_bytes_be(&m.body),
            })
            .collect();
        let inner = self.inner.as_mut().ok_or(DgkaError::ProtocolViolation)?;
        let r2 = inner.round2(&round1)?;
        let body = r2.x.to_bytes_be();
        let ctx = context(
            self.group,
            &self.roster,
            self.nonces.as_deref(),
            2,
            self.index,
            &body,
        );
        let sig = sig::sign(self.group, &self.sk, &self.roster[self.index], &ctx, rng);
        Ok(SignedMsg {
            sender: self.index,
            round: 2,
            body,
            sig,
        })
    }

    /// Verifies one signed message against this party's session context
    /// without consuming it.
    ///
    /// Returns `None` when the verdict cannot be decided yet: rounds 1
    /// and 2 are signed over the session nonces, which this party only
    /// learns by consuming round 0. Receivers use this to filter
    /// retransmissions before feeding a round set to the consuming
    /// methods.
    pub fn verify_msg(&self, msg: &SignedMsg) -> Option<bool> {
        if msg.round > 0 && self.nonces.is_none() {
            return None;
        }
        Some(self.check(msg, msg.round).is_ok())
    }

    /// Consumes round 2 and outputs the authenticated session key.
    ///
    /// # Errors
    ///
    /// As [`Party::on_nonces`].
    pub fn finish(&self, msgs: &[SignedMsg]) -> Result<SessionOutput, DgkaError> {
        let collected = self.collect(msgs, 2)?;
        let round2: Vec<bd::Round2> = collected
            .iter()
            .map(|m| bd::Round2 {
                sender: m.sender,
                x: shs_bigint::Ubig::from_bytes_be(&m.body),
            })
            .collect();
        let inner = self.inner.as_ref().ok_or(DgkaError::ProtocolViolation)?;
        inner.finish(&round2)
    }
}

/// Runs a complete authenticated `m`-party instance in memory.
///
/// # Errors
///
/// Propagates protocol errors (none occur for honest inputs).
pub fn run(
    group: &SchnorrGroup,
    m: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Vec<SessionOutput>, DgkaError> {
    let mut keys = Vec::with_capacity(m);
    let mut roster = Vec::with_capacity(m);
    for _ in 0..m {
        let (sk, vk) = sig::keygen(group, rng);
        keys.push(sk);
        roster.push(vk);
    }
    let mut parties = Vec::with_capacity(m);
    let mut nonces = Vec::with_capacity(m);
    for (i, sk) in keys.into_iter().enumerate() {
        let (p, msg) = Party::start(group, i, sk, roster.clone(), rng)?;
        parties.push(p);
        nonces.push(msg);
    }
    let r1: Vec<SignedMsg> = parties
        .iter_mut()
        .map(|p| p.on_nonces(&nonces, rng))
        .collect::<Result<_, _>>()?;
    let r2: Vec<SignedMsg> = parties
        .iter_mut()
        .map(|p| p.on_round1(&r1, rng))
        .collect::<Result<_, _>>()?;
    parties.iter().map(|p| p.finish(&r2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shs_groups::schnorr::SchnorrPreset;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    #[test]
    fn all_parties_agree() {
        let mut r = rand::rngs::StdRng::seed_from_u64(100);
        for m in [2usize, 3, 5] {
            let outputs = run(group(), m, &mut r).unwrap();
            for o in &outputs[1..] {
                assert_eq!(o.key, outputs[0].key, "m = {m}");
            }
        }
    }

    #[test]
    fn mitm_substitution_now_rejected() {
        // Contrast with bd::tests::mitm_changes_keys: with the Katz–Yung
        // compiler, substitution is caught immediately as a signature
        // failure.
        let mut r = rand::rngs::StdRng::seed_from_u64(101);
        let m = 3;
        let mut keys = Vec::new();
        let mut roster = Vec::new();
        for _ in 0..m {
            let (sk, vk) = sig::keygen(group(), &mut r);
            keys.push(sk);
            roster.push(vk);
        }
        let mut parties = Vec::new();
        let mut nonces = Vec::new();
        for (i, sk) in keys.into_iter().enumerate() {
            let (p, msg) = Party::start(group(), i, sk, roster.clone(), &mut r).unwrap();
            parties.push(p);
            nonces.push(msg);
        }
        let r1: Vec<SignedMsg> = parties
            .iter_mut()
            .map(|p| p.on_nonces(&nonces, &mut r))
            .collect::<Result<_, _>>()
            .unwrap();
        // Adversary substitutes party 1's z towards party 0.
        let mut tampered = r1.clone();
        tampered[1].body = group().random_element(&mut r).to_bytes_be();
        assert_eq!(
            parties[0].on_round1(&tampered, &mut r).err(),
            Some(DgkaError::BadElement),
            "signature check catches the substitution"
        );
        // The untampered set still works.
        parties[0].on_round1(&r1, &mut r).unwrap();
    }

    #[test]
    fn nonce_replacement_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(102);
        let (sk0, vk0) = sig::keygen(group(), &mut r);
        let (sk1, vk1) = sig::keygen(group(), &mut r);
        let roster = vec![vk0, vk1];
        let (mut p0, n0) = Party::start(group(), 0, sk0, roster.clone(), &mut r).unwrap();
        let (_p1, n1) = Party::start(group(), 1, sk1, roster, &mut r).unwrap();
        // Replay attack: feed p0 two copies of the peer's nonce message.
        let mut fake = n1.clone();
        fake.sender = 0;
        assert!(p0.on_nonces(&[fake, n1.clone()], &mut r).is_err());
        // Honest set works.
        p0.on_nonces(&[n0, n1], &mut r).unwrap();
    }

    #[test]
    fn cross_session_replay_rejected() {
        // A signed round-1 message from one session cannot be replayed in
        // another: the signature binds the session nonces.
        let mut r = rand::rngs::StdRng::seed_from_u64(103);
        let m = 2;
        let mk = |r: &mut rand::rngs::StdRng| {
            let mut keys = Vec::new();
            let mut roster = Vec::new();
            for _ in 0..m {
                let (sk, vk) = sig::keygen(group(), r);
                keys.push(sk);
                roster.push(vk);
            }
            (keys, roster)
        };
        let (keys, roster) = mk(&mut r);
        // Session A.
        let mut parties_a = Vec::new();
        let mut nonces_a = Vec::new();
        for (i, sk) in keys.iter().cloned().enumerate() {
            let (p, msg) = Party::start(group(), i, sk, roster.clone(), &mut r).unwrap();
            parties_a.push(p);
            nonces_a.push(msg);
        }
        let r1_a: Vec<SignedMsg> = parties_a
            .iter_mut()
            .map(|p| p.on_nonces(&nonces_a, &mut r))
            .collect::<Result<_, _>>()
            .unwrap();
        // Session B with the same long-term keys but fresh nonces.
        let mut parties_b = Vec::new();
        let mut nonces_b = Vec::new();
        for (i, sk) in keys.iter().cloned().enumerate() {
            let (p, msg) = Party::start(group(), i, sk, roster.clone(), &mut r).unwrap();
            parties_b.push(p);
            nonces_b.push(msg);
        }
        let _r1_b0 = parties_b[0].on_nonces(&nonces_b, &mut r).unwrap();
        let r1_b1 = parties_b[1].on_nonces(&nonces_b, &mut r).unwrap();
        // Replaying session A's round-1 message from party 1 into session
        // B fails (different nonces in the signed context).
        assert_eq!(
            parties_b[0]
                .on_round1(&[_r1_b0.clone(), r1_a[1].clone()], &mut r)
                .err(),
            Some(DgkaError::BadElement)
        );
        // The genuine message works.
        parties_b[0].on_round1(&[_r1_b0, r1_b1], &mut r).unwrap();
    }
}
