//! The Burmester–Desmedt group key agreement protocol \[11\].
//!
//! Two broadcast rounds over a Schnorr group:
//!
//! 1. each party `i` broadcasts `z_i = g^{r_i}`;
//! 2. each party broadcasts `X_i = (z_{i+1}/z_{i-1})^{r_i}` (indices
//!    cyclic);
//!
//! after which every party computes the common
//! `K = z_{i-1}^{m·r_i} · X_i^{m-1} · X_{i+1}^{m-2} ⋯ X_{i+m-2}`,
//! which equals `g^{r_1r_2 + r_2r_3 + … + r_mr_1}`.
//!
//! Each party performs a **constant** number of exponentiations plus the
//! `O(m)` multiplications of the key assembly — the efficiency highlighted
//! in Appendix D of the paper and measured by experiment E3.

use crate::{DgkaError, SessionOutput};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::Ubig;
use shs_crypto::sha256::Sha256;
use shs_groups::schnorr::SchnorrGroup;

/// Round-1 broadcast: `z_i = g^{r_i}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round1 {
    /// Sender's position `i ∈ [0, m)`.
    pub sender: usize,
    /// `g^{r_i}`.
    pub z: Ubig,
}

/// Round-2 broadcast: `X_i = (z_{i+1}/z_{i-1})^{r_i}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Round2 {
    /// Sender's position.
    pub sender: usize,
    /// `(z_{i+1}/z_{i-1})^{r_i}`.
    pub x: Ubig,
}

/// A party's protocol instance (`Π_U^i` of the paper's Fig. 5).
pub struct Party<'g> {
    group: &'g SchnorrGroup,
    m: usize,
    index: usize,
    r: Ubig,
    z_all: Option<Vec<Ubig>>,
}

impl std::fmt::Debug for Party<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bd::Party {{ index: {}/{}, secrets: **** }}",
            self.index, self.m
        )
    }
}

impl<'g> Party<'g> {
    /// Starts an instance for party `index` of `m`; returns the round-1
    /// broadcast.
    ///
    /// # Errors
    ///
    /// [`DgkaError::BadParameters`] when `m < 2` or `index >= m`.
    pub fn start(
        group: &'g SchnorrGroup,
        m: usize,
        index: usize,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<(Party<'g>, Round1), DgkaError> {
        if m < 2 || index >= m {
            return Err(DgkaError::BadParameters);
        }
        let r = group.random_exponent(rng);
        let z = group.exp_g(&r);
        Ok((
            Party {
                group,
                m,
                index,
                r,
                z_all: None,
            },
            Round1 { sender: index, z },
        ))
    }

    /// Consumes the full set of round-1 broadcasts and produces this
    /// party's round-2 broadcast.
    ///
    /// # Errors
    ///
    /// [`DgkaError::MissingMessage`] unless exactly one message per party
    /// is supplied; [`DgkaError::BadElement`] for non-group values;
    /// [`DgkaError::ProtocolViolation`] on duplicate round processing.
    pub fn round2(&mut self, round1: &[Round1]) -> Result<Round2, DgkaError> {
        if self.z_all.is_some() {
            return Err(DgkaError::ProtocolViolation);
        }
        let z_all = collect_by_sender(round1, self.m, |msg| &msg.z)?;
        for z in &z_all {
            if !self.group.is_member(z) {
                return Err(DgkaError::BadElement);
            }
        }
        let prev = &z_all[(self.index + self.m - 1) % self.m];
        let next = &z_all[(self.index + 1) % self.m];
        let ratio = self
            .group
            .div(next, prev)
            .map_err(|_| DgkaError::BadElement)?;
        let x = self.group.exp(&ratio, &self.r);
        self.z_all = Some(z_all);
        Ok(Round2 {
            sender: self.index,
            x,
        })
    }

    /// Consumes the full set of round-2 broadcasts and outputs the session
    /// key.
    ///
    /// # Errors
    ///
    /// [`DgkaError::ProtocolViolation`] if round 2 was not yet processed;
    /// otherwise as [`Party::round2`].
    pub fn finish(&self, round2: &[Round2]) -> Result<SessionOutput, DgkaError> {
        let z_all = self.z_all.as_ref().ok_or(DgkaError::ProtocolViolation)?;
        let x_all = collect_by_sender(round2, self.m, |msg| &msg.x)?;
        for x in &x_all {
            if !self.group.is_member(x) {
                return Err(DgkaError::BadElement);
            }
        }
        let m = self.m;
        let prev = &z_all[(self.index + m - 1) % m];
        // K = prev^{m·r_i} · Π_{t=0}^{m-2} X_{i+t}^{m-1-t}
        let m_big = Ubig::from_u64(m as u64);
        let mut key_elem = self.group.exp(prev, &self.r.mulm(&m_big, self.group.q()));
        for t in 0..m - 1 {
            let exp = Ubig::from_u64((m - 1 - t) as u64);
            let xi = &x_all[(self.index + t) % m];
            key_elem = self.group.mul(&key_elem, &self.group.exp(xi, &exp));
        }
        let sid = transcript_hash(z_all, &x_all);
        let mut key_input =
            key_elem.to_bytes_be_padded((self.group.p().bits() as usize).div_ceil(8));
        key_input.extend_from_slice(&sid);
        let key = shs_crypto::Key::derive(&key_input, "bd-session-key");
        Ok(SessionOutput {
            key,
            sid,
            participants: m,
        })
    }

    /// This party's position.
    pub fn index(&self) -> usize {
        self.index
    }
}

fn collect_by_sender<'a, M, F>(msgs: &'a [M], m: usize, value: F) -> Result<Vec<Ubig>, DgkaError>
where
    F: Fn(&'a M) -> &'a Ubig,
    M: Sender,
{
    let mut out: Vec<Option<Ubig>> = vec![None; m];
    for msg in msgs {
        let s = msg.sender();
        if s >= m || out[s].is_some() {
            return Err(DgkaError::ProtocolViolation);
        }
        out[s] = Some(value(msg).clone());
    }
    out.into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or(DgkaError::MissingMessage)
}

/// Internal trait unifying the two message types for collection.
trait Sender {
    fn sender(&self) -> usize;
}

impl Sender for Round1 {
    fn sender(&self) -> usize {
        self.sender
    }
}

impl Sender for Round2 {
    fn sender(&self) -> usize {
        self.sender
    }
}

fn transcript_hash(z_all: &[Ubig], x_all: &[Ubig]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"bd-transcript");
    for z in z_all {
        let b = z.to_bytes_be();
        h.update(&(b.len() as u64).to_be_bytes());
        h.update(&b);
    }
    for x in x_all {
        let b = x.to_bytes_be();
        h.update(&(b.len() as u64).to_be_bytes());
        h.update(&b);
    }
    h.finalize()
}

/// Runs a complete `m`-party BD instance in memory (tests, benches,
/// simple callers).
///
/// # Errors
///
/// Propagates any protocol error (none occur for honest inputs).
pub fn run(
    group: &SchnorrGroup,
    m: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Vec<SessionOutput>, DgkaError> {
    let mut parties = Vec::with_capacity(m);
    let mut round1 = Vec::with_capacity(m);
    for i in 0..m {
        let (p, msg) = Party::start(group, m, i, rng)?;
        parties.push(p);
        round1.push(msg);
    }
    let round2: Vec<Round2> = parties
        .iter_mut()
        .map(|p| p.round2(&round1))
        .collect::<Result<_, _>>()?;
    parties.iter().map(|p| p.finish(&round2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shs_groups::schnorr::SchnorrPreset;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(80)
    }

    #[test]
    fn all_parties_agree() {
        let mut r = rng();
        for m in [2usize, 3, 5, 8] {
            let outputs = run(group(), m, &mut r).unwrap();
            for o in &outputs[1..] {
                assert_eq!(o.key, outputs[0].key, "m = {m}");
                assert_eq!(o.sid, outputs[0].sid);
            }
            assert_eq!(outputs[0].participants, m);
        }
    }

    #[test]
    fn different_sessions_different_keys() {
        let mut r = rng();
        let a = run(group(), 3, &mut r).unwrap();
        let b = run(group(), 3, &mut r).unwrap();
        assert_ne!(a[0].key, b[0].key);
        assert_ne!(a[0].sid, b[0].sid);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        let mut r = rng();
        assert!(Party::start(group(), 1, 0, &mut r).is_err());
        assert!(Party::start(group(), 3, 3, &mut r).is_err());
    }

    #[test]
    fn missing_and_duplicate_messages_rejected() {
        let mut r = rng();
        let (mut p0, m0) = Party::start(group(), 3, 0, &mut r).unwrap();
        let (mut p1, m1) = Party::start(group(), 3, 1, &mut r).unwrap();
        let (_p2, m2) = Party::start(group(), 3, 2, &mut r).unwrap();
        // Missing message.
        assert_eq!(
            p0.round2(&[m0.clone(), m1.clone()]).err(),
            Some(DgkaError::MissingMessage)
        );
        // Duplicate sender.
        assert_eq!(
            p1.round2(&[m0.clone(), m0.clone(), m2.clone()]).err(),
            Some(DgkaError::ProtocolViolation)
        );
        // Correct set works.
        p0.round2(&[m0, m1, m2]).unwrap();
    }

    #[test]
    fn non_group_elements_rejected() {
        let mut r = rng();
        let (mut p0, m0) = Party::start(group(), 2, 0, &mut r).unwrap();
        let bad = Round1 {
            sender: 1,
            z: Ubig::from_u64(1234567),
        };
        if !group().is_member(&bad.z) {
            assert_eq!(p0.round2(&[m0, bad]).err(), Some(DgkaError::BadElement));
        }
    }

    #[test]
    fn finish_before_round2_rejected() {
        let mut r = rng();
        let (p0, _m0) = Party::start(group(), 2, 0, &mut r).unwrap();
        assert_eq!(p0.finish(&[]).err(), Some(DgkaError::ProtocolViolation));
    }

    #[test]
    fn mitm_changes_keys() {
        // An active adversary substituting z values splits the group key:
        // parties no longer agree (detected later by Phase-II MACs).
        let mut r = rng();
        let m = 3;
        let mut parties = Vec::new();
        let mut round1 = Vec::new();
        for i in 0..m {
            let (p, msg) = Party::start(group(), m, i, &mut r).unwrap();
            parties.push(p);
            round1.push(msg);
        }
        // Adversary replaces party 1's z towards party 0 only.
        let mut tampered = round1.clone();
        tampered[1].z = group().random_element(&mut r);
        let x0 = parties[0].round2(&tampered).unwrap();
        let x1 = parties[1].round2(&round1).unwrap();
        let x2 = parties[2].round2(&round1).unwrap();
        let o0 = parties[0]
            .finish(&[x0.clone(), x1.clone(), x2.clone()])
            .unwrap();
        let o1 = parties[1].finish(&[x0, x1, x2]).unwrap();
        assert_ne!(o0.key, o1.key, "MITM must desynchronize the key");
    }

    #[test]
    fn constant_exponentiations_per_party() {
        let mut r = rng();
        // Count modexps for one party in an 8-party run: start (1) +
        // round2 (1) + finish (m key-assembly exps, small exponents).
        let m = 8;
        let mut others = Vec::new();
        let mut round1 = Vec::new();
        for i in 1..m {
            let (p, msg) = Party::start(group(), m, i, &mut r).unwrap();
            others.push(p);
            round1.push(msg);
        }
        let (counts, (mut me, my_msg)) =
            shs_bigint::counters::measure(|| Party::start(group(), m, 0, &mut r).unwrap());
        assert_eq!(counts.modexp, 1, "round 1 is one exponentiation");
        round1.insert(0, my_msg);
        let (counts, my_x) = shs_bigint::counters::measure(|| me.round2(&round1));
        let my_x = my_x.unwrap();
        // 1 real exponentiation + m membership checks (modpow by q).
        assert!(
            counts.modexp as usize <= m + 2,
            "round 2: {}",
            counts.modexp
        );
        let mut round2 = vec![my_x];
        for p in others.iter_mut() {
            round2.push(p.round2(&round1).unwrap());
        }
        let (counts, out) = shs_bigint::counters::measure(|| me.finish(&round2));
        out.unwrap();
        assert!(
            counts.modexp as usize <= 2 * m + 2,
            "finish: {}",
            counts.modexp
        );
    }
}
