//! GDH.2 — group Diffie–Hellman key agreement in dynamic peer groups
//! (Steiner–Tsudik–Waidner \[30\]).
//!
//! An upflow chain of `m-1` unicast messages accumulates partial
//! exponentiations; the last party broadcasts, for each participant `j`,
//! the value `g^{∏_{l≠j} r_l}`, from which `j` derives
//! `K = g^{∏ r_l}` with one exponentiation.
//!
//! Work per party grows with its position in the chain (the last party
//! performs `m` exponentiations) — contrasted with Burmester–Desmedt's
//! constant per-party cost in experiment E3.

use crate::{DgkaError, SessionOutput};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::Ubig;
use shs_crypto::sha256::Sha256;
use shs_groups::schnorr::SchnorrGroup;

/// Upflow message passed from party `i` to party `i+1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Upflow {
    /// How many parties have contributed (the sender's position + 1).
    pub contributors: usize,
    /// `partials[j] = g^{∏_{l ≤ i, l ≠ j} r_l}` for each prior party `j`.
    pub partials: Vec<Ubig>,
    /// `g^{∏_{l ≤ i} r_l}`.
    pub cumulative: Ubig,
}

/// Final broadcast from the last party.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Broadcast {
    /// `values[j] = g^{∏_{l ≠ j} r_l}` for every party `j` (the last
    /// party's own slot carries the value it already consumed, kept for
    /// uniform indexing).
    pub values: Vec<Ubig>,
}

/// A GDH.2 party instance.
pub struct Party<'g> {
    group: &'g SchnorrGroup,
    m: usize,
    index: usize,
    r: Ubig,
}

impl std::fmt::Debug for Party<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gdh::Party {{ index: {}/{}, secrets: **** }}",
            self.index, self.m
        )
    }
}

/// What a party emits after its turn in the chain.
#[derive(Debug)]
pub enum Step {
    /// Unicast to the next party in the chain.
    Upflow(Upflow),
    /// Final broadcast (emitted by the last party).
    Broadcast(Broadcast),
}

impl<'g> Party<'g> {
    /// Creates party `index` of `m`.
    ///
    /// # Errors
    ///
    /// [`DgkaError::BadParameters`] when `m < 2` or `index >= m`.
    pub fn new(
        group: &'g SchnorrGroup,
        m: usize,
        index: usize,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<Party<'g>, DgkaError> {
        if m < 2 || index >= m {
            return Err(DgkaError::BadParameters);
        }
        let r = group.random_exponent(rng);
        Ok(Party { group, m, index, r })
    }

    /// Party 0 initiates the chain.
    ///
    /// # Errors
    ///
    /// [`DgkaError::ProtocolViolation`] if called by a non-initiator.
    pub fn initiate(&self) -> Result<Upflow, DgkaError> {
        if self.index != 0 {
            return Err(DgkaError::ProtocolViolation);
        }
        Ok(Upflow {
            contributors: 1,
            partials: vec![self.group.g().clone()],
            cumulative: self.group.exp_g(&self.r),
        })
    }

    /// Parties `1..m-1` process the upflow from their predecessor.
    ///
    /// # Errors
    ///
    /// [`DgkaError::ProtocolViolation`] for out-of-position messages,
    /// [`DgkaError::BadElement`] for non-group values.
    pub fn advance(&self, upflow: &Upflow) -> Result<Step, DgkaError> {
        if upflow.contributors != self.index || upflow.partials.len() != self.index {
            return Err(DgkaError::ProtocolViolation);
        }
        for v in upflow.partials.iter().chain([&upflow.cumulative]) {
            if !self.group.is_member(v) {
                return Err(DgkaError::BadElement);
            }
        }
        // Raise every partial (each missing one prior party) by r_i, and
        // append the old cumulative as the partial missing *us*.
        let mut partials: Vec<Ubig> = upflow
            .partials
            .iter()
            .map(|p| self.group.exp(p, &self.r))
            .collect();
        partials.push(upflow.cumulative.clone());
        if self.index == self.m - 1 {
            Ok(Step::Broadcast(Broadcast { values: partials }))
        } else {
            Ok(Step::Upflow(Upflow {
                contributors: self.index + 1,
                partials,
                cumulative: self.group.exp(&upflow.cumulative, &self.r),
            }))
        }
    }

    /// Every party derives the session key from the final broadcast.
    ///
    /// # Errors
    ///
    /// [`DgkaError::MissingMessage`] for wrong-length broadcasts,
    /// [`DgkaError::BadElement`] for non-group values.
    pub fn finish(&self, broadcast: &Broadcast) -> Result<SessionOutput, DgkaError> {
        if broadcast.values.len() != self.m {
            return Err(DgkaError::MissingMessage);
        }
        let mine = &broadcast.values[self.index];
        if !self.group.is_member(mine) {
            return Err(DgkaError::BadElement);
        }
        let key_elem = self.group.exp(mine, &self.r);
        let sid = transcript_hash(&broadcast.values);
        let mut key_input =
            key_elem.to_bytes_be_padded((self.group.p().bits() as usize).div_ceil(8));
        key_input.extend_from_slice(&sid);
        let key = shs_crypto::Key::derive(&key_input, "gdh-session-key");
        Ok(SessionOutput {
            key,
            sid,
            participants: self.m,
        })
    }
}

fn transcript_hash(values: &[Ubig]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"gdh-transcript");
    for v in values {
        let b = v.to_bytes_be();
        h.update(&(b.len() as u64).to_be_bytes());
        h.update(&b);
    }
    h.finalize()
}

/// Runs a complete `m`-party GDH.2 instance in memory.
///
/// # Errors
///
/// Propagates protocol errors (none occur for honest inputs).
pub fn run(
    group: &SchnorrGroup,
    m: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Vec<SessionOutput>, DgkaError> {
    let parties: Vec<Party<'_>> = (0..m)
        .map(|i| Party::new(group, m, i, rng))
        .collect::<Result<_, _>>()?;
    let mut upflow = parties[0].initiate()?;
    let mut broadcast = None;
    for p in &parties[1..] {
        match p.advance(&upflow)? {
            Step::Upflow(next) => upflow = next,
            Step::Broadcast(b) => {
                broadcast = Some(b);
                break;
            }
        }
    }
    let broadcast = broadcast.ok_or(DgkaError::ProtocolViolation)?;
    parties.iter().map(|p| p.finish(&broadcast)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shs_groups::schnorr::SchnorrPreset;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(81)
    }

    #[test]
    fn all_parties_agree() {
        let mut r = rng();
        for m in [2usize, 3, 6] {
            let outputs = run(group(), m, &mut r).unwrap();
            for o in &outputs[1..] {
                assert_eq!(o.key, outputs[0].key, "m = {m}");
            }
        }
    }

    #[test]
    fn gdh_and_bd_derive_distinct_keys() {
        // Same group, same rng stream — the protocols are domain-separated
        // by their KDF labels.
        let mut r = rng();
        let a = run(group(), 3, &mut r).unwrap();
        let b = crate::bd::run(group(), 3, &mut r).unwrap();
        assert_ne!(a[0].key, b[0].key);
    }

    #[test]
    fn out_of_position_rejected() {
        let mut r = rng();
        let p1 = Party::new(group(), 3, 1, &mut r).unwrap();
        let p2 = Party::new(group(), 3, 2, &mut r).unwrap();
        assert!(p1.initiate().is_err());
        let p0 = Party::new(group(), 3, 0, &mut r).unwrap();
        let up = p0.initiate().unwrap();
        // Party 2 cannot consume the initiator's message (wrong position).
        assert_eq!(p2.advance(&up).err(), Some(DgkaError::ProtocolViolation));
        // Party 1 can.
        p1.advance(&up).unwrap();
    }

    #[test]
    fn tampered_upflow_rejected() {
        let mut r = rng();
        let p0 = Party::new(group(), 2, 0, &mut r).unwrap();
        let p1 = Party::new(group(), 2, 1, &mut r).unwrap();
        let mut up = p0.initiate().unwrap();
        up.cumulative = Ubig::from_u64(5);
        if !group().is_member(&up.cumulative) {
            assert_eq!(p1.advance(&up).err(), Some(DgkaError::BadElement));
        }
    }

    #[test]
    fn short_broadcast_rejected() {
        let mut r = rng();
        let p0 = Party::new(group(), 3, 0, &mut r).unwrap();
        let b = Broadcast {
            values: vec![group().g().clone()],
        };
        assert_eq!(p0.finish(&b).err(), Some(DgkaError::MissingMessage));
    }

    #[test]
    fn work_grows_with_position() {
        let mut r = rng();
        let m = 8;
        let parties: Vec<Party<'_>> = (0..m)
            .map(|i| Party::new(group(), m, i, &mut r).unwrap())
            .collect();
        let mut upflow = parties[0].initiate().unwrap();
        let mut costs = Vec::new();
        for p in &parties[1..] {
            let (counts, step) = shs_bigint::counters::measure(|| p.advance(&upflow));
            costs.push(counts.modexp);
            match step.unwrap() {
                Step::Upflow(next) => upflow = next,
                Step::Broadcast(_) => break,
            }
        }
        // Later parties exponentiate more (membership checks + partials).
        assert!(costs.last().unwrap() > costs.first().unwrap(), "{costs:?}");
    }
}
