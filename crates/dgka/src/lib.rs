//! Distributed group key agreement (the paper's **D** building block, §6).
//!
//! Implements the two unauthenticated ("raw") protocols the paper names as
//! natural instantiations:
//!
//! * [`bd`] — Burmester–Desmedt \[11\]: two broadcast rounds, a constant
//!   number of exponentiations per party.
//! * [`gdh`] — GDH.2 (Steiner–Tsudik–Waidner \[30\]): `m-1` unicast upflow
//!   steps plus one broadcast; work grows with the party's position.
//!
//! Per the paper's definition (Fig. 5), the protocols are *unauthenticated*
//! — resistance to man-in-the-middle comes from the handshake layer, where
//! the derived key is XOR-blinded with the CGKD group key and confirmed by
//! MACs (§7 Phase II). The Katz–Yung authenticated compiler \[21\] the paper
//! cites is additionally provided in [`ake`] (with Schnorr signatures from
//! [`sig`]) for the E3 ablation. Each instance outputs a [`SessionOutput`] with the
//! session key `sk`, the session id `sid` (a hash of the transcript) and
//! the participant count, matching `acc/sid/pid/sk` of the definition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ake;
pub mod bd;
pub mod gdh;
pub mod sig;

use shs_crypto::Key;

/// Result of a successful key-agreement instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutput {
    /// The agreed session key (`sk`).
    pub key: Key,
    /// Session identifier: a hash over the protocol transcript (`sid`).
    pub sid: [u8; 32],
    /// Number of participants (`|pid|`).
    pub participants: usize,
}

/// Errors produced by the key-agreement protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgkaError {
    /// A message arrived for the wrong round or from the wrong sender.
    ProtocolViolation,
    /// A message contained a value outside the group.
    BadElement,
    /// The message set for a round was incomplete.
    MissingMessage,
    /// Parameters were degenerate (fewer than two parties, bad index).
    BadParameters,
}

impl std::fmt::Display for DgkaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DgkaError::ProtocolViolation => {
                write!(f, "message violates the protocol state machine")
            }
            DgkaError::BadElement => write!(f, "message element is not a group member"),
            DgkaError::MissingMessage => write!(f, "round message set incomplete"),
            DgkaError::BadParameters => write!(f, "degenerate protocol parameters"),
        }
    }
}

impl std::error::Error for DgkaError {}
