//! Schnorr signatures over a Schnorr group — the long-term-key signature
//! primitive used by the Katz–Yung authenticated-key-agreement compiler
//! ([`crate::ake`]).

use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::Ubig;
use shs_crypto::sha256::Sha256;
use shs_groups::schnorr::SchnorrGroup;

/// A long-term signing key `x ∈ Z_q`.
#[derive(Clone, Serialize, Deserialize)]
pub struct SigningKey {
    x: Ubig,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig::SigningKey(****)")
    }
}

/// The matching verification key `y = g^x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VerifyKey {
    /// `g^x mod p`.
    pub y: Ubig,
}

/// A Schnorr signature `(R, s)` with `g^s = R · y^{H(R‖y‖m)}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Commitment `g^r`.
    pub big_r: Ubig,
    /// Response `s = r + e·x mod q`.
    pub s: Ubig,
}

/// Generates a keypair.
pub fn keygen(group: &SchnorrGroup, rng: &mut (impl RngCore + ?Sized)) -> (SigningKey, VerifyKey) {
    let x = group.random_exponent(rng);
    let y = group.exp_g(&x);
    (SigningKey { x }, VerifyKey { y })
}

fn challenge(group: &SchnorrGroup, big_r: &Ubig, y: &Ubig, msg: &[u8]) -> Ubig {
    let pw = (group.p().bits() as usize).div_ceil(8);
    let digest = Sha256::new()
        .chain(b"shs-schnorr-sig")
        .chain(&big_r.to_bytes_be_padded(pw))
        .chain(&y.to_bytes_be_padded(pw))
        .chain(&(msg.len() as u64).to_be_bytes())
        .chain(msg)
        .finalize();
    Ubig::from_bytes_be(&digest).rem(group.q())
}

/// Signs a message.
pub fn sign(
    group: &SchnorrGroup,
    sk: &SigningKey,
    vk: &VerifyKey,
    msg: &[u8],
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    let r = group.random_exponent(rng);
    let big_r = group.exp_g(&r);
    let e = challenge(group, &big_r, &vk.y, msg);
    let s = r.addm(&e.mulm(&sk.x, group.q()), group.q());
    Signature { big_r, s }
}

/// Verifies a signature.
pub fn verify(group: &SchnorrGroup, vk: &VerifyKey, msg: &[u8], sig: &Signature) -> bool {
    if !group.is_member(&sig.big_r) || sig.s >= *group.q() {
        return false;
    }
    let e = challenge(group, &sig.big_r, &vk.y, msg);
    // g^s == R · y^e
    group.exp_g(&sig.s) == group.mul(&sig.big_r, &group.exp(&vk.y, &e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use shs_groups::schnorr::SchnorrPreset;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut r = rand::rngs::StdRng::seed_from_u64(90);
        let (sk, vk) = keygen(group(), &mut r);
        let sig = sign(group(), &sk, &vk, b"hello", &mut r);
        assert!(verify(group(), &vk, b"hello", &sig));
        assert!(!verify(group(), &vk, b"hullo", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(91);
        let (sk, vk) = keygen(group(), &mut r);
        let (_, vk2) = keygen(group(), &mut r);
        let sig = sign(group(), &sk, &vk, b"m", &mut r);
        assert!(!verify(group(), &vk2, b"m", &sig));
    }

    #[test]
    fn malleated_signature_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(92);
        let (sk, vk) = keygen(group(), &mut r);
        let sig = sign(group(), &sk, &vk, b"m", &mut r);
        let bad_s = Signature {
            big_r: sig.big_r.clone(),
            s: sig.s.add_u64(1).rem(group().q()),
        };
        assert!(!verify(group(), &vk, b"m", &bad_s));
        let bad_r = Signature {
            big_r: group().random_element(&mut r),
            s: sig.s,
        };
        assert!(!verify(group(), &vk, b"m", &bad_r));
    }

    #[test]
    fn signatures_are_randomized() {
        let mut r = rand::rngs::StdRng::seed_from_u64(93);
        let (sk, vk) = keygen(group(), &mut r);
        let s1 = sign(group(), &sk, &vk, b"m", &mut r);
        let s2 = sign(group(), &sk, &vk, b"m", &mut r);
        assert_ne!(s1, s2);
    }

    #[test]
    fn out_of_range_s_rejected() {
        let mut r = rand::rngs::StdRng::seed_from_u64(94);
        let (sk, vk) = keygen(group(), &mut r);
        let sig = sign(group(), &sk, &vk, b"m", &mut r);
        let bad = Signature {
            big_r: sig.big_r,
            s: sig.s.add(group().q()),
        };
        assert!(!verify(group(), &vk, b"m", &bad));
    }
}
