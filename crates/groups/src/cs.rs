//! Cramer–Shoup hybrid encryption (IND-CCA2 in the standard model).
//!
//! `GCD.CreateGroup` (§7) requires the group authority to hold a keypair
//! "with respect to an IND-CCA2 secure public key cryptosystem" — the
//! *tracing key* `(pk_T, sk_T)`. Handshake participants publish
//! `δ_i = ENC(pk_T, k'_i)`, and `GCD.TraceUser` decrypts these to recover
//! the session keys and open the group signatures.
//!
//! The construction is the classic Cramer–Shoup '98 scheme used as a KEM:
//! the CS "message" slot carries `h^r`, a symmetric key is derived from it,
//! and an AEAD (DEM) carries the arbitrary-length payload. The hash `α`
//! binding `(u1, u2, e)` makes the DEM ciphertext non-malleable together
//! with the CS validity tag `v`.

use crate::schnorr::SchnorrGroup;
use crate::GroupError;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::Ubig;
use shs_crypto::{aead, sha256};

/// A Cramer–Shoup public key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// Second generator (random subgroup element).
    pub g2: Ubig,
    /// `c = g1^{x1} g2^{x2}`.
    pub c: Ubig,
    /// `d = g1^{y1} g2^{y2}`.
    pub d: Ubig,
    /// `h = g1^z` — the KEM element.
    pub h: Ubig,
}

/// A Cramer–Shoup secret key.
#[derive(Clone, Serialize, Deserialize)]
pub struct SecretKey {
    x1: Ubig,
    x2: Ubig,
    y1: Ubig,
    y2: Ubig,
    z: Ubig,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cs::SecretKey(****)")
    }
}

/// A hybrid Cramer–Shoup ciphertext.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// `g1^r`.
    pub u1: Ubig,
    /// `g2^r`.
    pub u2: Ubig,
    /// AEAD encryption of the payload under the KEM key.
    pub dem: Vec<u8>,
    /// Validity tag `v = c^r d^{rα}`.
    pub v: Ubig,
}

impl Ciphertext {
    /// Total serialized payload length in bytes (used by the handshake to
    /// produce shape-identical decoys).
    pub fn dem_len(&self) -> usize {
        self.dem.len()
    }
}

/// Generates a Cramer–Shoup keypair over the given Schnorr group.
pub fn keygen(group: &SchnorrGroup, rng: &mut (impl RngCore + ?Sized)) -> (PublicKey, SecretKey) {
    let g2 = loop {
        let candidate = group.random_element(rng);
        if !candidate.is_one() {
            break candidate;
        }
    };
    let x1 = group.random_exponent(rng);
    let x2 = group.random_exponent(rng);
    let y1 = group.random_exponent(rng);
    let y2 = group.random_exponent(rng);
    let z = group.random_exponent(rng);
    let c = group.mul(&group.exp_g(&x1), &group.exp(&g2, &x2));
    let d = group.mul(&group.exp_g(&y1), &group.exp(&g2, &y2));
    let h = group.exp_g(&z);
    (PublicKey { g2, c, d, h }, SecretKey { x1, x2, y1, y2, z })
}

/// Hashes `(u1, u2, e)` to an exponent `α ∈ Z_q`.
fn alpha(group: &SchnorrGroup, u1: &Ubig, u2: &Ubig, dem: &[u8]) -> Ubig {
    let len = (group.p().bits() as usize).div_ceil(8);
    let digest = sha256::Sha256::new()
        .chain(b"shs-cs-alpha")
        .chain(&u1.to_bytes_be_padded(len))
        .chain(&u2.to_bytes_be_padded(len))
        .chain(&(dem.len() as u64).to_be_bytes())
        .chain(dem)
        .finalize();
    Ubig::from_bytes_be(&digest).rem(group.q())
}

/// Encrypts an arbitrary byte payload.
pub fn encrypt(
    group: &SchnorrGroup,
    pk: &PublicKey,
    payload: &[u8],
    rng: &mut (impl RngCore + ?Sized),
) -> Ciphertext {
    let r = group.random_exponent(rng);
    let u1 = group.exp_g(&r);
    let u2 = group.exp(&pk.g2, &r);
    let kem = group.exp(&pk.h, &r);
    let key = group.element_to_key(&kem, "cs-dem");
    let dem = aead::seal(&key, payload, b"cs-hybrid-v1", rng);
    let a = alpha(group, &u1, &u2, &dem);
    let v = group.mul(
        &group.exp(&pk.c, &r),
        &group.exp(&pk.d, &r.mulm(&a, group.q())),
    );
    Ciphertext { u1, u2, dem, v }
}

/// Decrypts and checks validity.
///
/// # Errors
///
/// [`GroupError::DecryptionFailed`] when the validity tag or the DEM
/// authentication fails; [`GroupError::NotInGroup`] when `u1`/`u2` are not
/// subgroup members.
pub fn decrypt(
    group: &SchnorrGroup,
    sk: &SecretKey,
    ct: &Ciphertext,
) -> Result<Vec<u8>, GroupError> {
    if !group.is_member(&ct.u1) || !group.is_member(&ct.u2) || !group.is_member(&ct.v) {
        return Err(GroupError::NotInGroup);
    }
    let a = alpha(group, &ct.u1, &ct.u2, &ct.dem);
    // v ?= u1^{x1 + y1 α} · u2^{x2 + y2 α}
    let e1 = sk.x1.addm(&sk.y1.mulm(&a, group.q()), group.q());
    let e2 = sk.x2.addm(&sk.y2.mulm(&a, group.q()), group.q());
    let check = group.mul(&group.exp(&ct.u1, &e1), &group.exp(&ct.u2, &e2));
    if check != ct.v {
        return Err(GroupError::DecryptionFailed);
    }
    let kem = group.exp(&ct.u1, &sk.z);
    let key = group.element_to_key(&kem, "cs-dem");
    aead::open(&key, &ct.dem, b"cs-hybrid-v1").map_err(|_| GroupError::DecryptionFailed)
}

/// Produces a *decoy* ciphertext: random group elements and a random DEM
/// blob of the right length.
///
/// Used by Phase III CASE 2 of the handshake — after a failed preliminary
/// handshake each party publishes `(θ_i, δ_i)` "randomly selected from the
/// ciphertext spaces" (§7), and this is the `δ_i` part.
pub fn random_ciphertext(
    group: &SchnorrGroup,
    payload_len: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> Ciphertext {
    Ciphertext {
        u1: group.random_element(rng),
        u2: group.random_element(rng),
        dem: aead::random_ciphertext(payload_len, rng),
        v: group.random_element(rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::SchnorrPreset;
    use rand::SeedableRng;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    #[test]
    fn roundtrip() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(20);
        let (pk, sk) = keygen(g, &mut rng);
        for payload in [b"".as_slice(), b"k", &[7u8; 100]] {
            let ct = encrypt(g, &pk, payload, &mut rng);
            assert_eq!(decrypt(g, &sk, &ct).unwrap(), payload);
        }
    }

    #[test]
    fn tampered_dem_rejected() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let (pk, sk) = keygen(g, &mut rng);
        let mut ct = encrypt(g, &pk, b"secret session key", &mut rng);
        ct.dem[0] ^= 1;
        assert!(decrypt(g, &sk, &ct).is_err());
    }

    #[test]
    fn swapped_u1_rejected() {
        // CCA-style malleation: replace u1 by a fresh group element.
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let (pk, sk) = keygen(g, &mut rng);
        let mut ct = encrypt(g, &pk, b"payload", &mut rng);
        ct.u1 = g.random_element(&mut rng);
        assert!(decrypt(g, &sk, &ct).is_err());
    }

    #[test]
    fn reencrypt_tag_mismatch() {
        // Mixing (u1,u2,v) of one ciphertext with the DEM of another fails.
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let (pk, sk) = keygen(g, &mut rng);
        let a = encrypt(g, &pk, b"aaaaaaa", &mut rng);
        let b = encrypt(g, &pk, b"bbbbbbb", &mut rng);
        let mixed = Ciphertext {
            u1: a.u1,
            u2: a.u2,
            dem: b.dem,
            v: a.v,
        };
        assert!(decrypt(g, &sk, &mixed).is_err());
    }

    #[test]
    fn decoy_has_right_shape() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let (pk, sk) = keygen(g, &mut rng);
        let real = encrypt(g, &pk, &[0u8; 32], &mut rng);
        let fake = random_ciphertext(g, 32, &mut rng);
        assert_eq!(real.dem.len(), fake.dem.len());
        // Decoys decrypt to an error, not a panic.
        assert!(decrypt(g, &sk, &fake).is_err());
    }

    #[test]
    fn non_member_elements_rejected() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(25);
        let (pk, sk) = keygen(g, &mut rng);
        let mut ct = encrypt(g, &pk, b"x", &mut rng);
        ct.u2 = Ubig::from_u64(2); // almost surely not in the subgroup
        if !g.is_member(&ct.u2) {
            assert_eq!(decrypt(g, &sk, &ct), Err(GroupError::NotInGroup));
        }
    }
}
