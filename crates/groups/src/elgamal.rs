//! Textbook ElGamal encryption over a Schnorr group (IND-CPA).
//!
//! Not used on the critical path of the handshake (the tracing key needs
//! IND-CCA2 — see [`crate::cs`]) but provided as the classic baseline and
//! used by the opening-proof machinery of `shs-gsig` in tests.

use crate::schnorr::SchnorrGroup;
use crate::GroupError;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::Ubig;

/// An ElGamal public key `y = g^x`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    /// `g^x mod p`.
    pub y: Ubig,
}

/// An ElGamal secret key `x`.
#[derive(Clone, Serialize, Deserialize)]
pub struct SecretKey {
    /// The discrete log of `y`.
    pub x: Ubig,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretKey(****)")
    }
}

/// An ElGamal ciphertext `(c1, c2) = (g^r, m·y^r)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ciphertext {
    /// `g^r`.
    pub c1: Ubig,
    /// `m · y^r`.
    pub c2: Ubig,
}

/// Generates a keypair.
pub fn keygen(group: &SchnorrGroup, rng: &mut (impl RngCore + ?Sized)) -> (PublicKey, SecretKey) {
    let x = group.random_exponent(rng);
    let y = group.exp_g(&x);
    (PublicKey { y }, SecretKey { x })
}

/// Encrypts a group element.
///
/// # Errors
///
/// [`GroupError::NotInGroup`] when `m` is not a subgroup member.
pub fn encrypt(
    group: &SchnorrGroup,
    pk: &PublicKey,
    m: &Ubig,
    rng: &mut (impl RngCore + ?Sized),
) -> Result<Ciphertext, GroupError> {
    if !group.is_member(m) {
        return Err(GroupError::NotInGroup);
    }
    let r = group.random_exponent(rng);
    Ok(Ciphertext {
        c1: group.exp_g(&r),
        c2: group.mul(m, &group.exp(&pk.y, &r)),
    })
}

/// Decrypts to the group element.
///
/// # Errors
///
/// [`GroupError::NotInvertible`] cannot occur for well-formed ciphertexts
/// but is propagated from the division.
pub fn decrypt(group: &SchnorrGroup, sk: &SecretKey, ct: &Ciphertext) -> Result<Ubig, GroupError> {
    let s = group.exp(&ct.c1, &sk.x);
    group.div(&ct.c2, &s)
}

/// Component-wise product of two ciphertexts: encrypts the product of the
/// plaintexts (the multiplicative homomorphism of ElGamal).
pub fn homomorphic_mul(group: &SchnorrGroup, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
    Ciphertext {
        c1: group.mul(&a.c1, &b.c1),
        c2: group.mul(&a.c2, &b.c2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::SchnorrPreset;
    use rand::SeedableRng;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    #[test]
    fn roundtrip() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let (pk, sk) = keygen(g, &mut rng);
        let m = g.random_element(&mut rng);
        let ct = encrypt(g, &pk, &m, &mut rng).unwrap();
        assert_eq!(decrypt(g, &sk, &ct).unwrap(), m);
    }

    #[test]
    fn rejects_non_members() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (pk, _) = keygen(g, &mut rng);
        assert_eq!(
            encrypt(g, &pk, &Ubig::zero(), &mut rng),
            Err(GroupError::NotInGroup)
        );
    }

    #[test]
    fn wrong_key_garbles() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (pk, _sk) = keygen(g, &mut rng);
        let (_pk2, sk2) = keygen(g, &mut rng);
        let m = g.random_element(&mut rng);
        let ct = encrypt(g, &pk, &m, &mut rng).unwrap();
        assert_ne!(decrypt(g, &sk2, &ct).unwrap(), m);
    }

    #[test]
    fn randomized_encryption() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (pk, _) = keygen(g, &mut rng);
        let m = g.random_element(&mut rng);
        let a = encrypt(g, &pk, &m, &mut rng).unwrap();
        let b = encrypt(g, &pk, &m, &mut rng).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn homomorphism() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let (pk, sk) = keygen(g, &mut rng);
        let m1 = g.random_element(&mut rng);
        let m2 = g.random_element(&mut rng);
        let c1 = encrypt(g, &pk, &m1, &mut rng).unwrap();
        let c2 = encrypt(g, &pk, &m2, &mut rng).unwrap();
        let prod = homomorphic_mul(g, &c1, &c2);
        assert_eq!(decrypt(g, &sk, &prod).unwrap(), g.mul(&m1, &m2));
    }
}
