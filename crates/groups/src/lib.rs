//! Algebraic settings for the `secret-handshakes` cryptography.
//!
//! Two families of groups underpin everything in this workspace:
//!
//! * [`schnorr::SchnorrGroup`] — a prime-order-`q` subgroup of `Z_p^*`,
//!   the setting of the Burmester–Desmedt and GDH key-agreement protocols
//!   (`shs-dgka`) and of the Cramer–Shoup tracing encryption.
//! * [`rsa::RsaGroup`] — `QR(n)` for a safe-RSA modulus `n = pq`
//!   (`p = 2p'+1`, `q = 2q'+1`), the hidden-order setting of the
//!   ACJT / Kiayias–Yung group signatures (`shs-gsig`).
//!
//! On top of these the crate provides:
//!
//! * [`elgamal`] — textbook ElGamal (IND-CPA) over a Schnorr group.
//! * [`cs`] — Cramer–Shoup hybrid encryption (IND-CCA2), the paper's
//!   tracing encryption `ENC(pk_T, ·)` of §7.
//! * [`pedersen`] — Pedersen commitments over a Schnorr group.
//!
//! All exponentiation flows through `shs-bigint`'s instrumented `modpow`,
//! so protocol-level experiments can count modular exponentiations exactly
//! as the paper does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cs;
pub mod elgamal;
pub mod pedersen;
pub mod rsa;
pub mod schnorr;

/// Errors produced by group operations and encryption schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// A value was not a member of the expected group / subgroup.
    NotInGroup,
    /// Parameters failed validation (wrong order, composite where prime
    /// expected, generator of the wrong order, ...).
    BadParameters,
    /// A ciphertext failed its validity check (Cramer–Shoup tag, AEAD tag).
    DecryptionFailed,
    /// An element had no inverse (shares a factor with the modulus).
    NotInvertible,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::NotInGroup => write!(f, "value is not in the expected group"),
            GroupError::BadParameters => write!(f, "group parameters failed validation"),
            GroupError::DecryptionFailed => write!(f, "ciphertext failed validity check"),
            GroupError::NotInvertible => write!(f, "element is not invertible"),
        }
    }
}

impl std::error::Error for GroupError {}
