//! Pedersen commitments over a Schnorr group.
//!
//! Used by the interactive `GSIG.Join` protocol (the member commits to its
//! secret exponent before proving knowledge of it) and referenced by the
//! paper's scheme-2 CASE 2, where parties *simulate* the commitment
//! protocol on failed handshakes.

use crate::schnorr::SchnorrGroup;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::Ubig;

/// Commitment parameters: two generators with unknown mutual discrete log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitParams {
    /// First base (the group generator).
    pub g: Ubig,
    /// Second base, derived by hashing so nobody knows `log_g h`.
    pub h: Ubig,
}

/// A Pedersen commitment `g^m h^r`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Commitment(pub Ubig);

/// The opening `(m, r)` of a commitment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Opening {
    /// Committed value.
    pub m: Ubig,
    /// Blinding randomness.
    pub r: Ubig,
}

impl CommitParams {
    /// Derives parameters for a group; `h` is a nothing-up-my-sleeve hash
    /// point so that `log_g h` is unknown to everyone.
    pub fn derive(group: &SchnorrGroup) -> CommitParams {
        CommitParams {
            g: group.g().clone(),
            h: group.hash_to_group(b"shs-pedersen-h"),
        }
    }

    /// Commits to `m` with fresh randomness.
    pub fn commit(
        &self,
        group: &SchnorrGroup,
        m: &Ubig,
        rng: &mut (impl RngCore + ?Sized),
    ) -> (Commitment, Opening) {
        let r = group.random_exponent(rng);
        let c = self.commit_with(group, m, &r);
        (c, Opening { m: m.clone(), r })
    }

    /// Commits with caller-provided randomness.
    pub fn commit_with(&self, group: &SchnorrGroup, m: &Ubig, r: &Ubig) -> Commitment {
        Commitment(group.mul(&group.exp(&self.g, m), &group.exp(&self.h, r)))
    }

    /// Verifies an opening.
    pub fn verify(&self, group: &SchnorrGroup, c: &Commitment, o: &Opening) -> bool {
        self.commit_with(group, &o.m, &o.r) == *c
    }

    /// Homomorphic addition: `commit(m1, r1)·commit(m2, r2) =
    /// commit(m1+m2, r1+r2)`.
    pub fn add(&self, group: &SchnorrGroup, a: &Commitment, b: &Commitment) -> Commitment {
        Commitment(group.mul(&a.0, &b.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::SchnorrPreset;
    use rand::SeedableRng;

    fn setup() -> (&'static SchnorrGroup, CommitParams) {
        let g = SchnorrGroup::system_wide(SchnorrPreset::Test);
        (g, CommitParams::derive(g))
    }

    #[test]
    fn commit_verify() {
        let (g, params) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(30);
        let m = g.random_exponent(&mut rng);
        let (c, o) = params.commit(g, &m, &mut rng);
        assert!(params.verify(g, &c, &o));
    }

    #[test]
    fn wrong_opening_rejected() {
        let (g, params) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let m = g.random_exponent(&mut rng);
        let (c, o) = params.commit(g, &m, &mut rng);
        let bad_m = Opening {
            m: o.m.add_u64(1),
            r: o.r.clone(),
        };
        assert!(!params.verify(g, &c, &bad_m));
        let bad_r = Opening {
            m: o.m,
            r: o.r.add_u64(1),
        };
        assert!(!params.verify(g, &c, &bad_r));
    }

    #[test]
    fn hiding_under_fresh_randomness() {
        let (g, params) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let m = g.random_exponent(&mut rng);
        let (c1, _) = params.commit(g, &m, &mut rng);
        let (c2, _) = params.commit(g, &m, &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn homomorphic_addition() {
        let (g, params) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let m1 = g.random_exponent(&mut rng);
        let m2 = g.random_exponent(&mut rng);
        let (c1, o1) = params.commit(g, &m1, &mut rng);
        let (c2, o2) = params.commit(g, &m2, &mut rng);
        let sum = params.add(g, &c1, &c2);
        let o = Opening {
            m: o1.m.addm(&o2.m, g.q()),
            r: o1.r.addm(&o2.r, g.q()),
        };
        assert!(params.verify(g, &sum, &o));
    }
}
