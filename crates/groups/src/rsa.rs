//! Safe-RSA moduli and the hidden-order group `QR(n)`.
//!
//! The ACJT and Kiayias–Yung group signatures (Appendix H of the paper)
//! live in `QR(n)` for `n = pq` with `p = 2p'+1`, `q = 2q'+1` safe primes:
//! `QR(n)` is then cyclic of order `p'q'`, and computing e-th roots requires
//! knowledge of the factorization — the group manager's trapdoor.

use crate::GroupError;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{crt::CrtCtx, gcd, jacobi, mont::MontCtx, prime, rng as brng, Int, Ubig};
use shs_crypto::hkdf;
use std::sync::Arc;

/// The public side of a safe-RSA setting: the modulus `n`.
#[derive(Debug, Clone)]
pub struct RsaGroup {
    n: Ubig,
    ctx: Arc<MontCtx>,
}

/// Serializable form of [`RsaGroup`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsaParams {
    /// The modulus `n = pq`.
    pub n: Ubig,
}

/// The factorization trapdoor held by the group manager.
#[derive(Clone, Serialize, Deserialize)]
pub struct RsaSecret {
    /// Safe prime `p = 2p' + 1`.
    pub p: Ubig,
    /// Safe prime `q = 2q' + 1`.
    pub q: Ubig,
    /// Sophie Germain prime `p'`.
    pub p1: Ubig,
    /// Sophie Germain prime `q'`.
    pub q1: Ubig,
}

impl std::fmt::Debug for RsaSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RsaSecret {{ p: ****, q: **** }}")
    }
}

impl RsaGroup {
    /// Generates a safe-RSA modulus of exactly `modulus_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `modulus_bits < 32`.
    pub fn generate(modulus_bits: u32, rng: &mut (impl RngCore + ?Sized)) -> (RsaGroup, RsaSecret) {
        assert!(modulus_bits >= 32, "modulus too small");
        let half = modulus_bits / 2;
        loop {
            let (p, p1) = prime::gen_safe_prime(half, rng);
            let (q, q1) = prime::gen_safe_prime(modulus_bits - half, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bits() != modulus_bits {
                continue;
            }
            let group = RsaGroup {
                ctx: MontCtx::shared(&n),
                n,
            };
            let secret = RsaSecret { p, q, p1, q1 };
            return (group, secret);
        }
    }

    /// Deterministic generation from a seed (HMAC-DRBG) — used by tests and
    /// benchmarks so every process sees the same modulus without paying
    /// safe-prime search repeatedly.
    pub fn generate_deterministic(modulus_bits: u32, seed: &[u8]) -> (RsaGroup, RsaSecret) {
        let mut drbg = shs_crypto::drbg::HmacDrbg::from_seed(seed);
        RsaGroup::generate(modulus_bits, &mut drbg)
    }

    /// Rebuilds the public group from its parameters. The Montgomery
    /// context comes from the process-wide cache, so round-tripping a group
    /// through its params (done on every credential deserialization) no
    /// longer re-derives R² and n′.
    pub fn from_params(params: RsaParams) -> RsaGroup {
        RsaGroup {
            ctx: MontCtx::shared(&params.n),
            n: params.n,
        }
    }

    /// Serializable parameters.
    pub fn params(&self) -> RsaParams {
        RsaParams { n: self.n.clone() }
    }

    /// The modulus.
    pub fn n(&self) -> &Ubig {
        &self.n
    }

    /// `base^e mod n` (counts as one modular exponentiation).
    pub fn exp(&self, base: &Ubig, e: &Ubig) -> Ubig {
        shs_bigint::counters::record_modexp();
        self.ctx.modpow(base, e)
    }

    /// The shared Montgomery context for `n` — handed to fixed-base table
    /// builders so precomputation lives alongside the group.
    pub fn ctx(&self) -> &Arc<MontCtx> {
        &self.ctx
    }

    /// Variable-time `base^e mod n` for **public** operands (broadcast
    /// signatures, proof transcripts). Counts as one modular
    /// exponentiation, like [`RsaGroup::exp`].
    pub fn exp_vartime(&self, base: &Ubig, e: &Ubig) -> Ubig {
        shs_bigint::counters::record_modexp();
        self.ctx.modpow_vartime(base, e)
    }

    /// Variable-time multi-exponentiation `∏ baseᵢ^{eᵢ} mod n` with signed
    /// exponents, for **public** verification equations. Negative
    /// exponents invert their base first (same contract as
    /// [`RsaGroup::exp_signed`]). Counts one modular exponentiation per
    /// term, so cost tables match the naive product it replaces.
    ///
    /// # Panics
    ///
    /// Panics if a base with a negative exponent is not invertible
    /// (probability `~ 1/p'` — finding such a base factors `n`).
    pub fn multi_exp_vartime(&self, terms: &[(&Ubig, &Int)]) -> Ubig {
        for _ in terms {
            shs_bigint::counters::record_modexp();
        }
        let inverted: Vec<(Ubig, Ubig)> = terms
            .iter()
            .map(|(b, e)| {
                let base = if e.is_negative() {
                    b.modinv(&self.n)
                        .expect("non-invertible base would factor n")
                } else {
                    (*b).clone()
                };
                (base, e.magnitude().clone())
            })
            .collect();
        let pairs: Vec<(&Ubig, &Ubig)> = inverted.iter().map(|(b, e)| (b, e)).collect();
        self.ctx.multi_exp_vartime(&pairs)
    }

    /// Exponentiation with a signed exponent: `base^{-|e|}` is
    /// `(base^{-1})^{|e|}`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not invertible (probability `~ 1/p'` — finding
    /// such a base factors `n`).
    pub fn exp_signed(&self, base: &Ubig, e: &Int) -> Ubig {
        if e.is_negative() {
            let inv = base
                .modinv(&self.n)
                .expect("non-invertible base would factor n");
            self.exp(&inv, e.magnitude())
        } else {
            self.exp(base, e.magnitude())
        }
    }

    /// Group operation `a*b mod n`.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        a.mulm(b, &self.n)
    }

    /// Multiplicative inverse mod `n`.
    ///
    /// # Errors
    ///
    /// [`GroupError::NotInvertible`] when `gcd(a, n) != 1`.
    pub fn inv(&self, a: &Ubig) -> Result<Ubig, GroupError> {
        a.modinv(&self.n).map_err(|_| GroupError::NotInvertible)
    }

    /// `a / b mod n`.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError::NotInvertible`] from the inversion of `b`.
    pub fn div(&self, a: &Ubig, b: &Ubig) -> Result<Ubig, GroupError> {
        Ok(self.mul(a, &self.inv(b)?))
    }

    /// A random element of `QR(n)` (a random square).
    pub fn random_qr(&self, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        loop {
            let x = brng::range(rng, &Ubig::from_u64(2), &self.n);
            if gcd::gcd(&x, &self.n).is_one() {
                return self.mul(&x, &x);
            }
        }
    }

    /// A random exponent suitable for blinding in `QR(n)`: uniform in
    /// `[0, n/4)`, statistically close to uniform modulo the (unknown)
    /// group order `p'q' ≈ n/4`.
    pub fn random_exponent(&self, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        brng::below(rng, &self.n.shr(2))
    }

    /// Deterministically hashes bytes into `QR(n)` by hashing to `Z_n` and
    /// squaring — used for the common self-distinction base `T7` (§8.2).
    pub fn hash_to_qr(&self, data: &[u8]) -> Ubig {
        let byte_len = (self.n.bits() as usize).div_ceil(8) + 16;
        let mut counter = 0u32;
        loop {
            let mut info = b"shs-hash-to-qr".to_vec();
            info.extend_from_slice(&counter.to_be_bytes());
            let bytes = hkdf::hkdf(&[], data, &info, byte_len);
            let x = Ubig::from_bytes_be(&bytes).rem(&self.n);
            if !x.is_zero() && gcd::gcd(&x, &self.n).is_one() {
                let sq = self.mul(&x, &x);
                if !sq.is_one() {
                    return sq;
                }
            }
            counter += 1;
        }
    }
}

impl RsaSecret {
    /// The order of `QR(n)`, namely `p'q'`.
    pub fn qr_order(&self) -> Ubig {
        self.p1.mul(&self.q1)
    }

    /// Euler's totient `φ(n) = 4p'q'`.
    pub fn phi(&self) -> Ubig {
        self.p.sub_u64(1).mul(&self.q.sub_u64(1))
    }

    /// Is `x` a quadratic residue mod `n`? (Requires the factorization:
    /// QR mod both primes.)
    pub fn is_qr(&self, x: &Ubig) -> bool {
        jacobi::is_qr_mod_prime(x, &self.p) && jacobi::is_qr_mod_prime(x, &self.q)
    }

    /// Computes the `e`-th root of `x` in `QR(n)`: `x^{e^{-1} mod p'q'}`.
    ///
    /// This is the group manager trapdoor operation used by `GSIG.Join` to
    /// issue membership certificates `A = (a^x a_0)^{1/e}`.
    ///
    /// # Errors
    ///
    /// [`GroupError::NotInvertible`] when `gcd(e, p'q') != 1`.
    pub fn root(&self, group: &RsaGroup, x: &Ubig, e: &Ubig) -> Result<Ubig, GroupError> {
        let d = e
            .modinv(&self.qr_order())
            .map_err(|_| GroupError::NotInvertible)?;
        // Authority-side: the factorization is in hand, so the full-width
        // exponentiation splits into two half-width ones (CRT). Counts one
        // modexp, exactly like the `group.exp` call it replaces.
        let ctx = CrtCtx::shared(&self.p, &self.q).map_err(|_| GroupError::NotInvertible)?;
        debug_assert_eq!(ctx.modulus(), group.n());
        Ok(ctx.modpow(x, &d))
    }

    /// Samples a generator of the cyclic group `QR(n)`.
    ///
    /// A random square generates `QR(n)` unless its order divides `p'` or
    /// `q'`; both are checked exactly using the factorization.
    pub fn qr_generator(&self, group: &RsaGroup, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        loop {
            let candidate = group.random_qr(rng);
            if candidate.is_one() {
                continue;
            }
            if group.exp(&candidate, &self.p1).is_one() {
                continue;
            }
            if group.exp(&candidate, &self.q1).is_one() {
                continue;
            }
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_crypto::drbg::HmacDrbg;
    use std::sync::OnceLock;

    /// A shared small RSA setting so tests don't each pay safe-prime
    /// generation.
    pub(crate) fn test_setting() -> &'static (RsaGroup, RsaSecret) {
        static SETTING: OnceLock<(RsaGroup, RsaSecret)> = OnceLock::new();
        SETTING.get_or_init(|| {
            let mut rng = HmacDrbg::from_seed(b"rsa-test-setting");
            RsaGroup::generate(256, &mut rng)
        })
    }

    #[test]
    fn modulus_structure() {
        let (g, s) = test_setting();
        assert_eq!(g.n().bits(), 256);
        assert_eq!(&s.p.mul(&s.q), g.n());
        assert_eq!(s.p, s.p1.shl(1).add_u64(1));
        assert_eq!(s.q, s.q1.shl(1).add_u64(1));
    }

    #[test]
    fn qr_elements_are_squares() {
        let (g, s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t1");
        for _ in 0..5 {
            let x = g.random_qr(&mut rng);
            assert!(s.is_qr(&x));
        }
    }

    #[test]
    fn euler_on_qr_group() {
        // x^{p'q'} == 1 for x in QR(n).
        let (g, s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t2");
        let x = g.random_qr(&mut rng);
        assert!(g.exp(&x, &s.qr_order()).is_one());
    }

    #[test]
    fn root_inverts_exp() {
        let (g, s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t3");
        let x = g.random_qr(&mut rng);
        let e = Ubig::from_u64(65537);
        let r = s.root(g, &x, &e).unwrap();
        assert_eq!(g.exp(&r, &e), x);
        // Root with even e (shares factor 2 with 4p'q'? No: with p'q' it's
        // coprime unless e hits p' or q'). gcd(2, p'q') = 1, so 2 works:
        let r2 = s.root(g, &x, &Ubig::from_u64(2)).unwrap();
        assert_eq!(g.exp(&r2, &Ubig::from_u64(2)), x);
    }

    #[test]
    fn generator_has_full_order() {
        let (g, s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t4");
        let gen = s.qr_generator(g, &mut rng);
        assert!(!g.exp(&gen, &s.p1).is_one());
        assert!(!g.exp(&gen, &s.q1).is_one());
        assert!(g.exp(&gen, &s.qr_order()).is_one());
    }

    #[test]
    fn signed_exponentiation() {
        let (g, _s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t5");
        let x = g.random_qr(&mut rng);
        let e = Int::from_i64(5);
        let pos = g.exp_signed(&x, &e);
        let neg = g.exp_signed(&x, &e.neg());
        assert!(g.mul(&pos, &neg).is_one());
    }

    #[test]
    fn hash_to_qr_is_deterministic_square() {
        let (g, s) = test_setting();
        let a = g.hash_to_qr(b"transcript-1");
        let b = g.hash_to_qr(b"transcript-1");
        let c = g.hash_to_qr(b"transcript-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(s.is_qr(&a));
    }

    #[test]
    fn vartime_kernels_match_ct() {
        let (g, _s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t7");
        let x = g.random_qr(&mut rng);
        let y = g.random_qr(&mut rng);
        let e1 = g.random_exponent(&mut rng);
        let e2 = Int::from_i64(-12345);
        assert_eq!(g.exp_vartime(&x, &e1), g.exp(&x, &e1));
        let naive = g.mul(
            &g.exp_signed(&x, &Int::from_ubig(e1.clone())),
            &g.exp_signed(&y, &e2),
        );
        assert_eq!(
            g.multi_exp_vartime(&[(&x, &Int::from_ubig(e1)), (&y, &e2)]),
            naive
        );
    }

    #[test]
    fn crt_root_matches_plain_exp() {
        let (g, s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t8");
        let x = g.random_qr(&mut rng);
        let e = Ubig::from_u64(65537);
        let d = e.modinv(&s.qr_order()).unwrap();
        assert_eq!(s.root(g, &x, &e).unwrap(), g.exp(&x, &d));
    }

    #[test]
    fn inversion() {
        let (g, _s) = test_setting();
        let mut rng = HmacDrbg::from_seed(b"t6");
        let x = g.random_qr(&mut rng);
        let xi = g.inv(&x).unwrap();
        assert!(g.mul(&x, &xi).is_one());
    }
}
