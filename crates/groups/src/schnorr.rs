//! Schnorr groups: the prime-order-`q` subgroup of `Z_p^*` with `q | p-1`.
//!
//! These are the groups in which the Burmester–Desmedt and GDH.2 key
//! agreement protocols run, and the setting of the Cramer–Shoup tracing
//! encryption. The paper's DGKA building block assumes "system-wide (not
//! group-specific) cryptographic parameters" (§7, `GCD.CreateGroup`); the
//! deterministic [`SchnorrGroup::system_wide`] presets play exactly that
//! role.

use crate::GroupError;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{mont::MontCtx, prime, rng as brng, Int, Sign, Ubig};
use shs_crypto::{drbg::HmacDrbg, hkdf};
use std::sync::OnceLock;

/// Serializable Schnorr group parameters `(p, q, g)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchnorrParams {
    /// The field prime `p`.
    pub p: Ubig,
    /// The subgroup order `q` (prime, `q | p-1`).
    pub q: Ubig,
    /// A generator of the order-`q` subgroup.
    pub g: Ubig,
}

/// A validated Schnorr group with a cached Montgomery context.
#[derive(Debug, Clone)]
pub struct SchnorrGroup {
    params: SchnorrParams,
    ctx: MontCtx,
    /// `(p-1)/q`, the cofactor.
    cofactor: Ubig,
}

/// Size presets for the system-wide DGKA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchnorrPreset {
    /// 512-bit `p`, 160-bit `q` — fast, for tests and CI.
    Test,
    /// 1024-bit `p`, 160-bit `q` — the sizes contemporary with the paper.
    Small,
    /// 2048-bit `p`, 256-bit `q` — modern sizes.
    Paper,
}

impl SchnorrPreset {
    /// `(p_bits, q_bits)` for the preset.
    pub fn sizes(self) -> (u32, u32) {
        match self {
            SchnorrPreset::Test => (512, 160),
            SchnorrPreset::Small => (1024, 160),
            SchnorrPreset::Paper => (2048, 256),
        }
    }
}

impl SchnorrGroup {
    /// Generates a fresh random group with `p_bits`-bit `p` and `q_bits`-bit
    /// `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q_bits + 2 > p_bits` or sizes are degenerate (< 16 bits).
    pub fn generate(p_bits: u32, q_bits: u32, rng: &mut (impl RngCore + ?Sized)) -> SchnorrGroup {
        assert!(
            p_bits >= q_bits + 2 && q_bits >= 16,
            "degenerate Schnorr sizes"
        );
        let q = prime::gen_prime(q_bits, rng);
        loop {
            // p = q*r + 1 with r even and sized so p has exactly p_bits bits.
            let mut r = brng::random_bits(rng, p_bits - q_bits);
            if r.is_odd() {
                r = r.add_u64(1);
            }
            let p = q.mul(&r).add_u64(1);
            if p.bits() != p_bits {
                continue;
            }
            if !prime::is_prime(&p, rng) {
                continue;
            }
            // Find a generator of the order-q subgroup: h^((p-1)/q) != 1.
            let cofactor = r;
            loop {
                let h = brng::range(rng, &Ubig::from_u64(2), &p.sub_u64(1));
                let g = h.modpow(&cofactor, &p);
                if !g.is_one() {
                    let params = SchnorrParams {
                        p: p.clone(),
                        q: q.clone(),
                        g,
                    };
                    return SchnorrGroup::from_params(params)
                        .expect("freshly generated params are valid");
                }
            }
        }
    }

    /// The deterministic *system-wide* parameters for a preset
    /// (§7: all groups share the same global DGKA parameters).
    ///
    /// Parameters are derived from a fixed nothing-up-my-sleeve seed via
    /// HMAC-DRBG, generated once per process and cached.
    pub fn system_wide(preset: SchnorrPreset) -> &'static SchnorrGroup {
        static TEST: OnceLock<SchnorrGroup> = OnceLock::new();
        static SMALL: OnceLock<SchnorrGroup> = OnceLock::new();
        static PAPER: OnceLock<SchnorrGroup> = OnceLock::new();
        let (cell, label) = match preset {
            SchnorrPreset::Test => (&TEST, "shs-system-wide-test"),
            SchnorrPreset::Small => (&SMALL, "shs-system-wide-small"),
            SchnorrPreset::Paper => (&PAPER, "shs-system-wide-paper"),
        };
        cell.get_or_init(|| {
            let (p_bits, q_bits) = preset.sizes();
            let mut drbg = HmacDrbg::from_seed(label.as_bytes());
            SchnorrGroup::generate(p_bits, q_bits, &mut drbg)
        })
    }

    /// Validates parameters and builds a group.
    ///
    /// # Errors
    ///
    /// [`GroupError::BadParameters`] when `q ∤ p-1`, `p` or `q` is
    /// composite, or `g` does not have order exactly `q`.
    pub fn from_params(params: SchnorrParams) -> Result<SchnorrGroup, GroupError> {
        let SchnorrParams { p, q, g } = &params;
        let mut rng = HmacDrbg::from_seed(b"schnorr-validate");
        if p.is_even() || !prime::is_prime(p, &mut rng) || !prime::is_prime(q, &mut rng) {
            return Err(GroupError::BadParameters);
        }
        let p_minus_1 = p.sub_u64(1);
        let (cofactor, rem) = p_minus_1.divrem(q).map_err(|_| GroupError::BadParameters)?;
        if !rem.is_zero() {
            return Err(GroupError::BadParameters);
        }
        if g.is_zero() || g.is_one() || g >= p {
            return Err(GroupError::BadParameters);
        }
        let ctx = MontCtx::new(p.clone());
        if !ctx.modpow(g, q).is_one() {
            return Err(GroupError::BadParameters);
        }
        Ok(SchnorrGroup {
            params,
            ctx,
            cofactor,
        })
    }

    /// The parameters (for serialization / transmission).
    pub fn params(&self) -> &SchnorrParams {
        &self.params
    }

    /// The field prime `p`.
    pub fn p(&self) -> &Ubig {
        &self.params.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &Ubig {
        &self.params.q
    }

    /// The generator `g`.
    pub fn g(&self) -> &Ubig {
        &self.params.g
    }

    /// `g^e mod p`.
    pub fn exp_g(&self, e: &Ubig) -> Ubig {
        self.exp(&self.params.g, e)
    }

    /// `base^e mod p` (counts as one modular exponentiation).
    pub fn exp(&self, base: &Ubig, e: &Ubig) -> Ubig {
        shs_bigint::counters::record_modexp();
        self.ctx.modpow(base, &e.rem(&self.params.q))
    }

    /// Exponentiation by a possibly negative integer exponent.
    pub fn exp_signed(&self, base: &Ubig, e: &Int) -> Ubig {
        let reduced = e.mod_ubig(&self.params.q);
        self.exp(base, &reduced)
    }

    /// Group operation: `a*b mod p`.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        a.mulm(b, &self.params.p)
    }

    /// Multiplicative inverse in `Z_p^*`.
    ///
    /// # Errors
    ///
    /// [`GroupError::NotInvertible`] for zero (cannot occur for subgroup
    /// members).
    pub fn inv(&self, a: &Ubig) -> Result<Ubig, GroupError> {
        a.modinv(&self.params.p)
            .map_err(|_| GroupError::NotInvertible)
    }

    /// `a / b mod p`.
    ///
    /// # Errors
    ///
    /// Propagates [`GroupError::NotInvertible`] from the inversion of `b`.
    pub fn div(&self, a: &Ubig, b: &Ubig) -> Result<Ubig, GroupError> {
        Ok(self.mul(a, &self.inv(b)?))
    }

    /// Is `x` a member of the order-`q` subgroup?
    pub fn is_member(&self, x: &Ubig) -> bool {
        !x.is_zero() && x < &self.params.p && self.ctx.modpow(x, &self.params.q).is_one()
    }

    /// A uniformly random exponent in `[1, q)`.
    pub fn random_exponent(&self, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        brng::range(rng, &Ubig::one(), &self.params.q)
    }

    /// A uniformly random subgroup member (with its discrete log discarded).
    pub fn random_element(&self, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        let e = self.random_exponent(rng);
        self.exp_g(&e)
    }

    /// Hashes arbitrary bytes onto the order-`q` subgroup
    /// (`H(x)^{(p-1)/q}`, rejecting the identity).
    pub fn hash_to_group(&self, data: &[u8]) -> Ubig {
        let byte_len = (self.params.p.bits() as usize).div_ceil(8) + 16;
        let mut counter = 0u32;
        loop {
            let mut info = b"shs-hash-to-schnorr".to_vec();
            info.extend_from_slice(&counter.to_be_bytes());
            let bytes = hkdf::hkdf(&[], data, &info, byte_len);
            let x = Ubig::from_bytes_be(&bytes).rem(&self.params.p);
            if !x.is_zero() {
                let y = self.ctx.modpow(&x, &self.cofactor);
                if !y.is_one() {
                    return y;
                }
            }
            counter += 1;
        }
    }

    /// Derives a symmetric key from a group element (session-key
    /// extraction for DGKA).
    pub fn element_to_key(&self, elem: &Ubig, label: &str) -> shs_crypto::Key {
        let bytes = elem.to_bytes_be_padded((self.params.p.bits() as usize).div_ceil(8));
        let mut ikm = label.as_bytes().to_vec();
        ikm.extend_from_slice(&bytes);
        shs_crypto::Key::derive(&ikm, "schnorr-element-to-key")
    }
}

/// Computes a signed "exponent sphere" check used by Fiat–Shamir range
/// arguments: is `|v| < 2^bits`?
pub fn in_sphere(v: &Int, bits: u32) -> bool {
    v.magnitude().bits() <= bits
}

/// Builds the signed integer `2^bits` (helper for sphere centers).
pub fn pow2(bits: u32) -> Int {
    let mut u = Ubig::zero();
    u.set_bit(bits);
    Int::new(Sign::Plus, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn group() -> &'static SchnorrGroup {
        SchnorrGroup::system_wide(SchnorrPreset::Test)
    }

    #[test]
    fn generated_group_is_valid() {
        let g = group();
        assert_eq!(g.p().bits(), 512);
        assert_eq!(g.q().bits(), 160);
        assert!(g.is_member(g.g()));
        // Generator has order exactly q (q prime, g != 1).
        assert!(!g.g().is_one());
    }

    #[test]
    fn system_wide_is_deterministic() {
        let a = SchnorrGroup::system_wide(SchnorrPreset::Test);
        let b = SchnorrGroup::system_wide(SchnorrPreset::Test);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn exp_laws() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        // g^a * g^b == g^(a+b)
        let lhs = g.mul(&g.exp_g(&a), &g.exp_g(&b));
        let rhs = g.exp_g(&a.add(&b));
        assert_eq!(lhs, rhs);
        // (g^a)^b == (g^b)^a
        assert_eq!(g.exp(&g.exp_g(&a), &b), g.exp(&g.exp_g(&b), &a));
    }

    #[test]
    fn signed_exponents() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = g.random_exponent(&mut rng);
        let pos = Int::from_ubig(a.clone());
        let neg = pos.neg();
        // g^a * g^(-a) == 1
        let prod = g.mul(&g.exp_signed(g.g(), &pos), &g.exp_signed(g.g(), &neg));
        assert!(prod.is_one());
    }

    #[test]
    fn membership() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let x = g.random_element(&mut rng);
        assert!(g.is_member(&x));
        assert!(!g.is_member(&Ubig::zero()));
        assert!(!g.is_member(g.p()));
        // A random non-subgroup element of Z_p^* is (w.h.p.) rejected.
        let outsider = Ubig::from_u64(2);
        if !g.is_member(&outsider) {
            // expected for our parameters
        }
    }

    #[test]
    fn inverse_and_div() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let x = g.random_element(&mut rng);
        let xi = g.inv(&x).unwrap();
        assert!(g.mul(&x, &xi).is_one());
        let y = g.random_element(&mut rng);
        assert_eq!(g.mul(&g.div(&y, &x).unwrap(), &x), y);
    }

    #[test]
    fn hash_to_group_lands_in_subgroup() {
        let g = group();
        for data in [b"a".as_slice(), b"b", b"hello world", &[0u8; 100]] {
            let h = g.hash_to_group(data);
            assert!(g.is_member(&h), "hash output must be a subgroup member");
            assert!(!h.is_one());
        }
        // Deterministic.
        assert_eq!(g.hash_to_group(b"x"), g.hash_to_group(b"x"));
        assert_ne!(g.hash_to_group(b"x"), g.hash_to_group(b"y"));
    }

    #[test]
    fn element_to_key_deterministic() {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = g.random_element(&mut rng);
        assert_eq!(g.element_to_key(&x, "l"), g.element_to_key(&x, "l"));
        assert_ne!(g.element_to_key(&x, "l"), g.element_to_key(&x, "m"));
    }

    #[test]
    fn bad_parameters_rejected() {
        let good = group().params().clone();
        // Composite p.
        let bad = SchnorrParams {
            p: good.p.add_u64(1),
            ..good.clone()
        };
        assert!(SchnorrGroup::from_params(bad).is_err());
        // Generator outside the subgroup (order 2 element p-1).
        let bad_g = SchnorrParams {
            g: good.p.sub_u64(1),
            ..good.clone()
        };
        assert!(SchnorrGroup::from_params(bad_g).is_err());
        // g = 1.
        let bad_one = SchnorrParams {
            g: Ubig::one(),
            ..good
        };
        assert!(SchnorrGroup::from_params(bad_one).is_err());
    }

    #[test]
    fn sphere_check() {
        assert!(in_sphere(&Int::from_i64(-100), 7));
        assert!(!in_sphere(&Int::from_i64(-300), 8));
        assert!(in_sphere(&Int::from_i64(255), 8));
        assert!(in_sphere(&Int::zero(), 1));
    }
}
