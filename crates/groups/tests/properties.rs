//! Property-based tests of the algebraic settings.

use proptest::prelude::*;
use rand::SeedableRng;
use shs_groups::schnorr::{SchnorrGroup, SchnorrPreset};
use shs_groups::{cs, elgamal, pedersen};

fn group() -> &'static SchnorrGroup {
    SchnorrGroup::system_wide(SchnorrPreset::Test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn exponent_arithmetic_respects_group_order(seed in any::<u64>()) {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        // (g^a)^b == g^{ab mod q}
        let lhs = g.exp(&g.exp_g(&a), &b);
        let rhs = g.exp_g(&a.mulm(&b, g.q()));
        prop_assert_eq!(lhs, rhs);
        // Random elements are subgroup members with inverses.
        let x = g.random_element(&mut rng);
        prop_assert!(g.is_member(&x));
        let xi = g.inv(&x).unwrap();
        prop_assert!(g.mul(&x, &xi).is_one());
    }

    #[test]
    fn elgamal_roundtrip_random_messages(seed in any::<u64>()) {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (pk, sk) = elgamal::keygen(g, &mut rng);
        let m = g.random_element(&mut rng);
        let ct = elgamal::encrypt(g, &pk, &m, &mut rng).unwrap();
        prop_assert_eq!(elgamal::decrypt(g, &sk, &ct).unwrap(), m);
    }

    #[test]
    fn cramer_shoup_roundtrip_arbitrary_payloads(
        payload in prop::collection::vec(any::<u8>(), 0..120),
        seed in any::<u64>(),
    ) {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (pk, sk) = cs::keygen(g, &mut rng);
        let ct = cs::encrypt(g, &pk, &payload, &mut rng);
        prop_assert_eq!(cs::decrypt(g, &sk, &ct).unwrap(), payload);
    }

    #[test]
    fn cramer_shoup_rejects_any_dem_bitflip(
        payload in prop::collection::vec(any::<u8>(), 1..60),
        idx in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let g = group();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (pk, sk) = cs::keygen(g, &mut rng);
        let mut ct = cs::encrypt(g, &pk, &payload, &mut rng);
        let i = idx.index(ct.dem.len());
        ct.dem[i] ^= 0x40;
        prop_assert!(cs::decrypt(g, &sk, &ct).is_err());
    }

    #[test]
    fn pedersen_binding_under_random_openings(seed in any::<u64>()) {
        let g = group();
        let params = pedersen::CommitParams::derive(g);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m1 = g.random_exponent(&mut rng);
        let m2 = g.random_exponent(&mut rng);
        let (c1, o1) = params.commit(g, &m1, &mut rng);
        prop_assert!(params.verify(g, &c1, &o1));
        if m1 != m2 {
            let bad = pedersen::Opening { m: m2, r: o1.r.clone() };
            prop_assert!(!params.verify(g, &c1, &bad));
        }
    }

    #[test]
    fn hash_to_group_always_lands_in_subgroup(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let g = group();
        let h = g.hash_to_group(&data);
        prop_assert!(g.is_member(&h));
        prop_assert!(!h.is_one());
    }
}
