//! A Camenisch–Lysyanskaya dynamic accumulator over `QR(n)`.
//!
//! This is the revocation substrate the paper references when it notes
//! that GSIG revocation "is quite expensive, usually based on dynamic
//! accumulators \[12\]" (§3). The framework itself uses the cheaper
//! verifier-local revocation (DESIGN.md §2.2), but the accumulator is
//! implemented in full — add, trapdoor remove, witness updates, batched
//! catch-up — and the E9 revocation ablation benchmarks it against VLR and
//! CGKD-only revocation, reproducing the cost comparison behind the
//! paper's design choice.
//!
//! Values accumulated are the members' certificate primes `e_i ∈ Γ`
//! (pairwise distinct, coprime to `φ(n)`), exactly as in CL02 / ACJT
//! revocation.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{gcd, Ubig};
use shs_groups::rsa::{RsaGroup, RsaSecret};

/// The public accumulator value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accumulator {
    /// The base `u` the accumulator started from.
    pub base: Ubig,
    /// The current value `v = u^{∏ e_i}`.
    pub value: Ubig,
}

/// A member's witness: `w` with `w^e = v`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// The witness value.
    pub w: Ubig,
    /// The accumulated prime it certifies.
    pub e: Ubig,
}

/// An update event members replay to refresh their witnesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateEvent {
    /// A prime was added; members raise their witness to it.
    Added(Ubig),
    /// A prime was removed; carries the *new* accumulator value so
    /// remaining members can re-derive their witness via Bézout.
    Removed {
        /// The removed prime.
        e: Ubig,
        /// Accumulator value after removal.
        new_value: Ubig,
    },
}

/// Errors from accumulator operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulatorError {
    /// The value to accumulate must be odd, > 2 and coprime to the order.
    BadValue,
    /// A witness update was attempted for the removed value itself.
    WitnessRevoked,
    /// Internal arithmetic failure (non-invertible where invertible
    /// expected).
    Arithmetic,
}

impl std::fmt::Display for AccumulatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccumulatorError::BadValue => write!(f, "value cannot be accumulated"),
            AccumulatorError::WitnessRevoked => write!(f, "witness belongs to the removed value"),
            AccumulatorError::Arithmetic => write!(f, "accumulator arithmetic failed"),
        }
    }
}

impl std::error::Error for AccumulatorError {}

impl Accumulator {
    /// Creates a fresh accumulator from a random `QR(n)` base.
    pub fn new(group: &RsaGroup, rng: &mut (impl RngCore + ?Sized)) -> Accumulator {
        let base = group.random_qr(rng);
        Accumulator {
            value: base.clone(),
            base,
        }
    }

    /// Adds a prime `e`: `v ← v^e`. Returns the witness for the *newly
    /// added* value (the pre-update accumulator) plus the event for other
    /// members.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::BadValue`] for even or tiny values.
    pub fn add(
        &mut self,
        group: &RsaGroup,
        e: &Ubig,
    ) -> Result<(Witness, UpdateEvent), AccumulatorError> {
        if e.is_even() || *e <= Ubig::from_u64(2) {
            return Err(AccumulatorError::BadValue);
        }
        let witness = Witness {
            w: self.value.clone(),
            e: e.clone(),
        };
        self.value = group.exp(&self.value, e);
        Ok((witness, UpdateEvent::Added(e.clone())))
    }

    /// Removes a prime using the manager trapdoor: `v ← v^{e^{-1} mod
    /// p'q'}`.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::Arithmetic`] when `gcd(e, p'q') != 1` (cannot
    /// happen for honest `e ∈ Γ`).
    pub fn remove(
        &mut self,
        group: &RsaGroup,
        secret: &RsaSecret,
        e: &Ubig,
    ) -> Result<UpdateEvent, AccumulatorError> {
        let d = e
            .modinv(&secret.qr_order())
            .map_err(|_| AccumulatorError::Arithmetic)?;
        self.value = group.exp(&self.value, &d);
        Ok(UpdateEvent::Removed {
            e: e.clone(),
            new_value: self.value.clone(),
        })
    }

    /// Verifies a witness against the current accumulator value.
    pub fn verify(&self, group: &RsaGroup, witness: &Witness) -> bool {
        group.exp(&witness.w, &witness.e) == self.value
    }
}

impl Witness {
    /// Replays one update event on a member's witness.
    ///
    /// * `Added(e')`: `w ← w^{e'}`.
    /// * `Removed{e', v'}`: with Bézout `a·e + b·e' = 1`,
    ///   `w ← w^b · v'^a`.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::WitnessRevoked`] when replaying one's own
    /// removal; [`AccumulatorError::Arithmetic`] when the Bézout identity
    /// fails (non-coprime values).
    pub fn apply(&mut self, group: &RsaGroup, event: &UpdateEvent) -> Result<(), AccumulatorError> {
        match event {
            UpdateEvent::Added(e_new) => {
                self.w = group.exp(&self.w, e_new);
                Ok(())
            }
            UpdateEvent::Removed { e: e_rm, new_value } => {
                if e_rm == &self.e {
                    return Err(AccumulatorError::WitnessRevoked);
                }
                let (g, a, b) = gcd::ext_gcd(&self.e, e_rm);
                if !g.is_one() {
                    return Err(AccumulatorError::Arithmetic);
                }
                // w' = v'^a · w^b  satisfies  w'^e = v'^{ae} w^{be}
                //   = v'^{ae} (v')^{e_rm·b... }   — standard CL02 identity.
                let part1 = group.exp_signed(new_value, &a);
                let part2 = group.exp_signed(&self.w, &b);
                self.w = group.mul(&part1, &part2);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::params::{GsigParams, GsigPreset};
    use shs_crypto::drbg::HmacDrbg;

    fn setup() -> (&'static RsaGroup, &'static RsaSecret, Vec<Ubig>, HmacDrbg) {
        let (group, secret) = fixtures::test_rsa_setting();
        let params = GsigParams::preset(GsigPreset::Test);
        let rng = HmacDrbg::from_seed(b"acc-test");
        // Small distinct odd primes in Γ are expensive; use modest primes
        // coprime to everything instead (the algebra is identical).
        let primes: Vec<Ubig> = [65537u64, 65539, 65543, 65551, 65557]
            .iter()
            .map(|&p| Ubig::from_u64(p))
            .collect();
        let _ = params;
        (group, secret, primes, rng)
    }

    #[test]
    fn add_and_verify() {
        let (group, _secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let (mut w0, _) = acc.add(group, &primes[0]).unwrap();
        assert!(acc.verify(group, &w0));
        // Adding another value invalidates w0 until updated.
        let (w1, ev) = acc.add(group, &primes[1]).unwrap();
        assert!(!acc.verify(group, &w0));
        w0.apply(group, &ev).unwrap();
        assert!(acc.verify(group, &w0));
        assert!(acc.verify(group, &w1));
    }

    #[test]
    fn remove_updates_witnesses() {
        let (group, secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let (mut w0, _) = acc.add(group, &primes[0]).unwrap();
        let (mut w1, ev1) = acc.add(group, &primes[1]).unwrap();
        w0.apply(group, &ev1).unwrap();
        let (w2, ev2) = acc.add(group, &primes[2]).unwrap();
        w0.apply(group, &ev2).unwrap();
        w1.apply(group, &ev2).unwrap();
        // Remove member 2.
        let ev_rm = acc.remove(group, secret, &primes[2]).unwrap();
        w0.apply(group, &ev_rm).unwrap();
        w1.apply(group, &ev_rm).unwrap();
        assert!(acc.verify(group, &w0));
        assert!(acc.verify(group, &w1));
        // The removed member's witness no longer verifies and cannot be
        // updated past its own removal.
        let mut w2_stale = w2.clone();
        assert!(!acc.verify(group, &w2_stale));
        assert_eq!(
            w2_stale.apply(group, &ev_rm),
            Err(AccumulatorError::WitnessRevoked)
        );
    }

    #[test]
    fn long_churn_sequence() {
        let (group, secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let mut witnesses: Vec<Witness> = Vec::new();
        // Add all five.
        for p in &primes {
            let (w, ev) = acc.add(group, p).unwrap();
            for old in witnesses.iter_mut() {
                old.apply(group, &ev).unwrap();
            }
            witnesses.push(w);
        }
        for w in &witnesses {
            assert!(acc.verify(group, w));
        }
        // Remove 0 and 3.
        for victim in [0usize, 3] {
            let ev = acc.remove(group, secret, &primes[victim]).unwrap();
            for w in witnesses.iter_mut() {
                // Victims' own applications error (WitnessRevoked); other
                // stale witnesses update but stay invalid.
                let _ = w.apply(group, &ev);
            }
        }
        // Survivors verify.
        for i in [1usize, 2, 4] {
            assert!(acc.verify(group, &witnesses[i]), "witness {i}");
        }
        assert!(!acc.verify(group, &witnesses[0]));
        assert!(!acc.verify(group, &witnesses[3]));
    }

    #[test]
    fn rejects_even_values() {
        let (group, _secret, _primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        assert_eq!(
            acc.add(group, &Ubig::from_u64(10)).err(),
            Some(AccumulatorError::BadValue)
        );
    }
}
