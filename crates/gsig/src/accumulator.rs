//! A Camenisch–Lysyanskaya dynamic accumulator over `QR(n)`.
//!
//! This is the revocation substrate the paper references when it notes
//! that GSIG revocation "is quite expensive, usually based on dynamic
//! accumulators \[12\]" (§3). The framework itself uses the cheaper
//! verifier-local revocation (DESIGN.md §2.2), but the accumulator is
//! implemented in full — add, trapdoor remove, witness updates, batched
//! catch-up — and the E9 revocation ablation benchmarks it against VLR and
//! CGKD-only revocation, reproducing the cost comparison behind the
//! paper's design choice.
//!
//! Values accumulated are the members' certificate primes `e_i ∈ Γ`
//! (pairwise distinct, coprime to `φ(n)`), exactly as in CL02 / ACJT
//! revocation.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{gcd, Ubig};
use shs_groups::rsa::{RsaGroup, RsaSecret};

/// The public accumulator value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Accumulator {
    /// The base `u` the accumulator started from.
    pub base: Ubig,
    /// The current value `v = u^{∏ e_i}`.
    pub value: Ubig,
}

/// A member's witness: `w` with `w^e = v`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// The witness value.
    pub w: Ubig,
    /// The accumulated prime it certifies.
    pub e: Ubig,
}

/// An update event members replay to refresh their witnesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateEvent {
    /// A prime was added; members raise their witness to it.
    Added(Ubig),
    /// A prime was removed; carries the *new* accumulator value so
    /// remaining members can re-derive their witness via Bézout.
    Removed {
        /// The removed prime.
        e: Ubig,
        /// Accumulator value after removal.
        new_value: Ubig,
    },
}

/// Errors from accumulator operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulatorError {
    /// The value to accumulate must be odd, > 2 and coprime to the order.
    BadValue,
    /// A witness update was attempted for the removed value itself.
    WitnessRevoked,
    /// Internal arithmetic failure (non-invertible where invertible
    /// expected).
    Arithmetic,
}

impl std::fmt::Display for AccumulatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccumulatorError::BadValue => write!(f, "value cannot be accumulated"),
            AccumulatorError::WitnessRevoked => write!(f, "witness belongs to the removed value"),
            AccumulatorError::Arithmetic => write!(f, "accumulator arithmetic failed"),
        }
    }
}

impl std::error::Error for AccumulatorError {}

impl Accumulator {
    /// Creates a fresh accumulator from a random `QR(n)` base.
    pub fn new(group: &RsaGroup, rng: &mut (impl RngCore + ?Sized)) -> Accumulator {
        let base = group.random_qr(rng);
        Accumulator {
            value: base.clone(),
            base,
        }
    }

    /// Adds a prime `e`: `v ← v^e`. Returns the witness for the *newly
    /// added* value (the pre-update accumulator) plus the event for other
    /// members.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::BadValue`] for even or tiny values.
    pub fn add(
        &mut self,
        group: &RsaGroup,
        e: &Ubig,
    ) -> Result<(Witness, UpdateEvent), AccumulatorError> {
        if e.is_even() || *e <= Ubig::from_u64(2) {
            return Err(AccumulatorError::BadValue);
        }
        let witness = Witness {
            w: self.value.clone(),
            e: e.clone(),
        };
        self.value = group.exp(&self.value, e);
        Ok((witness, UpdateEvent::Added(e.clone())))
    }

    /// Removes a prime using the manager trapdoor: `v ← v^{e^{-1} mod
    /// p'q'}`.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::Arithmetic`] when `gcd(e, p'q') != 1` (cannot
    /// happen for honest `e ∈ Γ`).
    pub fn remove(
        &mut self,
        group: &RsaGroup,
        secret: &RsaSecret,
        e: &Ubig,
    ) -> Result<UpdateEvent, AccumulatorError> {
        let d = e
            .modinv(&secret.qr_order())
            .map_err(|_| AccumulatorError::Arithmetic)?;
        self.value = group.exp(&self.value, &d);
        Ok(UpdateEvent::Removed {
            e: e.clone(),
            new_value: self.value.clone(),
        })
    }

    /// Verifies a witness against the current accumulator value.
    pub fn verify(&self, group: &RsaGroup, witness: &Witness) -> bool {
        group.exp(&witness.w, &witness.e) == self.value
    }

    /// Adds a whole batch of primes in one pass, returning each new
    /// member's witness against the **post-batch** value plus the event
    /// stream for existing members.
    ///
    /// Witness `i` is `v^{∏_{j≠i} e_j}`, computed as the prefix chain
    /// (`v` raised to all earlier primes one at a time) raised to the
    /// *product* of all later primes — one multi-bit exponentiation per
    /// member instead of the `O(k²)` single-prime updates sequential
    /// admission would replay.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::BadValue`] if any prime is even or tiny
    /// (checked up front; the accumulator is unchanged on error).
    pub fn add_batch(
        &mut self,
        group: &RsaGroup,
        es: &[Ubig],
    ) -> Result<(Vec<Witness>, Vec<UpdateEvent>), AccumulatorError> {
        for e in es {
            if e.is_even() || *e <= Ubig::from_u64(2) {
                return Err(AccumulatorError::BadValue);
            }
        }
        // suffix[i] = ∏_{j ≥ i} e_j  (suffix[len] = 1).
        let mut suffix = vec![Ubig::one(); es.len() + 1];
        for i in (0..es.len()).rev() {
            suffix[i] = es[i].mul(&suffix[i + 1]);
        }
        let mut witnesses = Vec::with_capacity(es.len());
        let mut prefix = self.value.clone();
        for (i, e) in es.iter().enumerate() {
            let w = if suffix[i + 1].is_one() {
                prefix.clone()
            } else {
                group.exp(&prefix, &suffix[i + 1])
            };
            witnesses.push(Witness { w, e: e.clone() });
            prefix = group.exp(&prefix, e);
        }
        self.value = prefix;
        Ok((
            witnesses,
            es.iter().map(|e| UpdateEvent::Added(e.clone())).collect(),
        ))
    }
}

impl Witness {
    /// Replays one update event on a member's witness.
    ///
    /// * `Added(e')`: `w ← w^{e'}`.
    /// * `Removed{e', v'}`: with Bézout `a·e + b·e' = 1`,
    ///   `w ← w^b · v'^a`.
    ///
    /// # Errors
    ///
    /// [`AccumulatorError::WitnessRevoked`] when replaying one's own
    /// removal; [`AccumulatorError::Arithmetic`] when the Bézout identity
    /// fails (non-coprime values).
    pub fn apply(&mut self, group: &RsaGroup, event: &UpdateEvent) -> Result<(), AccumulatorError> {
        match event {
            UpdateEvent::Added(e_new) => {
                self.w = group.exp(&self.w, e_new);
                Ok(())
            }
            UpdateEvent::Removed { e: e_rm, new_value } => {
                if e_rm == &self.e {
                    return Err(AccumulatorError::WitnessRevoked);
                }
                let (g, a, b) = gcd::ext_gcd(&self.e, e_rm);
                if !g.is_one() {
                    return Err(AccumulatorError::Arithmetic);
                }
                // w' = v'^a · w^b  satisfies  w'^e = v'^{ae} w^{be}
                //   = v'^{ae} (v')^{e_rm·b... }   — standard CL02 identity.
                let part1 = group.exp_signed(new_value, &a);
                let part2 = group.exp_signed(&self.w, &b);
                self.w = group.mul(&part1, &part2);
                Ok(())
            }
        }
    }

    /// Replays a whole event stream, folding every run of consecutive
    /// `Added` events into a single exponentiation by the product of
    /// the added primes — a member catching up on `k` additions pays
    /// one multi-bit exponentiation instead of `k` full-size ones.
    /// `Removed` events still apply one at a time (each needs its own
    /// Bézout identity against the then-current value).
    ///
    /// # Errors
    ///
    /// As [`Witness::apply`], at the first failing event; the witness
    /// state reflects every event before it.
    pub fn catch_up(
        &mut self,
        group: &RsaGroup,
        events: &[UpdateEvent],
    ) -> Result<(), AccumulatorError> {
        let mut pending: Option<Ubig> = None;
        for event in events {
            match event {
                UpdateEvent::Added(e_new) => {
                    pending = Some(match pending {
                        None => e_new.clone(),
                        Some(acc) => acc.mul(e_new),
                    });
                }
                UpdateEvent::Removed { .. } => {
                    if let Some(exp) = pending.take() {
                        self.w = group.exp(&self.w, &exp);
                    }
                    self.apply(group, event)?;
                }
            }
        }
        if let Some(exp) = pending {
            self.w = group.exp(&self.w, &exp);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::params::{GsigParams, GsigPreset};
    use shs_crypto::drbg::HmacDrbg;

    fn setup() -> (&'static RsaGroup, &'static RsaSecret, Vec<Ubig>, HmacDrbg) {
        let (group, secret) = fixtures::test_rsa_setting();
        let params = GsigParams::preset(GsigPreset::Test);
        let rng = HmacDrbg::from_seed(b"acc-test");
        // Small distinct odd primes in Γ are expensive; use modest primes
        // coprime to everything instead (the algebra is identical).
        let primes: Vec<Ubig> = [65537u64, 65539, 65543, 65551, 65557]
            .iter()
            .map(|&p| Ubig::from_u64(p))
            .collect();
        let _ = params;
        (group, secret, primes, rng)
    }

    #[test]
    fn add_and_verify() {
        let (group, _secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let (mut w0, _) = acc.add(group, &primes[0]).unwrap();
        assert!(acc.verify(group, &w0));
        // Adding another value invalidates w0 until updated.
        let (w1, ev) = acc.add(group, &primes[1]).unwrap();
        assert!(!acc.verify(group, &w0));
        w0.apply(group, &ev).unwrap();
        assert!(acc.verify(group, &w0));
        assert!(acc.verify(group, &w1));
    }

    #[test]
    fn remove_updates_witnesses() {
        let (group, secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let (mut w0, _) = acc.add(group, &primes[0]).unwrap();
        let (mut w1, ev1) = acc.add(group, &primes[1]).unwrap();
        w0.apply(group, &ev1).unwrap();
        let (w2, ev2) = acc.add(group, &primes[2]).unwrap();
        w0.apply(group, &ev2).unwrap();
        w1.apply(group, &ev2).unwrap();
        // Remove member 2.
        let ev_rm = acc.remove(group, secret, &primes[2]).unwrap();
        w0.apply(group, &ev_rm).unwrap();
        w1.apply(group, &ev_rm).unwrap();
        assert!(acc.verify(group, &w0));
        assert!(acc.verify(group, &w1));
        // The removed member's witness no longer verifies and cannot be
        // updated past its own removal.
        let mut w2_stale = w2.clone();
        assert!(!acc.verify(group, &w2_stale));
        assert_eq!(
            w2_stale.apply(group, &ev_rm),
            Err(AccumulatorError::WitnessRevoked)
        );
    }

    #[test]
    fn long_churn_sequence() {
        let (group, secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let mut witnesses: Vec<Witness> = Vec::new();
        // Add all five.
        for p in &primes {
            let (w, ev) = acc.add(group, p).unwrap();
            for old in witnesses.iter_mut() {
                old.apply(group, &ev).unwrap();
            }
            witnesses.push(w);
        }
        for w in &witnesses {
            assert!(acc.verify(group, w));
        }
        // Remove 0 and 3.
        for victim in [0usize, 3] {
            let ev = acc.remove(group, secret, &primes[victim]).unwrap();
            for w in witnesses.iter_mut() {
                // Victims' own applications error (WitnessRevoked); other
                // stale witnesses update but stay invalid.
                let _ = w.apply(group, &ev);
            }
        }
        // Survivors verify.
        for i in [1usize, 2, 4] {
            assert!(acc.verify(group, &witnesses[i]), "witness {i}");
        }
        assert!(!acc.verify(group, &witnesses[0]));
        assert!(!acc.verify(group, &witnesses[3]));
    }

    #[test]
    fn batch_add_matches_sequential() {
        let (group, _secret, primes, mut rng) = setup();
        // Sequential world.
        let mut acc_seq = Accumulator::new(group, &mut rng);
        let mut w_seq: Vec<Witness> = Vec::new();
        for p in &primes {
            let (w, ev) = acc_seq.add(group, p).unwrap();
            for old in w_seq.iter_mut() {
                old.apply(group, &ev).unwrap();
            }
            w_seq.push(w);
        }
        // Batched world, same base.
        let mut acc_batch = Accumulator {
            base: acc_seq.base.clone(),
            value: acc_seq.base.clone(),
        };
        let (w_batch, events) = acc_batch.add_batch(group, &primes).unwrap();
        assert_eq!(acc_seq.value, acc_batch.value);
        assert_eq!(events.len(), primes.len());
        for (i, (ws, wb)) in w_seq.iter().zip(&w_batch).enumerate() {
            assert_eq!(ws, wb, "witness {i}");
            assert!(acc_batch.verify(group, wb));
        }
    }

    #[test]
    fn catch_up_aggregates_added_runs() {
        let (group, secret, primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        let (mut w0_step, mut events) = {
            let (w, ev) = acc.add(group, &primes[0]).unwrap();
            (w, vec![ev])
        };
        let mut w0_batch = w0_step.clone();
        // Churn: three additions, one removal, one more addition.
        for p in &primes[1..4] {
            let (_, ev) = acc.add(group, p).unwrap();
            events.push(ev);
        }
        events.push(acc.remove(group, secret, &primes[2]).unwrap());
        let (_, ev) = acc.add(group, &primes[4]).unwrap();
        events.push(ev);
        // Step-by-step vs catch-up: identical witness, both verify.
        for ev in &events[1..] {
            w0_step.apply(group, ev).unwrap();
        }
        w0_batch.catch_up(group, &events[1..]).unwrap();
        assert_eq!(w0_step, w0_batch);
        assert!(acc.verify(group, &w0_batch));
        // The removed member cannot catch up past its own removal.
        let mut w2 = Witness {
            w: Ubig::one(),
            e: primes[2].clone(),
        };
        assert_eq!(
            w2.catch_up(group, &events[1..]),
            Err(AccumulatorError::WitnessRevoked)
        );
    }

    #[test]
    fn rejects_even_values() {
        let (group, _secret, _primes, mut rng) = setup();
        let mut acc = Accumulator::new(group, &mut rng);
        assert_eq!(
            acc.add(group, &Ubig::from_u64(10)).err(),
            Some(AccumulatorError::BadValue)
        );
    }
}
