//! The ACJT2000 group signature scheme (Ateniese–Camenisch–Joye–Tsudik),
//! the basis the paper cites for instantiation §8.1.
//!
//! Member key: `(A, e, x)` with `A^e = a0·a^x mod n`, `x ∈ Λ` known *only*
//! to the member, `e ∈ Γ` prime. Signature tags:
//! `T1 = A·y^w, T2 = g^w, T3 = g^e·h^w` plus a Fiat–Shamir proof of
//! knowledge of `(x, e, w, h'=e·w)`.
//!
//! Compared to [`crate::ky`], this scheme offers **full-anonymity**
//! (there is no GM-known per-member trapdoor at all, hence no user
//! tracing and no VLR revocation): the framework instantiated over it
//! achieves *full-unlinkability* (Theorem 1) but relies entirely on CGKD
//! revocation — the exact trade-off §3 of the paper discusses, and the
//! subject of the E7(b)/E9 experiments.

use crate::batch::{self, BatchOutcome};
use crate::params::GsigParams;
use crate::proofs::{self, Transcript};
use crate::tables::FixedBasePair;
use crate::GsigError;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{rng as brng, Int, Ubig};
use shs_groups::rsa::{RsaGroup, RsaParams, RsaSecret};

pub use crate::ky::MemberId;

/// Fixed-base tables for the four bases signing exponentiates with secret
/// exponents; built on first use, shared by clones of the key.
#[derive(Debug, Clone, Default)]
struct SignTables {
    a: FixedBasePair,
    g: FixedBasePair,
    h: FixedBasePair,
    y: FixedBasePair,
}

/// The ACJT group public key `(n, a, a0, g, h, y)`.
#[derive(Debug, Clone)]
pub struct GroupPublicKey {
    /// Interval parameters.
    pub params: GsigParams,
    rsa: RsaGroup,
    /// Base for the membership secret `x`.
    pub a: Ubig,
    /// Constant of the certificate equation.
    pub a0: Ubig,
    /// Blinding base.
    pub g: Ubig,
    /// Second blinding base.
    pub h: Ubig,
    /// Opening key `y = g^θ`.
    pub y: Ubig,
    tables: SignTables,
}

/// Serializable form of [`GroupPublicKey`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupPublicKeyParams {
    /// Interval parameters.
    pub params: GsigParams,
    /// Modulus.
    pub rsa: RsaParams,
    /// See [`GroupPublicKey::a`].
    pub a: Ubig,
    /// See [`GroupPublicKey::a0`].
    pub a0: Ubig,
    /// See [`GroupPublicKey::g`].
    pub g: Ubig,
    /// See [`GroupPublicKey::h`].
    pub h: Ubig,
    /// See [`GroupPublicKey::y`].
    pub y: Ubig,
}

impl GroupPublicKey {
    /// Serializable parameters.
    pub fn to_params(&self) -> GroupPublicKeyParams {
        GroupPublicKeyParams {
            params: self.params,
            rsa: self.rsa.params(),
            a: self.a.clone(),
            a0: self.a0.clone(),
            g: self.g.clone(),
            h: self.h.clone(),
            y: self.y.clone(),
        }
    }

    /// Rebuilds from parameters.
    pub fn from_params(p: GroupPublicKeyParams) -> GroupPublicKey {
        GroupPublicKey {
            params: p.params,
            rsa: RsaGroup::from_params(p.rsa),
            a: p.a,
            a0: p.a0,
            g: p.g,
            h: p.h,
            y: p.y,
            tables: SignTables::default(),
        }
    }

    /// The RSA group.
    pub fn rsa(&self) -> &RsaGroup {
        &self.rsa
    }

    /// Width bound for the fixed-base tables: the widest secret exponent a
    /// signer ever raises a fixed base to is the `h'`-blind.
    fn table_bits(&self) -> u32 {
        self.params.blind_bits(self.params.h_bits())
    }

    /// `a^e` via the precomputed table (constant-trace).
    fn pow_a(&self, e: &Int) -> Ubig {
        self.tables
            .a
            .pow_signed(&self.rsa, &self.a, e, self.table_bits())
    }

    /// `g^e` via the precomputed table (constant-trace).
    fn pow_g(&self, e: &Int) -> Ubig {
        self.tables
            .g
            .pow_signed(&self.rsa, &self.g, e, self.table_bits())
    }

    /// `h^e` via the precomputed table (constant-trace).
    fn pow_h(&self, e: &Int) -> Ubig {
        self.tables
            .h
            .pow_signed(&self.rsa, &self.h, e, self.table_bits())
    }

    /// `y^e` via the precomputed table (constant-trace).
    fn pow_y(&self, e: &Int) -> Ubig {
        self.tables
            .y
            .pow_signed(&self.rsa, &self.y, e, self.table_bits())
    }

    /// Unsigned-exponent variants for the certificate-equation paths.
    fn pow_a_u(&self, e: &Ubig) -> Ubig {
        self.tables.a.pow(&self.rsa, &self.a, e, self.table_bits())
    }

    fn pow_g_u(&self, e: &Ubig) -> Ubig {
        self.tables.g.pow(&self.rsa, &self.g, e, self.table_bits())
    }

    fn pow_h_u(&self, e: &Ubig) -> Ubig {
        self.tables.h.pow(&self.rsa, &self.h, e, self.table_bits())
    }

    fn pow_y_u(&self, e: &Ubig) -> Ubig {
        self.tables.y.pow(&self.rsa, &self.y, e, self.table_bits())
    }

    fn transcript_for(&self, message: &[u8], t: &[&Ubig; 3], b: &[Ubig; 4]) -> Transcript {
        let mut tr = Transcript::new("shs-gsig-acjt");
        tr.append_ubig("n", self.rsa.n());
        tr.append_ubig("a", &self.a);
        tr.append_ubig("a0", &self.a0);
        tr.append_ubig("g", &self.g);
        tr.append_ubig("h", &self.h);
        tr.append_ubig("y", &self.y);
        tr.append("m", message);
        for (i, tag) in t.iter().enumerate() {
            tr.append_ubig(&format!("T{}", i + 1), tag);
        }
        for (i, bi) in b.iter().enumerate() {
            tr.append_ubig(&format!("B{}", i + 1), bi);
        }
        tr
    }
}

/// An ACJT signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// `A·y^w`.
    pub t1: Ubig,
    /// `g^w`.
    pub t2: Ubig,
    /// `g^e·h^w`.
    pub t3: Ubig,
    /// Fiat–Shamir commitments `B1..B4`, transmitted (and bound through
    /// the challenge hash) so the verifier can check the group equations
    /// directly — the form batch verification combines.
    pub b: [Ubig; 4],
    /// Fiat–Shamir challenge.
    pub c: Ubig,
    /// Response for `x`.
    pub s_x: Int,
    /// Response for `e`.
    pub s_e: Int,
    /// Response for `w`.
    pub s_w: Int,
    /// Response for `h' = e·w`.
    pub s_h: Int,
}

/// A member's signing key: `(A, e, x)` with `x` known only to the member.
#[derive(Clone, Serialize, Deserialize)]
pub struct MemberKey {
    /// Pseudonymous identity.
    pub id: MemberId,
    a_cert: Ubig,
    e: Ubig,
    x: Ubig,
}

impl MemberKey {
    /// The certificate `A` (tests only).
    pub fn certificate(&self) -> &Ubig {
        &self.a_cert
    }
}

impl std::fmt::Debug for MemberKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "acjt::MemberKey {{ id: {}, secrets: **** }}", self.id)
    }
}

/// GM-side member record: note there is **no** tracing trapdoor — only the
/// certificate, preserving full-anonymity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberRecord {
    /// Member identity.
    pub id: MemberId,
    /// Certificate `A`.
    pub a_cert: Ubig,
    /// Certificate prime `e`.
    pub e: Ubig,
    /// Revocation flag (effective only via the registry / CGKD — ACJT has
    /// no VLR mechanism; see crate docs).
    pub revoked: bool,
}

/// The ACJT group manager.
pub struct GroupManager {
    pk: GroupPublicKey,
    rsa_secret: RsaSecret,
    theta: Ubig,
    members: Vec<MemberRecord>,
    next_id: u64,
}

impl std::fmt::Debug for GroupManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acjt::GroupManager {{ members: {}, secrets: **** }}",
            self.members.len()
        )
    }
}

/// Member's first join message: commitment `C = a^x` plus PoK of `x ∈ Λ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinRequest {
    /// `C = a^x`.
    pub commitment: Ubig,
    /// PoK challenge.
    pub pok_c: Ubig,
    /// PoK response.
    pub pok_s: Int,
}

/// Member's private join state.
pub struct JoinSecret {
    x: Ubig,
}

impl std::fmt::Debug for JoinSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "acjt::JoinSecret(****)")
    }
}

impl JoinSecret {
    /// Zeroizes the private exponent in place. Called automatically on
    /// drop.
    fn wipe_in_place(&mut self) {
        self.x.wipe();
    }
}

impl Drop for JoinSecret {
    fn drop(&mut self) {
        self.wipe_in_place();
    }
}

/// GM's join reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinResponse {
    /// Assigned identity.
    pub id: MemberId,
    /// `A = (a0·C)^{1/e}`.
    pub a_cert: Ubig,
    /// Certificate prime.
    pub e: Ubig,
}

impl GroupManager {
    /// `Setup` with a fresh RSA modulus.
    pub fn setup(params: GsigParams, rng: &mut (impl RngCore + ?Sized)) -> GroupManager {
        let (rsa, rsa_secret) = RsaGroup::generate(params.modulus_bits, rng);
        Self::setup_with_rsa(params, rsa, rsa_secret, rng)
    }

    /// `Setup` reusing an existing RSA setting.
    pub fn setup_with_rsa(
        params: GsigParams,
        rsa: RsaGroup,
        rsa_secret: RsaSecret,
        rng: &mut (impl RngCore + ?Sized),
    ) -> GroupManager {
        let a = rsa_secret.qr_generator(&rsa, rng);
        let a0 = rsa_secret.qr_generator(&rsa, rng);
        let g = rsa_secret.qr_generator(&rsa, rng);
        let h = rsa_secret.qr_generator(&rsa, rng);
        let theta = brng::below(rng, &rsa.n().shr(2));
        let y = rsa.exp(&g, &theta);
        let pk = GroupPublicKey {
            params,
            rsa,
            a,
            a0,
            g,
            h,
            y,
            tables: SignTables::default(),
        };
        GroupManager {
            pk,
            rsa_secret,
            theta,
            members: Vec::new(),
            next_id: 0,
        }
    }

    /// The group public key.
    pub fn public_key(&self) -> &GroupPublicKey {
        &self.pk
    }

    /// The member registry.
    pub fn members(&self) -> &[MemberRecord] {
        &self.members
    }

    /// GM side of `Join`.
    ///
    /// # Errors
    ///
    /// [`GsigError::JoinRejected`] when the PoK fails.
    pub fn admit(
        &mut self,
        req: &JoinRequest,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<JoinResponse, GsigError> {
        if !verify_join_pok(&self.pk, req) {
            return Err(GsigError::JoinRejected);
        }
        let e = self.pk.params.sample_gamma_prime(rng);
        let base = self.pk.rsa.mul(&self.pk.a0, &req.commitment);
        let a_cert = self
            .rsa_secret
            .root(&self.pk.rsa, &base, &e)
            .map_err(|_| GsigError::JoinRejected)?;
        let id = MemberId(self.next_id);
        self.next_id += 1;
        self.members.push(MemberRecord {
            id,
            a_cert: a_cert.clone(),
            e: e.clone(),
            revoked: false,
        });
        Ok(JoinResponse { id, a_cert, e })
    }

    /// Marks a member revoked in the registry. ACJT offers no VLR; this
    /// only affects the registry (and the framework's CGKD layer).
    ///
    /// # Errors
    ///
    /// [`GsigError::UnknownSigner`] for unknown ids.
    pub fn revoke(&mut self, id: MemberId) -> Result<(), GsigError> {
        let rec = self
            .members
            .iter_mut()
            .find(|m| m.id == id)
            .ok_or(GsigError::UnknownSigner)?;
        rec.revoked = true;
        Ok(())
    }

    /// `Open`: recovers `A = T1/T2^θ` and looks up the signer.
    ///
    /// # Errors
    ///
    /// [`GsigError::InvalidSignature`] for invalid signatures,
    /// [`GsigError::UnknownSigner`] when no member matches.
    pub fn open(&self, message: &[u8], sig: &Signature) -> Result<MemberId, GsigError> {
        verify(&self.pk, message, sig)?;
        let shield = self.pk.rsa.exp(&sig.t2, &self.theta);
        let a_cert = self
            .pk
            .rsa
            .div(&sig.t1, &shield)
            .map_err(|_| GsigError::InvalidSignature)?;
        self.members
            .iter()
            .find(|m| m.a_cert == a_cert)
            .map(|m| m.id)
            .ok_or(GsigError::UnknownSigner)
    }
}

/// Member side of `Join`, step 1.
pub fn start_join(
    pk: &GroupPublicKey,
    rng: &mut (impl RngCore + ?Sized),
) -> (JoinSecret, JoinRequest) {
    let params = &pk.params;
    let x = params.sample_lambda(rng);
    let commitment = pk.pow_a_u(&x);
    let rho = proofs::sample_blind(params.blind_bits(params.lambda2), rng);
    let big_b = pk.pow_a(&rho);
    let mut t = Transcript::new("shs-gsig-acjt-join");
    t.append_ubig("n", pk.rsa.n());
    t.append_ubig("a", &pk.a);
    t.append_ubig("C", &commitment);
    t.append_ubig("B", &big_b);
    let c = t.challenge(params.k);
    let s = proofs::response(&rho, &c, &x, &pow2(params.lambda1));
    (
        JoinSecret { x },
        JoinRequest {
            commitment,
            pok_c: c,
            pok_s: s,
        },
    )
}

fn verify_join_pok(pk: &GroupPublicKey, req: &JoinRequest) -> bool {
    let params = &pk.params;
    if !proofs::response_in_range(&req.pok_s, params.blind_bits(params.lambda2)) {
        return false;
    }
    let exp = proofs::shifted(&req.pok_s, &req.pok_c, params.lambda1);
    // Every operand is public join-request data: one vartime multi-exp.
    let big_b = pk.rsa.multi_exp_vartime(&[
        (&pk.a, &exp),
        (&req.commitment, &Int::from_ubig(req.pok_c.clone())),
    ]);
    let mut t = Transcript::new("shs-gsig-acjt-join");
    t.append_ubig("n", pk.rsa.n());
    t.append_ubig("a", &pk.a);
    t.append_ubig("C", &req.commitment);
    t.append_ubig("B", &big_b);
    t.challenge(params.k) == req.pok_c
}

/// Member side of `Join`, step 2.
///
/// # Errors
///
/// [`GsigError::JoinRejected`] when the certificate equation fails.
pub fn finish_join(
    pk: &GroupPublicKey,
    mut secret: JoinSecret,
    resp: &JoinResponse,
) -> Result<MemberKey, GsigError> {
    let params = &pk.params;
    if !params.in_gamma(&resp.e) {
        return Err(GsigError::JoinRejected);
    }
    let lhs = pk.rsa.exp(&resp.a_cert, &resp.e);
    let rhs = pk.rsa.mul(&pk.a0, &pk.pow_a_u(&secret.x));
    if lhs != rhs {
        return Err(GsigError::JoinRejected);
    }
    // `JoinSecret: Drop`, so `x` cannot be moved out; swap it for zero and
    // let the drop wipe the (now empty) remainder.
    let x = std::mem::replace(&mut secret.x, Ubig::zero());
    Ok(MemberKey {
        id: resp.id,
        a_cert: resp.a_cert.clone(),
        e: resp.e.clone(),
        x,
    })
}

/// `Sign`.
pub fn sign(
    pk: &GroupPublicKey,
    key: &MemberKey,
    message: &[u8],
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    sign_inner(pk, key, message, None, rng)
}

/// Adversarial test hook: signs honestly but negates commitment
/// `B_{j+1}` (`B ← n − B`) before the challenge, then derives `c` and
/// the responses against the negated vector. The group equations of the
/// result hold only up to sign — the canonical order-2 probe for
/// single/batch verifier agreement. Both verifiers compare in `QR(n)`
/// and accept (benign signer-only malleability); before the squared
/// comparison, the batch RLC accepted this for half of all coefficient
/// draws while per-signature `verify` rejected it.
#[doc(hidden)]
pub fn sign_negated(
    pk: &GroupPublicKey,
    key: &MemberKey,
    message: &[u8],
    j: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    sign_inner(pk, key, message, Some(j), rng)
}

fn sign_inner(
    pk: &GroupPublicKey,
    key: &MemberKey,
    message: &[u8],
    negate: Option<usize>,
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    let params = &pk.params;
    let rsa = &pk.rsa;

    let w = brng::below(rng, &pow2(params.r_bits()));
    // Fixed public bases with secret exponents: precomputed constant-trace
    // tables. Per-signature bases (T1, T2) stay on the plain kernel.
    let t1 = rsa.mul(&key.a_cert, &pk.pow_y_u(&w));
    let t2 = pk.pow_g_u(&w);
    let t3 = rsa.mul(&pk.pow_g_u(&key.e), &pk.pow_h_u(&w));
    let h_prime = key.e.mul(&w);

    let rho_x = proofs::sample_blind(params.blind_bits(params.lambda2), rng);
    let rho_e = proofs::sample_blind(params.blind_bits(params.gamma2), rng);
    let rho_w = proofs::sample_blind(params.blind_bits(params.r_bits()), rng);
    let rho_h = proofs::sample_blind(params.blind_bits(params.h_bits()), rng);

    // B1 = g^{ρ_w}; B2 = g^{ρ_e} h^{ρ_w}; B3 = T2^{ρ_e} g^{-ρ_h};
    // B4 = a^{ρ_x} y^{ρ_h} T1^{-ρ_e}.
    let b1 = pk.pow_g(&rho_w);
    let b2 = rsa.mul(&pk.pow_g(&rho_e), &pk.pow_h(&rho_w));
    let b3 = rsa.mul(&rsa.exp_signed(&t2, &rho_e), &pk.pow_g(&rho_h.neg()));
    let b4 = rsa.mul(
        &rsa.mul(&pk.pow_a(&rho_x), &pk.pow_y(&rho_h)),
        &rsa.exp_signed(&t1, &rho_e.neg()),
    );

    let mut b = [b1, b2, b3, b4];
    if let Some(j) = negate {
        b[j] = rsa.n().sub(&b[j]);
    }
    let c = pk
        .transcript_for(message, &[&t1, &t2, &t3], &b)
        .challenge(params.k);

    let s_x = proofs::response(&rho_x, &c, &key.x, &pow2(params.lambda1));
    let s_e = proofs::response(&rho_e, &c, &key.e, &pow2(params.gamma1));
    let s_w = proofs::response(&rho_w, &c, &w, &Ubig::zero());
    let s_h = proofs::response(&rho_h, &c, &h_prime, &Ubig::zero());

    Signature {
        t1,
        t2,
        t3,
        b,
        c,
        s_x,
        s_e,
        s_w,
        s_h,
    }
}

/// `Verify`.
///
/// # Errors
///
/// [`GsigError::InvalidSignature`] on any failed check.
pub fn verify(pk: &GroupPublicKey, message: &[u8], sig: &Signature) -> Result<(), GsigError> {
    precheck(pk, message, sig)?;
    if equations_hold(pk, sig) {
        Ok(())
    } else {
        Err(GsigError::InvalidSignature)
    }
}

/// The cheap per-signature checks batch verification must also run
/// individually: element ranges, response spheres and the Fiat–Shamir
/// challenge binding `(m, T, B)`. No exponentiations.
fn precheck(pk: &GroupPublicKey, message: &[u8], sig: &Signature) -> Result<(), GsigError> {
    let params = &pk.params;
    let rsa = &pk.rsa;

    for tag in [&sig.t1, &sig.t2, &sig.t3].into_iter().chain(sig.b.iter()) {
        if tag.is_zero() || *tag >= *rsa.n() {
            return Err(GsigError::InvalidSignature);
        }
    }
    let ok = proofs::response_in_range(&sig.s_x, params.blind_bits(params.lambda2))
        && proofs::response_in_range(&sig.s_e, params.blind_bits(params.gamma2))
        && proofs::response_in_range(&sig.s_w, params.blind_bits(params.r_bits()))
        && proofs::response_in_range(&sig.s_h, params.blind_bits(params.h_bits()));
    if !ok {
        return Err(GsigError::InvalidSignature);
    }
    let c_prime = pk
        .transcript_for(message, &[&sig.t1, &sig.t2, &sig.t3], &sig.b)
        .challenge(params.k);
    if c_prime == sig.c {
        Ok(())
    } else {
        Err(GsigError::InvalidSignature)
    }
}

/// The four group equations against the transmitted commitments,
/// compared in `QR(n)`: both sides are squared, so equality is up to a
/// square root of 1 — and `±1` is the only one computable without
/// factoring `n`, making this the same quotient the batch RLC combines
/// in (see `crate::batch`). Verification operates on broadcast data
/// only, so each B product is one vartime Straus multi-exp: shared
/// squaring chain across the bases instead of one full ladder per base.
fn equations_hold(pk: &GroupPublicKey, sig: &Signature) -> bool {
    let params = &pk.params;
    let rsa = &pk.rsa;
    let e_e = proofs::shifted(&sig.s_e, &sig.c, params.gamma1);
    let e_x = proofs::shifted(&sig.s_x, &sig.c, params.lambda1);
    let c_int = Int::from_ubig(sig.c.clone());
    let b1 = rsa.multi_exp_vartime(&[(&pk.g, &sig.s_w), (&sig.t2, &c_int)]);
    let b2 = rsa.multi_exp_vartime(&[(&pk.g, &e_e), (&pk.h, &sig.s_w), (&sig.t3, &c_int)]);
    let b3 = rsa.multi_exp_vartime(&[(&sig.t2, &e_e), (&pk.g, &sig.s_h.neg())]);
    let b4 = rsa.multi_exp_vartime(&[
        (&pk.a, &e_x),
        (&pk.y, &sig.s_h),
        (&sig.t1, &e_e.neg()),
        (&pk.a0, &c_int.neg()),
    ]);
    [b1, b2, b3, b4]
        .iter()
        .zip(sig.b.iter())
        .all(|(rhs, b)| rsa.mul(rhs, rhs) == rsa.mul(b, b))
}

/// Batch `Verify`: checks `k` `(message, signature)` pairs with one
/// random-linear-combination check over the pooled group equations (see
/// [`crate::batch`]). Per-signature prechecks still run individually;
/// only the group equations are combined, and a failed combination is
/// bisected to isolate the offending indices. Both paths compare the
/// equations in `QR(n)` (squared sides / doubled coefficients), so this
/// agrees with calling [`verify`] on every pair — including order-2
/// sign-malleated commitments, which both accept — up to the 2⁻¹²⁸ RLC
/// soundness bound.
pub fn verify_batch(pk: &GroupPublicKey, items: &[(&[u8], &Signature)]) -> BatchOutcome {
    let mut bad = Vec::new();
    let mut survivors = Vec::new();
    for (i, (message, sig)) in items.iter().enumerate() {
        if precheck(pk, message, sig).is_ok() {
            survivors.push(i);
        } else {
            bad.push(i);
        }
    }
    if !survivors.is_empty() {
        let digest = batch_digest(pk, items);
        let mut rlc = |subset: &[usize]| rlc_holds(pk, items, subset, &digest);
        batch::isolate_invalid(&survivors, &mut rlc, &mut bad);
    }
    BatchOutcome::from_invalid(bad)
}

/// Binds the coefficient DRBG to the entire batch content, so the
/// combination coefficients are fixed only after every signature is.
fn batch_digest(pk: &GroupPublicKey, items: &[(&[u8], &Signature)]) -> Vec<u8> {
    let mut tr = Transcript::new("shs-gsig-acjt-batch");
    tr.append_ubig("n", pk.rsa.n());
    for (message, sig) in items {
        tr.append("m", message);
        for (label, tag) in [("T1", &sig.t1), ("T2", &sig.t2), ("T3", &sig.t3)] {
            tr.append_ubig(label, tag);
        }
        for (i, bi) in sig.b.iter().enumerate() {
            tr.append_ubig(&format!("B{}", i + 1), bi);
        }
        tr.append_ubig("c", &sig.c);
        tr.append_int("s_x", &sig.s_x);
        tr.append_int("s_e", &sig.s_e);
        tr.append_int("s_w", &sig.s_w);
        tr.append_int("s_h", &sig.s_h);
    }
    tr.challenge(256).to_bytes_be()
}

/// The combined group equation over `subset`:
/// `Π B_{i,j}^{2·z_{i,j}} == Π RHS_{i,j}^{2·z_{i,j}}`, two multi-exps.
/// Doubling every coefficient squares both sides, i.e. compares in
/// `QR(n)` exactly like the per-signature [`equations_hold`] — an
/// order-2 deviation (`±1`, the only small-order element computable
/// without factoring `n`) cancels on *every* draw instead of slipping
/// through even coefficients (see `crate::batch`). Exponents of the
/// shared bases `g, h, a, y, a0` accumulate across the subset, so their
/// ladder cost is paid once per batch.
fn rlc_holds(
    pk: &GroupPublicKey,
    items: &[(&[u8], &Signature)],
    subset: &[usize],
    digest: &[u8],
) -> bool {
    let params = &pk.params;
    let rsa = &pk.rsa;
    let two = Int::from_i64(2);
    let mut coeffs = batch::CoeffStream::new("shs-gsig-acjt", digest, subset);
    let mut e_g = Int::zero();
    let mut e_h = Int::zero();
    let mut e_a = Int::zero();
    let mut e_y = Int::zero();
    let mut e_a0 = Int::zero();
    let mut lhs: Vec<(&Ubig, Int)> = Vec::with_capacity(4 * subset.len());
    let mut per_sig: Vec<(&Ubig, Int)> = Vec::with_capacity(3 * subset.len());
    for &i in subset {
        let sig = items[i].1;
        let c = Int::from_ubig(sig.c.clone());
        let e_e = proofs::shifted(&sig.s_e, &sig.c, params.gamma1);
        let e_x = proofs::shifted(&sig.s_x, &sig.c, params.lambda1);
        let z1 = coeffs.next_coeff().mul(&two);
        let z2 = coeffs.next_coeff().mul(&two);
        let z3 = coeffs.next_coeff().mul(&two);
        let z4 = coeffs.next_coeff().mul(&two);
        // B1 = g^{s_w} T2^c and B3 = T2^{E_e} g^{-s_h} share base T2.
        e_g = e_g.add(&z1.mul(&sig.s_w)).sub(&z3.mul(&sig.s_h));
        per_sig.push((&sig.t2, z1.mul(&c).add(&z3.mul(&e_e))));
        // B2 = g^{E_e} h^{s_w} T3^c.
        e_g = e_g.add(&z2.mul(&e_e));
        e_h = e_h.add(&z2.mul(&sig.s_w));
        per_sig.push((&sig.t3, z2.mul(&c)));
        // B4 = a^{E_x} y^{s_h} T1^{-E_e} a0^{-c}.
        e_a = e_a.add(&z4.mul(&e_x));
        e_y = e_y.add(&z4.mul(&sig.s_h));
        e_a0 = e_a0.sub(&z4.mul(&c));
        per_sig.push((&sig.t1, z4.mul(&e_e).neg()));
        for (bi, z) in sig.b.iter().zip([z1, z2, z3, z4]) {
            lhs.push((bi, z));
        }
    }
    let mut rhs_terms: Vec<(&Ubig, &Int)> = vec![
        (&pk.g, &e_g),
        (&pk.h, &e_h),
        (&pk.a, &e_a),
        (&pk.y, &e_y),
        (&pk.a0, &e_a0),
    ];
    rhs_terms.extend(per_sig.iter().map(|(base, e)| (*base, e)));
    let lhs_terms: Vec<(&Ubig, &Int)> = lhs.iter().map(|(base, e)| (*base, e)).collect();
    rsa.multi_exp_vartime(&lhs_terms) == rsa.multi_exp_vartime(&rhs_terms)
}

fn pow2(bits: u32) -> Ubig {
    let mut u = Ubig::zero();
    u.set_bit(bits);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::params::GsigPreset;
    use shs_crypto::drbg::HmacDrbg;
    use std::sync::OnceLock;

    #[test]
    fn join_secret_drop_path_wipes_exponent() {
        // Exercises the exact routine `drop` runs; post-drop memory cannot
        // be inspected from safe code.
        let mut s = JoinSecret {
            x: Ubig::from_u64(0xdead_beef),
        };
        s.wipe_in_place();
        assert!(s.x.is_zero());
    }

    fn acjt_group() -> &'static (GroupManager, Vec<MemberKey>) {
        static GROUP: OnceLock<(GroupManager, Vec<MemberKey>)> = OnceLock::new();
        GROUP.get_or_init(|| {
            let (rsa, rsa_secret) = fixtures::test_rsa_setting().clone();
            let params = GsigParams::preset(GsigPreset::Test);
            let mut rng = HmacDrbg::from_seed(b"acjt-fixture");
            let mut gm = GroupManager::setup_with_rsa(params, rsa, rsa_secret, &mut rng);
            let mut keys = Vec::new();
            for _ in 0..3 {
                let (secret, req) = start_join(gm.public_key(), &mut rng);
                let resp = gm.admit(&req, &mut rng).unwrap();
                keys.push(finish_join(gm.public_key(), secret, &resp).unwrap());
            }
            (gm, keys)
        })
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (gm, keys) = acjt_group();
        let mut rng = HmacDrbg::from_seed(b"t1");
        let sig = sign(gm.public_key(), &keys[0], b"hello acjt", &mut rng);
        verify(gm.public_key(), b"hello acjt", &sig).unwrap();
    }

    #[test]
    fn wrong_message_rejected() {
        let (gm, keys) = acjt_group();
        let mut rng = HmacDrbg::from_seed(b"t2");
        let sig = sign(gm.public_key(), &keys[0], b"msg-a", &mut rng);
        assert!(verify(gm.public_key(), b"msg-b", &sig).is_err());
    }

    #[test]
    fn open_identifies_each_signer() {
        let (gm, keys) = acjt_group();
        let mut rng = HmacDrbg::from_seed(b"t3");
        for key in keys {
            let sig = sign(gm.public_key(), key, b"open me", &mut rng);
            assert_eq!(gm.open(b"open me", &sig).unwrap(), key.id);
        }
    }

    #[test]
    fn forged_tags_rejected() {
        let (gm, keys) = acjt_group();
        let mut rng = HmacDrbg::from_seed(b"t4");
        let mut sig = sign(gm.public_key(), &keys[0], b"m", &mut rng);
        sig.t1 = gm.public_key().rsa().random_qr(&mut rng);
        assert!(verify(gm.public_key(), b"m", &sig).is_err());
    }

    #[test]
    fn no_tracing_tags_exist() {
        // Structural full-anonymity argument: an ACJT signature contains
        // only the three ElGamal-style tags, nothing keyed to the member.
        let (gm, keys) = acjt_group();
        let mut rng = HmacDrbg::from_seed(b"t5");
        let s1 = sign(gm.public_key(), &keys[0], b"m", &mut rng);
        let s2 = sign(gm.public_key(), &keys[0], b"m", &mut rng);
        assert_ne!(s1.t1, s2.t1);
        assert_ne!(s1.t2, s2.t2);
        assert_ne!(s1.t3, s2.t3);
    }

    #[test]
    fn revocation_is_registry_only() {
        let (rsa, rsa_secret) = fixtures::test_rsa_setting().clone();
        let params = GsigParams::preset(GsigPreset::Test);
        let mut rng = HmacDrbg::from_seed(b"t6");
        let mut gm = GroupManager::setup_with_rsa(params, rsa, rsa_secret, &mut rng);
        let (secret, req) = start_join(gm.public_key(), &mut rng);
        let resp = gm.admit(&req, &mut rng).unwrap();
        let key = finish_join(gm.public_key(), secret, &resp).unwrap();
        gm.revoke(key.id).unwrap();
        // The paper's §3 point: the revoked member's signature STILL
        // verifies — ACJT alone cannot stop it; the framework must layer
        // CGKD revocation on top (see E7b attack test in shs-core).
        let sig = sign(gm.public_key(), &key, b"still signs", &mut rng);
        verify(gm.public_key(), b"still signs", &sig).unwrap();
        assert!(gm.members()[0].revoked);
    }
}
