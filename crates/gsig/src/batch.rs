//! Random-linear-combination batch verification plumbing shared by the
//! [`crate::acjt`] and [`crate::ky`] schemes.
//!
//! # The small-exponent trick
//!
//! Both schemes transmit their Fiat–Shamir commitments `B1..Bj` inside
//! the signature (and bind them through the challenge hash), so each
//! group equation has the shape `B = Π base^exp` over *public* data.
//! For a batch of `k` signatures the verifier draws a random 128-bit
//! coefficient `z_{i,j}` per (signature, equation) pair and checks the
//! single accumulated equation
//!
//! ```text
//! Π_{i,j} B_{i,j}^{z_{i,j}}  ==  Π_{i,j} RHS_{i,j}^{z_{i,j}}
//! ```
//!
//! with two Straus multi-exponentiations. Exponents of the shared bases
//! (`g, h, a, a0, b, y`) accumulate across the whole batch, so their
//! cost is paid once instead of once per signature, and the squaring
//! chain of the multi-exp kernel is shared by every term.
//!
//! # Soundness: comparing in `QR(n)`
//!
//! The small-exponent argument needs a group with no small-order
//! elements, and `Z_n^*` is *not* one: it contains the publicly
//! computable order-2 element `n − 1`. Combined naively in `Z_n^*`, a
//! signer could negate one transmitted commitment (`B' = n − B`) and
//! recompute `c` and the responses; the combined equation would then
//! deviate by exactly `(−1)^z` — passing whenever `z` is even, i.e.
//! half of all draws (and per bisection subset, singletons included).
//! Both verifiers therefore compare the group equations in `QR(n)`:
//! the per-signature check squares both sides, the batch check doubles
//! every combination coefficient (the same squaring, distributed into
//! the exponents). Each equation's deviation `D = B'/RHS` is thereby
//! squared, and `D²` has odd order `∈ {1, p', q', p'q'}` with
//! `p', q' ≫ 2^128`: if some `D² ≠ 1`, the combination survives only
//! when the adversary predicts `z` — probability `2^-128` per
//! coefficient, which are drawn from a DRBG seeded Fiat–Shamir-style
//! from the *entire batch content*, so they are fixed only after every
//! signature is. If instead every `D² = 1`, then `D = ±1` — any other
//! square root of 1 (equivalently, any element of Jacobi symbol `−1`
//! slipping through a squared equation) exhibits a nontrivial root
//! pair and thereby factors `n`, so producing one already breaks the
//! scheme's assumption — and every squared per-signature equation
//! holds individually, i.e. single verification accepts too.
//!
//! The flip side of the quotient: a commitment negated by its *own
//! signer* (who must re-derive `c` and the responses, so only a key
//! holder can do it) is accepted by both the single and the batch
//! verifier — benign sign-malleability with cofactored semantics, the
//! same resolution batch Ed25519 verifiers adopt for their order-8
//! subgroup. What matters is that both paths agree on every input;
//! `tests/batch_equiv.rs` plants exactly this corruption.
//!
//! Soundness also requires the per-signature *cheap* checks (tag
//! ranges, response spheres, challenge hash) to run individually
//! before the combination: only the group equations are ever merged.
//!
//! On failure the batch is bisected to isolate the offending indices;
//! a singleton subset's combined equation is exact (one `z` per
//! equation cannot mask a violation across equations of the *same*
//! signature only with negligible probability, and the fallback path
//! re-derives fresh coefficients per subset).

use rand::RngCore;
use shs_bigint::{Int, Ubig};
use shs_crypto::drbg::HmacDrbg;
use shs_crypto::sha256::Sha256;

/// Outcome of a batch verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every signature in the batch verified.
    AllValid,
    /// At least one signature failed; the sorted indices of the invalid
    /// ones (into the caller's batch slice).
    Invalid(Vec<usize>),
}

impl BatchOutcome {
    /// Collapses a list of bad indices into an outcome.
    pub(crate) fn from_invalid(mut bad: Vec<usize>) -> BatchOutcome {
        if bad.is_empty() {
            BatchOutcome::AllValid
        } else {
            bad.sort_unstable();
            bad.dedup();
            BatchOutcome::Invalid(bad)
        }
    }

    /// Did every signature verify?
    pub fn all_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }

    /// The invalid indices (empty when all valid).
    pub fn invalid(&self) -> &[usize] {
        match self {
            BatchOutcome::AllValid => &[],
            BatchOutcome::Invalid(v) => v,
        }
    }

    /// Is index `i` valid under this outcome?
    pub fn is_valid(&self, i: usize) -> bool {
        !self.invalid().contains(&i)
    }
}

/// Width of the random combination coefficients.
pub(crate) const COEFF_BITS: usize = 128;

/// A deterministic stream of nonzero 128-bit combination coefficients,
/// seeded from the batch digest and the subset under test (so bisection
/// re-draws fresh coefficients for every subset).
pub(crate) struct CoeffStream {
    drbg: HmacDrbg,
}

impl CoeffStream {
    pub(crate) fn new(domain: &str, batch_digest: &[u8], subset: &[usize]) -> CoeffStream {
        let mut h = Sha256::new();
        h.update(b"shs-gsig-batch-coeffs");
        h.update(&(domain.len() as u64).to_be_bytes());
        h.update(domain.as_bytes());
        h.update(batch_digest);
        h.update(&(subset.len() as u64).to_be_bytes());
        for &i in subset {
            h.update(&(i as u64).to_be_bytes());
        }
        CoeffStream {
            drbg: HmacDrbg::from_seed(&h.finalize()),
        }
    }

    /// The next coefficient: uniform in `[1, 2^128)` (zero would void
    /// one equation's contribution, so it is remapped).
    pub(crate) fn next_coeff(&mut self) -> Int {
        let mut bytes = [0u8; COEFF_BITS / 8];
        self.drbg.fill_bytes(&mut bytes);
        let z = Ubig::from_bytes_be(&bytes);
        if z.is_zero() {
            Int::one()
        } else {
            Int::from_ubig(z)
        }
    }
}

/// Bisection fallback: narrows a failed combined check down to the
/// individual signatures violating their equations. `rlc` evaluates the
/// combined group equation over a subset of indices; subsets that pass
/// are accepted wholesale, failing subsets are split until singletons
/// remain (a singleton's check is its own exact equation set under
/// fresh coefficients).
pub(crate) fn isolate_invalid(
    subset: &[usize],
    rlc: &mut dyn FnMut(&[usize]) -> bool,
    bad: &mut Vec<usize>,
) {
    if subset.is_empty() || rlc(subset) {
        return;
    }
    if subset.len() == 1 {
        bad.push(subset[0]);
        return;
    }
    let mid = subset.len() / 2;
    isolate_invalid(&subset[..mid], rlc, bad);
    isolate_invalid(&subset[mid..], rlc, bad);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_sorts_and_dedups() {
        assert_eq!(BatchOutcome::from_invalid(vec![]), BatchOutcome::AllValid);
        let o = BatchOutcome::from_invalid(vec![3, 1, 3]);
        assert_eq!(o, BatchOutcome::Invalid(vec![1, 3]));
        assert!(!o.is_valid(1));
        assert!(o.is_valid(0));
    }

    #[test]
    fn coeffs_are_deterministic_per_subset() {
        let a = CoeffStream::new("t", b"digest", &[0, 1]).next_coeff();
        let b = CoeffStream::new("t", b"digest", &[0, 1]).next_coeff();
        assert_eq!(a, b);
        let c = CoeffStream::new("t", b"digest", &[0]).next_coeff();
        assert_ne!(a, c, "subset is part of the seed");
    }

    #[test]
    fn bisection_finds_planted_indices() {
        let bad_set = [2usize, 7];
        let all: Vec<usize> = (0..10).collect();
        let mut calls = 0usize;
        let mut rlc = |s: &[usize]| {
            calls += 1;
            !s.iter().any(|i| bad_set.contains(i))
        };
        let mut bad = Vec::new();
        isolate_invalid(&all, &mut rlc, &mut bad);
        bad.sort_unstable();
        assert_eq!(bad, vec![2, 7]);
        assert!(calls < 20, "logarithmic, not linear: {calls}");
    }
}
