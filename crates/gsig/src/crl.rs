//! The certificate revocation list (CRL).
//!
//! `SHS.CreateGroup` (Fig. 1 of the paper) creates an initially-empty CRL
//! that is "made known only to current group members"; `SHS.RemoveUser`
//! appends to it and ships the update over the authenticated anonymous
//! channel (in the framework: AEAD-encrypted under the *new* CGKD group
//! key, so revoked members cannot read it). Entries are the verifier-local
//! revocation tokens of [`crate::ky`].

use crate::ky::{GroupPublicKey, RevocationToken, Signature};
use serde::{Deserialize, Serialize};
use shs_crypto::sha256;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// A versioned list of revocation tokens.
///
/// Checking a signature against a VLR-style CRL is inherently `O(r)` the
/// *first* time — `T5` is fresh randomness per signature, so each token
/// needs its own exponentiation — but the handshake re-checks the same
/// signatures from many member instances in the same process. The CRL
/// therefore keeps a running *fingerprint* (a hash chain over the token
/// insertion sequence) and memoizes verdicts process-wide keyed on
/// `(fingerprint, version, signature tags)`: every re-check of a known
/// signature is an `O(1)` table hit, from any clone of the same CRL
/// state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crl {
    /// Monotone version; bumped on every revocation.
    pub version: u64,
    /// Tokens of all revoked members.
    pub tokens: Vec<RevocationToken>,
    /// Hash chain over the token insertion sequence: two CRL states with
    /// the same fingerprint hold the same tokens in the same order, so
    /// memoized verdicts transfer between clones.
    fingerprint: [u8; 32],
}

/// Bound on the process-wide verdict memo; on overflow the table is
/// cleared (verdicts are pure caches and re-derivable).
const MEMO_CAP: usize = 8192;

fn memo() -> &'static Mutex<HashMap<[u8; 32], bool>> {
    static MEMO: OnceLock<Mutex<HashMap<[u8; 32], bool>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// An incremental CRL update (what actually travels in rekey messages).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrlDelta {
    /// Version the delta applies on top of.
    pub from_version: u64,
    /// Version after applying.
    pub to_version: u64,
    /// Newly revoked tokens.
    pub new_tokens: Vec<RevocationToken>,
}

/// Error applying a CRL delta out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionMismatch {
    /// The version the member holds.
    pub have: u64,
    /// The version the delta expects.
    pub expected: u64,
}

impl std::fmt::Display for VersionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CRL delta expects version {} but member holds {}",
            self.expected, self.have
        )
    }
}

impl std::error::Error for VersionMismatch {}

impl CrlDelta {
    /// Merges a consecutive later delta into this one, producing the
    /// single delta covering both windows — what a batched epoch ships
    /// when it revokes several members at once.
    ///
    /// # Errors
    ///
    /// [`VersionMismatch`] unless `later` starts exactly where `self`
    /// ends.
    pub fn merge(self, later: CrlDelta) -> Result<CrlDelta, VersionMismatch> {
        if later.from_version != self.to_version {
            return Err(VersionMismatch {
                have: self.to_version,
                expected: later.from_version,
            });
        }
        let mut new_tokens = self.new_tokens;
        new_tokens.extend(later.new_tokens);
        Ok(CrlDelta {
            from_version: self.from_version,
            to_version: later.to_version,
            new_tokens,
        })
    }
}

/// Digest of one token for the fingerprint chain.
fn token_digest(token: &RevocationToken) -> [u8; 32] {
    let x = token.x.to_bytes_be();
    let mut data = Vec::with_capacity(16 + x.len());
    data.extend_from_slice(&token.id.0.to_be_bytes());
    data.extend_from_slice(&(x.len() as u64).to_be_bytes());
    data.extend_from_slice(&x);
    sha256::digest(&data)
}

impl Crl {
    /// An empty CRL at version 0.
    pub fn new() -> Crl {
        Crl::default()
    }

    /// Absorbs one appended token into the fingerprint chain.
    fn absorb(&mut self, token: &RevocationToken) {
        let mut data = [0u8; 64];
        data[..32].copy_from_slice(&self.fingerprint);
        data[32..].copy_from_slice(&token_digest(token));
        self.fingerprint = sha256::digest(&data);
    }

    /// Appends a token, bumping the version, and returns the delta to
    /// distribute.
    pub fn push(&mut self, token: RevocationToken) -> CrlDelta {
        let from_version = self.version;
        self.absorb(&token);
        self.tokens.push(token.clone());
        self.version += 1;
        CrlDelta {
            from_version,
            to_version: self.version,
            new_tokens: vec![token],
        }
    }

    /// Applies a delta received from the group authority. Deltas stream:
    /// a batched epoch's merged delta applies in one call, and the
    /// fingerprint chain advances token by token exactly as it did on
    /// the authority side, so memoized verdicts stay shared.
    ///
    /// # Errors
    ///
    /// [`VersionMismatch`] when deltas arrive out of order.
    pub fn apply(&mut self, delta: &CrlDelta) -> Result<(), VersionMismatch> {
        if delta.from_version != self.version {
            return Err(VersionMismatch {
                have: self.version,
                expected: delta.from_version,
            });
        }
        for token in &delta.new_tokens {
            self.absorb(token);
            self.tokens.push(token.clone());
        }
        self.version = delta.to_version;
        Ok(())
    }

    /// Does this signature match any revoked member?
    ///
    /// First check of a fresh signature costs one exponentiation per
    /// token (inherent to verifier-local revocation: `T5` is per-
    /// signature randomness); every later check of the same signature
    /// against the same CRL state — from this instance or any clone —
    /// is an `O(1)` memo hit.
    pub fn is_revoked(&self, pk: &GroupPublicKey, sig: &Signature) -> bool {
        if self.tokens.is_empty() {
            return false;
        }
        let key = self.memo_key(sig);
        {
            let table = memo().lock().unwrap_or_else(|e| e.into_inner());
            if let Some(&verdict) = table.get(&key) {
                return verdict;
            }
        }
        let verdict = self.tokens.iter().any(|t| t.matches(pk, sig));
        let mut table = memo().lock().unwrap_or_else(|e| e.into_inner());
        if table.len() >= MEMO_CAP {
            table.clear();
        }
        table.insert(key, verdict);
        verdict
    }

    /// Memo key: CRL state (fingerprint + version) and the signature's
    /// revocation-relevant tags.
    fn memo_key(&self, sig: &Signature) -> [u8; 32] {
        let t5 = sig.tags.t5.to_bytes_be();
        let t4 = sig.tags.t4.to_bytes_be();
        let mut data = Vec::with_capacity(56 + t5.len() + t4.len());
        data.extend_from_slice(&self.fingerprint);
        data.extend_from_slice(&self.version.to_be_bytes());
        data.extend_from_slice(&(t5.len() as u64).to_be_bytes());
        data.extend_from_slice(&t5);
        data.extend_from_slice(&t4);
        sha256::digest(&data)
    }

    /// Number of revoked members.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Is the CRL empty?
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ky::{self, SignBasis};
    use shs_crypto::drbg::HmacDrbg;

    #[test]
    fn push_apply_roundtrip() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let mut authority_crl = Crl::new();
        let mut member_crl = Crl::new();

        let token = gm.revoke(keys[0].id).unwrap();
        let delta = authority_crl.push(token);
        member_crl.apply(&delta).unwrap();
        assert_eq!(authority_crl, member_crl);
        assert_eq!(member_crl.version, 1);
        assert_eq!(member_crl.len(), 1);
    }

    #[test]
    fn out_of_order_delta_rejected() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let mut authority_crl = Crl::new();
        let mut member_crl = Crl::new();
        let d1 = authority_crl.push(gm.revoke(keys[0].id).unwrap());
        let d2 = authority_crl.push(gm.revoke(keys[1].id).unwrap());
        // Applying d2 before d1 fails.
        assert!(member_crl.apply(&d2).is_err());
        member_crl.apply(&d1).unwrap();
        member_crl.apply(&d2).unwrap();
        assert_eq!(member_crl.version, 2);
    }

    #[test]
    fn is_revoked_detects_signatures() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let pk = ky::GroupPublicKey::from_params(gm.public_key().to_params());
        let mut rng = HmacDrbg::from_seed(b"crl-test");
        let sig_revoked = ky::sign(&pk, &keys[0], b"m", SignBasis::Random, &mut rng);
        let sig_ok = ky::sign(&pk, &keys[1], b"m", SignBasis::Random, &mut rng);
        let mut crl = Crl::new();
        crl.push(gm.revoke(keys[0].id).unwrap());
        assert!(crl.is_revoked(&pk, &sig_revoked));
        assert!(!crl.is_revoked(&pk, &sig_ok));
    }

    #[test]
    fn empty_crl() {
        let crl = Crl::new();
        assert!(crl.is_empty());
        assert_eq!(crl.len(), 0);
        assert_eq!(crl.version, 0);
    }

    #[test]
    fn merged_delta_applies_as_one_stream() {
        let (mut gm, keys) = fixtures::group_with_members_mut(3);
        let mut authority_crl = Crl::new();
        let mut member_crl = Crl::new();
        let d1 = authority_crl.push(gm.revoke(keys[0].id).unwrap());
        let d2 = authority_crl.push(gm.revoke(keys[1].id).unwrap());
        let d3 = authority_crl.push(gm.revoke(keys[2].id).unwrap());
        // One batched window ships one merged delta.
        let merged = d1.merge(d2).unwrap().merge(d3).unwrap();
        assert_eq!(merged.from_version, 0);
        assert_eq!(merged.to_version, 3);
        member_crl.apply(&merged).unwrap();
        // Token-by-token and batched application land on the identical
        // state, fingerprint chain included.
        assert_eq!(authority_crl, member_crl);
    }

    #[test]
    fn non_consecutive_merge_rejected() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let mut crl = Crl::new();
        let d1 = crl.push(gm.revoke(keys[0].id).unwrap());
        let _skip = crl.push(gm.revoke(keys[1].id).unwrap());
        let d3 = CrlDelta {
            from_version: 5,
            to_version: 6,
            new_tokens: Vec::new(),
        };
        assert!(d1.merge(d3).is_err());
    }

    #[test]
    fn repeated_checks_memoized_across_clones() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let pk = ky::GroupPublicKey::from_params(gm.public_key().to_params());
        let mut rng = HmacDrbg::from_seed(b"crl-memo");
        let sig_revoked = ky::sign(&pk, &keys[0], b"m", SignBasis::Random, &mut rng);
        let sig_ok = ky::sign(&pk, &keys[1], b"m", SignBasis::Random, &mut rng);
        let mut crl = Crl::new();
        crl.push(gm.revoke(keys[0].id).unwrap());
        let clone = crl.clone();
        // Same verdicts from the original and a clone (memo-hit path),
        // repeated to exercise both the miss and the hit branch.
        for _ in 0..2 {
            assert!(crl.is_revoked(&pk, &sig_revoked));
            assert!(clone.is_revoked(&pk, &sig_revoked));
            assert!(!crl.is_revoked(&pk, &sig_ok));
            assert!(!clone.is_revoked(&pk, &sig_ok));
        }
        // Advancing the CRL changes the state key: verdicts re-derive
        // and the now-revoked member is caught.
        crl.push(gm.revoke(keys[1].id).unwrap());
        assert!(crl.is_revoked(&pk, &sig_ok));
        assert!(!clone.is_revoked(&pk, &sig_ok), "clone is at the old state");
    }
}
