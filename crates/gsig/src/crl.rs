//! The certificate revocation list (CRL).
//!
//! `SHS.CreateGroup` (Fig. 1 of the paper) creates an initially-empty CRL
//! that is "made known only to current group members"; `SHS.RemoveUser`
//! appends to it and ships the update over the authenticated anonymous
//! channel (in the framework: AEAD-encrypted under the *new* CGKD group
//! key, so revoked members cannot read it). Entries are the verifier-local
//! revocation tokens of [`crate::ky`].

use crate::ky::{GroupPublicKey, RevocationToken, Signature};
use serde::{Deserialize, Serialize};

/// A versioned list of revocation tokens.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crl {
    /// Monotone version; bumped on every revocation.
    pub version: u64,
    /// Tokens of all revoked members.
    pub tokens: Vec<RevocationToken>,
}

/// An incremental CRL update (what actually travels in rekey messages).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrlDelta {
    /// Version the delta applies on top of.
    pub from_version: u64,
    /// Version after applying.
    pub to_version: u64,
    /// Newly revoked tokens.
    pub new_tokens: Vec<RevocationToken>,
}

/// Error applying a CRL delta out of order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionMismatch {
    /// The version the member holds.
    pub have: u64,
    /// The version the delta expects.
    pub expected: u64,
}

impl std::fmt::Display for VersionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CRL delta expects version {} but member holds {}",
            self.expected, self.have
        )
    }
}

impl std::error::Error for VersionMismatch {}

impl Crl {
    /// An empty CRL at version 0.
    pub fn new() -> Crl {
        Crl::default()
    }

    /// Appends a token, bumping the version, and returns the delta to
    /// distribute.
    pub fn push(&mut self, token: RevocationToken) -> CrlDelta {
        let from_version = self.version;
        self.tokens.push(token.clone());
        self.version += 1;
        CrlDelta {
            from_version,
            to_version: self.version,
            new_tokens: vec![token],
        }
    }

    /// Applies a delta received from the group authority.
    ///
    /// # Errors
    ///
    /// [`VersionMismatch`] when deltas arrive out of order.
    pub fn apply(&mut self, delta: &CrlDelta) -> Result<(), VersionMismatch> {
        if delta.from_version != self.version {
            return Err(VersionMismatch {
                have: self.version,
                expected: delta.from_version,
            });
        }
        self.tokens.extend(delta.new_tokens.iter().cloned());
        self.version = delta.to_version;
        Ok(())
    }

    /// Does this signature match any revoked member?
    pub fn is_revoked(&self, pk: &GroupPublicKey, sig: &Signature) -> bool {
        self.tokens.iter().any(|t| t.matches(pk, sig))
    }

    /// Number of revoked members.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Is the CRL empty?
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ky::{self, SignBasis};
    use shs_crypto::drbg::HmacDrbg;

    #[test]
    fn push_apply_roundtrip() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let mut authority_crl = Crl::new();
        let mut member_crl = Crl::new();

        let token = gm.revoke(keys[0].id).unwrap();
        let delta = authority_crl.push(token);
        member_crl.apply(&delta).unwrap();
        assert_eq!(authority_crl, member_crl);
        assert_eq!(member_crl.version, 1);
        assert_eq!(member_crl.len(), 1);
    }

    #[test]
    fn out_of_order_delta_rejected() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let mut authority_crl = Crl::new();
        let mut member_crl = Crl::new();
        let d1 = authority_crl.push(gm.revoke(keys[0].id).unwrap());
        let d2 = authority_crl.push(gm.revoke(keys[1].id).unwrap());
        // Applying d2 before d1 fails.
        assert!(member_crl.apply(&d2).is_err());
        member_crl.apply(&d1).unwrap();
        member_crl.apply(&d2).unwrap();
        assert_eq!(member_crl.version, 2);
    }

    #[test]
    fn is_revoked_detects_signatures() {
        let (mut gm, keys) = fixtures::group_with_members_mut(2);
        let pk = ky::GroupPublicKey::from_params(gm.public_key().to_params());
        let mut rng = HmacDrbg::from_seed(b"crl-test");
        let sig_revoked = ky::sign(&pk, &keys[0], b"m", SignBasis::Random, &mut rng);
        let sig_ok = ky::sign(&pk, &keys[1], b"m", SignBasis::Random, &mut rng);
        let mut crl = Crl::new();
        crl.push(gm.revoke(keys[0].id).unwrap());
        assert!(crl.is_revoked(&pk, &sig_revoked));
        assert!(!crl.is_revoked(&pk, &sig_ok));
    }

    #[test]
    fn empty_crl() {
        let crl = Crl::new();
        assert!(crl.is_empty());
        assert_eq!(crl.len(), 0);
        assert_eq!(crl.version, 0);
    }
}
