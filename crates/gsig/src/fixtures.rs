//! Deterministic fixtures shared by tests and benchmarks.
//!
//! Safe-prime generation and member joins are the expensive parts of every
//! group-signature test; these helpers generate them once per process from
//! fixed DRBG seeds and hand out cached or cheaply-derived copies.

use crate::ky::{self, GroupManager, MemberKey};
use crate::params::{GsigParams, GsigPreset};
use shs_crypto::drbg::HmacDrbg;
use shs_groups::rsa::{RsaGroup, RsaSecret};
use std::sync::OnceLock;

/// Number of members pre-admitted in the shared cached group.
pub const CACHED_MEMBERS: usize = 8;

/// The cached deterministic RSA setting for the `Test` preset.
pub fn test_rsa_setting() -> &'static (RsaGroup, RsaSecret) {
    static SETTING: OnceLock<(RsaGroup, RsaSecret)> = OnceLock::new();
    SETTING.get_or_init(|| {
        let params = GsigParams::preset(GsigPreset::Test);
        RsaGroup::generate_deterministic(params.modulus_bits, b"gsig-fixture-rsa")
    })
}

/// Builds a fresh group manager (using the cached RSA setting) with
/// `n_members` admitted members. Deterministic for a given `seed`.
pub fn fresh_group_seeded(n_members: usize, seed: &[u8]) -> (GroupManager, Vec<MemberKey>) {
    let (rsa, rsa_secret) = test_rsa_setting().clone();
    let params = GsigParams::preset(GsigPreset::Test);
    let mut rng = HmacDrbg::from_seed(seed);
    let mut gm = GroupManager::setup_with_rsa(params, rsa, rsa_secret, &mut rng);
    let mut keys = Vec::with_capacity(n_members);
    for _ in 0..n_members {
        let (secret, req) = ky::start_join(gm.public_key(), &mut rng);
        let resp = gm.admit(&req, &mut rng).expect("fixture join");
        let key = ky::finish_join(gm.public_key(), secret, &resp).expect("fixture finish");
        keys.push(key);
    }
    (gm, keys)
}

/// A fresh, mutable group with `n_members` members (for tests that revoke
/// or admit).
pub fn group_with_members_mut(n_members: usize) -> (GroupManager, Vec<MemberKey>) {
    fresh_group_seeded(n_members, b"gsig-fixture-mut")
}

fn cached_group() -> &'static (GroupManager, Vec<MemberKey>) {
    static GROUP: OnceLock<(GroupManager, Vec<MemberKey>)> = OnceLock::new();
    GROUP.get_or_init(|| fresh_group_seeded(CACHED_MEMBERS, b"gsig-fixture-shared"))
}

/// A shared immutable group with up to [`CACHED_MEMBERS`] members; the
/// returned keys are clones of the first `n_members`.
///
/// # Panics
///
/// Panics if `n_members > CACHED_MEMBERS`.
pub fn group_with_members(n_members: usize) -> (&'static GroupManager, Vec<MemberKey>) {
    assert!(n_members <= CACHED_MEMBERS, "raise CACHED_MEMBERS");
    let (gm, keys) = cached_group();
    (gm, keys[..n_members].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_group_is_consistent() {
        let (gm, keys) = group_with_members(2);
        assert_eq!(gm.members().len(), CACHED_MEMBERS);
        assert_eq!(keys.len(), 2);
        assert_ne!(keys[0].id, keys[1].id);
    }

    #[test]
    fn seeded_groups_are_deterministic() {
        let (gm1, k1) = fresh_group_seeded(1, b"same-seed");
        let (gm2, k2) = fresh_group_seeded(1, b"same-seed");
        assert_eq!(gm1.public_key().to_params(), gm2.public_key().to_params());
        assert_eq!(k1[0].certificate(), k2[0].certificate());
    }
}
