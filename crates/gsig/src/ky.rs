//! The Kiayias–Yung traceable group signature scheme (paper Appendix H),
//! extended with the self-distinction mechanism of §8.2.
//!
//! # Structure
//!
//! Setting: `QR(n)` for a safe-RSA modulus, generators
//! `a, a0, b, g, h ∈ QR(n)`, group-manager tracing key `y = g^θ`.
//! A member's key is `(A, e, x, x')` with `A^e = a0 · a^x · b^{x'} mod n`,
//! where `e ∈ Γ` is prime, `x ∈ Λ` is known to the GM (the *user-tracing*
//! trapdoor that powers verifier-local revocation), and `x' ∈ Λ` is known
//! *only* to the member (protecting against misattribution).
//!
//! A signature publishes
//!
//! ```text
//! T1 = A·y^r   T2 = g^r   T3 = g^e·h^r        (opening: A = T1/T2^θ)
//! T4 = T5^x    T5 = g^k                        (user tracing / VLR)
//! T6 = T7^{x'} T7 = g^{k'}  or  H→QR(basis)    (claiming / self-distinction)
//! ```
//!
//! plus a Fiat–Shamir proof of knowledge of `(x, x', e, r, h'=e·r)` tying
//! the tags together. For **self-distinction** (§8.2) all handshake
//! participants are forced to use the *same* `T7` (a hash of the session
//! transcript), which makes `T6 = T7^{x'}` a deterministic function of the
//! member — two roles played by one member yield identical `T6` values and
//! are detected, while distinct members remain unlinkable across sessions
//! because `T7` changes per session.

use crate::batch::{self, BatchOutcome};
use crate::params::GsigParams;
use crate::proofs::{self, Transcript};
use crate::tables::FixedBasePair;
use crate::GsigError;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{rng as brng, Int, Ubig};
use shs_groups::rsa::{RsaGroup, RsaParams, RsaSecret};

/// An opaque member identity assigned by the group manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemberId(pub u64);

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "member#{}", self.0)
    }
}

/// The group public key (the paper's `Y = (n, a, a0, b, g, h, y)`).
#[derive(Debug, Clone)]
pub struct GroupPublicKey {
    /// Interval parameters.
    pub params: GsigParams,
    rsa: RsaGroup,
    /// Base for `x`.
    pub a: Ubig,
    /// Constant term of the certificate equation.
    pub a0: Ubig,
    /// Base for `x'`.
    pub b: Ubig,
    /// Base for blinding / tags.
    pub g: Ubig,
    /// Second blinding base.
    pub h: Ubig,
    /// GM tracing key `y = g^θ`.
    pub y: Ubig,
    tables: SignTables,
}

/// Fixed-base tables for the five bases signing exponentiates with secret
/// exponents; built on first use, shared by clones of the key.
#[derive(Debug, Clone, Default)]
struct SignTables {
    a: FixedBasePair,
    b: FixedBasePair,
    g: FixedBasePair,
    h: FixedBasePair,
    y: FixedBasePair,
}

/// Serializable form of [`GroupPublicKey`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupPublicKeyParams {
    /// Interval parameters.
    pub params: GsigParams,
    /// RSA modulus.
    pub rsa: RsaParams,
    /// Generators and tracing key.
    pub a: Ubig,
    /// See [`GroupPublicKey::a0`].
    pub a0: Ubig,
    /// See [`GroupPublicKey::b`].
    pub b: Ubig,
    /// See [`GroupPublicKey::g`].
    pub g: Ubig,
    /// See [`GroupPublicKey::h`].
    pub h: Ubig,
    /// See [`GroupPublicKey::y`].
    pub y: Ubig,
}

impl GroupPublicKey {
    /// Serializable parameters.
    pub fn to_params(&self) -> GroupPublicKeyParams {
        GroupPublicKeyParams {
            params: self.params,
            rsa: self.rsa.params(),
            a: self.a.clone(),
            a0: self.a0.clone(),
            b: self.b.clone(),
            g: self.g.clone(),
            h: self.h.clone(),
            y: self.y.clone(),
        }
    }

    /// Rebuilds from parameters.
    pub fn from_params(p: GroupPublicKeyParams) -> GroupPublicKey {
        GroupPublicKey {
            params: p.params,
            rsa: RsaGroup::from_params(p.rsa),
            a: p.a,
            a0: p.a0,
            b: p.b,
            g: p.g,
            h: p.h,
            y: p.y,
            tables: SignTables::default(),
        }
    }

    /// The RSA group (for callers needing raw `QR(n)` operations).
    pub fn rsa(&self) -> &RsaGroup {
        &self.rsa
    }

    /// Width bound for the fixed-base tables: the widest secret exponent a
    /// signer ever raises a fixed base to is the `h'`-blind.
    fn table_bits(&self) -> u32 {
        self.params.blind_bits(self.params.h_bits())
    }

    /// `a^e` via the precomputed table (constant-trace).
    fn pow_a(&self, e: &Int) -> Ubig {
        self.tables
            .a
            .pow_signed(&self.rsa, &self.a, e, self.table_bits())
    }

    /// `b^e` via the precomputed table (constant-trace).
    fn pow_b(&self, e: &Int) -> Ubig {
        self.tables
            .b
            .pow_signed(&self.rsa, &self.b, e, self.table_bits())
    }

    /// `g^e` via the precomputed table (constant-trace).
    fn pow_g(&self, e: &Int) -> Ubig {
        self.tables
            .g
            .pow_signed(&self.rsa, &self.g, e, self.table_bits())
    }

    /// `h^e` via the precomputed table (constant-trace).
    fn pow_h(&self, e: &Int) -> Ubig {
        self.tables
            .h
            .pow_signed(&self.rsa, &self.h, e, self.table_bits())
    }

    /// `y^e` via the precomputed table (constant-trace).
    fn pow_y(&self, e: &Int) -> Ubig {
        self.tables
            .y
            .pow_signed(&self.rsa, &self.y, e, self.table_bits())
    }

    /// Unsigned-exponent table variants.
    fn pow_b_u(&self, e: &Ubig) -> Ubig {
        self.tables.b.pow(&self.rsa, &self.b, e, self.table_bits())
    }

    fn pow_g_u(&self, e: &Ubig) -> Ubig {
        self.tables.g.pow(&self.rsa, &self.g, e, self.table_bits())
    }

    fn pow_h_u(&self, e: &Ubig) -> Ubig {
        self.tables.h.pow(&self.rsa, &self.h, e, self.table_bits())
    }

    fn pow_y_u(&self, e: &Ubig) -> Ubig {
        self.tables.y.pow(&self.rsa, &self.y, e, self.table_bits())
    }

    /// Derives the common self-distinction base `T7` from session-unique
    /// bytes (§8.2: an idealized hash of the concatenation of all messages
    /// sent by the handshake participants).
    pub fn common_t7(&self, basis: &[u8]) -> Ubig {
        self.rsa.hash_to_qr(basis)
    }

    fn transcript_for(&self, message: &[u8], tags: &Tags, b: &[Ubig; 6]) -> Transcript {
        let mut t = Transcript::new("shs-gsig-ky");
        t.append_ubig("n", self.rsa.n());
        t.append_ubig("a", &self.a);
        t.append_ubig("a0", &self.a0);
        t.append_ubig("b", &self.b);
        t.append_ubig("g", &self.g);
        t.append_ubig("h", &self.h);
        t.append_ubig("y", &self.y);
        t.append("m", message);
        for (i, tag) in tags.as_array().iter().enumerate() {
            t.append_ubig(&format!("T{}", i + 1), tag);
        }
        for (i, bi) in b.iter().enumerate() {
            t.append_ubig(&format!("B{}", i + 1), bi);
        }
        t
    }
}

/// The seven tags of a KY signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tags {
    /// `A·y^r`.
    pub t1: Ubig,
    /// `g^r`.
    pub t2: Ubig,
    /// `g^e·h^r`.
    pub t3: Ubig,
    /// `T5^x`.
    pub t4: Ubig,
    /// `g^k`.
    pub t5: Ubig,
    /// `T7^{x'}`.
    pub t6: Ubig,
    /// `g^{k'}` or the common hashed base.
    pub t7: Ubig,
}

impl Tags {
    fn as_array(&self) -> [&Ubig; 7] {
        [
            &self.t1, &self.t2, &self.t3, &self.t4, &self.t5, &self.t6, &self.t7,
        ]
    }
}

/// A KY group signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// The tags `T1..T7`.
    pub tags: Tags,
    /// Fiat–Shamir commitments `B1..B6`, transmitted (and bound through
    /// the challenge hash) so the verifier can check the group equations
    /// directly — the form batch verification combines.
    pub b: [Ubig; 6],
    /// Fiat–Shamir challenge.
    pub c: Ubig,
    /// Response for `x`.
    pub s_x: Int,
    /// Response for `x'`.
    pub s_xp: Int,
    /// Response for `e`.
    pub s_e: Int,
    /// Response for `r`.
    pub s_r: Int,
    /// Response for `h' = e·r`.
    pub s_h: Int,
}

/// How `T7` is chosen when signing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignBasis<'a> {
    /// Fresh random `T7 = g^{k'}` — standard KY signature.
    Random,
    /// Common base derived from session bytes — the self-distinction mode
    /// of §8.2. All participants of one handshake must use the same bytes.
    Common(&'a [u8]),
}

/// A member's signing key.
#[derive(Clone, Serialize, Deserialize)]
pub struct MemberKey {
    /// The member's pseudonymous identity.
    pub id: MemberId,
    a_cert: Ubig,
    e: Ubig,
    x: Ubig,
    x_prime: Ubig,
}

impl MemberKey {
    /// The certificate value `A` (needed only for debugging / tests).
    pub fn certificate(&self) -> &Ubig {
        &self.a_cert
    }

    /// The claiming secret `x'` — exposed for tests that validate
    /// self-distinction; handle with care.
    pub fn x_prime(&self) -> &Ubig {
        &self.x_prime
    }
}

impl std::fmt::Debug for MemberKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MemberKey {{ id: {}, secrets: **** }}", self.id)
    }
}

/// A registry entry kept by the group manager.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemberRecord {
    /// Member identity.
    pub id: MemberId,
    /// Certificate `A`.
    pub a_cert: Ubig,
    /// Certificate prime `e`.
    pub e: Ubig,
    /// The GM-known tracing trapdoor `x` (the VLR revocation token).
    pub x: Ubig,
    /// Whether this member has been revoked.
    pub revoked: bool,
}

/// A verifier-local revocation token: the revoked member's tracing
/// trapdoor. Distributed to members inside encrypted CGKD updates (the
/// paper's member-only CRL).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationToken {
    /// Identity being revoked (informational).
    pub id: MemberId,
    /// The trapdoor `x` such that `T5^x = T4` for this member's
    /// signatures.
    pub x: Ubig,
}

impl RevocationToken {
    /// Does `sig` belong to the member this token revokes?
    pub fn matches(&self, pk: &GroupPublicKey, sig: &Signature) -> bool {
        pk.rsa().exp(&sig.tags.t5, &self.x) == sig.tags.t4
    }
}

/// The group manager: holds the RSA trapdoor, the opening key `θ` and the
/// member registry.
pub struct GroupManager {
    pk: GroupPublicKey,
    rsa_secret: RsaSecret,
    theta: Ubig,
    members: Vec<MemberRecord>,
    next_id: u64,
}

impl std::fmt::Debug for GroupManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GroupManager {{ members: {}, secrets: **** }}",
            self.members.len()
        )
    }
}

/// First message of the interactive join: the member commits to its
/// claiming secret `C = b^{x'}` and proves knowledge of `x' ∈ Λ`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinRequest {
    /// `C = b^{x'}`.
    pub commitment: Ubig,
    /// Challenge of the Schnorr proof of knowledge of `x'`.
    pub pok_c: Ubig,
    /// Response of the proof.
    pub pok_s: Int,
}

/// The member's private state between the two join messages.
pub struct JoinSecret {
    x_prime: Ubig,
}

impl std::fmt::Debug for JoinSecret {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JoinSecret(****)")
    }
}

impl JoinSecret {
    /// Zeroizes the private exponent in place. Called automatically on
    /// drop.
    fn wipe_in_place(&mut self) {
        self.x_prime.wipe();
    }
}

impl Drop for JoinSecret {
    fn drop(&mut self) {
        self.wipe_in_place();
    }
}

/// The GM's reply: the certificate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinResponse {
    /// Assigned identity.
    pub id: MemberId,
    /// Certificate value `A = (a0·a^x·C)^{1/e}`.
    pub a_cert: Ubig,
    /// Certificate prime.
    pub e: Ubig,
    /// GM-chosen tracing secret.
    pub x: Ubig,
}

/// Output of [`GroupManager::open`]: the signer plus a Chaum–Pedersen
/// proof that the opening is correct (the "incontestable evidence" of the
/// paper's `Open`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Opening {
    /// The identified signer.
    pub id: MemberId,
    /// The recovered certificate `A`.
    pub a_cert: Ubig,
    /// Proof that `log_g y = log_{T2}(T1/A)`.
    pub proof: OpeningProof,
}

/// Chaum–Pedersen discrete-log-equality proof for openings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpeningProof {
    /// Fiat–Shamir challenge.
    pub c: Ubig,
    /// Response.
    pub s: Int,
}

impl GroupManager {
    /// `GSIG.Setup`: generates the RSA setting, generators and tracing key.
    pub fn setup(params: GsigParams, rng: &mut (impl RngCore + ?Sized)) -> GroupManager {
        let (rsa, rsa_secret) = RsaGroup::generate(params.modulus_bits, rng);
        Self::setup_with_rsa(params, rsa, rsa_secret, rng)
    }

    /// Setup reusing a pre-generated RSA setting (tests / benchmarks).
    pub fn setup_with_rsa(
        params: GsigParams,
        rsa: RsaGroup,
        rsa_secret: RsaSecret,
        rng: &mut (impl RngCore + ?Sized),
    ) -> GroupManager {
        let a = rsa_secret.qr_generator(&rsa, rng);
        let a0 = rsa_secret.qr_generator(&rsa, rng);
        let b = rsa_secret.qr_generator(&rsa, rng);
        let g = rsa_secret.qr_generator(&rsa, rng);
        let h = rsa_secret.qr_generator(&rsa, rng);
        let theta = brng::below(rng, &rsa.n().shr(2));
        let y = rsa.exp(&g, &theta);
        let pk = GroupPublicKey {
            params,
            rsa,
            a,
            a0,
            b,
            g,
            h,
            y,
            tables: SignTables::default(),
        };
        GroupManager {
            pk,
            rsa_secret,
            theta,
            members: Vec::new(),
            next_id: 0,
        }
    }

    /// The group public key.
    pub fn public_key(&self) -> &GroupPublicKey {
        &self.pk
    }

    /// Member registry (GM-private).
    pub fn members(&self) -> &[MemberRecord] {
        &self.members
    }

    /// `GSIG.Join`, GM side: verifies the member's proof of knowledge of
    /// `x'` and issues a certificate.
    ///
    /// # Errors
    ///
    /// [`GsigError::JoinRejected`] when the proof of knowledge fails.
    pub fn admit(
        &mut self,
        req: &JoinRequest,
        rng: &mut (impl RngCore + ?Sized),
    ) -> Result<JoinResponse, GsigError> {
        if !verify_join_pok(&self.pk, req) {
            return Err(GsigError::JoinRejected);
        }
        let params = &self.pk.params;
        let x = params.sample_lambda(rng);
        let e = params.sample_gamma_prime(rng);
        // A = (a0 · a^x · C)^{1/e}
        let base = self.pk.rsa.mul(
            &self
                .pk
                .rsa
                .mul(&self.pk.a0, &self.pk.rsa.exp(&self.pk.a, &x)),
            &req.commitment,
        );
        let a_cert = self
            .rsa_secret
            .root(&self.pk.rsa, &base, &e)
            .map_err(|_| GsigError::JoinRejected)?;
        let id = MemberId(self.next_id);
        self.next_id += 1;
        self.members.push(MemberRecord {
            id,
            a_cert: a_cert.clone(),
            e: e.clone(),
            x: x.clone(),
            revoked: false,
        });
        Ok(JoinResponse { id, a_cert, e, x })
    }

    /// `GSIG.Revoke`: marks the member revoked and returns the VLR token
    /// to publish on the (member-only) CRL.
    ///
    /// # Errors
    ///
    /// [`GsigError::UnknownSigner`] for ids never admitted.
    pub fn revoke(&mut self, id: MemberId) -> Result<RevocationToken, GsigError> {
        let rec = self
            .members
            .iter_mut()
            .find(|m| m.id == id)
            .ok_or(GsigError::UnknownSigner)?;
        rec.revoked = true;
        Ok(RevocationToken {
            id,
            x: rec.x.clone(),
        })
    }

    /// `GSIG.Open`: identifies the signer of a valid signature and produces
    /// the opening proof.
    ///
    /// # Errors
    ///
    /// [`GsigError::InvalidSignature`] when the signature does not verify;
    /// [`GsigError::UnknownSigner`] when the recovered `A` matches no
    /// member.
    pub fn open(&self, message: &[u8], sig: &Signature) -> Result<Opening, GsigError> {
        verify(&self.pk, message, sig, None)?;
        let rsa = &self.pk.rsa;
        // A = T1 / T2^θ.
        let shield = rsa.exp(&sig.tags.t2, &self.theta);
        let a_cert = rsa
            .div(&sig.tags.t1, &shield)
            .map_err(|_| GsigError::InvalidSignature)?;
        let rec = self
            .members
            .iter()
            .find(|m| m.a_cert == a_cert)
            .ok_or(GsigError::UnknownSigner)?;
        let proof = self.prove_opening(sig, &a_cert);
        Ok(Opening {
            id: rec.id,
            a_cert,
            proof,
        })
    }

    /// Chaum–Pedersen proof that `log_g y = log_{T2}(T1/A) = θ`.
    fn prove_opening(&self, sig: &Signature, a_cert: &Ubig) -> OpeningProof {
        let rsa = &self.pk.rsa;
        let params = &self.pk.params;
        // Deterministic blinding via DRBG keyed on the secret & statement
        // keeps this function RNG-free without risking nonce reuse.
        let mut seed = b"shs-open-proof".to_vec();
        seed.extend_from_slice(&self.theta.to_bytes_be());
        seed.extend_from_slice(&sig.tags.t1.to_bytes_be());
        seed.extend_from_slice(&sig.tags.t2.to_bytes_be());
        let mut drbg = shs_crypto::drbg::HmacDrbg::from_seed(&seed);
        let rho = proofs::sample_blind(params.blind_bits(params.r_bits() + 2), &mut drbg);
        let u1 = rsa.exp_signed(&self.pk.g, &rho);
        let u2 = rsa.exp_signed(&sig.tags.t2, &rho);
        let c = opening_transcript(&self.pk, sig, a_cert, &u1, &u2).challenge(params.k);
        let s = proofs::response(&rho, &c, &self.theta, &Ubig::zero());
        OpeningProof { c, s }
    }
}

fn opening_transcript(
    pk: &GroupPublicKey,
    sig: &Signature,
    a_cert: &Ubig,
    u1: &Ubig,
    u2: &Ubig,
) -> Transcript {
    let mut t = Transcript::new("shs-gsig-open");
    t.append_ubig("n", pk.rsa.n());
    t.append_ubig("g", &pk.g);
    t.append_ubig("y", &pk.y);
    t.append_ubig("T1", &sig.tags.t1);
    t.append_ubig("T2", &sig.tags.t2);
    t.append_ubig("A", a_cert);
    t.append_ubig("U1", u1);
    t.append_ubig("U2", u2);
    t
}

/// Verifies an [`Opening`] against a signature: checks the Chaum–Pedersen
/// relation `g^s·y^c = U1 ∧ T2^s·(T1/A)^c = U2` by recomputing the
/// challenge.
pub fn verify_opening(
    pk: &GroupPublicKey,
    sig: &Signature,
    opening: &Opening,
) -> Result<(), GsigError> {
    let rsa = &pk.rsa;
    let params = &pk.params;
    if !proofs::response_in_range(&opening.proof.s, params.blind_bits(params.r_bits() + 2)) {
        return Err(GsigError::InvalidProof);
    }
    let shield = rsa
        .div(&sig.tags.t1, &opening.a_cert)
        .map_err(|_| GsigError::InvalidProof)?;
    let c_int = Int::from_ubig(opening.proof.c.clone());
    let u1 = rsa.multi_exp_vartime(&[(&pk.g, &opening.proof.s), (&pk.y, &c_int)]);
    let u2 = rsa.multi_exp_vartime(&[(&sig.tags.t2, &opening.proof.s), (&shield, &c_int)]);
    let c = opening_transcript(pk, sig, &opening.a_cert, &u1, &u2).challenge(params.k);
    if c == opening.proof.c {
        Ok(())
    } else {
        Err(GsigError::InvalidProof)
    }
}

/// `GSIG.Join`, member side, step 1: choose `x' ∈ Λ`, commit and prove.
pub fn start_join(
    pk: &GroupPublicKey,
    rng: &mut (impl RngCore + ?Sized),
) -> (JoinSecret, JoinRequest) {
    let params = &pk.params;
    let x_prime = params.sample_lambda(rng);
    let commitment = pk.pow_b_u(&x_prime);
    // Schnorr PoK of x' in Λ on base b.
    let rho = proofs::sample_blind(params.blind_bits(params.lambda2), rng);
    let big_b = pk.pow_b(&rho);
    let mut t = Transcript::new("shs-gsig-join");
    t.append_ubig("n", pk.rsa.n());
    t.append_ubig("b", &pk.b);
    t.append_ubig("C", &commitment);
    t.append_ubig("B", &big_b);
    let c = t.challenge(params.k);
    let s = proofs::response(&rho, &c, &x_prime, &pow2(params.lambda1));
    (
        JoinSecret { x_prime },
        JoinRequest {
            commitment,
            pok_c: c,
            pok_s: s,
        },
    )
}

fn verify_join_pok(pk: &GroupPublicKey, req: &JoinRequest) -> bool {
    let params = &pk.params;
    if !proofs::response_in_range(&req.pok_s, params.blind_bits(params.lambda2)) {
        return false;
    }
    // B' = b^{s - c·2^{λ1}} · C^c — public join-request data: one vartime
    // multi-exp.
    let exp = proofs::shifted(&req.pok_s, &req.pok_c, params.lambda1);
    let big_b = pk.rsa.multi_exp_vartime(&[
        (&pk.b, &exp),
        (&req.commitment, &Int::from_ubig(req.pok_c.clone())),
    ]);
    let mut t = Transcript::new("shs-gsig-join");
    t.append_ubig("n", pk.rsa.n());
    t.append_ubig("b", &pk.b);
    t.append_ubig("C", &req.commitment);
    t.append_ubig("B", &big_b);
    t.challenge(params.k) == req.pok_c
}

/// `GSIG.Join`, member side, step 2: check the certificate equation
/// `A^e = a0·a^x·b^{x'}` and assemble the member key.
///
/// # Errors
///
/// [`GsigError::JoinRejected`] when the certificate is inconsistent or the
/// issued values fall outside their spheres.
pub fn finish_join(
    pk: &GroupPublicKey,
    mut secret: JoinSecret,
    resp: &JoinResponse,
) -> Result<MemberKey, GsigError> {
    let params = &pk.params;
    if !params.in_lambda(&resp.x) || !params.in_gamma(&resp.e) {
        return Err(GsigError::JoinRejected);
    }
    let rsa = &pk.rsa;
    let lhs = rsa.exp(&resp.a_cert, &resp.e);
    let rhs = rsa.mul(
        &rsa.mul(&pk.a0, &rsa.exp(&pk.a, &resp.x)),
        &rsa.exp(&pk.b, &secret.x_prime),
    );
    if lhs != rhs {
        return Err(GsigError::JoinRejected);
    }
    // `JoinSecret: Drop`, so `x_prime` cannot be moved out; swap it for
    // zero and let the drop wipe the (now empty) remainder.
    let x_prime = std::mem::replace(&mut secret.x_prime, Ubig::zero());
    Ok(MemberKey {
        id: resp.id,
        a_cert: resp.a_cert.clone(),
        e: resp.e.clone(),
        x: resp.x.clone(),
        x_prime,
    })
}

/// `GSIG.Sign`: produces a signature on `message`.
pub fn sign(
    pk: &GroupPublicKey,
    key: &MemberKey,
    message: &[u8],
    basis: SignBasis<'_>,
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    sign_inner(pk, key, message, basis, None, rng)
}

/// Adversarial test hook: signs honestly but negates commitment
/// `B_{j+1}` (`B ← n − B`) before the challenge, then derives `c` and
/// the responses against the negated vector. The group equations of the
/// result hold only up to sign — the canonical order-2 probe for
/// single/batch verifier agreement. Both verifiers compare in `QR(n)`
/// and accept (benign signer-only malleability); before the squared
/// comparison, the batch RLC accepted this for half of all coefficient
/// draws while per-signature `verify` rejected it.
#[doc(hidden)]
pub fn sign_negated(
    pk: &GroupPublicKey,
    key: &MemberKey,
    message: &[u8],
    basis: SignBasis<'_>,
    j: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    sign_inner(pk, key, message, basis, Some(j), rng)
}

fn sign_inner(
    pk: &GroupPublicKey,
    key: &MemberKey,
    message: &[u8],
    basis: SignBasis<'_>,
    negate: Option<usize>,
    rng: &mut (impl RngCore + ?Sized),
) -> Signature {
    let params = &pk.params;
    let rsa = &pk.rsa;
    let two = |bits: u32| -> Ubig { pow2(bits) };

    // Fixed public bases with secret exponents go through the precomputed
    // constant-trace tables; per-signature bases (T1, T2, T5, T7) stay on
    // the plain Montgomery kernel.
    let r = brng::below(rng, &two(params.r_bits()));
    let k1 = brng::below(rng, &two(params.r_bits()));
    let t5 = pk.pow_g_u(&k1);
    let t4 = rsa.exp(&t5, &key.x);
    let t7 = match basis {
        SignBasis::Random => {
            let k2 = brng::below(rng, &two(params.r_bits()));
            pk.pow_g_u(&k2)
        }
        SignBasis::Common(bytes) => pk.common_t7(bytes),
    };
    let t6 = rsa.exp(&t7, &key.x_prime);
    let t1 = rsa.mul(&key.a_cert, &pk.pow_y_u(&r));
    let t2 = pk.pow_g_u(&r);
    let t3 = rsa.mul(&pk.pow_g_u(&key.e), &pk.pow_h_u(&r));
    let h_prime = key.e.mul(&r);
    let tags = Tags {
        t1,
        t2,
        t3,
        t4,
        t5,
        t6,
        t7,
    };

    // Blinds.
    let rho_x = proofs::sample_blind(params.blind_bits(params.lambda2), rng);
    let rho_xp = proofs::sample_blind(params.blind_bits(params.lambda2), rng);
    let rho_e = proofs::sample_blind(params.blind_bits(params.gamma2), rng);
    let rho_r = proofs::sample_blind(params.blind_bits(params.r_bits()), rng);
    let rho_h = proofs::sample_blind(params.blind_bits(params.h_bits()), rng);

    // Commitments B1..B6.
    let b1 = pk.pow_g(&rho_r);
    let b2 = rsa.mul(&pk.pow_g(&rho_e), &pk.pow_h(&rho_r));
    let b3 = rsa.mul(&rsa.exp_signed(&tags.t2, &rho_e), &pk.pow_g(&rho_h.neg()));
    let b4 = rsa.exp_signed(&tags.t5, &rho_x);
    let b5 = rsa.exp_signed(&tags.t7, &rho_xp);
    let b6 = rsa.mul(
        &rsa.mul(
            &rsa.mul(&pk.pow_a(&rho_x), &pk.pow_b(&rho_xp)),
            &pk.pow_y(&rho_h),
        ),
        &rsa.exp_signed(&tags.t1, &rho_e.neg()),
    );

    let mut b = [b1, b2, b3, b4, b5, b6];
    if let Some(j) = negate {
        b[j] = rsa.n().sub(&b[j]);
    }
    let c = pk.transcript_for(message, &tags, &b).challenge(params.k);

    let s_x = proofs::response(&rho_x, &c, &key.x, &two(params.lambda1));
    let s_xp = proofs::response(&rho_xp, &c, &key.x_prime, &two(params.lambda1));
    let s_e = proofs::response(&rho_e, &c, &key.e, &two(params.gamma1));
    let s_r = proofs::response(&rho_r, &c, &r, &Ubig::zero());
    let s_h = proofs::response(&rho_h, &c, &h_prime, &Ubig::zero());

    Signature {
        tags,
        b,
        c,
        s_x,
        s_xp,
        s_e,
        s_r,
        s_h,
    }
}

/// `GSIG.Verify`: checks a signature; when `expected_t7` is provided
/// (self-distinction mode), additionally requires the signature's `T7` to
/// equal it.
///
/// # Errors
///
/// [`GsigError::InvalidSignature`] on any failed check.
pub fn verify(
    pk: &GroupPublicKey,
    message: &[u8],
    sig: &Signature,
    expected_t7: Option<&Ubig>,
) -> Result<(), GsigError> {
    precheck(pk, message, sig, expected_t7)?;
    if equations_hold(pk, sig) {
        Ok(())
    } else {
        Err(GsigError::InvalidSignature)
    }
}

/// The cheap per-signature checks batch verification must also run
/// individually: the `T7` pin, element ranges, response spheres and the
/// Fiat–Shamir challenge binding `(m, T, B)`. No exponentiations.
fn precheck(
    pk: &GroupPublicKey,
    message: &[u8],
    sig: &Signature,
    expected_t7: Option<&Ubig>,
) -> Result<(), GsigError> {
    let params = &pk.params;
    let rsa = &pk.rsa;

    if let Some(t7) = expected_t7 {
        if &sig.tags.t7 != t7 {
            return Err(GsigError::InvalidSignature);
        }
    }
    for tag in sig.tags.as_array().into_iter().chain(sig.b.iter()) {
        if tag.is_zero() || *tag >= *rsa.n() {
            return Err(GsigError::InvalidSignature);
        }
    }

    // Range checks on the responses.
    let ok = proofs::response_in_range(&sig.s_x, params.blind_bits(params.lambda2))
        && proofs::response_in_range(&sig.s_xp, params.blind_bits(params.lambda2))
        && proofs::response_in_range(&sig.s_e, params.blind_bits(params.gamma2))
        && proofs::response_in_range(&sig.s_r, params.blind_bits(params.r_bits()))
        && proofs::response_in_range(&sig.s_h, params.blind_bits(params.h_bits()));
    if !ok {
        return Err(GsigError::InvalidSignature);
    }
    let c_prime = pk
        .transcript_for(message, &sig.tags, &sig.b)
        .challenge(params.k);
    if c_prime == sig.c {
        Ok(())
    } else {
        Err(GsigError::InvalidSignature)
    }
}

/// The six group equations against the transmitted commitments,
/// compared in `QR(n)`: both sides are squared, so equality is up to a
/// square root of 1 — and `±1` is the only one computable without
/// factoring `n`, making this the same quotient the batch RLC combines
/// in (see `crate::batch`). Every operand is broadcast data, so each B
/// product is one vartime Straus multi-exp (shared squaring chain
/// across the bases).
fn equations_hold(pk: &GroupPublicKey, sig: &Signature) -> bool {
    let params = &pk.params;
    let rsa = &pk.rsa;
    let e_e = proofs::shifted(&sig.s_e, &sig.c, params.gamma1);
    let e_x = proofs::shifted(&sig.s_x, &sig.c, params.lambda1);
    let e_xp = proofs::shifted(&sig.s_xp, &sig.c, params.lambda1);

    let c_int = Int::from_ubig(sig.c.clone());
    // B1 = g^{s_r} · T2^c
    let b1 = rsa.multi_exp_vartime(&[(&pk.g, &sig.s_r), (&sig.tags.t2, &c_int)]);
    // B2 = g^{E_e} · h^{s_r} · T3^c
    let b2 = rsa.multi_exp_vartime(&[(&pk.g, &e_e), (&pk.h, &sig.s_r), (&sig.tags.t3, &c_int)]);
    // B3 = T2^{E_e} · g^{-s_h}
    let b3 = rsa.multi_exp_vartime(&[(&sig.tags.t2, &e_e), (&pk.g, &sig.s_h.neg())]);
    // B4 = T5^{E_x} · T4^c
    let b4 = rsa.multi_exp_vartime(&[(&sig.tags.t5, &e_x), (&sig.tags.t4, &c_int)]);
    // B5 = T7^{E_xp} · T6^c
    let b5 = rsa.multi_exp_vartime(&[(&sig.tags.t7, &e_xp), (&sig.tags.t6, &c_int)]);
    // B6 = a^{E_x} · b^{E_xp} · y^{s_h} · T1^{-E_e} · a0^{-c}
    let b6 = rsa.multi_exp_vartime(&[
        (&pk.a, &e_x),
        (&pk.b, &e_xp),
        (&pk.y, &sig.s_h),
        (&sig.tags.t1, &e_e.neg()),
        (&pk.a0, &c_int.neg()),
    ]);
    [b1, b2, b3, b4, b5, b6]
        .iter()
        .zip(sig.b.iter())
        .all(|(rhs, b)| rsa.mul(rhs, rhs) == rsa.mul(b, b))
}

/// Batch `Verify`: checks `k` `(message, signature)` pairs with one
/// random-linear-combination check over the pooled group equations (see
/// [`crate::batch`]). The `expected_t7` pin (self-distinction mode)
/// applies to every signature and runs in the individual precheck; only
/// the group equations are combined, and a failed combination is
/// bisected to isolate the offending indices. Both paths compare the
/// equations in `QR(n)` (squared sides / doubled coefficients), so this
/// agrees with calling [`verify`] on every pair — including order-2
/// sign-malleated commitments, which both accept — up to the 2⁻¹²⁸ RLC
/// soundness bound.
///
/// Revocation is *not* checked here — pair with
/// [`crate::crl::Crl::is_revoked`] per surviving signature (the check is
/// memoized and signature-local, so it does not batch).
pub fn verify_batch(
    pk: &GroupPublicKey,
    items: &[(&[u8], &Signature)],
    expected_t7: Option<&Ubig>,
) -> BatchOutcome {
    let mut bad = Vec::new();
    let mut survivors = Vec::new();
    for (i, (message, sig)) in items.iter().enumerate() {
        if precheck(pk, message, sig, expected_t7).is_ok() {
            survivors.push(i);
        } else {
            bad.push(i);
        }
    }
    if !survivors.is_empty() {
        let digest = batch_digest(pk, items);
        let mut rlc = |subset: &[usize]| rlc_holds(pk, items, subset, &digest);
        batch::isolate_invalid(&survivors, &mut rlc, &mut bad);
    }
    BatchOutcome::from_invalid(bad)
}

/// Binds the coefficient DRBG to the entire batch content, so the
/// combination coefficients are fixed only after every signature is.
fn batch_digest(pk: &GroupPublicKey, items: &[(&[u8], &Signature)]) -> Vec<u8> {
    let mut tr = Transcript::new("shs-gsig-ky-batch");
    tr.append_ubig("n", pk.rsa.n());
    for (message, sig) in items {
        tr.append("m", message);
        for (i, tag) in sig.tags.as_array().iter().enumerate() {
            tr.append_ubig(&format!("T{}", i + 1), tag);
        }
        for (i, bi) in sig.b.iter().enumerate() {
            tr.append_ubig(&format!("B{}", i + 1), bi);
        }
        tr.append_ubig("c", &sig.c);
        tr.append_int("s_x", &sig.s_x);
        tr.append_int("s_xp", &sig.s_xp);
        tr.append_int("s_e", &sig.s_e);
        tr.append_int("s_r", &sig.s_r);
        tr.append_int("s_h", &sig.s_h);
    }
    tr.challenge(256).to_bytes_be()
}

/// The combined group equation over `subset`:
/// `Π B_{i,j}^{2·z_{i,j}} == Π RHS_{i,j}^{2·z_{i,j}}`, two multi-exps.
/// Doubling every coefficient squares both sides, i.e. compares in
/// `QR(n)` exactly like the per-signature [`equations_hold`] — an
/// order-2 deviation (`±1`, the only small-order element computable
/// without factoring `n`) cancels on *every* draw instead of slipping
/// through even coefficients (see `crate::batch`). Exponents of the
/// shared bases `g, h, a, b, y, a0` accumulate across the subset, so
/// their ladder cost is paid once per batch.
fn rlc_holds(
    pk: &GroupPublicKey,
    items: &[(&[u8], &Signature)],
    subset: &[usize],
    digest: &[u8],
) -> bool {
    let params = &pk.params;
    let rsa = &pk.rsa;
    let two = Int::from_i64(2);
    let mut coeffs = batch::CoeffStream::new("shs-gsig-ky", digest, subset);
    let mut e_g = Int::zero();
    let mut e_h = Int::zero();
    let mut e_a = Int::zero();
    let mut e_b = Int::zero();
    let mut e_y = Int::zero();
    let mut e_a0 = Int::zero();
    let mut lhs: Vec<(&Ubig, Int)> = Vec::with_capacity(6 * subset.len());
    let mut per_sig: Vec<(&Ubig, Int)> = Vec::with_capacity(6 * subset.len());
    for &i in subset {
        let sig = items[i].1;
        let tags = &sig.tags;
        let c = Int::from_ubig(sig.c.clone());
        let e_e = proofs::shifted(&sig.s_e, &sig.c, params.gamma1);
        let e_x = proofs::shifted(&sig.s_x, &sig.c, params.lambda1);
        let e_xp = proofs::shifted(&sig.s_xp, &sig.c, params.lambda1);
        let z1 = coeffs.next_coeff().mul(&two);
        let z2 = coeffs.next_coeff().mul(&two);
        let z3 = coeffs.next_coeff().mul(&two);
        let z4 = coeffs.next_coeff().mul(&two);
        let z5 = coeffs.next_coeff().mul(&two);
        let z6 = coeffs.next_coeff().mul(&two);
        // B1 = g^{s_r} T2^c and B3 = T2^{E_e} g^{-s_h} share base T2.
        e_g = e_g.add(&z1.mul(&sig.s_r)).sub(&z3.mul(&sig.s_h));
        per_sig.push((&tags.t2, z1.mul(&c).add(&z3.mul(&e_e))));
        // B2 = g^{E_e} h^{s_r} T3^c.
        e_g = e_g.add(&z2.mul(&e_e));
        e_h = e_h.add(&z2.mul(&sig.s_r));
        per_sig.push((&tags.t3, z2.mul(&c)));
        // B4 = T5^{E_x} T4^c.
        per_sig.push((&tags.t5, z4.mul(&e_x)));
        per_sig.push((&tags.t4, z4.mul(&c)));
        // B5 = T7^{E_xp} T6^c.
        per_sig.push((&tags.t7, z5.mul(&e_xp)));
        per_sig.push((&tags.t6, z5.mul(&c)));
        // B6 = a^{E_x} b^{E_xp} y^{s_h} T1^{-E_e} a0^{-c}.
        e_a = e_a.add(&z6.mul(&e_x));
        e_b = e_b.add(&z6.mul(&e_xp));
        e_y = e_y.add(&z6.mul(&sig.s_h));
        e_a0 = e_a0.sub(&z6.mul(&c));
        per_sig.push((&tags.t1, z6.mul(&e_e).neg()));
        for (bi, z) in sig.b.iter().zip([z1, z2, z3, z4, z5, z6]) {
            lhs.push((bi, z));
        }
    }
    let mut rhs_terms: Vec<(&Ubig, &Int)> = vec![
        (&pk.g, &e_g),
        (&pk.h, &e_h),
        (&pk.a, &e_a),
        (&pk.b, &e_b),
        (&pk.y, &e_y),
        (&pk.a0, &e_a0),
    ];
    rhs_terms.extend(per_sig.iter().map(|(base, e)| (*base, e)));
    let lhs_terms: Vec<(&Ubig, &Int)> = lhs.iter().map(|(base, e)| (*base, e)).collect();
    rsa.multi_exp_vartime(&lhs_terms) == rsa.multi_exp_vartime(&rhs_terms)
}

/// Verifies a signature against a CRL of VLR tokens: the signature must be
/// valid *and* not match any revoked member's trapdoor.
///
/// # Errors
///
/// [`GsigError::InvalidSignature`] for invalid proofs,
/// [`GsigError::RevokedMember`] when a token matches.
pub fn verify_with_tokens(
    pk: &GroupPublicKey,
    message: &[u8],
    sig: &Signature,
    expected_t7: Option<&Ubig>,
    tokens: &[RevocationToken],
) -> Result<(), GsigError> {
    verify(pk, message, sig, expected_t7)?;
    for token in tokens {
        if token.matches(pk, sig) {
            return Err(GsigError::RevokedMember);
        }
    }
    Ok(())
}

/// Verifies a signature against a [`crate::crl::Crl`]: like
/// [`verify_with_tokens`], but routed through the CRL's memoized
/// revocation check so repeated checks of the same signature against the
/// same CRL state cost `O(1)`.
///
/// # Errors
///
/// [`GsigError::InvalidSignature`] for invalid proofs,
/// [`GsigError::RevokedMember`] when a token matches.
pub fn verify_with_crl(
    pk: &GroupPublicKey,
    message: &[u8],
    sig: &Signature,
    expected_t7: Option<&Ubig>,
    crl: &crate::crl::Crl,
) -> Result<(), GsigError> {
    verify(pk, message, sig, expected_t7)?;
    if crl.is_revoked(pk, sig) {
        return Err(GsigError::RevokedMember);
    }
    Ok(())
}

/// A *claim*: a Schnorr proof of knowledge of `x'` with `T6 = T7^{x'}`,
/// by which a member proves — without help from the GM and without
/// revealing `x'` — that a given signature is its own. This is the
/// claiming feature of the Kiayias–Yung scheme the paper's Appendix H
/// points out ("(T6, T7) allows one to claim its signatures").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Claim {
    /// Fiat–Shamir challenge.
    pub c: Ubig,
    /// Response for `x'`.
    pub s: Int,
}

fn claim_transcript(
    pk: &GroupPublicKey,
    sig: &Signature,
    big_b: &Ubig,
) -> crate::proofs::Transcript {
    let mut t = Transcript::new("shs-gsig-claim");
    t.append_ubig("n", pk.rsa.n());
    t.append_ubig("T6", &sig.tags.t6);
    t.append_ubig("T7", &sig.tags.t7);
    t.append_ubig("c", &sig.c);
    t.append_ubig("B", big_b);
    t
}

/// Produces a claim on a signature this member created.
///
/// The blinding is derived deterministically from `(x', signature)` via
/// DRBG, so claiming is RNG-free and never reuses a nonce across distinct
/// statements.
pub fn claim(pk: &GroupPublicKey, key: &MemberKey, sig: &Signature) -> Claim {
    let params = &pk.params;
    let mut seed = b"shs-claim-blind".to_vec();
    seed.extend_from_slice(&key.x_prime.to_bytes_be());
    seed.extend_from_slice(&sig.tags.t6.to_bytes_be());
    seed.extend_from_slice(&sig.tags.t7.to_bytes_be());
    let mut drbg = shs_crypto::drbg::HmacDrbg::from_seed(&seed);
    let rho = proofs::sample_blind(params.blind_bits(params.lambda2), &mut drbg);
    let big_b = pk.rsa.exp_signed(&sig.tags.t7, &rho);
    let c = claim_transcript(pk, sig, &big_b).challenge(params.k);
    let s = proofs::response(&rho, &c, &key.x_prime, &pow2(params.lambda1));
    Claim { c, s }
}

/// Verifies a claim against a signature.
///
/// # Errors
///
/// [`GsigError::InvalidProof`] when the claim does not verify.
pub fn verify_claim(pk: &GroupPublicKey, sig: &Signature, claim: &Claim) -> Result<(), GsigError> {
    let params = &pk.params;
    if !proofs::response_in_range(&claim.s, params.blind_bits(params.lambda2)) {
        return Err(GsigError::InvalidProof);
    }
    // B' = T7^{s - c·2^{λ1}} · T6^c — public claim data: one vartime
    // multi-exp.
    let exp = proofs::shifted(&claim.s, &claim.c, params.lambda1);
    let big_b = pk.rsa.multi_exp_vartime(&[
        (&sig.tags.t7, &exp),
        (&sig.tags.t6, &Int::from_ubig(claim.c.clone())),
    ]);
    if claim_transcript(pk, sig, &big_b).challenge(params.k) == claim.c {
        Ok(())
    } else {
        Err(GsigError::InvalidProof)
    }
}

fn pow2(bits: u32) -> Ubig {
    let mut u = Ubig::zero();
    u.set_bit(bits);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures as test_support;
    use rand::SeedableRng;

    #[test]
    fn join_secret_drop_path_wipes_exponent() {
        // Exercises the exact routine `drop` runs; post-drop memory cannot
        // be inspected from safe code.
        let mut s = JoinSecret {
            x_prime: Ubig::from_u64(0xdead_beef),
        };
        s.wipe_in_place();
        assert!(s.x_prime.is_zero());
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(60)
    }

    #[test]
    fn join_sign_verify_roundtrip() {
        let (gm, keys) = test_support::group_with_members(2);
        let pk = gm.public_key();
        let mut r = rng();
        let sig = sign(pk, &keys[0], b"hello", SignBasis::Random, &mut r);
        verify(pk, b"hello", &sig, None).expect("valid signature");
    }

    #[test]
    fn wrong_message_rejected() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let sig = sign(pk, &keys[0], b"hello", SignBasis::Random, &mut r);
        assert_eq!(
            verify(pk, b"goodbye", &sig, None),
            Err(GsigError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_tags_rejected() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let mut sig = sign(pk, &keys[0], b"m", SignBasis::Random, &mut r);
        sig.tags.t4 = pk.rsa().random_qr(&mut r);
        assert!(verify(pk, b"m", &sig, None).is_err());
    }

    #[test]
    fn open_identifies_signer_with_proof() {
        let (gm, keys) = test_support::group_with_members(3);
        let pk = gm.public_key();
        let mut r = rng();
        for key in &keys {
            let sig = sign(pk, key, b"trace me", SignBasis::Random, &mut r);
            let opening = gm.open(b"trace me", &sig).expect("open");
            assert_eq!(opening.id, key.id);
            verify_opening(pk, &sig, &opening).expect("opening proof verifies");
        }
    }

    #[test]
    fn opening_proof_does_not_transfer() {
        let (gm, keys) = test_support::group_with_members(2);
        let pk = gm.public_key();
        let mut r = rng();
        let sig_a = sign(pk, &keys[0], b"m", SignBasis::Random, &mut r);
        let sig_b = sign(pk, &keys[1], b"m", SignBasis::Random, &mut r);
        let open_a = gm.open(b"m", &sig_a).unwrap();
        // The proof for sig_a must not verify against sig_b.
        assert!(verify_opening(pk, &sig_b, &open_a).is_err());
    }

    #[test]
    fn vlr_revocation_blocks_member() {
        let (mut gm, keys) = test_support::group_with_members_mut(2);
        let pk_params = gm.public_key().to_params();
        let pk = GroupPublicKey::from_params(pk_params);
        let mut r = rng();
        let sig0 = sign(&pk, &keys[0], b"m", SignBasis::Random, &mut r);
        let sig1 = sign(&pk, &keys[1], b"m", SignBasis::Random, &mut r);
        let token = gm.revoke(keys[0].id).unwrap();
        // Revoked member's signature is rejected; the other's passes.
        assert_eq!(
            verify_with_tokens(&pk, b"m", &sig0, None, std::slice::from_ref(&token)),
            Err(GsigError::RevokedMember)
        );
        verify_with_tokens(&pk, b"m", &sig1, None, std::slice::from_ref(&token))
            .expect("not revoked");
        // Fresh signatures from the revoked key are also caught (VLR works
        // on future signatures, not just past ones).
        let sig0b = sign(&pk, &keys[0], b"m2", SignBasis::Random, &mut r);
        assert_eq!(
            verify_with_tokens(&pk, b"m2", &sig0b, None, &[token]),
            Err(GsigError::RevokedMember)
        );
    }

    #[test]
    fn self_distinction_same_member_same_t6() {
        let (gm, keys) = test_support::group_with_members(2);
        let pk = gm.public_key();
        let mut r = rng();
        let basis = b"session-transcript-bytes";
        let s1 = sign(pk, &keys[0], b"m1", SignBasis::Common(basis), &mut r);
        let s2 = sign(pk, &keys[0], b"m2", SignBasis::Common(basis), &mut r);
        let s3 = sign(pk, &keys[1], b"m3", SignBasis::Common(basis), &mut r);
        // Same member, same basis => same T6 (duplicate detected).
        assert_eq!(s1.tags.t6, s2.tags.t6);
        // Distinct members => distinct T6.
        assert_ne!(s1.tags.t6, s3.tags.t6);
        // All verify against the common T7.
        let t7 = pk.common_t7(basis);
        verify(pk, b"m1", &s1, Some(&t7)).unwrap();
        verify(pk, b"m3", &s3, Some(&t7)).unwrap();
        // A random-basis signature fails the common-T7 check.
        let s4 = sign(pk, &keys[0], b"m4", SignBasis::Random, &mut r);
        assert!(verify(pk, b"m4", &s4, Some(&t7)).is_err());
    }

    #[test]
    fn self_distinction_unlinkable_across_sessions() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let s1 = sign(pk, &keys[0], b"m", SignBasis::Common(b"session-1"), &mut r);
        let s2 = sign(pk, &keys[0], b"m", SignBasis::Common(b"session-2"), &mut r);
        // Different sessions use different T7, so T6 differs too.
        assert_ne!(s1.tags.t6, s2.tags.t6);
    }

    #[test]
    fn signatures_are_randomized() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let s1 = sign(pk, &keys[0], b"m", SignBasis::Random, &mut r);
        let s2 = sign(pk, &keys[0], b"m", SignBasis::Random, &mut r);
        assert_ne!(s1.tags.t1, s2.tags.t1, "T1 blinding must differ");
        assert_ne!(
            s1.tags.t4, s2.tags.t4,
            "T4 tag must differ across signatures"
        );
    }

    #[test]
    fn bad_join_pok_rejected() {
        let (mut gm, _keys) = test_support::group_with_members_mut(1);
        let pk_params = gm.public_key().to_params();
        let pk = GroupPublicKey::from_params(pk_params);
        let mut r = rng();
        let (_secret, mut req) = start_join(&pk, &mut r);
        req.commitment = pk.rsa().random_qr(&mut r); // break the proof
        assert_eq!(gm.admit(&req, &mut r).err(), Some(GsigError::JoinRejected));
    }

    #[test]
    fn serde_roundtrip() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let sig = sign(pk, &keys[0], b"serialize", SignBasis::Random, &mut r);
        let json = serde_json_like(&sig);
        assert!(!json.is_empty());
        // Public key params roundtrip.
        let params = pk.to_params();
        let rebuilt = GroupPublicKey::from_params(params.clone());
        assert_eq!(rebuilt.to_params(), params);
        verify(&rebuilt, b"serialize", &sig, None).unwrap();
    }

    /// Minimal serialization smoke check without pulling in serde_json.
    fn serde_json_like(sig: &Signature) -> Vec<u8> {
        // bincode-style: use serde's Debug-ish surrogate via postcard?
        // Neither is a dependency; a Debug format suffices as a smoke test
        // that all fields are reachable.
        format!("{sig:?}").into_bytes()
    }

    #[test]
    fn claims_verify_for_the_signer_only() {
        let (gm, keys) = test_support::group_with_members(2);
        let pk = gm.public_key();
        let mut r = rng();
        let sig = sign(pk, &keys[0], b"claimable", SignBasis::Random, &mut r);
        // The signer can claim it.
        let claim_0 = claim(pk, &keys[0], &sig);
        verify_claim(pk, &sig, &claim_0).expect("signer's claim verifies");
        // Another member's claim on the same signature fails.
        let claim_1 = claim(pk, &keys[1], &sig);
        assert_eq!(
            verify_claim(pk, &sig, &claim_1),
            Err(GsigError::InvalidProof)
        );
    }

    #[test]
    fn claims_do_not_transfer_between_signatures() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let sig_a = sign(pk, &keys[0], b"a", SignBasis::Random, &mut r);
        let sig_b = sign(pk, &keys[0], b"b", SignBasis::Random, &mut r);
        let claim_a = claim(pk, &keys[0], &sig_a);
        verify_claim(pk, &sig_a, &claim_a).unwrap();
        // The same claim replayed against a different signature (different
        // T6/T7 pair) fails.
        assert!(verify_claim(pk, &sig_b, &claim_a).is_err());
    }

    #[test]
    fn tampered_claim_rejected() {
        let (gm, keys) = test_support::group_with_members(1);
        let pk = gm.public_key();
        let mut r = rng();
        let sig = sign(pk, &keys[0], b"m", SignBasis::Random, &mut r);
        let mut cl = claim(pk, &keys[0], &sig);
        cl.s = cl.s.add(&Int::from_i64(1));
        assert!(verify_claim(pk, &sig, &cl).is_err());
    }

    #[test]
    fn per_member_tracing_token_finds_only_that_member() {
        // The user-tracing feature of KY (App. H): whoever holds a
        // member's trapdoor x can test signatures for that member —
        // without being able to open anyone else's.
        let (mut gm, keys) = test_support::group_with_members_mut(2);
        let pk = GroupPublicKey::from_params(gm.public_key().to_params());
        let mut r = rng();
        let sig_0 = sign(&pk, &keys[0], b"m", SignBasis::Random, &mut r);
        let sig_1 = sign(&pk, &keys[1], b"m", SignBasis::Random, &mut r);
        // GM delegates tracing of member 0 by releasing its token.
        let token = gm.revoke(keys[0].id).unwrap();
        assert!(token.matches(&pk, &sig_0));
        assert!(!token.matches(&pk, &sig_1));
    }
}
