//! Group signatures for the GCD secret-handshake framework.
//!
//! This crate implements the paper's GSIG building block (§4) from scratch:
//!
//! * [`ky`] — the Kiayias–Yung traceable-signature scheme sketched in the
//!   paper's Appendix H (`T1..T7` tags), including the **self-distinction**
//!   variant of §8.2 (common hashed `T7`) and verifier-local revocation via
//!   the member-only CRL.
//! * [`acjt`] — the classic ACJT2000 coalition-resistant group signature
//!   (the basis cited for instantiation §8.1), with full-anonymity but no
//!   signature-level revocation (see DESIGN.md §2.2 for the trade-off this
//!   reproduces).
//! * [`batch`] — random-linear-combination batch verification shared by
//!   both schemes (`verify_batch` + bisection fallback), amortizing the
//!   public-data verify equations across k signatures.
//! * [`crl`] — the versioned certificate-revocation list distributed to
//!   members inside encrypted CGKD updates.
//! * [`accumulator`] — a Camenisch–Lysyanskaya dynamic accumulator, the
//!   revocation substrate the paper cites as "quite expensive" \[12\];
//!   benchmarked in the revocation ablation.
//! * [`params`], [`proofs`] — interval parameters and Fiat–Shamir
//!   machinery shared by the schemes.
//! * [`fixtures`] — deterministic test/bench fixtures (cached RSA
//!   settings and pre-admitted members).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod acjt;
pub mod batch;
pub mod crl;
pub mod fixtures;
pub mod ky;
pub mod params;
pub mod proofs;
mod tables;

/// Errors produced by the group-signature schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsigError {
    /// A signature failed verification.
    InvalidSignature,
    /// A zero-knowledge proof (join PoK, opening proof) failed.
    InvalidProof,
    /// A valid signature was produced by a revoked member (VLR check).
    RevokedMember,
    /// `Open` recovered a certificate matching no registered member.
    UnknownSigner,
    /// The interactive join protocol was aborted.
    JoinRejected,
}

impl std::fmt::Display for GsigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GsigError::InvalidSignature => write!(f, "group signature failed verification"),
            GsigError::InvalidProof => write!(f, "zero-knowledge proof failed verification"),
            GsigError::RevokedMember => write!(f, "signature matches a revoked member's token"),
            GsigError::UnknownSigner => write!(f, "opened certificate matches no member"),
            GsigError::JoinRejected => write!(f, "join protocol rejected"),
        }
    }
}

impl std::error::Error for GsigError {}
