//! Interval parameters for the ACJT / Kiayias–Yung signature proofs.
//!
//! Both schemes prove knowledge of secrets lying in "spheres":
//! `Λ = (2^{λ1} − 2^{λ2}, 2^{λ1} + 2^{λ2})` for membership secrets and
//! `Γ = (2^{γ1} − 2^{γ2}, 2^{γ1} + 2^{γ2})` for the certificate primes,
//! with the ACJT constraint system
//!
//! ```text
//! λ1 > ε(λ2 + k) + 2,   λ2 > 4ℓp,   γ1 > ε(γ2 + k) + 2,   γ2 > λ1 + 2
//! ```
//!
//! where `ℓp` is the bit-length of the Sophie Germain primes `p', q'`, `k`
//! the challenge length and `ε > 1` the knowledge-error slack (here the
//! rational `9/8`). The `Test` preset relaxes `λ2 > 4ℓp` to `λ2 > 2ℓp`
//! (documented in DESIGN.md §2.3) to keep CI fast; `Small` and `Paper` are
//! strict.

use rand::RngCore;
use serde::{Deserialize, Serialize};
use shs_bigint::{prime, rng as brng, Ubig};

/// The `ε` slack as a rational: `ceil(bits * 9 / 8)`.
fn eps(bits: u32) -> u32 {
    (bits * 9).div_ceil(8)
}

/// Derived interval parameters for one signature setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GsigParams {
    /// Bit length of the RSA modulus `n`.
    pub modulus_bits: u32,
    /// Bit length of the Sophie Germain primes `p'`, `q'`.
    pub lp: u32,
    /// Challenge length in bits.
    pub k: u32,
    /// Sphere center exponent for membership secrets (`Λ`).
    pub lambda1: u32,
    /// Sphere radius exponent for membership secrets.
    pub lambda2: u32,
    /// Sphere center exponent for certificate primes (`Γ`).
    pub gamma1: u32,
    /// Sphere radius exponent for certificate primes.
    pub gamma2: u32,
}

/// Size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GsigPreset {
    /// 256-bit modulus, 80-bit challenges, relaxed `λ2` — for tests.
    Test,
    /// 768-bit modulus, 128-bit challenges, strict constraints.
    Small,
    /// 2048-bit modulus, 160-bit challenges, strict constraints — the
    /// sizes the ACJT/KY papers recommend.
    Paper,
}

impl GsigParams {
    /// Builds the parameter set for a preset.
    pub fn preset(preset: GsigPreset) -> GsigParams {
        match preset {
            GsigPreset::Test => GsigParams::derive(256, 80, false),
            GsigPreset::Small => GsigParams::derive(768, 128, true),
            GsigPreset::Paper => GsigParams::derive(2048, 160, true),
        }
    }

    /// Derives a consistent parameter set from the modulus size and
    /// challenge length. `strict` selects the full ACJT constraint
    /// `λ2 > 4ℓp` (vs. the relaxed `λ2 > 2ℓp` for tests).
    pub fn derive(modulus_bits: u32, k: u32, strict: bool) -> GsigParams {
        let lp = modulus_bits / 2 - 1;
        let lambda2 = if strict { 4 * lp + 4 } else { 2 * lp + 16 };
        let lambda1 = eps(lambda2 + k) + 4;
        let gamma2 = lambda1 + 4;
        let gamma1 = eps(gamma2 + k) + 4;
        let p = GsigParams {
            modulus_bits,
            lp,
            k,
            lambda1,
            lambda2,
            gamma1,
            gamma2,
        };
        debug_assert!(p.validate(), "derived parameters must satisfy constraints");
        p
    }

    /// Checks the ACJT constraint system (with the relaxed `λ2` bound).
    pub fn validate(&self) -> bool {
        self.lambda1 > eps(self.lambda2 + self.k) + 2
            && self.lambda2 > 2 * self.lp
            && self.gamma1 > eps(self.gamma2 + self.k) + 2
            && self.gamma2 > self.lambda1 + 2
            && self.k >= 32
    }

    /// Lower bound of the membership-secret sphere `Λ`.
    pub fn lambda_lo(&self) -> Ubig {
        pow2(self.lambda1).sub(&pow2(self.lambda2))
    }

    /// Upper bound (exclusive) of `Λ`.
    pub fn lambda_hi(&self) -> Ubig {
        pow2(self.lambda1).add(&pow2(self.lambda2))
    }

    /// Lower bound of the certificate-prime sphere `Γ`.
    pub fn gamma_lo(&self) -> Ubig {
        pow2(self.gamma1).sub(&pow2(self.gamma2))
    }

    /// Upper bound (exclusive) of `Γ`.
    pub fn gamma_hi(&self) -> Ubig {
        pow2(self.gamma1).add(&pow2(self.gamma2))
    }

    /// Samples a membership secret `x ∈ Λ`.
    pub fn sample_lambda(&self, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        brng::range(rng, &self.lambda_lo(), &self.lambda_hi())
    }

    /// Samples a certificate prime `e ∈ Γ`.
    pub fn sample_gamma_prime(&self, rng: &mut (impl RngCore + ?Sized)) -> Ubig {
        prime::gen_prime_in_range(&self.gamma_lo(), &self.gamma_hi(), rng)
    }

    /// Is `x ∈ Λ`?
    pub fn in_lambda(&self, x: &Ubig) -> bool {
        *x > self.lambda_lo() && *x < self.lambda_hi()
    }

    /// Is `e ∈ Γ`?
    pub fn in_gamma(&self, e: &Ubig) -> bool {
        *e > self.gamma_lo() && *e < self.gamma_hi()
    }

    /// Bit size of the blinding exponents `r` used in `T1 = A y^r` etc.
    /// (`2ℓp`, matching the order `p'q' ≈ 2^{2ℓp}`).
    pub fn r_bits(&self) -> u32 {
        2 * self.lp
    }

    /// Bit bound for the product secret `h' = e·r`
    /// (`e < 2^{γ1+1}`, `r < 2^{2ℓp}`).
    pub fn h_bits(&self) -> u32 {
        self.gamma1 + 1 + self.r_bits()
    }

    /// Blind size (bits) for a secret of `secret_bits` effective width.
    pub fn blind_bits(&self, secret_bits: u32) -> u32 {
        eps(secret_bits + self.k)
    }
}

fn pow2(bits: u32) -> Ubig {
    let mut u = Ubig::zero();
    u.set_bit(bits);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn presets_validate() {
        for preset in [GsigPreset::Test, GsigPreset::Small, GsigPreset::Paper] {
            let p = GsigParams::preset(preset);
            assert!(p.validate(), "{preset:?}");
        }
    }

    #[test]
    fn strict_presets_satisfy_full_acjt_bound() {
        for preset in [GsigPreset::Small, GsigPreset::Paper] {
            let p = GsigParams::preset(preset);
            assert!(p.lambda2 > 4 * p.lp, "{preset:?}");
        }
    }

    #[test]
    fn sphere_ordering() {
        let p = GsigParams::preset(GsigPreset::Test);
        assert!(p.lambda_lo() < p.lambda_hi());
        assert!(p.gamma_lo() < p.gamma_hi());
        // Γ sits strictly above Λ: e > x always.
        assert!(p.gamma_lo() > p.lambda_hi());
    }

    #[test]
    fn sampling_lands_in_spheres() {
        let p = GsigParams::preset(GsigPreset::Test);
        let mut rng = rand::rngs::StdRng::seed_from_u64(40);
        for _ in 0..10 {
            let x = p.sample_lambda(&mut rng);
            assert!(p.in_lambda(&x));
        }
        let e = p.sample_gamma_prime(&mut rng);
        assert!(p.in_gamma(&e));
        assert!(e.is_odd());
    }

    #[test]
    fn membership_checks_reject_outsiders() {
        let p = GsigParams::preset(GsigPreset::Test);
        assert!(!p.in_lambda(&Ubig::one()));
        assert!(!p.in_lambda(&p.lambda_hi()));
        assert!(!p.in_gamma(&p.lambda_lo()));
    }
}
