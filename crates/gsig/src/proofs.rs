//! Fiat–Shamir plumbing shared by the ACJT and Kiayias–Yung proofs:
//! domain-separated transcript hashing, blind sampling, responses over `Z`
//! and interval (sphere) checks.

use rand::RngCore;
use shs_bigint::{rng as brng, Int, Sign, Ubig};
use shs_crypto::sha256::Sha256;

/// A Fiat–Shamir transcript: every absorbed item is length- and
/// label-prefixed so distinct structures can never collide.
#[derive(Clone)]
pub struct Transcript {
    hasher: Sha256,
}

impl Transcript {
    /// Starts a transcript under a protocol domain label.
    pub fn new(domain: &str) -> Transcript {
        let mut hasher = Sha256::new();
        hasher.update(b"shs-fs-v1");
        hasher.update(&(domain.len() as u64).to_be_bytes());
        hasher.update(domain.as_bytes());
        Transcript { hasher }
    }

    /// Absorbs labelled bytes.
    pub fn append(&mut self, label: &str, data: &[u8]) {
        self.hasher.update(&(label.len() as u64).to_be_bytes());
        self.hasher.update(label.as_bytes());
        self.hasher.update(&(data.len() as u64).to_be_bytes());
        self.hasher.update(data);
    }

    /// Absorbs a labelled big integer.
    pub fn append_ubig(&mut self, label: &str, v: &Ubig) {
        self.append(label, &v.to_bytes_be());
    }

    /// Absorbs a labelled signed integer.
    pub fn append_int(&mut self, label: &str, v: &Int) {
        let sign: &[u8] = if v.is_negative() { b"-" } else { b"+" };
        self.hasher.update(sign);
        self.append(label, &v.magnitude().to_bytes_be());
    }

    /// Produces a `k_bits`-bit challenge (consuming the transcript).
    ///
    /// # Panics
    ///
    /// Panics if `k_bits > 256` (one SHA-256 output).
    pub fn challenge(self, k_bits: u32) -> Ubig {
        assert!(k_bits <= 256, "challenge longer than one hash output");
        let digest = self.hasher.finalize();
        let full = Ubig::from_bytes_be(&digest);
        // Keep the low k bits.
        let excess = 256u32.saturating_sub(k_bits);
        full.shr(excess)
    }
}

/// Samples a blind uniformly from `±[0, 2^bits)`.
pub fn sample_blind(bits: u32, rng: &mut (impl RngCore + ?Sized)) -> Int {
    let mag = brng::below(rng, &pow2(bits));
    let sign = if rng.next_u32() & 1 == 1 {
        Sign::Minus
    } else {
        Sign::Plus
    };
    Int::new(sign, mag)
}

/// Computes the Fiat–Shamir response `s = ρ − c·(v − offset)` over `Z`.
///
/// `offset` is the sphere center (`2^{λ1}`, `2^{γ1}`, or zero).
pub fn response(rho: &Int, c: &Ubig, v: &Ubig, offset: &Ubig) -> Int {
    let v_hat = Int::from_ubig(v.clone()).sub(&Int::from_ubig(offset.clone()));
    rho.sub(&Int::from_ubig(c.clone()).mul(&v_hat))
}

/// Range check on a response: `|s| ≤ 2^{bits+1}` for a blind of `bits`
/// bits.
pub fn response_in_range(s: &Int, blind_bits: u32) -> bool {
    s.magnitude().bits() <= blind_bits + 1
}

/// `s - c·2^offset_bits` as a signed exponent (the recurring verification
/// exponent shape).
pub fn shifted(s: &Int, c: &Ubig, offset_bits: u32) -> Int {
    if offset_bits == 0 {
        return s.clone();
    }
    s.sub(&Int::from_ubig(c.mul(&pow2(offset_bits))))
}

fn pow2(bits: u32) -> Ubig {
    let mut u = Ubig::zero();
    u.set_bit(bits);
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn transcript_is_deterministic_and_labelled() {
        let mut a = Transcript::new("test");
        a.append("x", b"123");
        let mut b = Transcript::new("test");
        b.append("x", b"123");
        assert_eq!(a.challenge(128), b.challenge(128));

        // Different label, same data -> different challenge.
        let mut c = Transcript::new("test");
        c.append("y", b"123");
        let mut d = Transcript::new("test");
        d.append("x", b"123");
        assert_ne!(c.challenge(128), d.challenge(128));

        // Data moved across boundary -> different challenge.
        let mut e = Transcript::new("test");
        e.append("x", b"12");
        e.append("x", b"3");
        let mut f = Transcript::new("test");
        f.append("x", b"123");
        f.append("x", b"");
        assert_ne!(e.challenge(128), f.challenge(128));
    }

    #[test]
    fn challenge_has_bounded_bits() {
        let mut t = Transcript::new("bits");
        t.append("a", b"b");
        let c = t.challenge(80);
        assert!(c.bits() <= 80);
    }

    #[test]
    fn signed_ints_distinguished() {
        let mut a = Transcript::new("int");
        a.append_int("v", &Int::from_i64(-5));
        let mut b = Transcript::new("int");
        b.append_int("v", &Int::from_i64(5));
        assert_ne!(a.challenge(128), b.challenge(128));
    }

    #[test]
    fn response_algebra() {
        // s + c·(v - offset) == rho
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let rho = sample_blind(100, &mut rng);
        let c = Ubig::from_u64(12345);
        let v = Ubig::from_u64(1 << 20);
        let offset = Ubig::from_u64(1 << 19);
        let s = response(&rho, &c, &v, &offset);
        let v_hat = Int::from_ubig(v).sub(&Int::from_ubig(offset));
        let back = s.add(&Int::from_ubig(c).mul(&v_hat));
        assert_eq!(back, rho);
    }

    #[test]
    fn blind_sampling_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let mut saw_negative = false;
        for _ in 0..50 {
            let b = sample_blind(64, &mut rng);
            assert!(b.magnitude().bits() <= 64);
            saw_negative |= b.is_negative();
        }
        assert!(saw_negative, "sign bit should vary");
    }

    #[test]
    fn range_check() {
        assert!(response_in_range(&Int::from_i64(-100), 6));
        assert!(!response_in_range(&Int::from_i64(-1000), 6));
    }
}
