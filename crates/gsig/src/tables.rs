//! Lazily-built fixed-base exponentiation tables for the schemes'
//! long-lived public bases (`a, a0, b, g, h, y`).
//!
//! Signing exponentiates these bases with *secret* exponents dozens of
//! times per session; a [`FixedBase`] table removes every squaring from
//! those calls while keeping the masked constant-trace scan. Tables live
//! inside the public key (built on first use, shared by clones) so every
//! signature after the first reuses them.

use shs_bigint::{FixedBase, Int, Ubig};
use shs_groups::rsa::RsaGroup;
use std::sync::{Arc, OnceLock};

/// A pair of fixed-base tables for one public base: one for the base
/// itself and one for its inverse (signed blinds exponentiate both ways).
/// Each side is built on first use and shared by clones of the holder.
#[derive(Debug, Clone, Default)]
pub(crate) struct FixedBasePair {
    fwd: OnceLock<Arc<FixedBase>>,
    inv: OnceLock<Arc<FixedBase>>,
}

impl FixedBasePair {
    /// `base^e mod n` for a non-negative exponent, through the table.
    /// Counts one modular exponentiation (parity with [`RsaGroup::exp`]).
    pub(crate) fn pow(&self, rsa: &RsaGroup, base: &Ubig, e: &Ubig, max_bits: u32) -> Ubig {
        shs_bigint::counters::record_modexp();
        self.fwd(rsa, base, max_bits).pow(e)
    }

    /// `base^e mod n` for a signed exponent: negative exponents go through
    /// the inverse-base table, mirroring [`RsaGroup::exp_signed`]. Counts
    /// one modular exponentiation.
    ///
    /// # Panics
    ///
    /// Panics if the base is not invertible (probability `~ 1/p'` —
    /// finding such a base factors `n`).
    pub(crate) fn pow_signed(&self, rsa: &RsaGroup, base: &Ubig, e: &Int, max_bits: u32) -> Ubig {
        shs_bigint::counters::record_modexp();
        if e.is_negative() {
            let fb = self.inv.get_or_init(|| {
                let inv = base
                    .modinv(rsa.n())
                    .expect("non-invertible base would factor n");
                Arc::new(FixedBase::new(Arc::clone(rsa.ctx()), &inv, max_bits))
            });
            fb.pow(e.magnitude())
        } else {
            self.fwd(rsa, base, max_bits).pow(e.magnitude())
        }
    }

    fn fwd(&self, rsa: &RsaGroup, base: &Ubig, max_bits: u32) -> &Arc<FixedBase> {
        self.fwd
            .get_or_init(|| Arc::new(FixedBase::new(Arc::clone(rsa.ctx()), base, max_bits)))
    }
}
