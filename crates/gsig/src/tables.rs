//! Lazily-built fixed-base exponentiation tables for the schemes'
//! long-lived public bases (`a, a0, b, g, h, y`).
//!
//! Signing exponentiates these bases with *secret* exponents dozens of
//! times per session; a [`FixedBase`] table removes every squaring from
//! those calls while keeping the masked constant-trace scan. Tables live
//! inside the public key (built on first use, shared by clones), and the
//! underlying [`FixedBase`] values are additionally interned in a
//! process-wide cache keyed by `(n, base, max_bits)` — a public key
//! rebuilt through `from_params` (the service admits every session with
//! a fresh deserialization) reuses the tables instead of paying the
//! precompute again.
//!
//! Lock order: the cache mutex is a leaf lock — no other lock is ever
//! taken while it is held, and table construction happens outside the
//! guard (the `lock-order` lint rule watches this file).

use shs_bigint::{FixedBase, Int, Ubig};
use shs_groups::rsa::RsaGroup;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: the modulus and base pin the group element, `max_bits` the
/// table width (the same base at a wider width is a different table).
type TableKey = (Vec<u8>, Vec<u8>, u32);

/// Process-wide interning cache for [`FixedBase`] tables. Bounded: a
/// table is a few hundred KiB, and a long-lived service only ever sees a
/// handful of groups, so the bound exists purely to keep pathological
/// many-group workloads (tests, fuzzing) from accumulating without
/// limit. Eviction removes one arbitrary entry, so hot tables are not
/// collateral damage of a cold insert.
fn table_cache() -> &'static Mutex<HashMap<TableKey, Arc<FixedBase>>> {
    static CACHE: OnceLock<Mutex<HashMap<TableKey, Arc<FixedBase>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Upper bound on cached tables before an entry is evicted.
const CACHE_CAP: usize = 64;

/// Fetches (or builds and interns) the table for `base^e mod n` with
/// exponents up to `max_bits` bits.
fn shared_table(rsa: &RsaGroup, base: &Ubig, max_bits: u32) -> Arc<FixedBase> {
    let key: TableKey = (rsa.n().to_bytes_be(), base.to_bytes_be(), max_bits);
    if let Some(table) = table_cache()
        .lock()
        .expect("table cache poisoned")
        .get(&key)
    {
        return Arc::clone(table);
    }
    // Built outside the guard: a precompute is expensive at production
    // widths, and holding the leaf lock across it would stall every
    // other thread's table lookup process-wide. Two threads racing on
    // the same key cost one redundant precompute; the first insert wins
    // and the loser adopts it, preserving the interning invariant.
    let table = Arc::new(FixedBase::new(Arc::clone(rsa.ctx()), base, max_bits));
    let mut cache = table_cache().lock().expect("table cache poisoned");
    if let Some(existing) = cache.get(&key) {
        return Arc::clone(existing);
    }
    if cache.len() >= CACHE_CAP {
        if let Some(victim) = cache.keys().next().cloned() {
            cache.remove(&victim);
        }
    }
    cache.insert(key, Arc::clone(&table));
    table
}

/// A pair of fixed-base tables for one public base: one for the base
/// itself and one for its inverse (signed blinds exponentiate both ways).
/// Each side is built on first use, shared by clones of the holder, and
/// interned in the process-wide cache so rebuilt keys do not repay the
/// precompute.
#[derive(Debug, Clone, Default)]
pub(crate) struct FixedBasePair {
    fwd: OnceLock<Arc<FixedBase>>,
    inv: OnceLock<Arc<FixedBase>>,
}

impl FixedBasePair {
    /// `base^e mod n` for a non-negative exponent, through the table.
    /// Counts one modular exponentiation (parity with [`RsaGroup::exp`]).
    pub(crate) fn pow(&self, rsa: &RsaGroup, base: &Ubig, e: &Ubig, max_bits: u32) -> Ubig {
        shs_bigint::counters::record_modexp();
        self.fwd(rsa, base, max_bits).pow(e)
    }

    /// `base^e mod n` for a signed exponent: negative exponents go through
    /// the inverse-base table, mirroring [`RsaGroup::exp_signed`]. Counts
    /// one modular exponentiation.
    ///
    /// # Panics
    ///
    /// Panics if the base is not invertible (probability `~ 1/p'` —
    /// finding such a base factors `n`).
    pub(crate) fn pow_signed(&self, rsa: &RsaGroup, base: &Ubig, e: &Int, max_bits: u32) -> Ubig {
        shs_bigint::counters::record_modexp();
        if e.is_negative() {
            let fb = self.inv.get_or_init(|| {
                let inv = base
                    .modinv(rsa.n())
                    .expect("non-invertible base would factor n");
                shared_table(rsa, &inv, max_bits)
            });
            fb.pow(e.magnitude())
        } else {
            self.fwd(rsa, base, max_bits).pow(e.magnitude())
        }
    }

    fn fwd(&self, rsa: &RsaGroup, base: &Ubig, max_bits: u32) -> &Arc<FixedBase> {
        self.fwd.get_or_init(|| shared_table(rsa, base, max_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn rebuilt_pairs_share_one_interned_table() {
        let (rsa, _) = fixtures::test_rsa_setting().clone();
        let base = rsa.hash_to_qr(b"intern-test-base");
        let a = FixedBasePair::default();
        let b = FixedBasePair::default();
        let e = Ubig::from_u64(0x1234_5678);
        assert_eq!(a.pow(&rsa, &base, &e, 64), b.pow(&rsa, &base, &e, 64));
        // Distinct OnceLocks, same interned table underneath.
        assert!(Arc::ptr_eq(
            a.fwd.get().expect("built"),
            b.fwd.get().expect("built")
        ));
    }
}
