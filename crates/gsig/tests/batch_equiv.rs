//! Property equivalence: `verify_batch` agrees with per-signature
//! `verify` for ACJT and KY — including planted corruptions (bisection
//! isolates exactly the bad indices), order-2 sign-malleated
//! commitments (the `Z_n^*` soundness trap the QR(n) comparison
//! closes), empty batches and batch-size-1 degeneration.

use proptest::prelude::*;
use shs_bigint::Int;
use shs_crypto::drbg::HmacDrbg;
use shs_gsig::batch::BatchOutcome;
use shs_gsig::params::{GsigParams, GsigPreset};
use shs_gsig::{acjt, fixtures, ky};
use std::sync::OnceLock;

/// What to do to entry `i` of the batch after signing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Tamper {
    /// Leave it valid.
    Valid,
    /// Bump a response: the challenge binding `(m, T, B)` still holds,
    /// so only the combined group equations can catch it — this is the
    /// corruption that exercises the RLC + bisection path.
    Response,
    /// Swap the message: caught by the individual challenge precheck,
    /// never reaching the combination.
    Message,
    /// Sign with one commitment negated (`B ← n − B`, the order-2 twist
    /// by `n − 1 ∈ Z_n^*`), with `c` and the responses re-derived from
    /// the signing randomness against the negated vector. The equations
    /// then hold only up to sign; both verifiers compare in `QR(n)` and
    /// must *agree* (they accept — signer-only sign-malleability). With
    /// the combination run naively in `Z_n^*`, the batch check deviated
    /// by `(−1)^z` and accepted for exactly half the coefficient draws
    /// while per-signature `verify` rejected — the soundness gap this
    /// variant pins down.
    Negate,
}

fn tamper_strategy() -> impl Strategy<Value = Tamper> {
    prop_oneof![
        3 => Just(Tamper::Valid),
        1 => Just(Tamper::Response),
        1 => Just(Tamper::Message),
        1 => Just(Tamper::Negate),
    ]
}

fn acjt_group() -> &'static (acjt::GroupManager, Vec<acjt::MemberKey>) {
    static GROUP: OnceLock<(acjt::GroupManager, Vec<acjt::MemberKey>)> = OnceLock::new();
    GROUP.get_or_init(|| {
        let (rsa, rsa_secret) = fixtures::test_rsa_setting().clone();
        let params = GsigParams::preset(GsigPreset::Test);
        let mut rng = HmacDrbg::from_seed(b"batch-equiv-acjt");
        let mut gm = acjt::GroupManager::setup_with_rsa(params, rsa, rsa_secret, &mut rng);
        let mut keys = Vec::new();
        for _ in 0..3 {
            let (secret, req) = acjt::start_join(gm.public_key(), &mut rng);
            let resp = gm.admit(&req, &mut rng).unwrap();
            keys.push(acjt::finish_join(gm.public_key(), secret, &resp).unwrap());
        }
        (gm, keys)
    })
}

fn bump_int(v: &Int) -> Int {
    v.add(&Int::from_i64(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn acjt_batch_matches_sequential(
        tampers in prop::collection::vec(tamper_strategy(), 0..6),
        seed in any::<u64>(),
    ) {
        let (gm, keys) = acjt_group();
        let pk = gm.public_key();
        let mut rng = HmacDrbg::from_seed(&seed.to_be_bytes());
        let mut msgs: Vec<Vec<u8>> = Vec::new();
        let mut sigs: Vec<acjt::Signature> = Vec::new();
        for (i, tamper) in tampers.iter().enumerate() {
            let msg = format!("acjt-batch-{seed}-{i}").into_bytes();
            let key = &keys[i % keys.len()];
            let mut sig = match tamper {
                Tamper::Negate => acjt::sign_negated(pk, key, &msg, i % 4, &mut rng),
                _ => acjt::sign(pk, key, &msg, &mut rng),
            };
            let mut msg = msg;
            match tamper {
                Tamper::Valid | Tamper::Negate => {}
                Tamper::Response => sig.s_w = bump_int(&sig.s_w),
                Tamper::Message => msg.push(0xff),
            }
            msgs.push(msg);
            sigs.push(sig);
        }
        let items: Vec<(&[u8], &acjt::Signature)> = msgs
            .iter()
            .map(Vec::as_slice)
            .zip(sigs.iter())
            .collect();
        let outcome = acjt::verify_batch(pk, &items);
        let expected: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (m, s))| acjt::verify(pk, m, s).is_err())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(outcome.invalid(), &expected[..]);
        prop_assert_eq!(outcome.all_valid(), expected.is_empty());
    }

    #[test]
    fn ky_batch_matches_sequential(
        tampers in prop::collection::vec(tamper_strategy(), 0..6),
        seed in any::<u64>(),
    ) {
        let (gm, keys) = fixtures::group_with_members(3);
        let pk = gm.public_key();
        let mut rng = HmacDrbg::from_seed(&seed.to_be_bytes());
        let mut msgs: Vec<Vec<u8>> = Vec::new();
        let mut sigs: Vec<ky::Signature> = Vec::new();
        for (i, tamper) in tampers.iter().enumerate() {
            let msg = format!("ky-batch-{seed}-{i}").into_bytes();
            let key = &keys[i % keys.len()];
            let mut sig = match tamper {
                Tamper::Negate => {
                    ky::sign_negated(pk, key, &msg, ky::SignBasis::Random, i % 6, &mut rng)
                }
                _ => ky::sign(pk, key, &msg, ky::SignBasis::Random, &mut rng),
            };
            let mut msg = msg;
            match tamper {
                Tamper::Valid | Tamper::Negate => {}
                Tamper::Response => sig.s_r = bump_int(&sig.s_r),
                Tamper::Message => msg.push(0xff),
            }
            msgs.push(msg);
            sigs.push(sig);
        }
        let items: Vec<(&[u8], &ky::Signature)> = msgs
            .iter()
            .map(Vec::as_slice)
            .zip(sigs.iter())
            .collect();
        let outcome = ky::verify_batch(pk, &items, None);
        let expected: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, (m, s))| ky::verify(pk, m, s, None).is_err())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(outcome.invalid(), &expected[..]);
        prop_assert_eq!(outcome.all_valid(), expected.is_empty());
    }
}

#[test]
fn empty_batch_is_all_valid() {
    let (gm, _) = fixtures::group_with_members(1);
    assert_eq!(
        ky::verify_batch(gm.public_key(), &[], None),
        BatchOutcome::AllValid
    );
    let (gm, _) = acjt_group();
    assert_eq!(
        acjt::verify_batch(gm.public_key(), &[]),
        BatchOutcome::AllValid
    );
}

#[test]
fn batch_of_one_degenerates_to_verify() {
    let (gm, keys) = fixtures::group_with_members(1);
    let pk = gm.public_key();
    let mut rng = HmacDrbg::from_seed(b"batch-of-one");
    let msg = b"lone signature".to_vec();
    let sig = ky::sign(pk, &keys[0], &msg, ky::SignBasis::Random, &mut rng);
    assert_eq!(
        ky::verify_batch(pk, &[(&msg, &sig)], None),
        BatchOutcome::AllValid
    );
    let mut bad = sig.clone();
    bad.s_r = bump_int(&bad.s_r);
    assert_eq!(
        ky::verify_batch(pk, &[(&msg, &bad)], None),
        BatchOutcome::Invalid(vec![0])
    );
}

#[test]
fn bisection_isolates_single_corruption_in_large_batch() {
    let (gm, keys) = fixtures::group_with_members(3);
    let pk = gm.public_key();
    let mut rng = HmacDrbg::from_seed(b"bisect-8");
    let msgs: Vec<Vec<u8>> = (0..8).map(|i| format!("bisect-{i}").into_bytes()).collect();
    let mut sigs: Vec<ky::Signature> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| {
            ky::sign(
                pk,
                &keys[i % keys.len()],
                m,
                ky::SignBasis::Random,
                &mut rng,
            )
        })
        .collect();
    // Equation-level corruption: survives precheck, so only the RLC
    // combination (and then bisection) can pin it down.
    sigs[3].s_r = bump_int(&sigs[3].s_r);
    let items: Vec<(&[u8], &ky::Signature)> =
        msgs.iter().map(Vec::as_slice).zip(sigs.iter()).collect();
    assert_eq!(
        ky::verify_batch(pk, &items, None),
        BatchOutcome::Invalid(vec![3])
    );
}

#[test]
fn negated_commitment_agrees_across_many_coefficient_draws() {
    // The combination coefficients derive from a digest of the entire
    // batch, so every distinct batch composition is a fresh draw. With
    // the combination run naively in Z_n^*, a negated commitment's
    // order-2 deviation passed the combined check for even coefficients
    // only, so batch and single verification disagreed on about half of
    // these draws. Under the QR(n) comparison they must agree on every
    // one: the sign-malleated signature verifies (cofactored
    // semantics), singleton re-draws in the bisection included, and a
    // genuinely corrupted batchmate is still isolated exactly.
    let (kgm, kkeys) = fixtures::group_with_members(2);
    let kpk = kgm.public_key();
    let (agm, akeys) = acjt_group();
    let apk = agm.public_key();
    for seed in 0u64..8 {
        let mut rng = HmacDrbg::from_seed(&seed.to_be_bytes());

        let kn_msg = format!("ky-neg-{seed}").into_bytes();
        let kn = ky::sign_negated(
            kpk,
            &kkeys[0],
            &kn_msg,
            ky::SignBasis::Random,
            (seed as usize) % 6,
            &mut rng,
        );
        ky::verify(kpk, &kn_msg, &kn, None).expect("QR(n) semantics: negated B verifies");
        assert_eq!(
            ky::verify_batch(kpk, &[(&kn_msg, &kn)], None),
            BatchOutcome::AllValid,
            "singleton draw, seed {seed}"
        );
        let ko_msg = format!("ky-ok-{seed}").into_bytes();
        let mut ko = ky::sign(kpk, &kkeys[1], &ko_msg, ky::SignBasis::Random, &mut rng);
        ko.s_r = bump_int(&ko.s_r);
        let items: Vec<(&[u8], &ky::Signature)> =
            vec![(kn_msg.as_slice(), &kn), (ko_msg.as_slice(), &ko)];
        assert_eq!(
            ky::verify_batch(kpk, &items, None),
            BatchOutcome::Invalid(vec![1]),
            "only the response corruption falls out, seed {seed}"
        );

        let an_msg = format!("acjt-neg-{seed}").into_bytes();
        let an = acjt::sign_negated(apk, &akeys[0], &an_msg, (seed as usize) % 4, &mut rng);
        acjt::verify(apk, &an_msg, &an).expect("QR(n) semantics: negated B verifies");
        assert_eq!(
            acjt::verify_batch(apk, &[(&an_msg, &an)]),
            BatchOutcome::AllValid,
            "singleton draw, seed {seed}"
        );
        let ao_msg = format!("acjt-ok-{seed}").into_bytes();
        let mut ao = acjt::sign(apk, &akeys[1], &ao_msg, &mut rng);
        ao.s_w = bump_int(&ao.s_w);
        let items: Vec<(&[u8], &acjt::Signature)> =
            vec![(an_msg.as_slice(), &an), (ao_msg.as_slice(), &ao)];
        assert_eq!(
            acjt::verify_batch(apk, &items),
            BatchOutcome::Invalid(vec![1]),
            "only the response corruption falls out, seed {seed}"
        );
    }
}

#[test]
fn common_basis_pin_applies_to_whole_batch() {
    let (gm, keys) = fixtures::group_with_members(2);
    let pk = gm.public_key();
    let mut rng = HmacDrbg::from_seed(b"pin-batch");
    let basis = b"session transcript bytes";
    let msgs: Vec<Vec<u8>> = (0..2).map(|i| format!("pin-{i}").into_bytes()).collect();
    let sigs: Vec<ky::Signature> = msgs
        .iter()
        .enumerate()
        .map(|(i, m)| ky::sign(pk, &keys[i], m, ky::SignBasis::Common(basis), &mut rng))
        .collect();
    let items: Vec<(&[u8], &ky::Signature)> =
        msgs.iter().map(Vec::as_slice).zip(sigs.iter()).collect();
    let pin = pk.common_t7(basis);
    assert_eq!(
        ky::verify_batch(pk, &items, Some(&pin)),
        BatchOutcome::AllValid
    );
    let wrong = pk.common_t7(b"some other session");
    assert_eq!(
        ky::verify_batch(pk, &items, Some(&wrong)),
        BatchOutcome::Invalid(vec![0, 1])
    );
}
