//! Committed findings baseline and CI ratchet.
//!
//! The analysis pass compares its findings against a committed
//! `lint-baseline.json` keyed by `(rule, file)` counts. The comparison is
//! strict in both directions: **new** findings fail CI (no regressions),
//! and **fewer** findings also fail until the baseline is re-written with
//! `--write-baseline` (the floor ratchets down and stays down). The
//! workspace baseline is kept at zero entries; the mechanism exists so a
//! future true-positive burn-down can land in stages without masking
//! regressions in the meantime.

use crate::report::Report;
use std::collections::BTreeMap;

/// Parsed baseline: `(rule, file)` → expected finding count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), u64>,
}

/// Outcome of a ratchet comparison.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// `(rule, file)` keys with more findings than the baseline allows.
    pub regressions: Vec<String>,
    /// Keys with fewer findings than baselined — run `--write-baseline`.
    pub improvements: Vec<String>,
}

impl BaselineDiff {
    /// Does the report match the baseline exactly?
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.improvements.is_empty()
    }
}

impl Baseline {
    /// Builds a baseline from a report's findings.
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
        for f in &report.findings {
            *counts
                .entry((f.rule.to_string(), f.file.clone()))
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Parses a committed baseline file.
    ///
    /// # Errors
    ///
    /// Returns a message for anything outside the shape `to_json` writes.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let v = json::parse(src)?;
        let entries = v
            .get("entries")
            .and_then(json::Value::as_array)
            .ok_or("lint-baseline: missing `entries` array")?;
        let mut counts = BTreeMap::new();
        for e in entries {
            let rule = e
                .get("rule")
                .and_then(json::Value::as_str)
                .ok_or("lint-baseline: entry missing `rule`")?;
            let file = e
                .get("file")
                .and_then(json::Value::as_str)
                .ok_or("lint-baseline: entry missing `file`")?;
            let count = e
                .get("count")
                .and_then(json::Value::as_u64)
                .ok_or("lint-baseline: entry missing `count`")?;
            counts.insert((rule.to_string(), file.to_string()), count);
        }
        Ok(Baseline { counts })
    }

    /// Serializes in the shape `parse` reads.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        for (i, ((rule, file), count)) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": \"{rule}\", \"file\": \"{file}\", \"count\": {count}}}"
            ));
        }
        if !self.counts.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Strict two-way comparison against a report.
    pub fn compare(&self, report: &Report) -> BaselineDiff {
        let actual = Baseline::from_report(report).counts;
        let mut diff = BaselineDiff::default();
        for (key, n) in &actual {
            let base = self.counts.get(key).copied().unwrap_or(0);
            if *n > base {
                diff.regressions.push(format!(
                    "{} in {}: {} finding(s), baseline {}",
                    key.0, key.1, n, base
                ));
            }
        }
        for (key, base) in &self.counts {
            let n = actual.get(key).copied().unwrap_or(0);
            if n < *base {
                diff.improvements.push(format!(
                    "{} in {}: {} finding(s), baseline {} — re-run with --write-baseline to ratchet down",
                    key.0, key.1, n, base
                ));
            }
        }
        diff
    }
}

/// A minimal JSON reader for the baseline file (the workspace is
/// dependency-free by policy). Supports objects, arrays, strings with
/// the escapes our writer emits, unsigned integers, and literals.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Object.
        Obj(Vec<(String, Value)>),
        /// Array.
        Arr(Vec<Value>),
        /// String.
        Str(String),
        /// Number (integer-valued).
        Num(i64),
        /// `true`/`false`.
        Bool(bool),
        /// `null`.
        Null,
    }

    impl Value {
        /// Object field lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Array view.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// String view.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Non-negative integer view.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0 => Some(*n as u64),
                _ => None,
            }
        }
    }

    /// Parses one JSON document.
    pub fn parse(src: &str) -> Result<Value, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut pos = 0;
        let v = value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("lint-baseline: trailing data at offset {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(c: &[char], pos: &mut usize) {
        while *pos < c.len() && c[*pos].is_whitespace() {
            *pos += 1;
        }
    }

    fn expect(c: &[char], pos: &mut usize, ch: char) -> Result<(), String> {
        skip_ws(c, pos);
        if c.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("lint-baseline: expected `{ch}` at offset {pos}"))
        }
    }

    fn value(c: &[char], pos: &mut usize) -> Result<Value, String> {
        skip_ws(c, pos);
        match c.get(*pos) {
            Some('{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(c, pos);
                if c.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(c, pos);
                    let key = match value(c, pos)? {
                        Value::Str(s) => s,
                        _ => return Err("lint-baseline: object key must be a string".into()),
                    };
                    expect(c, pos, ':')?;
                    fields.push((key, value(c, pos)?));
                    skip_ws(c, pos);
                    match c.get(*pos) {
                        Some(',') => *pos += 1,
                        Some('}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("lint-baseline: bad object at offset {pos}")),
                    }
                }
            }
            Some('[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(c, pos);
                if c.get(*pos) == Some(&']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(c, pos)?);
                    skip_ws(c, pos);
                    match c.get(*pos) {
                        Some(',') => *pos += 1,
                        Some(']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("lint-baseline: bad array at offset {pos}")),
                    }
                }
            }
            Some('"') => {
                *pos += 1;
                let mut s = String::new();
                while let Some(&ch) = c.get(*pos) {
                    *pos += 1;
                    match ch {
                        '"' => return Ok(Value::Str(s)),
                        '\\' => {
                            let esc = c.get(*pos).copied().ok_or("lint-baseline: bad escape")?;
                            *pos += 1;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                'r' => '\r',
                                other => other,
                            });
                        }
                        other => s.push(other),
                    }
                }
                Err("lint-baseline: unterminated string".into())
            }
            Some(d) if d.is_ascii_digit() || *d == '-' => {
                let start = *pos;
                *pos += 1;
                while c.get(*pos).is_some_and(|ch| ch.is_ascii_digit()) {
                    *pos += 1;
                }
                c[start..*pos]
                    .iter()
                    .collect::<String>()
                    .parse::<i64>()
                    .map(Value::Num)
                    .map_err(|_| "lint-baseline: bad number".into())
            }
            _ => {
                for (lit, v) in [
                    ("true", Value::Bool(true)),
                    ("false", Value::Bool(false)),
                    ("null", Value::Null),
                ] {
                    if c[*pos..].starts_with(&lit.chars().collect::<Vec<_>>()[..]) {
                        *pos += lit.len();
                        return Ok(v);
                    }
                }
                Err(format!(
                    "lint-baseline: unexpected character at offset {pos}"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Rule;
    use crate::report::Finding;

    fn report(findings: Vec<Finding>) -> Report {
        Report {
            findings,
            files_scanned: 1,
            ..Report::default()
        }
    }

    fn f(rule: Rule, file: &str) -> Finding {
        Finding::new(file, 1, 1, rule, "m".into())
    }

    #[test]
    fn roundtrip_and_exact_match() {
        let r = report(vec![
            f(Rule::SecretTaint, "a.rs"),
            f(Rule::SecretTaint, "a.rs"),
            f(Rule::LockOrder, "b.rs"),
        ]);
        let base = Baseline::from_report(&r);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
        assert!(parsed.compare(&r).ok());
    }

    #[test]
    fn new_finding_is_a_regression() {
        let base = Baseline::parse("{\"version\": 1, \"entries\": []}").unwrap();
        let diff = base.compare(&report(vec![f(Rule::SecretTaint, "a.rs")]));
        assert_eq!(diff.regressions.len(), 1);
        assert!(diff.regressions[0].contains("secret-taint"));
    }

    #[test]
    fn fixed_finding_demands_ratchet() {
        let base = Baseline::parse(
            "{\"entries\": [{\"rule\": \"lock-order\", \"file\": \"b.rs\", \"count\": 2}]}",
        )
        .unwrap();
        let diff = base.compare(&report(vec![f(Rule::LockOrder, "b.rs")]));
        assert!(diff.regressions.is_empty());
        assert_eq!(diff.improvements.len(), 1);
        assert!(diff.improvements[0].contains("--write-baseline"));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("{").is_err());
        assert!(Baseline::parse("{\"entries\": [{\"rule\": 3}]}").is_err());
        assert!(Baseline::parse("[]").is_err());
    }
}
