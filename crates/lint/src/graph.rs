//! Workspace call graph over the recovered [`crate::syntax`] layer.
//!
//! Calls resolve **by name** with two precision aids: same-file
//! definitions win over cross-file ones, and a path qualifier
//! (`codec::encode_delta`) narrows cross-file candidates to files whose
//! stem matches the qualifier (`codec.rs`). A name with several remaining
//! candidates is *ambiguous* and treated as unresolved — the analyses
//! then fall back to conservative effects rather than following a wrong
//! edge. Resolution counts feed the analyzer self-stats so parser
//! regressions stay visible (ISSUE 7).

use crate::syntax::{FileSyntax, FnDef};
use std::collections::BTreeMap;

/// Identifies one function: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// How one call site resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Unique target.
    Resolved(FnId),
    /// Several same-name candidates; not followed.
    Ambiguous,
    /// No workspace definition (external/shimmed callee).
    Unknown,
}

/// Aggregate resolution statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Total call sites considered.
    pub calls: usize,
    /// Calls with a unique workspace target.
    pub resolved: usize,
    /// Calls with several candidates (not followed).
    pub ambiguous: usize,
    /// Calls with no workspace definition.
    pub unknown: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// fn name → definitions carrying that name.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Per-(file, fn, call) resolution, same shape as the syntax layer.
    resolutions: Vec<Vec<Vec<Resolution>>>,
    /// Aggregate stats.
    pub stats: GraphStats,
}

impl CallGraph {
    /// Builds the graph and resolves every call site in `files`.
    /// Test-gated functions neither define targets nor contribute calls.
    pub fn build(files: &[FileSyntax]) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push((fi, ni));
            }
        }
        let mut graph = CallGraph {
            by_name,
            resolutions: Vec::with_capacity(files.len()),
            stats: GraphStats::default(),
        };
        for (fi, file) in files.iter().enumerate() {
            let mut file_res = Vec::with_capacity(file.fns.len());
            for f in &file.fns {
                let mut fn_res = Vec::with_capacity(f.calls.len());
                for call in &f.calls {
                    let r = if f.in_test {
                        Resolution::Unknown
                    } else {
                        graph.resolve_one(files, fi, &call.callee, call.qual.as_deref())
                    };
                    if !f.in_test {
                        graph.stats.calls += 1;
                        match r {
                            Resolution::Resolved(_) => graph.stats.resolved += 1,
                            Resolution::Ambiguous => graph.stats.ambiguous += 1,
                            Resolution::Unknown => graph.stats.unknown += 1,
                        }
                    }
                    fn_res.push(r);
                }
                file_res.push(fn_res);
            }
            graph.resolutions.push(file_res);
        }
        graph
    }

    /// The resolution of call `ci` in fn `ni` of file `fi`.
    pub fn resolution(&self, id: FnId, ci: usize) -> Resolution {
        self.resolutions[id.0][id.1][ci]
    }

    /// The resolved target, if unique.
    pub fn target(&self, id: FnId, ci: usize) -> Option<FnId> {
        match self.resolution(id, ci) {
            Resolution::Resolved(t) => Some(t),
            _ => None,
        }
    }

    /// All definitions of `name` (any file).
    pub fn defs_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn resolve_one(
        &self,
        files: &[FileSyntax],
        from_file: usize,
        callee: &str,
        qual: Option<&str>,
    ) -> Resolution {
        let Some(cands) = self.by_name.get(callee) else {
            return Resolution::Unknown;
        };
        // Same-file candidates shadow cross-file ones.
        let local: Vec<FnId> = cands.iter().copied().filter(|c| c.0 == from_file).collect();
        if local.len() == 1 {
            return Resolution::Resolved(local[0]);
        }
        if local.len() > 1 {
            return Resolution::Ambiguous;
        }
        // A `mod::fn` qualifier narrows to files whose stem matches.
        if let Some(q) = qual {
            let matched: Vec<FnId> = cands
                .iter()
                .copied()
                .filter(|c| file_stem(&files[c.0].rel) == q)
                .collect();
            if matched.len() == 1 {
                return Resolution::Resolved(matched[0]);
            }
            if matched.len() > 1 {
                return Resolution::Ambiguous;
            }
        }
        if cands.len() == 1 {
            return Resolution::Resolved(cands[0]);
        }
        Resolution::Ambiguous
    }
}

/// `crates/core/src/codec.rs` → `codec`.
fn file_stem(rel: &str) -> &str {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// Convenience: the [`FnDef`] for an id.
pub fn fn_def(files: &[FileSyntax], id: FnId) -> &FnDef {
    &files[id.0].fns[id.1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse_file;

    fn build(sources: &[(&str, &str)]) -> (Vec<FileSyntax>, CallGraph) {
        let files: Vec<FileSyntax> = sources
            .iter()
            .map(|(rel, src)| parse_file(rel, &lex(src)))
            .collect();
        let graph = CallGraph::build(&files);
        (files, graph)
    }

    #[test]
    fn same_file_wins_over_cross_file() {
        let (files, g) = build(&[
            ("a.rs", "fn helper() {}\nfn f() { helper(); }"),
            ("b.rs", "fn helper() {}"),
        ]);
        let f_id: FnId = (0, 1);
        let target = g.target(f_id, 0).expect("resolved");
        assert_eq!(target.0, 0, "same-file helper chosen");
        assert_eq!(fn_def(&files, target).name, "helper");
        assert_eq!(g.stats.resolved, 1);
    }

    #[test]
    fn qualifier_narrows_cross_file_candidates() {
        let (_, g) = build(&[
            ("main.rs", "fn f() { codec::encode(); }"),
            ("codec.rs", "pub fn encode() {}"),
            ("frame.rs", "pub fn encode() {}"),
        ]);
        let target = g.target((0, 0), 0).expect("qualifier resolves");
        assert_eq!(target.0, 1, "codec.rs chosen via qualifier");
    }

    #[test]
    fn ambiguous_and_unknown_counted() {
        let (_, g) = build(&[
            ("main.rs", "fn f() { encode(); missing(); }"),
            ("codec.rs", "pub fn encode() {}"),
            ("frame.rs", "pub fn encode() {}"),
        ]);
        assert_eq!(g.resolution((0, 0), 0), Resolution::Ambiguous);
        assert_eq!(g.resolution((0, 0), 1), Resolution::Unknown);
        assert_eq!(g.stats.ambiguous, 1);
        assert_eq!(g.stats.unknown, 1);
    }

    #[test]
    fn test_fns_are_invisible() {
        let (_, g) = build(&[
            ("a.rs", "fn f() { helper(); }"),
            ("b.rs", "#[cfg(test)]\nmod t { fn helper() {} }"),
        ]);
        assert_eq!(g.resolution((0, 0), 0), Resolution::Unknown);
    }
}
