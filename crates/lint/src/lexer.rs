//! A minimal hand-rolled Rust lexer.
//!
//! Produces just enough token structure for the secret-hygiene rules:
//! identifiers, literals, multi-character operators, and the positions of
//! everything. Comments are consumed (never tokenized), but line comments
//! carrying `lint:allow(...)` directives are extracted so the rule engine
//! can honor written-down exceptions.
//!
//! The lexer is deliberately forgiving: any byte it does not recognize
//! becomes a single-character punctuation token. Lint rules only need the
//! token *stream* to be faithful, not a full grammar.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal (prefix/suffix included verbatim).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Operator or delimiter, possibly multi-character (`==`, `::`, `{`).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim text (for `Str` the raw source slice, quotes included).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `// lint:allow(rule-a, rule-b) reason="…"` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive comment sits on.
    pub line: u32,
    /// Rule names listed inside the parentheses.
    pub rules: Vec<String>,
    /// Whether a non-empty `reason="…"` was supplied.
    pub has_reason: bool,
}

/// Output of [`lex`]: the token stream plus any allow directives found in
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Allow directives in source order.
    pub allows: Vec<AllowDirective>,
}

/// Multi-character operators, longest first so greedy matching works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into tokens and allow directives.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let n = b.len();
    while i < n {
        let c = b[i];
        let (tline, tcol) = (line, col);
        // Helper to advance one char, maintaining line/col.
        macro_rules! bump {
            () => {{
                if b[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }};
        }

        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment (and allow directives).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                bump!();
            }
            let text: String = b[start..i].iter().collect();
            if let Some(dir) = parse_allow(&text, tline) {
                out.allows.push(dir);
            }
            continue;
        }

        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            continue;
        }

        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
        if (c == 'r' || c == 'b' || c == 'c') && starts_string(&b, i) {
            let start = i;
            // Skip prefix letters.
            while i < n && (b[i] == 'r' || b[i] == 'b' || b[i] == 'c') {
                bump!();
            }
            if i < n && b[i] == '#' || (i < n && b[i] == '"' && b[start..i].contains(&'r')) {
                // Raw string: count hashes, then scan for `"#…#` closer.
                let mut hashes = 0usize;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    bump!();
                }
                if i < n && b[i] == '"' {
                    bump!();
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut j = i + 1;
                            let mut seen = 0usize;
                            while j < n && b[j] == '#' && seen < hashes {
                                seen += 1;
                                j += 1;
                            }
                            if seen == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                }
            } else if i < n && b[i] == '"' {
                // Cooked string with a b/c prefix.
                bump!();
                scan_cooked_string(&b, &mut i, &mut line, &mut col);
            } else if i < n && b[i] == '\'' {
                // Byte char literal b'x'.
                bump!();
                scan_char_body(&b, &mut i, &mut line, &mut col);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Plain string.
        if c == '"' {
            let start = i;
            bump!();
            scan_cooked_string(&b, &mut i, &mut line, &mut col);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let start = i;
            let next_ident = i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_');
            let closes = i + 2 < n && b[i + 2] == '\'';
            if next_ident && !closes {
                bump!(); // '
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            } else {
                bump!(); // '
                scan_char_body(&b, &mut i, &mut line, &mut col);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                bump!();
            }
            // Fractional part, but never consume a `..` range operator.
            if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                bump!();
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Number,
                text: b[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Multi-character operators, longest match first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let oc: Vec<char> = op.chars().collect();
            if i + oc.len() <= n && b[i..i + oc.len()] == oc[..] {
                for _ in 0..oc.len() {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line: tline,
                    col: tcol,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        // Single-character punctuation (or anything unrecognized).
        bump!();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }
    out
}

/// Does a string literal start at `i` after r/b/c prefix letters?
fn starts_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b' || b[j] == 'c') && j - i < 2 {
        j += 1;
    }
    j < b.len() && (b[j] == '"' || b[j] == '#' || (b[j] == '\'' && b[i] == 'b'))
}

/// Scans the body of a cooked (escaped) string; `i` sits just past the
/// opening quote and ends just past the closing quote.
fn scan_cooked_string(b: &[char], i: &mut usize, line: &mut u32, col: &mut u32) {
    let n = b.len();
    while *i < n {
        let c = b[*i];
        if c == '\n' {
            *line += 1;
            *col = 1;
            *i += 1;
            continue;
        }
        *col += 1;
        *i += 1;
        if c == '\\' && *i < n {
            if b[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
            continue;
        }
        if c == '"' {
            break;
        }
    }
}

/// Scans a char/byte literal body; `i` sits just past the opening quote.
fn scan_char_body(b: &[char], i: &mut usize, _line: &mut u32, col: &mut u32) {
    let n = b.len();
    if *i < n && b[*i] == '\\' {
        *i += 1;
        *col += 1;
        if *i < n {
            *i += 1;
            *col += 1;
        }
        // Multi-char escapes (\x41, \u{…}): scan to the closing quote.
        while *i < n && b[*i] != '\'' {
            *i += 1;
            *col += 1;
        }
    } else if *i < n {
        *i += 1;
        *col += 1;
    }
    if *i < n && b[*i] == '\'' {
        *i += 1;
        *col += 1;
    }
}

/// Parses a `lint:allow(...)` directive out of a line comment, if present.
/// Doc comments (`///`, `//!`) are documentation, never directives.
fn parse_allow(comment: &str, line: u32) -> Option<AllowDirective> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let at = comment.find("lint:allow")?;
    let rest = &comment[at + "lint:allow".len()..];
    let open = rest.find('(')?;
    let close = rest[open..].find(')')? + open;
    let rules: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let tail = &rest[close + 1..];
    let has_reason = match tail.find("reason=") {
        Some(r) => {
            let v = tail[r + "reason=".len()..].trim();
            v.len() > 2 && v.starts_with('"')
        }
        None => false,
    };
    Some(AllowDirective {
        line,
        rules,
        has_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let ts = kinds("let x = a == b; // c");
        assert_eq!(
            ts,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Ident, "a".into()),
                (TokKind::Punct, "==".into()),
                (TokKind::Ident, "b".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let src = "f(\"a == b\", 'x', '\\n', b\"==\", r\"eq == eq\")";
        let ts = kinds(src);
        assert!(!ts.iter().any(|(k, t)| *k == TokKind::Punct && t == "=="));
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            3,
            "{ts:?}"
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'q'; }");
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Char && t == "'q'"));
    }

    #[test]
    fn comments_are_skipped_but_allows_extracted() {
        let l = lex("let a = 1; // lint:allow(secret-cmp) reason=\"test vector\"\n/* x == y */");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rules, vec!["secret-cmp"]);
        assert!(l.allows[0].has_reason);
        assert!(!l.toks.iter().any(|t| t.is_punct("==")));
    }

    #[test]
    fn allow_without_reason_detected() {
        let l = lex("// lint:allow(panic-path, index-path)");
        assert_eq!(l.allows[0].rules, vec!["panic-path", "index-path"]);
        assert!(!l.allows[0].has_reason);
    }

    #[test]
    fn line_numbers_track() {
        let l = lex("a\nb\n  c");
        assert_eq!(l.toks[0].line, 1);
        assert_eq!(l.toks[1].line, 2);
        assert_eq!(l.toks[2].line, 3);
        assert_eq!(l.toks[2].col, 3);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ x");
        assert_eq!(l.toks.len(), 1);
        assert!(l.toks[0].is_ident("x"));
    }
}
