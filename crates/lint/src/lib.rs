//! `shs-lint` — secret-hygiene static analysis for the secret-handshakes
//! workspace.
//!
//! The GCD framework's anonymity and unobservability guarantees are only
//! as strong as the implementation's side channels: a timing-dependent
//! `==` on a MAC tag, a `Debug`-printed join secret, or a panic on a
//! protocol path de-anonymizes a participant even when the protocol math
//! is correct. This crate machine-checks the written policy in
//! `lint-policy.toml` on every PR:
//!
//! * **secret-debug** — registered secret types must not derive
//!   `Debug`/`Display`; redacting manual impls only.
//! * **secret-cmp** — no `==`/`!=` on secret values; comparisons route
//!   through `shs_crypto::ct`.
//! * **secret-fmt** — no secret value may flow into `format!`-family or
//!   log sinks.
//! * **panic-path** — no `unwrap()`/`expect()`/panicking macro on the
//!   protocol paths named by the policy.
//! * **index-path** — no panicking indexing on the decoder paths named by
//!   the policy.
//! * **allow-hygiene** — every `// lint:allow(<rule>) reason="…"`
//!   exception must carry a reason and actually suppress something.
//!
//! Everything is hand-rolled (lexer, TOML-subset parser, JSON emitter) so
//! the tool has zero dependencies, consistent with the offline `shims/`
//! policy of this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;

pub use policy::{Policy, Rule};
pub use report::{Finding, Report};

use std::fs;
use std::path::{Path, PathBuf};

/// A configured lint run rooted at the directory holding the policy file.
#[derive(Debug)]
pub struct Linter {
    policy: Policy,
    root: PathBuf,
}

impl Linter {
    /// Loads the policy at `policy_path`; its parent directory becomes the
    /// scan root.
    ///
    /// # Errors
    ///
    /// I/O or policy-syntax problems, as a printable message.
    pub fn from_policy_file(policy_path: &Path) -> Result<Linter, String> {
        let src = fs::read_to_string(policy_path)
            .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
        let policy = Policy::parse(&src)?;
        let root = policy_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        Ok(Linter { policy, root })
    }

    /// Builds a linter from an already-parsed policy (used by tests).
    pub fn from_policy(policy: Policy, root: PathBuf) -> Linter {
        Linter { policy, root }
    }

    /// The scan root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Lints every `.rs` file under the policy's scan roots.
    ///
    /// # Errors
    ///
    /// I/O problems, as a printable message.
    pub fn lint_workspace(&self) -> Result<Report, String> {
        let mut files = Vec::new();
        for dir in &self.policy.scan_roots {
            collect_rs_files(&self.root.join(dir), &mut files)?;
        }
        files.sort();
        self.lint_files(&files)
    }

    /// Lints an explicit set of files.
    ///
    /// # Errors
    ///
    /// I/O problems, as a printable message.
    pub fn lint_files(&self, files: &[PathBuf]) -> Result<Report, String> {
        let mut report = Report::default();
        for path in files {
            let rel = self.relative_name(path);
            if self.policy.excluded(&rel) {
                continue;
            }
            let src = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            report.findings.extend(self.lint_source(&rel, &src));
            report.files_scanned += 1;
        }
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        Ok(report)
    }

    /// Lints one file's source text under the given relative name.
    pub fn lint_source(&self, rel: &str, src: &str) -> Vec<Finding> {
        let lexed = lexer::lex(src);
        rules::lint_tokens(rel, &lexed, &self.policy)
    }

    /// Root-relative, `/`-separated path used in reports and policy
    /// matching.
    fn relative_name(&self, path: &Path) -> String {
        let rel = path.strip_prefix(&self.root).unwrap_or(path);
        rel.components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// Recursively collects `.rs` files; a missing root directory is fine
/// (policies may list optional dirs like `examples`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_source_text() {
        let policy = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
"#,
        )
        .unwrap();
        let linter = Linter::from_policy(policy, PathBuf::from("."));
        let bad = "fn f() { if k_prime == x { println!(\"{:?}\", k_prime); } }";
        let fs = linter.lint_source("m.rs", bad);
        assert_eq!(fs.len(), 2);
        assert!(linter.lint_source("m.rs", "fn f() {}").is_empty());
    }
}
