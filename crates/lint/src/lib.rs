//! `shs-lint` — secret-hygiene static analysis for the secret-handshakes
//! workspace.
//!
//! The GCD framework's anonymity and unobservability guarantees are only
//! as strong as the implementation's side channels: a timing-dependent
//! `==` on a MAC tag, a `Debug`-printed join secret, or a panic on a
//! protocol path de-anonymizes a participant even when the protocol math
//! is correct. This crate machine-checks the written policy in
//! `lint-policy.toml` on every PR, in two passes.
//!
//! **Fast token rules** (site-local, one linear scan per file):
//!
//! * **secret-debug** — registered secret types must not derive
//!   `Debug`/`Display`; redacting manual impls only.
//! * **secret-cmp** — no `==`/`!=` on secret values; comparisons route
//!   through `shs_crypto::ct`.
//! * **secret-fmt** — no secret value may flow into `format!`-family or
//!   log sinks.
//! * **panic-path** — no `unwrap()`/`expect()`/panicking macro on the
//!   protocol paths named by the policy.
//! * **index-path** — no panicking indexing on the decoder paths named by
//!   the policy.
//! * **factory-dispatch** — configuration enums dispatch only inside the
//!   factory module.
//! * **vartime-usage** — variable-time kernels only in allowlisted files.
//! * **allow-hygiene** — every `// lint:allow(<rule>) reason="…"`
//!   exception must carry a reason and suppress something under each
//!   rule it names.
//!
//! **Interprocedural analyses** (a lightweight syntax layer
//! ([`syntax`]), a workspace call graph ([`graph`]), then dataflow):
//!
//! * **secret-taint** — policy-seeded secrets tracked through locals,
//!   calls, and returns to vartime kernels, format/panic sinks, and raw
//!   wire-encode paths ([`taint`]).
//! * **lock-order** / **send-under-lock** — the global mutex acquisition
//!   graph over the concurrency layers: cycles, recursive acquisition,
//!   and blocking channel ops under a live guard ([`locks`]).
//!
//! Analysis findings ride the same allow machinery as the token rules
//! and are gated in CI against a committed [`baseline`] with a two-way
//! ratchet. Everything is hand-rolled (lexer, TOML-subset parser, JSON
//! emitter/reader) so the tool has zero dependencies, consistent with
//! the offline `shims/` policy of this workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod policy;
pub mod report;
pub mod rules;
pub mod syntax;
pub mod taint;

pub use policy::{Policy, Rule};
pub use report::{AnalysisStats, Finding, Report};

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Which passes a run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Fast token rules only.
    Tokens,
    /// Interprocedural analyses only.
    Analysis,
    /// Both (the default).
    Full,
}

impl Mode {
    fn tokens(self) -> bool {
        self != Mode::Analysis
    }

    fn analysis(self) -> bool {
        self != Mode::Tokens
    }
}

/// A configured lint run rooted at the directory holding the policy file.
#[derive(Debug)]
pub struct Linter {
    policy: Policy,
    root: PathBuf,
}

impl Linter {
    /// Loads the policy at `policy_path`; its parent directory becomes the
    /// scan root.
    ///
    /// # Errors
    ///
    /// I/O or policy-syntax problems, as a printable message.
    pub fn from_policy_file(policy_path: &Path) -> Result<Linter, String> {
        let src = fs::read_to_string(policy_path)
            .map_err(|e| format!("cannot read {}: {e}", policy_path.display()))?;
        let policy = Policy::parse(&src)?;
        let root = policy_path
            .parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."));
        Ok(Linter { policy, root })
    }

    /// Builds a linter from an already-parsed policy (used by tests).
    pub fn from_policy(policy: Policy, root: PathBuf) -> Linter {
        Linter { policy, root }
    }

    /// The scan root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Lints every `.rs` file under the policy's scan roots (both passes).
    ///
    /// # Errors
    ///
    /// I/O problems, as a printable message.
    pub fn lint_workspace(&self) -> Result<Report, String> {
        self.lint_workspace_mode(Mode::Full)
    }

    /// Lints the workspace with an explicit pass selection.
    ///
    /// # Errors
    ///
    /// I/O problems, as a printable message.
    pub fn lint_workspace_mode(&self, mode: Mode) -> Result<Report, String> {
        let mut files = Vec::new();
        for dir in &self.policy.scan_roots {
            collect_rs_files(&self.root.join(dir), &mut files)?;
        }
        files.sort();
        self.lint_files_mode(&files, mode)
    }

    /// Lints an explicit set of files (both passes).
    ///
    /// # Errors
    ///
    /// I/O problems, as a printable message.
    pub fn lint_files(&self, files: &[PathBuf]) -> Result<Report, String> {
        self.lint_files_mode(files, Mode::Full)
    }

    /// Lints an explicit set of files with an explicit pass selection.
    ///
    /// # Errors
    ///
    /// I/O problems, as a printable message.
    pub fn lint_files_mode(&self, files: &[PathBuf], mode: Mode) -> Result<Report, String> {
        let mut sources = Vec::new();
        for path in files {
            let rel = self.relative_name(path);
            if self.policy.excluded(&rel) {
                continue;
            }
            let src = fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            sources.push((rel, src));
        }
        Ok(self.lint_sources(&sources, mode))
    }

    /// Lints one file's source text under the given relative name (both
    /// passes — the single file is its own "workspace").
    pub fn lint_source(&self, rel: &str, src: &str) -> Vec<Finding> {
        self.lint_sources(&[(rel.to_string(), src.to_string())], Mode::Full)
            .findings
    }

    /// The shared pipeline: lex once, run the selected passes, merge
    /// per-file, dedupe, then apply allow directives.
    fn lint_sources(&self, sources: &[(String, String)], mode: Mode) -> Report {
        let lexed: Vec<lexer::Lexed> = sources.iter().map(|(_, src)| lexer::lex(src)).collect();
        let mut raw: Vec<Vec<Finding>> = vec![Vec::new(); sources.len()];

        if mode.tokens() {
            for (i, (rel, _)) in sources.iter().enumerate() {
                raw[i] = rules::token_findings(rel, &lexed[i], &self.policy);
            }
        }

        let mut analysis = None;
        if mode.analysis() {
            let t0 = Instant::now();
            let syntaxes: Vec<syntax::FileSyntax> = sources
                .iter()
                .zip(&lexed)
                .map(|((rel, _), lx)| syntax::parse_file(rel, lx))
                .collect();
            let cg = graph::CallGraph::build(&syntaxes);
            let (taint_findings, tstats) = taint::analyze(&syntaxes, &cg, &self.policy);
            let (lock_findings, lstats) = locks::analyze(&syntaxes, &cg, &self.policy);
            for f in taint_findings.into_iter().chain(lock_findings) {
                if let Some(i) = sources.iter().position(|(rel, _)| rel == &f.file) {
                    raw[i].push(f);
                }
            }
            analysis = Some(AnalysisStats {
                files_parsed: syntaxes.len(),
                fns_parsed: syntaxes.iter().map(|s| s.fns.len()).sum(),
                calls_total: cg.stats.calls,
                calls_resolved: cg.stats.resolved,
                calls_ambiguous: cg.stats.ambiguous,
                calls_unresolved: cg.stats.unknown,
                taint_seeds: tstats.seeds,
                tainted_fns: tstats.tainted_fns,
                lock_files: lstats.files_in_scope,
                lock_events: lstats.sync_events,
                lock_edges: lstats.edges,
                elapsed_ms: t0.elapsed().as_millis() as u64,
            });
        }

        let mut report = Report {
            files_scanned: sources.len(),
            analysis,
            ..Report::default()
        };
        for (i, (rel, _)) in sources.iter().enumerate() {
            let file_raw = std::mem::take(&mut raw[i]);
            let file_raw = dedupe_colocated(file_raw);
            report
                .findings
                .extend(rules::finalize(rel, &lexed[i], file_raw, mode));
        }
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        report
    }

    /// Root-relative, `/`-separated path used in reports and policy
    /// matching.
    fn relative_name(&self, path: &Path) -> String {
        let rel = path.strip_prefix(&self.root).unwrap_or(path);
        rel.components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// An interprocedural `secret-taint` finding that lands on the same line
/// as a site-local `secret-fmt`/`vartime-usage` token finding is the same
/// defect seen twice; keep the token finding (its message names the exact
/// identifier) and drop the duplicate, so one allow directive covers the
/// site. This runs before allow filtering.
fn dedupe_colocated(mut raw: Vec<Finding>) -> Vec<Finding> {
    let token_sites: Vec<(u32, u32)> = raw
        .iter()
        .filter(|f| matches!(f.rule, Rule::SecretFmt | Rule::VartimeUsage))
        .map(|f| (f.line, f.col))
        .collect();
    raw.retain(|f| f.rule != Rule::SecretTaint || !token_sites.iter().any(|&(l, _)| l == f.line));
    raw
}

/// Recursively collects `.rs` files; a missing root directory is fine
/// (policies may list optional dirs like `examples`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_source_text() {
        let policy = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
"#,
        )
        .unwrap();
        let linter = Linter::from_policy(policy, PathBuf::from("."));
        let bad = "fn f() { if k_prime == x { println!(\"{:?}\", k_prime); } }";
        let fs = linter.lint_source("m.rs", bad);
        assert_eq!(fs.len(), 2);
        assert!(linter.lint_source("m.rs", "fn f() {}").is_empty());
    }

    #[test]
    fn colocated_taint_and_token_findings_dedupe() {
        let policy = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
"#,
        )
        .unwrap();
        let linter = Linter::from_policy(policy, PathBuf::from("."));
        // `k_prime` is a param here, so the taint analysis sees it too;
        // the sink line must still yield exactly one finding.
        let bad = "fn f(k_prime: &Key) { println!(\"{:?}\", k_prime); }";
        let fs = linter.lint_source("m.rs", bad);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::SecretFmt);
    }

    #[test]
    fn interprocedural_finding_respects_allow() {
        let policy = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["println"]
[rules.vartime-usage]
fns = ["modpow_vartime"]
paths = ["m.rs"]
"#,
        )
        .unwrap();
        let linter = Linter::from_policy(policy, PathBuf::from("."));
        // vartime-usage is path-exempt in m.rs, but the *taint* rule is
        // not; the secret-taint finding must be allowable like any other.
        let bad = "fn f(k_prime: &U) { let y = c.modpow_vartime(&b, k_prime); }";
        let fs = linter.lint_source("m.rs", bad);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].rule, Rule::SecretTaint);
        let allowed = "fn f(k_prime: &U) {\n    // lint:allow(secret-taint) reason=\"blinded exponent, vetted\"\n    let y = c.modpow_vartime(&b, k_prime);\n}";
        assert!(linter.lint_source("m.rs", allowed).is_empty());
    }
}
