//! Lock-order and channel-deadlock analysis (rules `lock-order`,
//! `send-under-lock`).
//!
//! Scope is the policy's `[rules.lock-order] paths` list — the
//! concurrency layers (`shs_net::{serve,tcp,hub,sync}`, `shs_core::pool`).
//! Within each function the analysis replays mutex/channel events in
//! token order, tracking live guards via the syntax layer's approximated
//! release points, and:
//!
//! * records an **acquisition edge** `a → b` whenever lock class `b` is
//!   acquired (directly or through a resolved callee) while a guard of
//!   class `a` is live, then flags every cycle in the global acquisition
//!   graph — the classic inconsistent-order deadlock;
//! * flags **recursive acquisition** of the same class while its guard is
//!   live (the workspace mutexes are not reentrant);
//! * flags a **blocking channel op under a lock** — a bare `send` on the
//!   workspace's bounded channels, or a bare `recv`, while any guard is
//!   held, including transitively through callees. Backpressure then
//!   deadlocks against the lock. `try_send`/`recv_timeout` are bounded
//!   and exempt.
//!
//! Lock classes are receiver-chain names (`self.registry.lock()` →
//! `registry`), so two mutexes that happen to share a field name merge —
//! a deliberate over-approximation; see DESIGN.md §14. Calls *on a
//! guard* (`reg.snapshot()`, `self.registry.lock().stats()`) are methods
//! of the guarded inner data and are excluded from callee-effect replay:
//! name-based resolution would otherwise land them on same-named
//! service-layer methods that re-lock.

use crate::graph::{CallGraph, FnId};
use crate::policy::{Policy, Rule};
use crate::report::Finding;
use crate::syntax::{Call, FileSyntax, FnDef, SyncOp};
use std::collections::{BTreeMap, BTreeSet};

/// Names bound directly to lock guards (`let reg = self.registry.lock();`,
/// with or without an `.unwrap()`/`.expect(…)` in between).
fn guard_bound_names(def: &FnDef) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for b in &def.bindings {
        let Some(pc) = b.primary_call else { continue };
        let c = &def.calls[pc];
        let is_lock = c.callee == "lock"
            || (matches!(c.callee.as_str(), "unwrap" | "expect")
                && c.recv
                    .call_ids
                    .iter()
                    .any(|&i| def.calls[i].callee == "lock"));
        if is_lock {
            out.extend(b.names.iter().cloned());
        }
    }
    out
}

/// Is this call a method *on a guard* — `reg.snapshot()` where `reg` is a
/// guard binding, or a direct chain `self.registry.lock().stats()`? Such
/// calls run on the guarded inner data, which by construction does not
/// hold the mutex; resolving them by bare name routinely lands on a
/// same-named method of the outer service (which *does* lock), so their
/// callee effects are not replayed.
fn is_guard_method(def: &FnDef, call: &Call, guards: &BTreeSet<String>) -> bool {
    call.recv
        .call_ids
        .iter()
        .any(|&i| def.calls[i].callee == "lock")
        || call.recv.idents.iter().any(|id| guards.contains(id))
}

/// Lock-analysis self-stats for the JSON report.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockStats {
    /// Files inside the policy's lock scope.
    pub files_in_scope: usize,
    /// Mutex/channel events replayed.
    pub sync_events: usize,
    /// Distinct lock classes seen.
    pub lock_classes: usize,
    /// Acquisition edges in the global graph.
    pub edges: usize,
    /// Distinct cycles flagged.
    pub cycles: usize,
}

/// Per-function effect summary, computed to fixpoint over the call graph.
#[derive(Debug, Clone, Default, PartialEq)]
struct FnEffects {
    /// Lock classes this fn (or a callee) may acquire.
    acquires: BTreeSet<String>,
    /// Description of a blocking channel op this fn (or a callee) may
    /// perform, e.g. "blocking `send` on `to_hub`".
    blocks: Option<String>,
}

/// First-seen site of an acquisition edge.
#[derive(Debug, Clone)]
struct EdgeSite {
    file: String,
    line: u32,
    col: u32,
    held_line: u32,
}

/// Runs the analysis; returns findings plus self-stats.
pub fn analyze(
    files: &[FileSyntax],
    graph: &CallGraph,
    policy: &Policy,
) -> (Vec<Finding>, LockStats) {
    let mut stats = LockStats::default();
    let in_scope: Vec<bool> = files
        .iter()
        .map(|f| policy.lock_rule_applies(&f.rel))
        .collect();
    stats.files_in_scope = in_scope.iter().filter(|b| **b).count();
    if stats.files_in_scope == 0 {
        return (Vec::new(), stats);
    }

    let mut ids: Vec<FnId> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !in_scope[fi] {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            if !f.in_test {
                ids.push((fi, ni));
            }
        }
    }

    // Fixpoint on per-fn effect summaries.
    let mut effects: BTreeMap<FnId, FnEffects> =
        ids.iter().map(|id| (*id, FnEffects::default())).collect();
    loop {
        let mut changed = false;
        for &id in &ids {
            let def = crate::graph::fn_def(files, id);
            let mut e = effects[&id].clone();
            for ev in &def.sync_events {
                match ev.op {
                    SyncOp::Lock => {
                        e.acquires.insert(ev.class.clone());
                    }
                    SyncOp::Send => {
                        e.blocks
                            .get_or_insert_with(|| format!("blocking `send` on `{}`", ev.class));
                    }
                    SyncOp::Recv => {
                        e.blocks
                            .get_or_insert_with(|| format!("blocking `recv` on `{}`", ev.class));
                    }
                    SyncOp::TrySend | SyncOp::RecvTimeout => {}
                }
            }
            let guards = guard_bound_names(def);
            for ci in 0..def.calls.len() {
                if is_guard_method(def, &def.calls[ci], &guards) {
                    continue;
                }
                let Some(tgt) = graph.target(id, ci) else {
                    continue;
                };
                let Some(te) = effects.get(&tgt) else {
                    continue;
                };
                let (acq, blk) = (te.acquires.clone(), te.blocks.clone());
                e.acquires.extend(acq);
                if e.blocks.is_none() {
                    if let Some(b) = blk {
                        e.blocks = Some(format!("{b} via `{}`", def.calls[ci].callee));
                    }
                }
            }
            if e != effects[&id] {
                effects.insert(id, e);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Detailed per-fn replay: findings + acquisition edges.
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();
    let mut classes: BTreeSet<String> = BTreeSet::new();
    for &id in &ids {
        let def = crate::graph::fn_def(files, id);
        let rel = &files[id.0].rel;
        stats.sync_events += def.sync_events.len();
        for ev in &def.sync_events {
            if ev.op == SyncOp::Lock {
                classes.insert(ev.class.clone());
            }
        }
        replay_fn(files, id, graph, &effects, rel, &mut edges, &mut findings);
    }
    stats.lock_classes = classes.len();
    stats.edges = edges.len();

    // Cycle detection over the acquisition graph.
    let cycles = find_cycles(&edges);
    stats.cycles = cycles.len();
    for cyc in cycles {
        let first = &edges[&(cyc[0].clone(), cyc[1 % cyc.len()].clone())];
        let chain: Vec<&str> = cyc.iter().map(String::as_str).collect();
        let mut legs = String::new();
        for i in 0..cyc.len() {
            let a = &cyc[i];
            let b = &cyc[(i + 1) % cyc.len()];
            let site = &edges[&(a.clone(), b.clone())];
            if i > 0 {
                legs.push_str(", ");
            }
            legs.push_str(&format!(
                "`{a}` (held since line {}) →`{b}` at {}:{}",
                site.held_line, site.file, site.line
            ));
        }
        findings.push(Finding::new(
            &first.file,
            first.line,
            first.col,
            Rule::LockOrder,
            format!(
                "lock-order cycle `{}`→`{}`: {legs} — inconsistent acquisition \
                 order can deadlock; impose a single global order",
                chain.join("`→`"),
                chain[0],
            ),
        ));
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    (findings, stats)
}

/// Replays one fn's events in token order against the live-guard set.
fn replay_fn(
    files: &[FileSyntax],
    id: FnId,
    graph: &CallGraph,
    effects: &BTreeMap<FnId, FnEffects>,
    rel: &str,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
    findings: &mut Vec<Finding>,
) {
    let def = crate::graph::fn_def(files, id);
    // (tok_idx, event): sync events and resolved calls, token order.
    enum Ev {
        Sync(usize),
        Call(usize),
    }
    let guards = guard_bound_names(def);
    let mut evs: Vec<(usize, Ev)> = def
        .sync_events
        .iter()
        .enumerate()
        .map(|(i, e)| (e.tok_idx, Ev::Sync(i)))
        .chain(
            def.calls
                .iter()
                .enumerate()
                .filter(|(ci, c)| {
                    graph.target(id, *ci).is_some() && !is_guard_method(def, c, &guards)
                })
                .map(|(ci, c)| (c.tok_idx, Ev::Call(ci))),
        )
        .collect();
    evs.sort_by_key(|(t, _)| *t);

    // Live guards: (class, release_idx, acquire line).
    let mut held: Vec<(String, usize, u32)> = Vec::new();
    for (tok, ev) in evs {
        held.retain(|(_, release, _)| *release > tok);
        match ev {
            Ev::Sync(i) => {
                let e = &def.sync_events[i];
                match e.op {
                    SyncOp::Lock => {
                        for (h, _, hline) in &held {
                            if h == &e.class {
                                findings.push(Finding::new(
                                    rel,
                                    e.line,
                                    e.col,
                                    Rule::LockOrder,
                                    format!(
                                        "`{}` locked while a `{}` guard is \
                                         still live (acquired line {hline}); \
                                         the workspace mutexes are not \
                                         reentrant — this self-deadlocks",
                                        e.class, e.class
                                    ),
                                ));
                            } else {
                                edges
                                    .entry((h.clone(), e.class.clone()))
                                    .or_insert(EdgeSite {
                                        file: rel.to_string(),
                                        line: e.line,
                                        col: e.col,
                                        held_line: *hline,
                                    });
                            }
                        }
                        held.push((e.class.clone(), e.release_idx, e.line));
                    }
                    SyncOp::Send | SyncOp::Recv => {
                        if let Some((h, _, hline)) = held.first() {
                            let what = if e.op == SyncOp::Send {
                                format!("blocking `send` on bounded channel `{}`", e.class)
                            } else {
                                format!("blocking `recv` on `{}`", e.class)
                            };
                            findings.push(Finding::new(
                                rel,
                                e.line,
                                e.col,
                                Rule::SendUnderLock,
                                format!(
                                    "{what} while holding lock `{h}` (acquired \
                                     line {hline}); backpressure can deadlock \
                                     against the lock — drop the guard first or \
                                     use a non-blocking variant",
                                ),
                            ));
                        }
                    }
                    SyncOp::TrySend | SyncOp::RecvTimeout => {}
                }
            }
            Ev::Call(ci) => {
                if held.is_empty() {
                    continue;
                }
                let call = &def.calls[ci];
                let Some(tgt) = graph.target(id, ci) else {
                    continue;
                };
                let Some(te) = effects.get(&tgt) else {
                    continue;
                };
                for (h, _, hline) in &held {
                    for acq in &te.acquires {
                        if acq == h {
                            findings.push(Finding::new(
                                rel,
                                call.line,
                                call.col,
                                Rule::LockOrder,
                                format!(
                                    "call to `{}` (which may lock `{acq}`) while \
                                     a `{h}` guard is live (acquired line \
                                     {hline}) — non-reentrant re-acquisition",
                                    call.callee
                                ),
                            ));
                        } else {
                            edges.entry((h.clone(), acq.clone())).or_insert(EdgeSite {
                                file: rel.to_string(),
                                line: call.line,
                                col: call.col,
                                held_line: *hline,
                            });
                        }
                    }
                }
                if let Some(b) = &te.blocks {
                    let (h, _, hline) = &held[0];
                    findings.push(Finding::new(
                        rel,
                        call.line,
                        call.col,
                        Rule::SendUnderLock,
                        format!(
                            "call to `{}` ({b}) while holding lock `{h}` \
                             (acquired line {hline}); the channel op can block \
                             against the lock",
                            call.callee
                        ),
                    ));
                }
            }
        }
    }
}

/// Finds distinct simple cycles in the acquisition graph, each returned
/// as its node list rotated to start at the lexicographically smallest
/// class (deduplicated on that canonical form).
fn find_cycles(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        dfs(
            start,
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut seen,
            &mut out,
        );
    }
    out
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start {
            let cyc = canonical(path);
            if seen.insert(cyc.clone()) {
                out.push(cyc);
            }
            continue;
        }
        // Only expand from the canonical start to avoid re-finding each
        // cycle once per member node.
        if next < start || on_path.contains(next) {
            continue;
        }
        path.push(next);
        on_path.insert(next);
        dfs(next, start, adj, path, on_path, seen, out);
        on_path.remove(next);
        path.pop();
    }
}

/// Rotates the cycle to start at the smallest class name.
fn canonical(path: &[&str]) -> Vec<String> {
    let min = path
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    path.iter()
        .cycle()
        .skip(min)
        .take(path.len())
        .map(|s| s.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::parse_file;

    fn policy() -> Policy {
        Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["format"]
[rules.lock-order]
paths = ["*.rs"]
"#,
        )
        .unwrap()
    }

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<FileSyntax> = sources
            .iter()
            .map(|(rel, src)| parse_file(rel, &lex(src)))
            .collect();
        let graph = CallGraph::build(&files);
        analyze(&files, &graph, &policy()).0
    }

    #[test]
    fn two_fn_opposite_order_is_a_cycle() {
        let src = "fn a(&self) { let g = self.reg.lock(); let h = self.shapes.lock(); }\n\
                   fn b(&self) { let g = self.shapes.lock(); let h = self.reg.lock(); }";
        let f = run(&[("a.rs", src)]);
        let cycles: Vec<_> = f.iter().filter(|f| f.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(
            cycles[0].message.contains("`reg`→`shapes`"),
            "{}",
            cycles[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn a(&self) { let g = self.reg.lock(); let h = self.shapes.lock(); }\n\
                   fn b(&self) { let g = self.reg.lock(); let h = self.shapes.lock(); }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn cross_fn_cycle_via_callee() {
        let src = "fn inner(&self) { let g = self.b.lock(); }\n\
                   fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
                   fn other(&self) { let g = self.b.lock(); let h = self.a.lock(); }";
        let f = run(&[("a.rs", src)]);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::LockOrder && f.message.contains("cycle")),
            "{f:?}"
        );
    }

    #[test]
    fn send_while_holding_lock_flagged() {
        let src = "fn f(&self) { let g = self.reg.lock(); self.to_hub.send(m); }";
        let f = run(&[("a.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::SendUnderLock);
        assert!(f[0].message.contains("`to_hub`"), "{}", f[0].message);
    }

    #[test]
    fn send_after_guard_drop_is_clean() {
        let src = "fn f(&self) { { let g = self.reg.lock(); } self.to_hub.send(m); }\n\
                   fn g(&self) { let g = self.reg.lock(); drop(g); self.to_hub.send(m); }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn try_send_and_recv_timeout_are_exempt() {
        let src = "fn f(&self) { let g = self.reg.lock(); self.tx.try_send(m); }\n\
                   fn g(&self) { let m = self.rx.lock().recv_timeout(d); }";
        assert!(run(&[("a.rs", src)]).is_empty());
    }

    #[test]
    fn transitive_send_under_lock_flagged() {
        let src = "fn notify(&self) { self.tx.send(m); }\n\
                   fn f(&self) { let g = self.reg.lock(); self.notify(); }";
        let f = run(&[("a.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::SendUnderLock);
        assert!(f[0].message.contains("notify"), "{}", f[0].message);
    }

    #[test]
    fn recursive_acquisition_flagged() {
        let src = "fn f(&self) { let g = self.reg.lock(); let h = self.reg.lock(); }";
        let f = run(&[("a.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::LockOrder);
        assert!(f[0].message.contains("not"), "{}", f[0].message);
    }

    #[test]
    fn out_of_scope_files_ignored() {
        let p = Policy::parse(
            r#"
[secret]
types = ["Key"]
idents = ["k_prime"]
[sinks]
macros = ["format"]
[rules.lock-order]
paths = ["net/*.rs"]
"#,
        )
        .unwrap();
        let src = "fn f(&self) { let g = self.reg.lock(); self.tx.send(m); }";
        let files = vec![parse_file("core/pool.rs", &lex(src))];
        let graph = CallGraph::build(&files);
        let (f, stats) = analyze(&files, &graph, &p);
        assert!(f.is_empty());
        assert_eq!(stats.files_in_scope, 0);
    }
}
