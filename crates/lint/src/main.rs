//! `shs-lint` CLI.
//!
//! ```text
//! shs-lint --workspace                  # lint everything under the policy root
//! shs-lint path/to/file.rs …           # lint specific files
//! shs-lint --workspace --json report.json
//! shs-lint --workspace --policy other-policy.toml
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use shs_lint::Linter;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    policy: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: shs-lint [--workspace] [--policy <lint-policy.toml>] \
     [--json <out.json|->] [--quiet] [files…]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        policy: None,
        json: None,
        quiet: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" | "-w" => args.workspace = true,
            "--policy" => {
                args.policy = Some(PathBuf::from(
                    it.next().ok_or("--policy needs a path argument")?,
                ))
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a path argument (or `-`)")?,
                ))
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.workspace && args.files.is_empty() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(args)
}

/// Finds `lint-policy.toml` in the current directory or any ancestor.
fn find_policy() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        let candidate = dir.join("lint-policy.toml");
        if candidate.is_file() {
            return Ok(candidate);
        }
        if !dir.pop() {
            return Err(
                "no lint-policy.toml found in the current directory or any ancestor; \
                 pass --policy <path>"
                    .to_string(),
            );
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let policy_path = match &args.policy {
        Some(p) => p.clone(),
        None => find_policy()?,
    };
    let linter = Linter::from_policy_file(&policy_path)?;
    let report = if args.workspace {
        linter.lint_workspace()?
    } else {
        // Make explicit paths absolute so root-stripping yields stable
        // relative names.
        let files: Vec<PathBuf> = args
            .files
            .iter()
            .map(|f| {
                if f.is_absolute() {
                    f.clone()
                } else {
                    std::env::current_dir().unwrap_or_default().join(f)
                }
            })
            .collect();
        linter.lint_files(&files)?
    };

    if !args.quiet {
        for f in &report.findings {
            eprintln!("{}", f.render());
        }
        eprintln!(
            "shs-lint: {} file(s) scanned, {} finding(s)",
            report.files_scanned,
            report.findings.len()
        );
    }
    if let Some(json_path) = &args.json {
        let body = report.to_json();
        if json_path.as_os_str() == "-" {
            print!("{body}");
        } else {
            std::fs::write(json_path, body)
                .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        }
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("shs-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
