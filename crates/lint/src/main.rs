//! `shs-lint` CLI.
//!
//! ```text
//! shs-lint --workspace                  # both passes, everything under the policy root
//! shs-lint path/to/file.rs …           # lint specific files
//! shs-lint --workspace --tokens-only   # fast token rules only
//! shs-lint --workspace --analysis-only --baseline lint-baseline.json
//! shs-lint --workspace --write-baseline lint-baseline.json
//! shs-lint --workspace --json report.json
//! shs-lint --workspace --policy other-policy.toml
//! ```
//!
//! With `--baseline`, findings are ratcheted against the committed file:
//! the run fails on **new** findings and also on **fixed** findings until
//! the baseline is re-written (the floor only moves down). Without it, any
//! finding fails.
//!
//! Exit codes: `0` clean, `1` findings/ratchet mismatch, `2` usage or I/O
//! error.

use shs_lint::baseline::Baseline;
use shs_lint::{Linter, Mode};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    workspace: bool,
    policy: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
    mode: Mode,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: shs-lint [--workspace] [--policy <lint-policy.toml>] \
     [--tokens-only | --analysis-only] [--baseline <lint-baseline.json>] \
     [--write-baseline <lint-baseline.json>] [--json <out.json|->] \
     [--quiet] [files…]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        policy: None,
        json: None,
        quiet: false,
        mode: Mode::Full,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" | "-w" => args.workspace = true,
            "--policy" => {
                args.policy = Some(PathBuf::from(
                    it.next().ok_or("--policy needs a path argument")?,
                ))
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a path argument (or `-`)")?,
                ))
            }
            "--tokens-only" => {
                if args.mode == Mode::Analysis {
                    return Err("--tokens-only conflicts with --analysis-only".to_string());
                }
                args.mode = Mode::Tokens;
            }
            "--analysis-only" => {
                if args.mode == Mode::Tokens {
                    return Err("--analysis-only conflicts with --tokens-only".to_string());
                }
                args.mode = Mode::Analysis;
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a path argument")?,
                ))
            }
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a path argument")?,
                ))
            }
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{}", usage()))
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.workspace && args.files.is_empty() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(args)
}

/// Finds `lint-policy.toml` in the current directory or any ancestor.
fn find_policy() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        let candidate = dir.join("lint-policy.toml");
        if candidate.is_file() {
            return Ok(candidate);
        }
        if !dir.pop() {
            return Err(
                "no lint-policy.toml found in the current directory or any ancestor; \
                 pass --policy <path>"
                    .to_string(),
            );
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let policy_path = match &args.policy {
        Some(p) => p.clone(),
        None => find_policy()?,
    };
    let linter = Linter::from_policy_file(&policy_path)?;
    let report = if args.workspace {
        linter.lint_workspace_mode(args.mode)?
    } else {
        // Make explicit paths absolute so root-stripping yields stable
        // relative names.
        let files: Vec<PathBuf> = args
            .files
            .iter()
            .map(|f| {
                if f.is_absolute() {
                    f.clone()
                } else {
                    std::env::current_dir().unwrap_or_default().join(f)
                }
            })
            .collect();
        linter.lint_files_mode(&files, args.mode)?
    };

    if !args.quiet {
        for f in &report.findings {
            eprintln!("{}", f.render());
        }
        eprintln!(
            "shs-lint: {} file(s) scanned, {} finding(s)",
            report.files_scanned,
            report.findings.len()
        );
        if let Some(a) = &report.analysis {
            eprintln!(
                "shs-lint: analysis: {} fns in {} files, {}/{} calls resolved \
                 ({} ambiguous, {} external), {} taint seeds, {} lock events, {} ms",
                a.fns_parsed,
                a.files_parsed,
                a.calls_resolved,
                a.calls_total,
                a.calls_ambiguous,
                a.calls_unresolved,
                a.taint_seeds,
                a.lock_events,
                a.elapsed_ms
            );
        }
    }
    if let Some(json_path) = &args.json {
        let body = report.to_json();
        if json_path.as_os_str() == "-" {
            print!("{body}");
        } else {
            std::fs::write(json_path, body)
                .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
        }
    }
    if let Some(path) = &args.write_baseline {
        let body = Baseline::from_report(&report).to_json();
        std::fs::write(path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        if !args.quiet {
            eprintln!("shs-lint: baseline written to {}", path.display());
        }
        return Ok(true);
    }
    if let Some(path) = &args.baseline {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let base = Baseline::parse(&src)?;
        let diff = base.compare(&report);
        if !args.quiet {
            for r in &diff.regressions {
                eprintln!("shs-lint: ratchet regression: {r}");
            }
            for i in &diff.improvements {
                eprintln!("shs-lint: ratchet improvement: {i}");
            }
        }
        return Ok(diff.ok());
    }
    Ok(report.clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("shs-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
